//! Trace-driven cache-simulator demo: extract miss-ratio curves from
//! synthetic address traces and watch CAT way-masks isolate a victim from a
//! streaming aggressor — the hardware mechanism DICER actuates.
//!
//! Run with:
//! ```text
//! cargo run --release --example cachesim_demo
//! ```

use dicer::cachesim::{mrc, CacheConfig, ReplacementKind, SetAssocCache, TraceGen};

fn main() {
    // A scaled-down LLC keeps the demo fast: 512 sets x 8 ways x 64 B.
    let cfg = CacheConfig { size_bytes: 512 * 8 * 64, ways: 8, line_bytes: 64 };

    println!("1) Miss-ratio curves by archetype (trace-driven, LRU)");
    let traces = [
        ("streaming", TraceGen::Stream),
        ("working-set (2 ways)", TraceGen::WorkingSet { lines: 512 * 2, seed: 7 }),
        ("zipf pointer-chase", TraceGen::Zipf { lines: 512 * 24, s: 0.9, seed: 9 }),
    ];
    print!("   ways:");
    for w in 1..=cfg.ways {
        print!("  {w:>5}");
    }
    println!();
    for (name, gen) in &traces {
        let trace = gen.generate(300_000);
        let curve = mrc::by_simulation(&trace, &cfg, ReplacementKind::Lru);
        print!("   {name:<22}");
        for w in 1..=cfg.ways {
            print!(" {:>5.2}", curve.at(w));
        }
        println!();
    }

    println!();
    println!("2) CAT isolation: victim (working set) vs streaming aggressor");
    for (label, victim_mask, aggressor_mask) in [
        ("shared cache (no CAT)  ", 0xFFu32, 0xFFu32),
        ("CAT split 6+2          ", 0xFCu32, 0x03u32),
    ] {
        let mut cache = SetAssocCache::new(cfg, ReplacementKind::Lru);
        let victim_trace = TraceGen::WorkingSet { lines: 512 * 3, seed: 1 }.generate(400_000);
        let aggressor_trace = TraceGen::Stream.generate(400_000);
        // Interleave accesses 1:1, as two cores would.
        for (v, a) in victim_trace.iter().zip(&aggressor_trace) {
            cache.access_line(*v, 1, victim_mask);
            cache.access_line(*a, 2, aggressor_mask);
        }
        println!(
            "   {label} victim miss ratio {:.3}, victim occupancy {:>5} KiB",
            cache.miss_ratio(1),
            cache.occupancy_bytes(1) / 1024,
        );
    }
    println!();
    println!("The split raises the victim's hit rate by fencing the stream into");
    println!("two ways — cache contents migrate lazily, exactly like real CAT.");
}
