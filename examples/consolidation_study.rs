//! Consolidation study: compare UM, CT and DICER across representative
//! workload mixes and print the HP/BE/utilisation trade-off table.
//!
//! Run with:
//! ```text
//! cargo run --release --example consolidation_study
//! ```

use dicer::experiments::runner::run_colocation_with;
use dicer::experiments::SoloTable;
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::prelude::*;

fn main() {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let solo = SoloTable::build(&catalog, cfg);

    // One workload per interesting HP/BE archetype mix.
    let mixes = [
        ("omnetpp1", "lbm1", "cache-sensitive HP vs streaming BEs"),
        ("milc1", "gcc_base1", "bandwidth-bound HP vs cache-hungry BEs (Fig. 3)"),
        ("gcc_base1", "bzip21", "two moderate working sets"),
        ("namd1", "libquantum1", "compute-bound HP vs streaming BEs"),
        ("mcf1", "gobmk1", "deep working set HP vs friendly BEs"),
    ];
    let policies = [
        PolicyKind::Unmanaged,
        PolicyKind::CacheTakeover,
        PolicyKind::Dicer(DicerConfig::default()),
    ];

    println!(
        "{:<22} {:<7} {:>8} {:>8} {:>7}",
        "workload", "policy", "HP norm", "BE norm", "EFU"
    );
    println!("{}", "-".repeat(58));
    for (hp, be, note) in &mixes {
        println!("# {note}");
        let hp_app = catalog.get(hp).expect("known app");
        let be_app = catalog.get(be).expect("known app");
        for p in &policies {
            let out = run_colocation_with(&solo, hp_app, be_app, cfg.n_cores, p);
            println!(
                "{:<22} {:<7} {:>8.3} {:>8.3} {:>7.3}",
                format!("{hp}+9x{be}"),
                out.policy,
                out.hp_norm_ipc,
                out.be_norm_ipc_mean(),
                out.efu
            );
        }
    }
    println!();
    println!("Reading guide: UM maximises EFU but lets the HP sink; CT protects the");
    println!("HP on cache-sensitive mixes but starves BEs (low EFU) and can even");
    println!("hurt a bandwidth-bound HP; DICER tracks the better of the two.");
}
