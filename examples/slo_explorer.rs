//! SLO explorer: for one workload, sweep the number of employed cores and
//! report which SLO targets each policy can hold, plus the combined SUCI
//! score a provider would optimise.
//!
//! Run with:
//! ```text
//! cargo run --release --example slo_explorer [HP] [BE]
//! ```

use dicer::experiments::runner::run_colocation_with;
use dicer::experiments::SoloTable;
use dicer::metrics::{slo_achieved, suci};
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let hp_name = args.get(1).map(String::as_str).unwrap_or("omnetpp1");
    let be_name = args.get(2).map(String::as_str).unwrap_or("gcc_base1");

    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let solo = SoloTable::build(&catalog, cfg);
    let hp = catalog
        .get(hp_name)
        .unwrap_or_else(|| panic!("unknown HP {hp_name}; try e.g. omnetpp1, milc1, mcf1"));
    let be = catalog
        .get(be_name)
        .unwrap_or_else(|| panic!("unknown BE {be_name}; try e.g. gcc_base1, lbm1"));

    let policies = [
        PolicyKind::Unmanaged,
        PolicyKind::CacheTakeover,
        PolicyKind::Dicer(DicerConfig::default()),
    ];
    let slos = [0.80, 0.90, 0.95];

    println!("workload: {hp_name} (HP) + (cores-1) x {be_name} (BEs)\n");
    println!(
        "{:>5} {:<7} {:>8} {:>7}  {:<17} {:>10}",
        "cores", "policy", "HP norm", "EFU", "SLOs held", "SUCI@90%"
    );
    for n_cores in (2..=cfg.n_cores).step_by(2) {
        for p in &policies {
            let out = run_colocation_with(&solo, hp, be, n_cores, p);
            let held: Vec<String> = slos
                .iter()
                .filter(|s| slo_achieved(out.hp_norm_ipc, **s))
                .map(|s| format!("{:.0}%", s * 100.0))
                .collect();
            println!(
                "{:>5} {:<7} {:>8.3} {:>7.3}  {:<17} {:>10.3}",
                n_cores,
                out.policy,
                out.hp_norm_ipc,
                out.efu,
                if held.is_empty() { "none".to_string() } else { held.join(" ") },
                suci(out.hp_norm_ipc, out.efu, 0.90, 1.0),
            );
        }
    }
    println!("\nSUCI (Eq. 4) is zero whenever the 90% SLO is violated, otherwise EFU.");
}
