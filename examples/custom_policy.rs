//! Custom policy: the [`dicer::policy::Policy`] trait is open — this example
//! implements a simple proportional controller ("EvenSplit+") and races it
//! against DICER on the same workload.
//!
//! The custom policy grants the HP a fixed fraction of the LLC scaled by
//! how far its bandwidth sits from the saturation threshold — a plausible
//! first idea that the comparison shows is inferior to DICER's
//! sample-and-validate loop.
//!
//! Run with:
//! ```text
//! cargo run --release --example custom_policy
//! ```

use dicer::policy::{DicerConfig, Policy, PolicyKind};
use dicer::prelude::*;
use dicer::rdt::{PartitionPlan, PeriodSample};

/// Grant HP half the cache, nudged down one way for every 10 Gbps of total
/// traffic above half the saturation threshold.
struct BandwidthNudge {
    threshold_gbps: f64,
}

impl Policy for BandwidthNudge {
    fn name(&self) -> &'static str {
        "NUDGE"
    }

    fn initial_plan(&self, n_ways: u32) -> PartitionPlan {
        PartitionPlan::Split { hp_ways: n_ways / 2 }
    }

    fn on_period(&mut self, sample: &PeriodSample, n_ways: u32) -> PartitionPlan {
        let half = self.threshold_gbps / 2.0;
        let over = (sample.total_bw_gbps - half).max(0.0);
        let nudge = (over / 10.0).round() as u32;
        let hp_ways = (n_ways / 2).saturating_sub(nudge).clamp(1, n_ways - 1);
        PartitionPlan::Split { hp_ways }
    }
}

fn race(
    catalog: &Catalog,
    solo: &dicer::experiments::SoloTable,
    hp: &str,
    be: &str,
) {
    let cfg = *solo.config();
    let hp_app = catalog.get(hp).expect("known app");
    let be_app = catalog.get(be).expect("known app");

    // DICER through the standard runner...
    let dicer = dicer::experiments::runner::run_colocation_with(
        solo,
        hp_app,
        be_app,
        cfg.n_cores,
        &PolicyKind::Dicer(DicerConfig::default()),
    );

    // ...and the custom policy on the same `Session` runtime: any `Policy`
    // implementor drives the identical period loop.
    let server = Server::new(cfg, hp_app.clone(), vec![be_app.clone(); 9]);
    let pol = BandwidthNudge { threshold_gbps: 50.0 };
    let mut session = dicer::experiments::Session::new(server, pol, 6000);
    session.run();
    let (server, _pol) = session.into_parts();
    let elapsed = server.time_s();
    let hp_norm =
        server.hp().retired_insns / (cfg.freq_hz * elapsed) / solo.get(hp).ipc_alone;

    println!(
        "{hp}+9x{be}:  DICER HP norm {:.3} (EFU {:.3})  |  NUDGE HP norm {:.3}",
        dicer.hp_norm_ipc, dicer.efu, hp_norm
    );
}

fn main() {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let solo = dicer::experiments::SoloTable::build(&catalog, cfg);

    println!("Racing a hand-rolled bandwidth-nudge policy against DICER:\n");
    race(&catalog, &solo, "omnetpp1", "lbm1");
    race(&catalog, &solo, "milc1", "gcc_base1");
    race(&catalog, &solo, "mcf1", "gobmk1");
    println!("\nAny type implementing `Policy` plugs into the same runner and server.");
}
