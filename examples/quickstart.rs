//! Quickstart: co-locate one HP with nine BEs under DICER and watch the
//! controller adapt the LLC partition period by period.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dicer::policy::{Dicer, DicerConfig, Policy};
use dicer::prelude::*;
use dicer::rdt::PartitionController;

fn main() {
    // The paper's evaluation machine (Table 1): 10 cores, 25 MB 20-way LLC,
    // 68.3 Gbps memory link, 1-second monitoring periods.
    let cfg = ServerConfig::table1();

    // The paper's Fig. 3 workload: milc (bandwidth-sensitive HP) against
    // nine gcc instances (cache-hungry BEs).
    let catalog = Catalog::paper();
    let hp = catalog.get("milc1").expect("milc in catalog").clone();
    let be = catalog.get("gcc_base1").expect("gcc in catalog").clone();

    let mut server = Server::new(cfg, hp, vec![be; 9]);
    let mut dicer = Dicer::new(DicerConfig::default());
    server.apply_plan(dicer.initial_plan(cfg.cache.ways));

    println!("period |  HP ways | state            |  HP IPC | total BW (Gbps)");
    println!("-------+----------+------------------+---------+----------------");
    for period in 1..=40 {
        let sample = server.step_period();
        let plan = dicer.on_period(&sample, cfg.cache.ways);
        println!(
            "{:>6} | {:>8} | {:<16} | {:>7.3} | {:>9.1}",
            period,
            server.current_plan().hp_ways(cfg.cache.ways),
            format!("{:?}", dicer.state()),
            sample.hp.ipc,
            sample.total_bw_gbps,
        );
        server.apply_plan(plan);
    }

    println!();
    println!(
        "DICER settled on {} HP ways (CT would pin 19; the workload is {}).",
        dicer.hp_ways(),
        if dicer.ct_favoured() { "CT-Favoured" } else { "CT-Thwarted" }
    );
    println!(
        "Decisions: {} sampling periods, {} shrinks, {} resets, {} phase changes.",
        dicer.stats.sampling_periods, dicer.stats.shrinks, dicer.stats.resets, dicer.stats.phase_changes
    );
}
