//! Quickstart: co-locate one HP with nine BEs under DICER and watch the
//! controller adapt the LLC partition period by period.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dicer::experiments::Session;
use dicer::policy::{Dicer, DicerConfig};
use dicer::prelude::*;
use dicer::rdt::PartitionController;

fn main() {
    // The paper's evaluation machine (Table 1): 10 cores, 25 MB 20-way LLC,
    // 68.3 Gbps memory link, 1-second monitoring periods.
    let cfg = ServerConfig::table1();

    // The paper's Fig. 3 workload: milc (bandwidth-sensitive HP) against
    // nine gcc instances (cache-hungry BEs).
    let catalog = Catalog::paper();
    let hp = catalog.get("milc1").expect("milc in catalog").clone();
    let be = catalog.get("gcc_base1").expect("gcc in catalog").clone();

    let server = Server::new(cfg, hp, vec![be; 9]);
    let mut session = Session::new(server, Dicer::new(DicerConfig::default()), 40);

    println!("period |  HP ways | state            |  HP IPC | total BW (Gbps)");
    println!("-------+----------+------------------+---------+----------------");
    session.run_observed(
        // Snapshot the plan in force *during* the upcoming period, before
        // this period's decision replaces it.
        |_, server| server.current_plan().hp_ways(cfg.cache.ways),
        |step, _, dicer| {
            let sample = step.delivered.expect("clean platform always delivers");
            println!(
                "{:>6} | {:>8} | {:<16} | {:>7.3} | {:>9.1}",
                step.period + 1,
                step.carry,
                format!("{:?}", dicer.state()),
                sample.hp.ipc,
                sample.total_bw_gbps,
            );
        },
    );
    let (_server, dicer) = session.into_parts();

    println!();
    println!(
        "DICER settled on {} HP ways (CT would pin 19; the workload is {}).",
        dicer.hp_ways(),
        if dicer.ct_favoured() { "CT-Favoured" } else { "CT-Thwarted" }
    );
    println!(
        "Decisions: {} sampling periods, {} shrinks, {} resets, {} phase changes.",
        dicer.stats.sampling_periods, dicer.stats.shrinks, dicer.stats.resets, dicer.stats.phase_changes
    );
}
