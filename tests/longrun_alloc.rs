//! Zero-allocation proof for the detached steady-state hot loop.
//!
//! With no telemetry sink and no tracer attached, a steady-state session
//! (static plan, single-phase apps, no admission churn) must perform
//! **zero** heap allocations per period once warmed up: the fingerprint
//! fast path reuses the last equilibrium, the session refills one
//! persistent sample buffer in place, and every event constructor is
//! short-circuited before it can build anything.
//!
//! The proof instruments the global allocator, so this target runs
//! **without** the libtest harness (`harness = false` in Cargo.toml): the
//! whole process is one thread with nothing else allocating concurrently,
//! making the counter exact rather than statistical. (Under a harness the
//! runner thread's completion channel lazily allocates — a TLS context and
//! a waker entry — at a scheduling-dependent moment, so the count would be
//! off by a couple of allocations on some runs.)

use dicer::appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer::experiments::Session;
use dicer::policy::Unmanaged;
use dicer::server::{Server, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counts every allocation entry point (alloc, alloc_zeroed, realloc) and
/// forwards to the system allocator. Frees are irrelevant to the
/// criterion ("the hot loop takes nothing from the heap") and are not
/// counted.
struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

fn main() {
    steady_state_periods_do_not_allocate_when_detached();
    println!("test steady_state_periods_do_not_allocate_when_detached ... ok");
}

fn steady_state_periods_do_not_allocate_when_detached() {
    const PERIODS: u32 = 5_000;
    const WARMUP: u32 = 500;

    // Single eternal phase per app: no completions, no phase crossings —
    // after the first solve the fingerprint skips everything.
    let eternal = |apki: f64, curve: MissCurve| Phase {
        insns: u64::MAX / 2,
        base_cpi: 0.65,
        apki,
        mlp: 2.4,
        curve,
    };
    let hp = AppProfile::new(
        "za_hp",
        Archetype::CacheFriendly,
        vec![eternal(28.0, MissCurve::parametric(0.45, 0.62, 1.3, 2.0))],
    );
    let be = AppProfile::new(
        "za_be",
        Archetype::CacheFriendly,
        vec![eternal(24.0, MissCurve::flat(0.35))],
    );
    let server = Server::new(ServerConfig::table1(), hp, vec![be; 9]);
    let mut session = Session::new(server, Unmanaged, PERIODS);

    let mut base = 0u64;
    let end = session.run_observed(
        |period, _| {
            if period == WARMUP {
                base = ALLOCATIONS.load(Ordering::Relaxed);
            }
        },
        |_, _, _| (),
    );
    let after = ALLOCATIONS.load(Ordering::Relaxed);

    assert_eq!(end.periods, PERIODS, "eternal apps never complete");
    assert_eq!(
        after - base,
        0,
        "the detached hot loop allocated over {} post-warm-up periods",
        PERIODS - WARMUP
    );
}
