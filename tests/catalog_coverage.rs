//! Catalog-wide coverage: every one of the 59 workloads satisfies the
//! global invariants the evaluation relies on. These run over the *whole*
//! catalog so that a future retuning of any family cannot silently violate
//! them.

use dicer::appmodel::{Archetype, Catalog};
use dicer::experiments::SoloTable;
use dicer::server::ServerConfig;

#[test]
fn every_profile_validates_and_has_sane_parameters() {
    let catalog = Catalog::paper();
    assert_eq!(catalog.len(), 59);
    for app in catalog.profiles() {
        app.validate().unwrap_or_else(|e| panic!("{}: {e}", app.name));
        for (i, ph) in app.phases.iter().enumerate() {
            assert!(
                (0.2..2.0).contains(&ph.base_cpi),
                "{} phase {i}: base_cpi {} out of band",
                app.name,
                ph.base_cpi
            );
            assert!(ph.apki < 80.0, "{} phase {i}: APKI {} implausible", app.name, ph.apki);
            assert!(
                (1.0..8.0).contains(&ph.mlp),
                "{} phase {i}: MLP {} out of band",
                app.name,
                ph.mlp
            );
        }
    }
}

#[test]
fn solo_profiles_are_monotone_and_bounded_for_all_apps() {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    for app in catalog.profiles() {
        let p = solo.get(&app.name);
        assert!(
            (0.05..4.0).contains(&p.ipc_alone),
            "{}: solo IPC {} implausible",
            app.name,
            p.ipc_alone
        );
        for w in p.ipc_by_ways.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{}: solo IPC not monotone in ways", app.name);
        }
        // The full-cache point is the best point.
        assert!((p.ipc_by_ways[19] - p.ipc_alone).abs() < 1e-12);
    }
}

#[test]
fn solo_bandwidth_never_saturates_the_link() {
    // A single app alone must not trip DICER's saturation threshold —
    // otherwise "solo" baselines would themselves be contended.
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let link = dicer::membw::LinkModel::new(cfg.link);
    for app in catalog.profiles() {
        for ph in &app.phases {
            let eq = dicer::server::equilibrium::solve(
                &[(ph, 20.0)],
                &link,
                cfg.base_latency_cycles(),
                cfg.freq_hz,
                cfg.cache.line_bytes,
            );
            assert!(
                eq.total_gbps < 50.0,
                "{}: a lone phase saturates the link ({:.1} Gbps)",
                app.name,
                eq.total_gbps
            );
        }
    }
}

#[test]
fn archetype_bandwidth_ordering_holds_in_aggregate() {
    // Streaming apps must dominate the solo-bandwidth ranking; compute-bound
    // apps must sit at the bottom.
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let link = dicer::membw::LinkModel::new(cfg.link);
    let solo_bw = |a: &dicer::appmodel::AppProfile| -> f64 {
        a.phases
            .iter()
            .map(|ph| {
                dicer::server::equilibrium::solve(
                    &[(ph, 20.0)],
                    &link,
                    cfg.base_latency_cycles(),
                    cfg.freq_hz,
                    cfg.cache.line_bytes,
                )
                .total_gbps
            })
            .fold(0.0, f64::max)
    };
    let mean = |arch: Archetype| {
        let v: Vec<f64> = catalog.by_archetype(arch).iter().map(|a| solo_bw(a)).collect();
        v.iter().sum::<f64>() / v.len() as f64
    };
    let streaming = mean(Archetype::Streaming);
    let friendly = mean(Archetype::CacheFriendly);
    let compute = mean(Archetype::ComputeBound);
    assert!(streaming > 2.0 * friendly, "streaming {streaming} vs friendly {friendly}");
    assert!(friendly > compute, "friendly {friendly} vs compute {compute}");
    assert!(compute < 1.0, "compute-bound apps should be near-silent: {compute}");
}

#[test]
fn nine_instances_of_any_streaming_app_saturate_when_starved() {
    // The CT-T mechanism must be reachable from every streaming BE family.
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let link = dicer::membw::LinkModel::new(cfg.link);
    for app in catalog.by_archetype(Archetype::Streaming) {
        let ph = &app.phases[0];
        let apps: Vec<(&dicer::appmodel::Phase, f64)> = (0..9).map(|_| (ph, 0.11)).collect();
        let eq = dicer::server::equilibrium::solve(
            &apps,
            &link,
            cfg.base_latency_cycles(),
            cfg.freq_hz,
            cfg.cache.line_bytes,
        );
        let offered: f64 = eq.demand_gbps.iter().sum();
        assert!(
            offered > 50.0,
            "{}: nine starved instances offer only {offered:.1} Gbps",
            app.name
        );
    }
}

#[test]
fn names_follow_the_paper_labelling_scheme() {
    let catalog = Catalog::paper();
    for name in catalog.names() {
        let trailing_digit = name.chars().last().unwrap().is_ascii_digit();
        assert!(trailing_digit, "{name}: instances carry a 1-based input suffix");
    }
}
