//! Long-horizon determinism: a 10⁵-period DICER session is bit-stable.
//!
//! The incremental re-solve fast path (period-input fingerprinting plus
//! the equilibrium/ways memos) must not perturb a single bit over runs
//! long enough for every cache and invalidation path to cycle many
//! times. Two checks:
//!
//! * the decision-trace hash of the canonical 10⁵-period run — every
//!   period sample's exact bits plus the plan, throttle and admission
//!   count in force — is pinned in `tests/goldens/longrun_checksum.txt`
//!   (bootstrapped on first run, byte-compared thereafter), with memo
//!   caps, fingerprint invalidations and phase churn all cycling many
//!   times along the way;
//! * a churning prefix of the same scenario replayed cold (acceleration
//!   off, every sub-period fully re-solved) matches the accelerated run
//!   sample-for-sample and decision-for-decision.

use dicer::appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer::experiments::Session;
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::rdt::{MbaController, PartitionController, PartitionPlan};
use dicer::server::{Server, ServerConfig};
use std::fs;
use std::path::Path;

const PERIODS: u32 = 100_000;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

fn hash_plan(hash: u64, plan: PartitionPlan) -> u64 {
    let (tag, a, b) = match plan {
        PartitionPlan::Unmanaged => (0u32, 0u32, 0u32),
        PartitionPlan::Split { hp_ways } => (1, hp_ways, 0),
        PartitionPlan::Overlapping { hp_exclusive, shared } => (2, hp_exclusive, shared),
    };
    let hash = fnv1a(hash, &tag.to_le_bytes());
    let hash = fnv1a(hash, &a.to_le_bytes());
    fnv1a(hash, &b.to_le_bytes())
}

/// The canonical long-horizon workload: a two-phase HP and a mix of
/// phased and eternal BEs under the DICER controller. Phases are long
/// (tens of simulated seconds), so the run is dominated by steady
/// stretches the fingerprint can skip, punctuated by thousands of phase
/// crossings, plan moves and re-solves; one BE never completes, so the
/// session always reaches the full period cap.
fn longrun_server() -> Server {
    let hp = AppProfile::new(
        "lh_hp",
        Archetype::CacheFriendly,
        vec![
            Phase {
                insns: 180_000_000_000,
                base_cpi: 0.70,
                apki: 28.0,
                mlp: 4.0,
                curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
            },
            Phase {
                insns: 130_000_000_000,
                base_cpi: 0.55,
                apki: 9.0,
                mlp: 2.0,
                curve: MissCurve::parametric(0.12, 0.5, 1.1, 2.5),
            },
        ],
    );
    let phased = AppProfile::new(
        "lh_be_phased",
        Archetype::CacheFriendly,
        vec![
            Phase {
                insns: 110_000_000_000,
                base_cpi: 0.65,
                apki: 24.0,
                mlp: 2.4,
                curve: MissCurve::flat(0.55),
            },
            Phase {
                insns: 70_000_000_000,
                base_cpi: 0.5,
                apki: 6.0,
                mlp: 1.8,
                curve: MissCurve::flat(0.10),
            },
        ],
    );
    let eternal = AppProfile::new(
        "lh_be_eternal",
        Archetype::CacheFriendly,
        vec![Phase {
            insns: u64::MAX / 2,
            base_cpi: 0.6,
            apki: 24.0,
            mlp: 2.4,
            curve: MissCurve::flat(0.35),
        }],
    );
    let mut bes = vec![phased; 5];
    bes.extend(vec![eternal; 4]);
    Server::new(ServerConfig::table1(), hp, bes)
}

/// Runs the canonical scenario for `periods` periods and returns the
/// decision-trace hash: every delivered sample's bits plus the plan,
/// throttle and admission count actually in force each period.
fn decision_trace_hash(accelerated: bool, periods: u32) -> u64 {
    let mut server = longrun_server();
    server.set_acceleration(accelerated);
    let mut session =
        Session::new(server, PolicyKind::Dicer(DicerConfig::default()).build(), periods);
    let mut hash = FNV_OFFSET;
    let end = session.run_observed(
        |_, _| (),
        |step, platform, _| {
            if let Some(s) = step.delivered {
                hash = fnv1a(hash, &s.time_s.to_bits().to_le_bytes());
                hash = fnv1a(hash, &s.hp.ipc.to_bits().to_le_bytes());
                hash = fnv1a(hash, &s.hp.mem_bw_gbps.to_bits().to_le_bytes());
                hash = fnv1a(hash, &s.hp.miss_ratio.to_bits().to_le_bytes());
                hash = fnv1a(hash, &s.hp.llc_occupancy_bytes.to_le_bytes());
                for be in &s.bes {
                    hash = fnv1a(hash, &be.ipc.to_bits().to_le_bytes());
                    hash = fnv1a(hash, &be.mem_bw_gbps.to_bits().to_le_bytes());
                }
                hash = fnv1a(hash, &s.total_bw_gbps.to_bits().to_le_bytes());
            }
            hash = hash_plan(hash, platform.current_plan());
            hash = fnv1a(hash, &[platform.be_throttle().percent()]);
            hash = fnv1a(hash, &Server::admitted_bes(platform).to_le_bytes());
        },
    );
    assert_eq!(end.periods, periods, "the eternal BE must keep the run at the cap");
    assert!(!end.completed);
    hash
}

#[test]
fn longrun_decision_trace_hash_is_pinned() {
    let hash = decision_trace_hash(true, PERIODS);
    let line = format!("{hash:016x}");

    // Run-to-run determinism stands on its own, before any golden check.
    assert_eq!(
        decision_trace_hash(true, PERIODS),
        hash,
        "two identical 10^5-period runs diverged"
    );

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/longrun_checksum.txt");
    if path.exists() {
        let pinned = fs::read_to_string(&path).expect("golden readable");
        assert_eq!(
            pinned.trim(),
            line,
            "10^5-period decision-trace hash diverged from the pinned golden \
             {} — an intentional behaviour change must recut it",
            path.display()
        );
    } else {
        fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        fs::write(&path, format!("{line}\n")).expect("golden writable");
        eprintln!(
            "bootstrapped {} = {line}; commit it to pin the long-horizon trace",
            path.display()
        );
    }
}

#[test]
fn incremental_session_matches_cold_session() {
    // The churning prefix: phases cross and DICER moves the plan — and
    // the fingerprint-accelerated session must stay bit-identical to the
    // cold one, decision for decision.
    const PREFIX: u32 = 1_500;
    assert_eq!(
        decision_trace_hash(true, PREFIX),
        decision_trace_hash(false, PREFIX),
        "accelerated and cold sessions diverged within {PREFIX} periods"
    );
}
