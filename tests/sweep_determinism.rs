//! Sweep-determinism suite: parallel sweeps must be byte-identical to
//! serial ones, and a hand-configured [`Session`] must reproduce the
//! committed robustness goldens the scenario harness pins.
//!
//! These are the contracts behind `dicer-sim --jobs`: parallelism is a
//! wall-clock knob only — it never changes a single output byte — and the
//! scenario harness is a thin configuration of the same `Session` runtime
//! anyone can assemble by hand.

use dicer::appmodel::Catalog;
use dicer::experiments::figures::EvalMatrix;
use dicer::experiments::scenarios::standard_suite;
use dicer::experiments::{ablation, Session, SoloTable, SweepRunner, WorkloadSet};
use dicer::policy::{Dicer, DicerConfig, PolicyKind};
use dicer::rdt::FaultyPlatform;
use dicer::server::{Server, ServerConfig};

/// Seed of the committed goldens under `results/robustness/`.
const GOLDEN_SEED: u64 = 0xD1CE;

/// A small workload slice keeps the parallel-vs-serial comparisons fast:
/// each pair is one full co-location run per policy.
const PAIRS: [(&str, &str); 4] = [
    ("milc1", "gcc_base1"),
    ("omnetpp1", "lbm1"),
    ("gcc_base1", "bzip21"),
    ("namd1", "gobmk1"),
];

fn setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

#[test]
fn parallel_matrix_is_byte_identical_to_serial() {
    let (catalog, solo) = setup();
    let policies = [
        PolicyKind::Unmanaged,
        PolicyKind::CacheTakeover,
        PolicyKind::Dicer(DicerConfig::default()),
    ];
    let matrix_json = |sweep: &SweepRunner| {
        let set = WorkloadSet::classify_pairs(&catalog, &solo, &PAIRS, sweep);
        let sample: Vec<_> = set.all.iter().collect();
        let m = EvalMatrix::run_with(&catalog, &solo, &sample, &[10], &policies, sweep);
        serde_json::to_string(&m).expect("matrix serialises")
    };
    let serial = matrix_json(&SweepRunner::serial());
    let parallel = matrix_json(&SweepRunner::with_jobs(4));
    assert_eq!(serial, parallel, "matrix output must not depend on --jobs");
}

#[test]
fn parallel_ablation_panel_is_byte_identical_to_serial() {
    let (catalog, solo) = setup();
    let point = |sweep: &SweepRunner| {
        let p = ablation::run_panel_with(&catalog, &solo, &PolicyKind::CacheTakeover, "ct", sweep);
        serde_json::to_string(&p).expect("point serialises")
    };
    assert_eq!(
        point(&SweepRunner::serial()),
        point(&SweepRunner::with_jobs(4)),
        "ablation output must not depend on --jobs"
    );
}

#[test]
fn hand_built_session_reproduces_the_pinned_golden_summary() {
    // The `kitchen_sink` golden was produced by the scenario harness; here
    // the same run is assembled by hand — Dicer over FaultyPlatform<Server>
    // on a bare Session — and must land on the identical final counters the
    // committed golden's summary line pins.
    let (catalog, solo) = setup();
    let sc = standard_suite(GOLDEN_SEED)
        .into_iter()
        .find(|s| s.name == "kitchen_sink")
        .expect("kitchen_sink in the standard suite");
    assert!(sc.schedule.is_empty(), "hand build assumes an unscheduled scenario");

    let cfg = *solo.config();
    let hp = catalog.get(&sc.hp).expect("catalog hp").clone();
    let be = catalog.get(&sc.be).expect("catalog be").clone();
    let server = Server::new(cfg, hp, vec![be; (sc.n_cores - 1) as usize]);
    let plat = FaultyPlatform::new(server, sc.faults.clone());
    let mut session = Session::new(plat, Dicer::new(sc.dicer.clone()), sc.periods);
    let end = session.run();
    let (plat, dicer) = session.into_parts();

    let summary = dicer::telemetry::ScenarioSummaryEvent {
        scenario: sc.name.clone(),
        periods: end.periods as usize,
        dicer_stats: dicer.stats.into(),
        fault_stats: plat.fault_stats().into(),
    };
    let golden = std::fs::read_to_string(
        concat!(env!("CARGO_MANIFEST_DIR"), "/results/robustness/kitchen_sink.jsonl"),
    )
    .expect("committed golden trace");
    let golden_summary = golden.lines().last().expect("summary line");
    assert_eq!(summary.to_json(), golden_summary, "hand-built Session diverged from the golden");
}

#[test]
fn scenario_harness_and_hand_built_session_agree_period_by_period() {
    let (catalog, solo) = setup();
    let sc = standard_suite(GOLDEN_SEED)
        .into_iter()
        .find(|s| s.name == "sensor_noise")
        .expect("sensor_noise in the standard suite");
    let harness = dicer::experiments::run_scenario(&catalog, &solo, &sc);

    let cfg = *solo.config();
    let hp = catalog.get(&sc.hp).expect("catalog hp").clone();
    let be = catalog.get(&sc.be).expect("catalog be").clone();
    let server = Server::new(cfg, hp, vec![be; (sc.n_cores - 1) as usize]);
    let plat = FaultyPlatform::new(server, sc.faults.clone());
    let mut session = Session::new(plat, Dicer::new(sc.dicer.clone()), sc.periods);
    let mut ways = Vec::new();
    session.run_observed(
        |_, _| (),
        |step, _, dicer: &Dicer| {
            ways.push((step.period, dicer.hp_ways(), step.delivered.is_none()));
        },
    );

    let harness_ways: Vec<(u32, u32, bool)> =
        harness.records.iter().map(|r| (r.period, r.target_hp_ways, r.dropped)).collect();
    assert_eq!(ways, harness_ways, "identical decision sequence expected");
}
