//! DICER controller dynamics on the live simulated server (not just on
//! synthetic counter streams): classification pivots, sampling, drift and
//! reset behaviour, end to end.

use dicer::appmodel::{AppProfile, Archetype, Catalog, MissCurve, Phase};
use dicer::experiments::Session;
use dicer::policy::{Dicer, DicerConfig, DicerState};
use dicer::rdt::PartitionController;
use dicer::server::{Server, ServerConfig};

fn cfg() -> ServerConfig {
    ServerConfig::table1()
}

/// Runs the workload on the standard [`Session`] runtime for up to
/// `periods` periods, handing platform and controller back for
/// inspection.
fn drive(server: Server, dicer: Dicer, periods: u32) -> (Server, Dicer) {
    let mut session = Session::new(server, dicer, periods);
    session.run();
    session.into_parts()
}

#[test]
fn dicer_detects_ct_thwarted_and_samples() {
    // The Fig. 3 workload saturates the link under CT, so DICER must drop
    // its CT-Favoured assumption within the first few periods and sample.
    let catalog = Catalog::paper();
    let hp = catalog.get("milc1").unwrap().clone();
    let be = catalog.get("gcc_base1").unwrap().clone();
    let server = Server::new(cfg(), hp, vec![be; 9]);
    let (_server, dicer) = drive(server, Dicer::new(DicerConfig::default()), 20);
    assert!(!dicer.ct_favoured(), "milc+gcc must be recognised as CT-T");
    assert!(dicer.stats.sampling_periods > 0, "sampling must have run");
    assert!(
        dicer.hp_ways() <= 8,
        "DICER should settle on a small HP allocation, got {}",
        dicer.hp_ways()
    );
}

#[test]
fn dicer_stays_ct_favoured_for_cache_sensitive_hp() {
    let catalog = Catalog::paper();
    let hp = catalog.get("omnetpp1").unwrap().clone();
    let be = catalog.get("gobmk1").unwrap().clone();
    let server = Server::new(cfg(), hp, vec![be; 9]);
    let (_server, dicer) = drive(server, Dicer::new(DicerConfig::default()), 30);
    assert!(dicer.ct_favoured(), "quiet BEs never saturate: stays CT-F");
    assert_eq!(dicer.stats.sampling_periods, 0);
}

#[test]
fn dicer_reclaims_ways_for_bes_when_hp_is_insensitive() {
    // A compute-bound HP doesn't care about cache: DICER should walk its
    // allocation down and hand ways to the BEs.
    let catalog = Catalog::paper();
    let hp = catalog.get("namd1").unwrap().clone();
    let be = catalog.get("gobmk1").unwrap().clone();
    let server = Server::new(cfg(), hp, vec![be; 9]);
    let (_server, dicer) = drive(server, Dicer::new(DicerConfig::default()), 25);
    assert!(
        dicer.hp_ways() <= 5,
        "insensitive HP should shed ways, still at {}",
        dicer.hp_ways()
    );
    assert!(dicer.stats.shrinks >= 10);
}

#[test]
fn dicer_resets_on_a_real_phase_change() {
    // Two-phase HP: quiet then memory-hot, with a > 30% bandwidth jump at
    // the boundary. DICER must log a phase change and reset.
    let hp = AppProfile::new(
        "phasey",
        Archetype::Streaming,
        vec![
            Phase {
                insns: 30_000_000_000,
                base_cpi: 0.6,
                apki: 6.0,
                mlp: 3.0,
                curve: MissCurve::parametric(0.1, 0.3, 2.0, 2.0),
            },
            Phase {
                insns: 30_000_000_000,
                base_cpi: 0.6,
                apki: 20.0,
                mlp: 3.5,
                curve: MissCurve::parametric(0.3, 0.6, 3.0, 2.0),
            },
        ],
    );
    let catalog = Catalog::paper();
    let be = catalog.get("povray1").unwrap().clone(); // quiet BEs
    let server = Server::new(cfg(), hp, vec![be; 9]);
    let (_server, dicer) = drive(server, Dicer::new(DicerConfig::default()), 60);
    assert!(
        dicer.stats.phase_changes >= 1,
        "the apki jump must register as a phase change: {:?}",
        dicer.stats
    );
    assert!(dicer.stats.resets >= 1);
}

#[test]
fn dicer_survives_a_long_run_without_wedging() {
    // Soak: a contentious mix for 300 periods; the controller must keep
    // emitting valid plans and end in a coherent state.
    let catalog = Catalog::paper();
    let hp = catalog.get("mcf1").unwrap().clone();
    let be = catalog.get("lbm1").unwrap().clone();
    let server = Server::new(cfg(), hp, vec![be; 9]);
    let mut session = Session::new(server, Dicer::new(DicerConfig::default()), 300);
    let end = session.run_observed(
        |_, _| (),
        |_, platform, dicer| {
            // Every plan the session put in force must be a valid one.
            platform.current_plan().validate(20).unwrap();
            let _ = dicer;
        },
    );
    let (server, dicer) = session.into_parts();
    assert!(matches!(
        dicer.state(),
        DicerState::Optimising | DicerState::Sampling | DicerState::ValidatingReset
    ));
    // The server clock must equal the period count exactly.
    assert_eq!(end.periods, 300, "soak workload must not finish early");
    assert!((server.time_s() - 300.0).abs() < 1e-9);
}

#[test]
fn tighter_stability_band_resets_more() {
    // Ablation sanity: a 1% band flags far more "degradations" than the
    // default 5% band on the same workload.
    let catalog = Catalog::paper();
    let hp = catalog.get("soplex1").unwrap().clone();
    let be = catalog.get("hmmer1").unwrap().clone();

    let run = |alpha: f64| {
        let server = Server::new(cfg(), hp.clone(), vec![be.clone(); 9]);
        let cfg = DicerConfig { stability_alpha: alpha, ..Default::default() };
        let (_server, dicer) = drive(server, Dicer::new(cfg), 80);
        dicer.stats
    };
    let tight = run(0.01);
    let loose = run(0.10);
    assert!(
        tight.resets > loose.resets,
        "1% band should reset more than 10%: {tight:?} vs {loose:?}"
    );
}
