//! Cross-validation between the fast analytic model (parametric miss
//! curves + equilibrium solver) and the trace-driven cache simulator. The
//! analytic path powers the 3481-workload sweeps; these tests pin it to the
//! mechanism-level substrate.

use dicer::appmodel::{Archetype, Catalog};
use dicer::cachesim::{mrc, CacheConfig, ReplacementKind, SetAssocCache, StackDistanceProfiler};

/// A scaled-down LLC with the same associativity ratio as the Table 1
/// machine keeps trace-driven runs fast.
fn small_cfg() -> CacheConfig {
    CacheConfig { size_bytes: 512 * 8 * 64, ways: 8, line_bytes: 64 }
}

/// The archetypes' representative traces must reproduce their defining
/// miss-curve shapes in the *trace-driven* simulator.
#[test]
fn archetype_traces_match_curve_shapes() {
    let cfg = small_cfg();
    let sets = cfg.sets();

    // Streaming: flat and high.
    let t = Archetype::Streaming.representative_trace(sets, 1).generate(200_000);
    let curve = mrc::by_simulation(&t, &cfg, ReplacementKind::Lru);
    assert!(curve.at(1) > 0.95 && curve.at(8) > 0.95, "streaming must stay high");

    // Cache-friendly: collapses within a couple of ways.
    let t = Archetype::CacheFriendly.representative_trace(sets, 2).generate(400_000);
    let curve = mrc::by_simulation(&t, &cfg, ReplacementKind::Lru);
    assert!(curve.at(1) > 0.3, "friendly thrashes in one way: {}", curve.at(1));
    assert!(curve.at(4) < 0.05, "friendly fits in half the cache: {}", curve.at(4));

    // Cache-sensitive: keeps improving deep into the cache.
    let t = Archetype::CacheSensitive.representative_trace(sets, 3).generate(400_000);
    let curve = mrc::by_simulation(&t, &cfg, ReplacementKind::Lru);
    assert!(
        curve.at(8) < curve.at(4) - 0.02,
        "sensitive still gains in the second half: {} vs {}",
        curve.at(8),
        curve.at(4)
    );

    // Compute-bound: negligible traffic shape — tiny footprint fits anywhere.
    let t = Archetype::ComputeBound.representative_trace(sets, 4).generate(200_000);
    let curve = mrc::by_simulation(&t, &cfg, ReplacementKind::Lru);
    assert!(curve.at(2) < 0.05, "compute-bound footprint fits trivially");
}

/// Analytic (stack-distance) and empirical (simulated) MRCs agree for
/// reuse-dominated traces — the justification for using closed-form curves
/// in the big sweeps.
#[test]
fn stack_distance_mrc_matches_simulation() {
    let cfg = small_cfg();
    for seed in [11u64, 12, 13] {
        let trace = Archetype::CacheFriendly
            .representative_trace(cfg.sets(), seed)
            .generate(300_000);
        let mut prof = StackDistanceProfiler::new();
        prof.access_all(trace.iter().copied());
        let analytic = mrc::from_stack_distances(&prof, &cfg);
        let simulated = mrc::by_simulation(&trace, &cfg, ReplacementKind::Lru);
        for w in 1..=cfg.ways {
            let d = (analytic.at(w) - simulated.at(w)).abs();
            assert!(
                d < 0.15,
                "seed {seed} way {w}: analytic {:.3} vs simulated {:.3}",
                analytic.at(w),
                simulated.at(w)
            );
        }
    }
}

/// CAT semantics in the trace-driven simulator: squeezing an aggressor into
/// fewer ways monotonically protects a cache-fitting victim — the physical
/// effect the whole policy layer relies on.
#[test]
fn smaller_aggressor_partitions_protect_the_victim() {
    let cfg = small_cfg();
    let victim_trace =
        Archetype::CacheFriendly.representative_trace(cfg.sets(), 21).generate(200_000);
    let aggressor_trace = Archetype::Streaming.representative_trace(cfg.sets(), 22).generate(200_000);

    let mut prev_victim_miss = 1.0f64;
    for aggressor_ways in [7u32, 4, 2, 1] {
        let mut cache = SetAssocCache::new(cfg, ReplacementKind::Lru);
        let victim_mask = cfg.full_mask() & !((1u32 << aggressor_ways) - 1);
        let aggressor_mask = (1u32 << aggressor_ways) - 1;
        for (v, a) in victim_trace.iter().zip(&aggressor_trace) {
            cache.access_line(*v, 1, victim_mask);
            cache.access_line(*a, 2, aggressor_mask);
        }
        let miss = cache.miss_ratio(1);
        assert!(
            miss <= prev_victim_miss + 0.02,
            "victim should not get worse as the aggressor shrinks: {miss} after {prev_victim_miss}"
        );
        prev_victim_miss = miss;
    }
    assert!(prev_victim_miss < 0.1, "fully-fenced victim must mostly hit: {prev_victim_miss}");
}

/// The catalog's parametric curves behave like their archetypes claim at
/// the two extremes of the allocation range.
#[test]
fn catalog_curves_respect_archetype_contracts() {
    let catalog = Catalog::paper();
    for app in catalog.profiles() {
        for phase in &app.phases {
            let tight = phase.curve.miss_ratio(1.0);
            let full = phase.curve.miss_ratio(20.0);
            assert!(tight >= full, "{}: curve not monotone", app.name);
            match app.archetype {
                Archetype::Streaming => {
                    assert!(full > 0.4, "{}: streaming floor too low ({full})", app.name)
                }
                Archetype::CacheSensitive => assert!(
                    tight - full > 0.3,
                    "{}: sensitive curve too flat ({tight} -> {full})",
                    app.name
                ),
                Archetype::CacheFriendly => assert!(
                    tight > 2.0 * full,
                    "{}: friendly curve should collapse ({tight} -> {full})",
                    app.name
                ),
                Archetype::ComputeBound => assert!(
                    phase.apki < 5.0,
                    "{}: compute-bound APKI too high ({})",
                    app.name,
                    phase.apki
                ),
            }
        }
    }
}
