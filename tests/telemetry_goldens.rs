//! Golden-equivalence: the telemetry JSONL sink reproduces the committed
//! robustness traces byte-for-byte.
//!
//! `results/robustness/*.jsonl` was written by `robustness_study` with the
//! default seed. Re-running the standard suite with a live
//! [`JsonlSink`] attached to the scenario runner must regenerate every
//! file exactly — proving the sink-based serialisation path (the one the
//! `dicerd` daemon and any live consumer use) is the same renderer the
//! goldens were cut from, and that the whole pipeline is still
//! deterministic.

use dicer::appmodel::Catalog;
use dicer::experiments::scenarios::{run_scenario_with, standard_suite};
use dicer::experiments::SoloTable;
use dicer::server::ServerConfig;
use dicer::telemetry::{JsonlSink, Telemetry};
use std::path::Path;
use std::sync::Arc;

/// Must match `robustness_study`'s default.
const GOLDEN_SEED: u64 = 0xD1CE;

#[test]
fn jsonl_sink_reproduces_committed_goldens_byte_for_byte() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/robustness");
    assert!(
        golden_dir.is_dir(),
        "golden traces missing at {} — run `cargo run --bin robustness_study`",
        golden_dir.display()
    );

    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let suite = standard_suite(GOLDEN_SEED);
    assert!(!suite.is_empty());

    for sc in &suite {
        let path = golden_dir.join(format!("{}.jsonl", sc.name));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));

        let sink = Arc::new(JsonlSink::new());
        run_scenario_with(&catalog, &solo, sc, &Telemetry::new(sink.clone()), &Telemetry::off());
        let live = sink.take();

        assert_eq!(
            live, golden,
            "scenario {:?}: live JSONL sink diverged from the committed golden",
            sc.name
        );
    }
}

#[test]
fn every_committed_golden_belongs_to_the_suite() {
    // No orphans: a stale file under results/robustness would silently
    // stop being checked by the test above.
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/robustness");
    let suite: std::collections::BTreeSet<String> =
        standard_suite(GOLDEN_SEED).into_iter().map(|s| s.name).collect();
    for entry in std::fs::read_dir(&golden_dir).expect("golden dir readable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".jsonl") else {
            panic!("unexpected non-JSONL file in goldens: {name}");
        };
        assert!(suite.contains(stem), "golden {name} matches no scenario in the standard suite");
    }
}
