//! Golden-equivalence: the telemetry JSONL sink reproduces the committed
//! robustness traces byte-for-byte.
//!
//! `results/robustness/*.jsonl` was written by `robustness_study` with the
//! default seed. Re-running the standard suite with a live
//! [`JsonlSink`] attached to the scenario runner must regenerate every
//! file exactly — proving the sink-based serialisation path (the one the
//! `dicerd` daemon and any live consumer use) is the same renderer the
//! goldens were cut from, and that the whole pipeline is still
//! deterministic.

use dicer::appmodel::Catalog;
use dicer::experiments::scenarios::{run_scenario_traced, run_scenario_with, standard_suite};
use dicer::experiments::SoloTable;
use dicer::server::ServerConfig;
use dicer::telemetry::{JsonlSink, Telemetry, Tracer};
use std::path::Path;
use std::sync::Arc;

/// Must match `robustness_study`'s default.
const GOLDEN_SEED: u64 = 0xD1CE;

#[test]
fn jsonl_sink_reproduces_committed_goldens_byte_for_byte() {
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/robustness");
    assert!(
        golden_dir.is_dir(),
        "golden traces missing at {} — run `cargo run --bin robustness_study`",
        golden_dir.display()
    );

    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let suite = standard_suite(GOLDEN_SEED);
    assert!(!suite.is_empty());

    for sc in &suite {
        let path = golden_dir.join(format!("{}.jsonl", sc.name));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));

        let sink = Arc::new(JsonlSink::new());
        run_scenario_with(&catalog, &solo, sc, &Telemetry::new(sink.clone()), &Telemetry::off());
        let live = sink.take();

        assert_eq!(
            live, golden,
            "scenario {:?}: live JSONL sink diverged from the committed golden",
            sc.name
        );
    }
}

#[test]
fn span_tracing_does_not_perturb_the_goldens() {
    // A live tracer emits spans onto its own bus, never onto the decision
    // trace: running the suite fully traced must still regenerate every
    // committed golden byte-for-byte, while the span stream itself is
    // non-empty and free of golden-format lines.
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/robustness");
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());

    for sc in &standard_suite(GOLDEN_SEED) {
        let path = golden_dir.join(format!("{}.jsonl", sc.name));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("cannot read golden {}: {e}", path.display()));

        let trace_sink = Arc::new(JsonlSink::new());
        let span_sink = Arc::new(JsonlSink::new());
        let tracer = Tracer::new(Telemetry::new(span_sink.clone()));
        run_scenario_traced(
            &catalog,
            &solo,
            sc,
            &Telemetry::new(trace_sink.clone()),
            &Telemetry::off(),
            &tracer,
        );

        assert_eq!(
            trace_sink.take(),
            golden,
            "scenario {:?}: tracing perturbed the golden decision trace",
            sc.name
        );
        let spans = span_sink.take();
        assert!(!spans.is_empty(), "scenario {:?}: tracer emitted no spans", sc.name);
        for line in spans.lines() {
            assert!(
                line.starts_with("{\"event\":\"span\","),
                "scenario {:?}: non-span line leaked onto the span bus: {line}",
                sc.name
            );
        }
    }
}

#[test]
fn traced_suite_span_streams_are_deterministic() {
    // Same seed, same scenario, two traced runs: the span JSONL itself is
    // byte-identical (logical ticks, no wall clock).
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let sc = &standard_suite(GOLDEN_SEED)[0];
    let spans: Vec<String> = (0..2)
        .map(|_| {
            let span_sink = Arc::new(JsonlSink::new());
            let tracer = Tracer::new(Telemetry::new(span_sink.clone()));
            run_scenario_traced(&catalog, &solo, sc, &Telemetry::off(), &Telemetry::off(), &tracer);
            span_sink.take()
        })
        .collect();
    assert_eq!(spans[0], spans[1]);
}

#[test]
fn every_committed_golden_belongs_to_the_suite() {
    // No orphans: a stale file under results/robustness would silently
    // stop being checked by the test above.
    let golden_dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("results/robustness");
    let suite: std::collections::BTreeSet<String> =
        standard_suite(GOLDEN_SEED).into_iter().map(|s| s.name).collect();
    for entry in std::fs::read_dir(&golden_dir).expect("golden dir readable") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".jsonl") else {
            panic!("unexpected non-JSONL file in goldens: {name}");
        };
        assert!(suite.contains(stem), "golden {name} matches no scenario in the standard suite");
    }
}
