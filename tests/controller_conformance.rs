//! Controller-conformance suite: table-driven checks that DICER's state
//! machine takes exactly the transitions of the paper's Listings 1–3 —
//! sample, hold, shrink, reset, validate, rollback — under both clean and
//! perturbed (noisy / gappy) counter streams.
//!
//! Each test is a script of per-period feeds with the expected plan and
//! coarse state after every decision, run through one shared engine. A lost
//! sample is fed as [`Feed::Missing`] (the controller's holdover path).

use dicer::policy::{Dicer, DicerConfig, DicerState, Policy, SamplingStrategy};
use dicer::rdt::{PartitionPlan, PerAppSample, PeriodSample};

/// Cache ways of the Table-1 server.
const N: u32 = 20;

fn sample(hp_ipc: f64, hp_bw: f64, total_bw: f64) -> PeriodSample {
    let hp = PerAppSample {
        ipc: hp_ipc,
        llc_occupancy_bytes: 0,
        mem_bw_gbps: hp_bw,
        miss_ratio: 0.1,
    };
    let be = PerAppSample {
        ipc: 0.5,
        llc_occupancy_bytes: 0,
        mem_bw_gbps: (total_bw - hp_bw) / 9.0,
        miss_ratio: 0.3,
    };
    PeriodSample { time_s: 0.0, hp, bes: vec![be; 9], total_bw_gbps: total_bw }
}

/// One period's input to the controller.
enum Feed {
    /// A delivered sample: `(hp_ipc, hp_bw_gbps, total_bw_gbps)`.
    S(f64, f64, f64),
    /// A dropped sample (holdover period).
    Missing,
}

/// One scripted step: the feed, then the expected decision.
struct Step {
    feed: Feed,
    /// Expected HP ways of the plan returned for the next period.
    hp_ways: u32,
    /// Expected coarse state after the decision.
    state: DicerState,
}

/// Shorthand constructors keep the tables readable.
fn s(ipc: f64, hp_bw: f64, total: f64, hp_ways: u32, state: DicerState) -> Step {
    Step { feed: Feed::S(ipc, hp_bw, total), hp_ways, state }
}
fn miss(hp_ways: u32, state: DicerState) -> Step {
    Step { feed: Feed::Missing, hp_ways, state }
}

/// Runs a script against a fresh controller, asserting plan and state at
/// every step; returns the controller for final-stat assertions.
fn conform(cfg: DicerConfig, steps: &[Step]) -> Dicer {
    let mut d = Dicer::new(cfg);
    assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: N - 1 });
    for (i, step) in steps.iter().enumerate() {
        let plan = match step.feed {
            Feed::S(ipc, hp_bw, total) => d.on_period(&sample(ipc, hp_bw, total), N),
            Feed::Missing => d.on_missing_period(N),
        };
        assert_eq!(
            plan,
            PartitionPlan::Split { hp_ways: step.hp_ways },
            "step {i}: wrong plan"
        );
        assert_eq!(d.state(), step.state, "step {i}: wrong state");
    }
    d
}

fn conform_default(steps: &[Step]) -> Dicer {
    conform(DicerConfig::default(), steps)
}

use DicerState::{Optimising as O, Sampling as Sa, ValidatingReset as V};

// ---------------------------------------------------------------------------
// Listing 1 preamble + Listing 2: hold / shrink / improvement.
// ---------------------------------------------------------------------------

#[test]
fn preamble_starts_at_cache_takeover() {
    let d = Dicer::new(DicerConfig::default());
    assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: 19 });
    assert!(d.ct_favoured(), "workloads are presumed CT-Favoured at start");
    assert_eq!(d.state(), DicerState::Optimising);
}

#[test]
fn first_sample_primes_the_reference_and_holds() {
    conform_default(&[s(1.0, 5.0, 20.0, 19, O)]);
}

#[test]
fn stable_band_shrinks_one_way_per_period() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O), // prime
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 5.0, 20.0, 16, O),
    ]);
    assert_eq!(d.stats.shrinks, 3);
}

#[test]
fn improvement_holds_the_allocation() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.2, 5.0, 20.0, 18, O), // +20% is outside the band: hold, no shrink
    ]);
}

// ---------------------------------------------------------------------------
// Listing 2 → Listing 3: degradation reset, validation, rollback.
// ---------------------------------------------------------------------------

#[test]
fn degradation_resets_to_ct_and_validates() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(0.8, 5.0, 20.0, 19, V), // -20%: blame the shrink, reset to CT
    ]);
    assert_eq!(d.stats.resets, 1);
}

#[test]
fn validation_recovery_confirms_the_reset() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(0.8, 5.0, 20.0, 19, V), // trigger IPC 0.8
        s(1.0, 5.0, 20.0, 19, O), // recovered above (1+a) x 0.8: stay at CT
    ]);
}

#[test]
fn validation_failure_rolls_back() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O), // rollback point
        s(0.8, 5.0, 20.0, 19, V),
        s(0.8, 5.0, 20.0, 18, O), // no recovery: the dip was a phase; roll back
    ]);
}

#[test]
fn bandwidth_jump_is_a_phase_change_reset() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 7.0, 22.0, 19, V), // +40% over the 3-period geomean (Eq. 2)
    ]);
    assert_eq!(d.stats.phase_changes, 1);
    assert_eq!(d.stats.resets, 1);
}

// ---------------------------------------------------------------------------
// Listing 1: saturation-triggered sampling and the sweep itself.
// ---------------------------------------------------------------------------

#[test]
fn saturation_enters_sampling_and_clears_ct_flag() {
    let d = conform_default(&[
        s(1.0, 5.0, 60.0, 19, Sa), // above the 50 Gbps threshold
    ]);
    assert!(!d.ct_favoured(), "saturation reclassifies the workload CT-T");
    assert_eq!(d.stats.saturated_periods, 1);
}

#[test]
fn sampling_sweeps_the_ladder_then_enforces_argmax() {
    // Geometric ladder on 20 ways: [19, 13, 9, 6, 4, 2, 1]; peak IPC at 6.
    let ipc = |w: u32| if w == 6 { 1.5 } else { 0.9 };
    let d = conform_default(&[
        s(1.0, 5.0, 60.0, 19, Sa), // enter sampling, first candidate applied
        s(ipc(19), 5.0, 20.0, 13, Sa),
        s(ipc(13), 5.0, 20.0, 9, Sa),
        s(ipc(9), 5.0, 20.0, 6, Sa),
        s(ipc(6), 5.0, 20.0, 4, Sa),
        s(ipc(4), 5.0, 20.0, 2, Sa),
        s(ipc(2), 5.0, 20.0, 1, Sa),
        s(ipc(1), 5.0, 20.0, 6, O), // sweep done: argmax (6 ways) enforced
    ]);
    assert_eq!(d.hp_ways(), 6);
    assert_eq!(d.stats.sampling_periods, 7);
}

#[test]
fn custom_ladder_is_swept_in_given_order() {
    let cfg = DicerConfig {
        sampling: SamplingStrategy::Custom(vec![10, 5, 2]),
        ..Default::default()
    };
    conform(
        cfg,
        &[
            s(1.0, 5.0, 60.0, 10, Sa),
            s(0.9, 5.0, 20.0, 5, Sa),
            s(1.4, 5.0, 20.0, 2, Sa), // best so far: 5 ways
            s(0.8, 5.0, 20.0, 5, O),  // argmax of {10: .9, 5: 1.4, 2: .8}
        ],
    );
}

// ---------------------------------------------------------------------------
// Listing 3, CT-Thwarted path: validate against the sampled optimum.
// ---------------------------------------------------------------------------

/// Drives a controller through a full sweep with the optimum at 6 ways
/// (IPC 1.5), ending in Optimising at 6 ways.
fn swept_to_optimum() -> Dicer {
    let ipc = |w: u32| if w == 6 { 1.5 } else { 0.9 };
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&sample(1.0, 5.0, 60.0), N);
    for &w in &SamplingStrategy::Geometric.candidates(N) {
        d.on_period(&sample(ipc(w), 5.0, 20.0), N);
    }
    assert_eq!(d.state(), DicerState::Optimising);
    assert_eq!(d.hp_ways(), 6);
    d
}

#[test]
fn ct_thwarted_degradation_resets_to_sampled_optimum() {
    let mut d = swept_to_optimum();
    d.on_period(&sample(1.5, 5.0, 20.0), N); // above band: hold at 6
    d.on_period(&sample(1.5, 5.0, 20.0), N); // stable: shrink to 5
    let plan = d.on_period(&sample(1.2, 5.0, 20.0), N); // -20%: reset
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "CT-T resets to the optimum");
    assert_eq!(d.state(), DicerState::ValidatingReset);
}

#[test]
fn ct_thwarted_validation_near_optimum_holds() {
    let mut d = swept_to_optimum();
    d.on_period(&sample(1.5, 5.0, 20.0), N);
    d.on_period(&sample(1.5, 5.0, 20.0), N);
    d.on_period(&sample(1.2, 5.0, 20.0), N); // reset to 6
    // Back within (1 - a) of IPC_opt = 1.5: the optimum still stands.
    let plan = d.on_period(&sample(1.45, 5.0, 20.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 });
    assert_eq!(d.state(), DicerState::Optimising);
}

#[test]
fn ct_thwarted_validation_far_from_optimum_resamples() {
    let mut d = swept_to_optimum();
    d.on_period(&sample(1.5, 5.0, 20.0), N);
    d.on_period(&sample(1.5, 5.0, 20.0), N);
    d.on_period(&sample(1.2, 5.0, 20.0), N); // reset to 6
    // Still far below IPC_opt: the optimum moved; sample afresh.
    let plan = d.on_period(&sample(1.2, 5.0, 20.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 }, "sweep restarts at ladder head");
    assert_eq!(d.state(), DicerState::Sampling);
}

#[test]
fn saturation_during_validation_restarts_sampling() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(0.8, 5.0, 20.0, 19, V),  // degradation reset, validating
        s(1.0, 5.0, 60.0, 19, Sa), // link saturates mid-validation: sample
    ]);
}

// ---------------------------------------------------------------------------
// Cool-down and exponential backoff around repeated sampling.
// ---------------------------------------------------------------------------

#[test]
fn saturation_inside_cooldown_holds_the_allocation() {
    let mut d = swept_to_optimum();
    // The sweep armed the cool-down; saturation must neither resample nor
    // let Listing 2 misread bandwidth noise as cache headroom.
    let plan = d.on_period(&sample(1.5, 5.0, 60.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "hold during cool-down");
    assert_eq!(d.state(), DicerState::Optimising);
    assert_eq!(d.stats.sampling_periods, 7, "no new sampling inside cool-down");
}

#[test]
fn persistent_saturation_backs_off_exponentially() {
    // Saturation that partitioning cannot fix (argmax = largest candidate)
    // must double the cool-down after each sweep, capped by the config.
    let base = DicerConfig::default().sampling_cooldown_periods;
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&sample(19.0, 5.0, 60.0), N); // enter sampling
    let ladder = SamplingStrategy::Geometric.candidates(N);
    for &w in &ladder {
        d.on_period(&sample(w as f64, 5.0, 60.0), N); // IPC peaks at 19 ways
    }
    assert_eq!(d.state(), DicerState::Optimising);
    // First cool-down: base periods of saturated holds, no sampling.
    let sampled = d.stats.sampling_periods;
    for _ in 0..base {
        d.on_period(&sample(19.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Optimising);
    }
    assert_eq!(d.stats.sampling_periods, sampled);
    // Cool-down expired: saturation resamples, and the sweep again blames
    // unfixable saturation...
    d.on_period(&sample(19.0, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling);
    for &w in &ladder {
        d.on_period(&sample(w as f64, 5.0, 60.0), N);
    }
    // ...so the next cool-down is twice as long.
    let sampled = d.stats.sampling_periods;
    for _ in 0..2 * base {
        d.on_period(&sample(19.0, 5.0, 60.0), N);
    }
    assert_eq!(d.stats.sampling_periods, sampled, "backoff must double the cool-down");
    d.on_period(&sample(19.0, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling);
}

#[test]
fn fixable_saturation_resets_backoff_to_base() {
    // When a sweep finds a non-largest optimum, the next cool-down returns
    // to the configured base rather than staying doubled.
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&sample(1.0, 5.0, 60.0), N);
    let ladder = SamplingStrategy::Geometric.candidates(N);
    for &w in &ladder {
        // Peak at 6 ways: partitioning helps, saturation is "fixable".
        d.on_period(&sample(if w == 6 { 1.5 } else { 0.9 }, 5.0, 20.0), N);
    }
    assert_eq!(d.hp_ways(), 6);
    let base = DicerConfig::default().sampling_cooldown_periods;
    for _ in 0..base {
        d.on_period(&sample(1.5, 5.0, 60.0), N); // saturated holds
    }
    d.on_period(&sample(1.5, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling, "base cool-down, not doubled");
    assert_eq!(d.hp_ways(), 19, "a fresh sweep restarts at the ladder head");
}

// ---------------------------------------------------------------------------
// Conformance under faulted streams: gaps and bounded sensor noise.
// ---------------------------------------------------------------------------

#[test]
fn missing_periods_do_not_perturb_transitions() {
    // Holdover periods slot anywhere into a script without changing any
    // decision around them: plans hold, references and windows survive.
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        miss(19, O),
        s(1.0, 5.0, 20.0, 18, O),
        miss(18, O),
        miss(18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 5.0, 20.0, 16, O),
    ]);
    assert_eq!(d.stats.missing_periods, 3);
    assert_eq!(d.stats.shrinks, 3);
    assert_eq!(d.stats.resets, 0);
}

#[test]
fn dropped_sample_before_degradation_still_resets() {
    // The Eq. 3 reference survives a gap: a genuine degradation right
    // after a dropped period is still recognised against the last real IPC.
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        miss(18, O),
        s(0.8, 5.0, 20.0, 19, V),
    ]);
}

#[test]
fn missing_period_during_sampling_keeps_the_sweep_position() {
    // A drop mid-sweep re-enforces the candidate under test instead of
    // skipping it; the next real sample resumes the ladder.
    conform_default(&[
        s(1.0, 5.0, 60.0, 19, Sa),
        s(0.9, 5.0, 20.0, 13, Sa),
        miss(13, Sa),
        s(0.9, 5.0, 20.0, 9, Sa),
    ]);
}

#[test]
fn noise_inside_stability_band_matches_clean_stream() {
    // Multiplicative sensor jitter within +/- alpha on IPC and small
    // bandwidth wobble must produce the same transition sequence as the
    // clean stream: shrink every period, no resets, no phase changes.
    let d = conform_default(&[
        s(1.00, 5.00, 20.0, 19, O),
        s(1.02, 4.90, 20.3, 18, O),
        s(0.99, 5.10, 19.8, 17, O),
        s(1.01, 4.95, 20.1, 16, O),
        s(0.98, 5.05, 20.2, 15, O),
    ]);
    assert_eq!(d.stats.shrinks, 4);
    assert_eq!(d.stats.resets, 0);
    assert_eq!(d.stats.phase_changes, 0);
}

#[test]
fn zero_bandwidth_glitch_does_not_fake_a_phase_change() {
    // A glitched 0 Gbps reading enters the Eq. 2 window; the recovery back
    // to normal traffic must not read as a phase change (the geometric
    // mean would otherwise collapse).
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 0.0, 20.0, 16, O), // glitch: zero HP bandwidth
        s(1.0, 5.0, 20.0, 15, O), // recovery: NOT a jump over the geomean
        s(1.0, 5.0, 20.0, 14, O),
        s(1.0, 5.0, 20.0, 13, O), // window clean again from here
        s(1.0, 7.0, 22.0, 19, V), // a genuine +40% jump still detected
    ]);
    assert_eq!(d.stats.phase_changes, 1);
}
