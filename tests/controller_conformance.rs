//! Controller-conformance suite, built on the reusable kit in
//! [`dicer::policy::conformance`].
//!
//! Three layers of assurance:
//!
//! 1. The Listing 1–3 transition scripts — table-driven checks that DICER's
//!    state machine takes exactly the transitions of the paper (sample,
//!    hold, shrink, reset, validate, rollback) under both clean and
//!    perturbed (noisy / gappy) counter streams. These run through the
//!    kit's [`run_script`] engine, which also checks the framework's
//!    structural invariants on every step.
//! 2. The behavioral contract — every controller in the standard
//!    [`ControllerRegistry`] passes the full clause table
//!    (starts-calibrating, detects-contention, recovers, cooldown-backoff,
//!    missing-period-holdover, summary-consistent-with-state, and — for
//!    rows that claim it — placement-signal), and every
//!    registered controller *has* a contract row (the registry-coverage
//!    gate ci enforces).
//! 3. Dispatch bit-identity — driving a controller through the registry's
//!    [`ControllerPolicy`] facade produces exactly the decision stream of
//!    calling the bare controller directly, on both a pinned deterministic
//!    feed and proptest-generated feeds.

use dicer::policy::conformance::{
    check_registry, contract_entry, contract_violations_to_string, miss, run_contract,
    run_script, s, synthetic_sample, Clause, Step, N_WAYS,
};
use dicer::policy::{
    Controller, ControllerRegistry, Dicer, DicerConfig, DicerState, Observation, Policy,
    PolicyKind, SamplingStrategy,
};
use dicer::rdt::PartitionPlan;

/// Cache ways of the Table-1 server.
const N: u32 = N_WAYS;

/// Runs a script against a fresh controller, asserting plan, state, and the
/// kit's structural invariants at every step; returns the controller for
/// final-stat assertions.
fn conform(cfg: DicerConfig, steps: &[Step]) -> Dicer {
    let mut d = Dicer::new(cfg);
    assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: N - 1 });
    if let Err(why) = run_script(&mut d, steps) {
        panic!("{why}");
    }
    d
}

fn conform_default(steps: &[Step]) -> Dicer {
    conform(DicerConfig::default(), steps)
}

/// State labels, as the kit scripts them (`DicerState::as_str` values).
const O: &str = "optimising";
const SA: &str = "sampling";
const V: &str = "validating_reset";

// ---------------------------------------------------------------------------
// Listing 1 preamble + Listing 2: hold / shrink / improvement.
// ---------------------------------------------------------------------------

#[test]
fn preamble_starts_at_cache_takeover() {
    let d = Dicer::new(DicerConfig::default());
    assert_eq!(d.initial_plan(N), PartitionPlan::Split { hp_ways: 19 });
    assert!(d.ct_favoured(), "workloads are presumed CT-Favoured at start");
    assert_eq!(d.state(), DicerState::Optimising);
}

#[test]
fn first_sample_primes_the_reference_and_holds() {
    conform_default(&[s(1.0, 5.0, 20.0, 19, O)]);
}

#[test]
fn stable_band_shrinks_one_way_per_period() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O), // prime
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 5.0, 20.0, 16, O),
    ]);
    assert_eq!(d.stats.shrinks, 3);
}

#[test]
fn improvement_holds_the_allocation() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.2, 5.0, 20.0, 18, O), // +20% is outside the band: hold, no shrink
    ]);
}

// ---------------------------------------------------------------------------
// Listing 2 → Listing 3: degradation reset, validation, rollback.
// ---------------------------------------------------------------------------

#[test]
fn degradation_resets_to_ct_and_validates() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(0.8, 5.0, 20.0, 19, V), // -20%: blame the shrink, reset to CT
    ]);
    assert_eq!(d.stats.resets, 1);
}

#[test]
fn validation_recovery_confirms_the_reset() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(0.8, 5.0, 20.0, 19, V), // trigger IPC 0.8
        s(1.0, 5.0, 20.0, 19, O), // recovered above (1+a) x 0.8: stay at CT
    ]);
}

#[test]
fn validation_failure_rolls_back() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O), // rollback point
        s(0.8, 5.0, 20.0, 19, V),
        s(0.8, 5.0, 20.0, 18, O), // no recovery: the dip was a phase; roll back
    ]);
}

#[test]
fn bandwidth_jump_is_a_phase_change_reset() {
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 7.0, 22.0, 19, V), // +40% over the 3-period geomean (Eq. 2)
    ]);
    assert_eq!(d.stats.phase_changes, 1);
    assert_eq!(d.stats.resets, 1);
}

// ---------------------------------------------------------------------------
// Listing 1: saturation-triggered sampling and the sweep itself.
// ---------------------------------------------------------------------------

#[test]
fn saturation_enters_sampling_and_clears_ct_flag() {
    let d = conform_default(&[
        s(1.0, 5.0, 60.0, 19, SA), // above the 50 Gbps threshold
    ]);
    assert!(!d.ct_favoured(), "saturation reclassifies the workload CT-T");
    assert_eq!(d.stats.saturated_periods, 1);
}

#[test]
fn sampling_sweeps_the_ladder_then_enforces_argmax() {
    // Geometric ladder on 20 ways: [19, 13, 9, 6, 4, 2, 1]; peak IPC at 6.
    let ipc = |w: u32| if w == 6 { 1.5 } else { 0.9 };
    let d = conform_default(&[
        s(1.0, 5.0, 60.0, 19, SA), // enter sampling, first candidate applied
        s(ipc(19), 5.0, 20.0, 13, SA),
        s(ipc(13), 5.0, 20.0, 9, SA),
        s(ipc(9), 5.0, 20.0, 6, SA),
        s(ipc(6), 5.0, 20.0, 4, SA),
        s(ipc(4), 5.0, 20.0, 2, SA),
        s(ipc(2), 5.0, 20.0, 1, SA),
        s(ipc(1), 5.0, 20.0, 6, O), // sweep done: argmax (6 ways) enforced
    ]);
    assert_eq!(d.hp_ways(), 6);
    assert_eq!(d.stats.sampling_periods, 7);
}

#[test]
fn custom_ladder_is_swept_in_given_order() {
    let cfg = DicerConfig {
        sampling: SamplingStrategy::Custom(vec![10, 5, 2]),
        ..Default::default()
    };
    conform(
        cfg,
        &[
            s(1.0, 5.0, 60.0, 10, SA),
            s(0.9, 5.0, 20.0, 5, SA),
            s(1.4, 5.0, 20.0, 2, SA), // best so far: 5 ways
            s(0.8, 5.0, 20.0, 5, O),  // argmax of {10: .9, 5: 1.4, 2: .8}
        ],
    );
}

// ---------------------------------------------------------------------------
// Listing 3, CT-Thwarted path: validate against the sampled optimum.
// ---------------------------------------------------------------------------

/// Drives a controller through a full sweep with the optimum at 6 ways
/// (IPC 1.5), ending in Optimising at 6 ways.
fn swept_to_optimum() -> Dicer {
    let ipc = |w: u32| if w == 6 { 1.5 } else { 0.9 };
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&synthetic_sample(1.0, 5.0, 60.0), N);
    for &w in &SamplingStrategy::Geometric.candidates(N) {
        d.on_period(&synthetic_sample(ipc(w), 5.0, 20.0), N);
    }
    assert_eq!(d.state(), DicerState::Optimising);
    assert_eq!(d.hp_ways(), 6);
    d
}

#[test]
fn ct_thwarted_degradation_resets_to_sampled_optimum() {
    let mut d = swept_to_optimum();
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N); // above band: hold at 6
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N); // stable: shrink to 5
    let plan = d.on_period(&synthetic_sample(1.2, 5.0, 20.0), N); // -20%: reset
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "CT-T resets to the optimum");
    assert_eq!(d.state(), DicerState::ValidatingReset);
}

#[test]
fn ct_thwarted_validation_near_optimum_holds() {
    let mut d = swept_to_optimum();
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N);
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N);
    d.on_period(&synthetic_sample(1.2, 5.0, 20.0), N); // reset to 6
    // Back within (1 - a) of IPC_opt = 1.5: the optimum still stands.
    let plan = d.on_period(&synthetic_sample(1.45, 5.0, 20.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 });
    assert_eq!(d.state(), DicerState::Optimising);
}

#[test]
fn ct_thwarted_validation_far_from_optimum_resamples() {
    let mut d = swept_to_optimum();
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N);
    d.on_period(&synthetic_sample(1.5, 5.0, 20.0), N);
    d.on_period(&synthetic_sample(1.2, 5.0, 20.0), N); // reset to 6
    // Still far below IPC_opt: the optimum moved; sample afresh.
    let plan = d.on_period(&synthetic_sample(1.2, 5.0, 20.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 19 }, "sweep restarts at ladder head");
    assert_eq!(d.state(), DicerState::Sampling);
}

#[test]
fn saturation_during_validation_restarts_sampling() {
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(0.8, 5.0, 20.0, 19, V),  // degradation reset, validating
        s(1.0, 5.0, 60.0, 19, SA), // link saturates mid-validation: sample
    ]);
}

// ---------------------------------------------------------------------------
// Cool-down and exponential backoff around repeated sampling.
// ---------------------------------------------------------------------------

#[test]
fn saturation_inside_cooldown_holds_the_allocation() {
    let mut d = swept_to_optimum();
    // The sweep armed the cool-down; saturation must neither resample nor
    // let Listing 2 misread bandwidth noise as cache headroom.
    let plan = d.on_period(&synthetic_sample(1.5, 5.0, 60.0), N);
    assert_eq!(plan, PartitionPlan::Split { hp_ways: 6 }, "hold during cool-down");
    assert_eq!(d.state(), DicerState::Optimising);
    assert_eq!(d.stats.sampling_periods, 7, "no new sampling inside cool-down");
}

#[test]
fn persistent_saturation_backs_off_exponentially() {
    // Saturation that partitioning cannot fix (argmax = largest candidate)
    // must double the cool-down after each sweep, capped by the config.
    let base = DicerConfig::default().sampling_cooldown_periods;
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&synthetic_sample(19.0, 5.0, 60.0), N); // enter sampling
    let ladder = SamplingStrategy::Geometric.candidates(N);
    for &w in &ladder {
        d.on_period(&synthetic_sample(w as f64, 5.0, 60.0), N); // IPC peaks at 19 ways
    }
    assert_eq!(d.state(), DicerState::Optimising);
    // First cool-down: base periods of saturated holds, no sampling.
    let sampled = d.stats.sampling_periods;
    for _ in 0..base {
        d.on_period(&synthetic_sample(19.0, 5.0, 60.0), N);
        assert_eq!(d.state(), DicerState::Optimising);
    }
    assert_eq!(d.stats.sampling_periods, sampled);
    // Cool-down expired: saturation resamples, and the sweep again blames
    // unfixable saturation...
    d.on_period(&synthetic_sample(19.0, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling);
    for &w in &ladder {
        d.on_period(&synthetic_sample(w as f64, 5.0, 60.0), N);
    }
    // ...so the next cool-down is twice as long.
    let sampled = d.stats.sampling_periods;
    for _ in 0..2 * base {
        d.on_period(&synthetic_sample(19.0, 5.0, 60.0), N);
    }
    assert_eq!(d.stats.sampling_periods, sampled, "backoff must double the cool-down");
    d.on_period(&synthetic_sample(19.0, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling);
}

#[test]
fn fixable_saturation_resets_backoff_to_base() {
    // When a sweep finds a non-largest optimum, the next cool-down returns
    // to the configured base rather than staying doubled.
    let mut d = Dicer::new(DicerConfig::default());
    d.initial_plan(N);
    d.on_period(&synthetic_sample(1.0, 5.0, 60.0), N);
    let ladder = SamplingStrategy::Geometric.candidates(N);
    for &w in &ladder {
        // Peak at 6 ways: partitioning helps, saturation is "fixable".
        d.on_period(&synthetic_sample(if w == 6 { 1.5 } else { 0.9 }, 5.0, 20.0), N);
    }
    assert_eq!(d.hp_ways(), 6);
    let base = DicerConfig::default().sampling_cooldown_periods;
    for _ in 0..base {
        d.on_period(&synthetic_sample(1.5, 5.0, 60.0), N); // saturated holds
    }
    d.on_period(&synthetic_sample(1.5, 5.0, 60.0), N);
    assert_eq!(d.state(), DicerState::Sampling, "base cool-down, not doubled");
    assert_eq!(d.hp_ways(), 19, "a fresh sweep restarts at the ladder head");
}

// ---------------------------------------------------------------------------
// Conformance under faulted streams: gaps and bounded sensor noise.
// ---------------------------------------------------------------------------

#[test]
fn missing_periods_do_not_perturb_transitions() {
    // Holdover periods slot anywhere into a script without changing any
    // decision around them: plans hold, references and windows survive.
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        miss(19, O),
        s(1.0, 5.0, 20.0, 18, O),
        miss(18, O),
        miss(18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 5.0, 20.0, 16, O),
    ]);
    assert_eq!(d.stats.missing_periods, 3);
    assert_eq!(d.stats.shrinks, 3);
    assert_eq!(d.stats.resets, 0);
}

#[test]
fn dropped_sample_before_degradation_still_resets() {
    // The Eq. 3 reference survives a gap: a genuine degradation right
    // after a dropped period is still recognised against the last real IPC.
    conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        miss(18, O),
        s(0.8, 5.0, 20.0, 19, V),
    ]);
}

#[test]
fn missing_period_during_sampling_keeps_the_sweep_position() {
    // A drop mid-sweep re-enforces the candidate under test instead of
    // skipping it; the next real sample resumes the ladder.
    conform_default(&[
        s(1.0, 5.0, 60.0, 19, SA),
        s(0.9, 5.0, 20.0, 13, SA),
        miss(13, SA),
        s(0.9, 5.0, 20.0, 9, SA),
    ]);
}

#[test]
fn noise_inside_stability_band_matches_clean_stream() {
    // Multiplicative sensor jitter within +/- alpha on IPC and small
    // bandwidth wobble must produce the same transition sequence as the
    // clean stream: shrink every period, no resets, no phase changes.
    let d = conform_default(&[
        s(1.00, 5.00, 20.0, 19, O),
        s(1.02, 4.90, 20.3, 18, O),
        s(0.99, 5.10, 19.8, 17, O),
        s(1.01, 4.95, 20.1, 16, O),
        s(0.98, 5.05, 20.2, 15, O),
    ]);
    assert_eq!(d.stats.shrinks, 4);
    assert_eq!(d.stats.resets, 0);
    assert_eq!(d.stats.phase_changes, 0);
}

#[test]
fn zero_bandwidth_glitch_does_not_fake_a_phase_change() {
    // A glitched 0 Gbps reading enters the Eq. 2 window; the recovery back
    // to normal traffic must not read as a phase change (the geometric
    // mean would otherwise collapse).
    let d = conform_default(&[
        s(1.0, 5.0, 20.0, 19, O),
        s(1.0, 5.0, 20.0, 18, O),
        s(1.0, 5.0, 20.0, 17, O),
        s(1.0, 0.0, 20.0, 16, O), // glitch: zero HP bandwidth
        s(1.0, 5.0, 20.0, 15, O), // recovery: NOT a jump over the geomean
        s(1.0, 5.0, 20.0, 14, O),
        s(1.0, 5.0, 20.0, 13, O), // window clean again from here
        s(1.0, 7.0, 22.0, 19, V), // a genuine +40% jump still detected
    ]);
    assert_eq!(d.stats.phase_changes, 1);
}

// ---------------------------------------------------------------------------
// The behavioral contract: every registered controller, full clause table.
// ---------------------------------------------------------------------------

/// Asserts one registered controller passes every contract clause.
fn assert_conformant(name: &str) {
    let registry = ControllerRegistry::standard();
    let spec = registry
        .get(name)
        .unwrap_or_else(|| panic!("controller {name:?} is not registered"));
    let violations = run_contract(spec);
    assert!(
        violations.is_empty(),
        "{}",
        contract_violations_to_string(&violations)
    );
}

#[test]
fn dicer_passes_the_full_contract() {
    assert_conformant("dicer");
}

#[test]
fn dicer_mba_passes_the_full_contract() {
    assert_conformant("dicer-mba");
}

#[test]
fn dicer_adm_passes_the_full_contract() {
    assert_conformant("dicer-adm");
}

/// The placement-signal gate ci's fast tier names explicitly: the fleet
/// scheduler migrates on a sustained severity streak, so every controller
/// whose contract row claims `placement_signal` must hold severity above
/// nominal on every period of sustained contention (no flapping), and the
/// clause itself must be part of the runnable contract.
#[test]
fn placement_signal_controllers_hold_a_stable_severity_ladder() {
    assert!(
        Clause::CONTRACT.contains(&Clause::PlacementSignal),
        "the placement-signal clause must be part of the runnable contract"
    );
    let registry = ControllerRegistry::standard();
    let claimants: Vec<&str> = registry
        .specs()
        .iter()
        .filter(|spec| contract_entry(spec.name).is_some_and(|e| e.placement_signal))
        .map(|spec| spec.name)
        .collect();
    assert!(
        claimants.contains(&"dicer-adm"),
        "the fleet's standard controller must claim the placement signal"
    );
    for name in claimants {
        assert_conformant(name);
    }
}

/// The registry-coverage gate: ci's fast tier runs exactly this test. A
/// controller registered without conforming (or without a contract-table
/// row) fails the build here.
#[test]
fn every_registered_controller_is_covered_and_conformant() {
    let registry = ControllerRegistry::standard();
    assert!(!registry.specs().is_empty(), "the standard registry must not be empty");
    let violations = check_registry(&registry);
    assert!(
        violations.is_empty(),
        "{}",
        contract_violations_to_string(&violations)
    );
}

// ---------------------------------------------------------------------------
// Registry dispatch is bit-identical to driving the bare controller.
// ---------------------------------------------------------------------------

/// A deterministic feed: `(hp_ipc, hp_bw, total_bw, delivered)` tuples from
/// a 64-bit LCG, spanning calm, saturated, degraded, and dropped periods.
fn lcg_feed(seed: u64, len: usize) -> Vec<(f64, f64, f64, bool)> {
    let mut x = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
    let mut next = || {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (x >> 33) as f64 / (1u64 << 31) as f64 // uniform [0, 1)
    };
    (0..len)
        .map(|_| {
            let ipc = 0.2 + 1.6 * next();
            let hp_bw = 2.0 + 8.0 * next();
            let total = hp_bw + 70.0 * next(); // crosses the 50 Gbps threshold
            let delivered = next() > 0.1; // ~10% dropped samples
            (ipc, hp_bw, total, delivered)
        })
        .collect()
}

/// Drives the registry-built [`Policy`] facade and the bare [`Controller`]
/// through the same feed, asserting identical plans, throttles, admission,
/// and state labels at every period.
fn assert_dispatch_bit_identical(name: &str, feed: &[(f64, f64, f64, bool)]) {
    let registry = ControllerRegistry::standard();
    let spec = registry.get(name).expect("registered");
    let mut via_policy = spec.build_policy();
    let mut direct = spec.build_controller();
    assert_eq!(via_policy.initial_plan(N), direct.initial_plan(N));
    for (i, &(ipc, hp_bw, total, delivered)) in feed.iter().enumerate() {
        let (plan, decision) = if delivered {
            let sample = synthetic_sample(ipc, hp_bw, total);
            (
                via_policy.on_period(&sample, N),
                direct.observe_and_update(&Observation::delivered(&sample, N)),
            )
        } else {
            (
                via_policy.on_missing_period(N),
                direct.observe_and_update(&Observation::missing(N)),
            )
        };
        assert_eq!(plan, decision.plan, "{name}: plan diverged at period {i}");
        assert_eq!(
            via_policy.mba_level(),
            decision.mba_level,
            "{name}: throttle diverged at period {i}"
        );
        assert_eq!(
            via_policy.admitted_bes(),
            decision.admitted_bes,
            "{name}: admission diverged at period {i}"
        );
        assert_eq!(
            via_policy.state_label(),
            Some(direct.summary().state),
            "{name}: state label diverged at period {i}"
        );
    }
}

#[test]
fn registry_dispatch_is_bit_identical_on_a_pinned_feed() {
    for name in ["dicer", "dicer-mba", "dicer-adm"] {
        for seed in [1, 7, 42, 0xD1CE2] {
            assert_dispatch_bit_identical(name, &lcg_feed(seed, 300));
        }
    }
}

#[test]
fn policykind_build_matches_the_bare_controller_too() {
    // The PolicyKind construction path (what Session uses) wraps the same
    // controllers; its decision stream must equal the bare controller's.
    let feed = lcg_feed(3, 300);
    let mut kind = PolicyKind::Dicer(DicerConfig::default()).build();
    let mut direct = Dicer::new(DicerConfig::default());
    assert_eq!(kind.initial_plan(N), Policy::initial_plan(&direct, N));
    for &(ipc, hp_bw, total, delivered) in &feed {
        let (a, b) = if delivered {
            let sample = synthetic_sample(ipc, hp_bw, total);
            (kind.on_period(&sample, N), direct.on_period(&sample, N))
        } else {
            (kind.on_missing_period(N), direct.on_missing_period(N))
        };
        assert_eq!(a, b);
    }
}

proptest::proptest! {
    /// Property form of the dispatch bit-identity: arbitrary feeds, all
    /// three registered controllers.
    #[test]
    fn registry_dispatch_is_bit_identical_on_arbitrary_feeds(
        seed in proptest::prelude::any::<u64>(),
        len in 1usize..120,
    ) {
        for name in ["dicer", "dicer-mba", "dicer-adm"] {
            assert_dispatch_bit_identical(name, &lcg_feed(seed, len));
        }
    }
}
