//! End-to-end tests of the `dicerd` HTTP API on the netd event loop.
//!
//! Each test starts a full in-process daemon ([`dicer::daemon::Daemon`])
//! on an ephemeral port — real sockets, real sim thread — and speaks raw
//! HTTP/1.1 to it, because the contract under test is the bytes on the
//! wire: status lines, strict 400/405/409s, chunked framing, and the
//! drain-before-exit shutdown ordering.

use dicer::daemon::{Daemon, DaemonConfig, DaemonHandle};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

fn start(cfg: DaemonConfig) -> DaemonHandle {
    Daemon::start(DaemonConfig { port: 0, ..cfg }).expect("daemon starts")
}

/// A parsed one-shot response (request sent with `Connection: close`).
struct Response {
    status: String,
    headers: Vec<String>,
    body: Vec<u8>,
}

impl Response {
    fn body_str(&self) -> &str {
        std::str::from_utf8(&self.body).expect("UTF-8 body")
    }

    fn header(&self, name: &str) -> Option<&str> {
        let prefix = format!("{name}: ");
        self.headers.iter().find_map(|h| h.strip_prefix(&prefix))
    }
}

/// Sends raw request bytes, reads to EOF, and checks the well-formedness
/// every client is entitled to: a status line, a blank line, and a body
/// exactly as long as `Content-Length` says.
fn one_shot(addr: SocketAddr, raw: &str) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(raw.as_bytes()).expect("write");
    let mut buf = Vec::new();
    stream.read_to_end(&mut buf).expect("read to EOF");
    let head_end = buf
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .unwrap_or_else(|| panic!("no header terminator in {:?}", String::from_utf8_lossy(&buf)));
    let head = std::str::from_utf8(&buf[..head_end]).expect("UTF-8 head");
    let mut lines = head.split("\r\n");
    let status = lines.next().expect("status line").to_string();
    let headers: Vec<String> = lines.map(str::to_string).collect();
    let body = buf[head_end + 4..].to_vec();
    let resp = Response { status, headers, body };
    let declared: usize = resp
        .header("Content-Length")
        .unwrap_or_else(|| panic!("no Content-Length in {}", resp.status))
        .parse()
        .expect("numeric Content-Length");
    assert_eq!(declared, resp.body.len(), "body length mismatch for {}", resp.status);
    resp
}

fn get(addr: SocketAddr, path: &str) -> Response {
    one_shot(addr, &format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"))
}

fn post_control(addr: SocketAddr, body: &str) -> Response {
    one_shot(
        addr,
        &format!(
            "POST /control HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        ),
    )
}

/// Waits (bounded) until `/healthz` reports a predicate, for retargets
/// that the sim thread applies asynchronously at a period boundary.
fn wait_healthz(addr: SocketAddr, what: &str, pred: impl Fn(&str) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let h = get(addr, "/healthz");
        assert!(h.status.contains("200"), "healthz: {}", h.status);
        if pred(h.body_str()) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {}", h.body_str());
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// The `POST /control` wire contract, as a transition table: every row
/// is (body, expected status fragment, expected body fragment). Accepted
/// requests answer 200 with the echo of what was set; malformed ones are
/// strict 400s that name the offence.
#[test]
fn control_transition_table_over_http() {
    let daemon = start(DaemonConfig::default());
    let addr = daemon.addr();
    let table: &[(&str, &str, &str)] = &[
        ("pause=1", "200 OK", r#""status":"accepted","pause":true"#),
        ("policy=static:5", "200 OK", r#""policy":"STATIC""#),
        ("hp=lbm1&be=gcc_base1", "200 OK", r#""hp":"lbm1""#),
        ("pause=0", "200 OK", r#""pause":false"#),
        ("", "400 Bad Request", "at least one"),
        ("policy=herakles", "400 Bad Request", "unknown policy"),
        ("hp=nosuchapp", "400 Bad Request", "unknown hp application"),
        ("pause=yes", "400 Bad Request", "must be 0 or 1"),
        ("verbose=1", "400 Bad Request", "unknown query parameter"),
        ("policy=um&policy=ct", "400 Bad Request", "more than once"),
    ];
    for (body, status, needle) in table {
        let resp = post_control(addr, body);
        assert!(
            resp.status.contains(status),
            "{body:?}: expected {status}, got {} ({})",
            resp.status,
            resp.body_str()
        );
        assert!(
            resp.body_str().contains(needle),
            "{body:?}: body {:?} must contain {needle:?}",
            resp.body_str()
        );
    }
    // Wrong verbs on known paths are 405s, not 404s.
    let resp = get(addr, "/control");
    assert!(resp.status.contains("405"), "GET /control: {}", resp.status);
    let resp = one_shot(addr, "POST /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    assert!(resp.status.contains("405"), "POST /metrics: {}", resp.status);

    daemon.shutdown();
    daemon.join().expect("clean exit");
}

/// A policy retarget posted over HTTP reaches the live sim thread: the
/// run restarts under the new policy without a daemon restart, and
/// `/healthz` reflects it.
#[test]
fn control_retargets_policy_on_live_sim() {
    let daemon = start(DaemonConfig::default());
    let addr = daemon.addr();
    wait_healthz(addr, "initial policy", |b| b.contains(r#""policy":"DICER""#));

    let resp = post_control(addr, "policy=ct&hp=lbm1");
    assert!(resp.status.contains("200"), "{}", resp.status);
    wait_healthz(addr, "retarget to CT/lbm1", |b| {
        b.contains(r#""policy":"CT""#) && b.contains(r#""hp":"lbm1""#)
    });

    // And back, proving the mailbox keeps working after the first apply.
    let resp = post_control(addr, "policy=um");
    assert!(resp.status.contains("200"), "{}", resp.status);
    wait_healthz(addr, "retarget to UM", |b| b.contains(r#""policy":"UM""#));

    daemon.shutdown();
    daemon.join().expect("clean exit");
}

/// Fleet mode refuses workload retargets with 409 (the fleet runs its
/// configured mixes) but accepts pause/resume.
#[test]
fn fleet_mode_refuses_workload_retargets_accepts_pause() {
    let daemon = start(DaemonConfig { fleet_nodes: 2, ..Default::default() });
    let addr = daemon.addr();
    // Park the fleet immediately so the test doesn't race full rounds.
    let resp = post_control(addr, "pause=1");
    assert!(resp.status.contains("200"), "pause: {}", resp.status);

    for body in ["policy=um", "hp=milc1", "be=lbm1", "policy=ct&pause=0"] {
        let resp = post_control(addr, body);
        assert!(resp.status.contains("409"), "{body:?}: expected 409, got {}", resp.status);
        assert!(resp.body_str().contains("fleet mode"), "{body:?}: {}", resp.body_str());
    }
    // Malformed still beats mode: a bad field is a 400 even in fleet mode.
    let resp = post_control(addr, "pause=2");
    assert!(resp.status.contains("400"), "pause=2: {}", resp.status);

    let resp = get(addr, "/fleet");
    assert!(resp.status.contains("200"), "/fleet: {}", resp.status);

    daemon.shutdown();
    daemon.join().expect("clean exit");
}

/// The `/quit` contract, looped: every accepted connection gets its full
/// response and both threads join — no socket left half-served, no
/// flaky exit. Five rounds catch ordering races a single run can miss.
#[test]
fn quit_drains_and_joins_cleanly_every_time() {
    for round in 0..5 {
        let daemon = start(DaemonConfig::default());
        let addr = daemon.addr();
        // A little traffic first so connections exist to drain.
        let m = get(addr, "/metrics");
        assert!(m.status.contains("200"), "round {round}: {}", m.status);
        let q = get(addr, "/quit");
        assert!(q.status.contains("200"), "round {round}: {}", q.status);
        assert_eq!(q.body_str(), "shutting down\n", "round {round}");
        daemon.join().unwrap_or_else(|e| panic!("round {round}: {e}"));
    }
}

/// ≥8 concurrent clients — valid mixed traffic, keep-alive bursts, and
/// deliberately malformed requests — and every single response on every
/// connection is well-formed. This is the in-repo half of the CI smoke.
#[test]
fn concurrent_mixed_clients_get_well_formed_responses() {
    let daemon = start(DaemonConfig::default());
    let addr = daemon.addr();

    let mut handles = Vec::new();
    // 6 valid clients x 20 one-shot requests, rotating the mix.
    for id in 0..6usize {
        handles.push(std::thread::spawn(move || {
            let paths = ["/metrics", "/events?n=10", "/healthz"];
            for i in 0..20 {
                let resp = get(addr, paths[(id + i) % paths.len()]);
                assert!(resp.status.contains("200"), "client {id}: {}", resp.status);
                assert!(!resp.body.is_empty(), "client {id}: empty body");
            }
        }));
    }
    // 2 keep-alive clients: several requests on one connection.
    for id in 0..2usize {
        handles.push(std::thread::spawn(move || {
            let stream = TcpStream::connect(addr).expect("connect");
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reader = BufReader::new(stream);
            for i in 0..10 {
                reader
                    .get_mut()
                    .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    .expect("write");
                let mut status = String::new();
                reader.read_line(&mut status).expect("status");
                assert!(status.contains("200"), "keep-alive {id} req {i}: {status}");
                let mut len = 0usize;
                loop {
                    let mut line = String::new();
                    reader.read_line(&mut line).expect("header");
                    let line = line.trim_end();
                    if line.is_empty() {
                        break;
                    }
                    if let Some(v) = line.strip_prefix("Content-Length: ") {
                        len = v.parse().expect("length");
                    }
                }
                let mut body = vec![0u8; len];
                reader.read_exact(&mut body).expect("body");
                assert!(body.starts_with(b"{\"status\":\"ok\""), "keep-alive {id} req {i}");
            }
        }));
    }
    // 3 hostile clients: malformed or unroutable requests still get
    // proper error responses (and never corrupt anyone else's).
    for (raw, want) in [
        ("BREW /metrics HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", "405"),
        ("GET /nope HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", "404"),
        ("GET /events?bogus=1 HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n", "400"),
    ] {
        handles.push(std::thread::spawn(move || {
            let resp = one_shot(addr, raw);
            assert!(resp.status.contains(want), "{raw:?}: got {}", resp.status);
        }));
    }
    assert!(handles.len() >= 8, "the point is concurrency");
    for h in handles {
        h.join().expect("client panicked");
    }

    // The event loop counted all of it.
    let metrics = get(addr, "/metrics");
    let text = metrics.body_str();
    assert!(text.contains("dicer_conn_accepted_total"), "conn metrics missing");
    assert!(text.contains("dicer_conn_request_seconds"), "request histograms missing");

    // And the sim thread kept publishing beneath the load: the DICER
    // controller's severity gauge must appear once its first status
    // lands on the bus (bounded wait; the sim runs at full speed).
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let text = get(addr, "/metrics");
        if text.body_str().contains("dicer_controller_severity{controller=") {
            break;
        }
        assert!(Instant::now() < deadline, "controller severity gauge never appeared");
        std::thread::sleep(Duration::from_millis(20));
    }

    daemon.shutdown();
    daemon.join().expect("clean exit");
}

/// `GET /events?follow=1` streams chunked NDJSON: telemetry lines keep
/// arriving while the sim runs, and shutdown terminates the stream with
/// a proper final chunk instead of a dead socket.
#[test]
fn events_follow_streams_ndjson_until_shutdown() {
    let daemon = start(DaemonConfig::default());
    let addr = daemon.addr();

    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream);
    reader
        .get_mut()
        .write_all(b"GET /events?follow=1&n=5 HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("write");

    let mut status = String::new();
    reader.read_line(&mut status).expect("status");
    assert!(status.contains("200 OK"), "{status}");
    let mut chunked = false;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        chunked |= line == "Transfer-Encoding: chunked";
    }
    assert!(chunked, "follow mode must use chunked transfer");

    // Decode chunks until we have a few NDJSON lines in hand.
    let mut payload = Vec::new();
    let mut quit_sent = false;
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim_end(), 16)
            .unwrap_or_else(|e| panic!("bad chunk size {size_line:?}: {e}"));
        if size == 0 {
            // The 0-length chunk is the orderly end of the stream; an
            // aborted socket would have failed the reads above instead.
            let mut crlf = String::new();
            reader.read_line(&mut crlf).expect("final CRLF");
            break;
        }
        let mut chunk = vec![0u8; size + 2];
        reader.read_exact(&mut chunk).expect("chunk data");
        assert_eq!(&chunk[size..], b"\r\n", "chunk not CRLF-terminated");
        payload.extend_from_slice(&chunk[..size]);
        // Once some events have streamed, ask the daemon to quit; the
        // stream must then end with the 0-chunk rather than an abort.
        if !quit_sent && payload.iter().filter(|&&b| b == b'\n').count() >= 3 {
            let q = get(addr, "/quit");
            assert!(q.status.contains("200"), "{}", q.status);
            quit_sent = true;
        }
    }
    assert!(quit_sent, "stream ended before any events arrived");
    let text = std::str::from_utf8(&payload).expect("UTF-8 NDJSON");
    for line in text.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "NDJSON line must be one JSON object: {line:?}"
        );
    }
    assert!(text.lines().count() >= 3, "expected several events, got: {text:?}");

    daemon.join().expect("clean exit");
}

/// The observability-plane endpoints over the wire: `/query` serves
/// range reads of both event-driven key series and scraped registry
/// series with strict 400s and explicit 404s, `/alerts` serves the
/// firing set, and `/healthz` + `/metrics` carry the new fields.
#[test]
fn query_and_alerts_serve_the_observability_plane() {
    let daemon = start(DaemonConfig::default());
    let addr = daemon.addr();

    // Wait until at least one period landed in the store.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let q = get(addr, "/query?metric=obs_hp_ipc");
        assert!(q.status.contains("200"), "{}", q.status);
        if !q.body_str().contains("\"points\":[]") {
            assert!(q.body_str().contains("\"metric\":\"obs_hp_ipc\""), "{}", q.body_str());
            break;
        }
        assert!(Instant::now() < deadline, "no period samples arrived");
        std::thread::sleep(Duration::from_millis(20));
    }

    // A scraped registry series is queryable too, at every tier.
    for step in ["1", "16", "256"] {
        let q = get(addr, &format!("/query?metric=dicer_periods_total&step={step}"));
        assert!(q.status.contains("200"), "step {step}: {}", q.status);
        assert!(
            q.body_str().contains("\"metric\":\"dicer_periods_total\""),
            "step {step}: {}",
            q.body_str()
        );
    }

    // Strict parameter contract: 400 names the offence, 404 the metric.
    for (path, want) in [
        ("/query", "400"),
        ("/query?metric=obs_hp_ipc&bogus=1", "400"),
        ("/query?metric=obs_hp_ipc&step=0", "400"),
        ("/query?metric=obs_hp_ipc&start=9&end=3", "400"),
        ("/query?metric=no_such_series", "404"),
        ("/alerts?verbose=1", "400"),
    ] {
        let resp = get(addr, path);
        assert!(resp.status.contains(want), "{path}: expected {want}, got {}", resp.status);
        assert!(resp.body_str().contains("\"error\""), "{path}: {}", resp.body_str());
    }

    let alerts = get(addr, "/alerts");
    assert!(alerts.status.contains("200"), "{}", alerts.status);
    assert!(alerts.body_str().contains("\"alerts_firing\":"), "{}", alerts.body_str());

    let health = get(addr, "/healthz");
    assert!(health.body_str().contains("\"alerts_firing\":"), "{}", health.body_str());

    let metrics = get(addr, "/metrics");
    assert!(
        metrics.body_str().contains("dicer_build_info{version="),
        "build info gauge missing"
    );
    assert!(
        metrics.body_str().contains("dicer_alerts_firing"),
        "alerts-firing gauge missing"
    );

    daemon.shutdown();
    daemon.join().expect("clean exit");
}
