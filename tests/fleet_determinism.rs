//! Fleet determinism: a fleet run is a pure function of its config.
//!
//! Three pins:
//!
//! * the serialized [`FleetOutcome`] of the standard 32-node mix is
//!   byte-identical at `--jobs 1` and `--jobs 8` — the cross-node
//!   decisions all run serially on the driver thread and the node
//!   stepping fans out index-ordered, so the worker count must be
//!   invisible in the bytes;
//! * the outcome hash of the canonical 32-node run is pinned in
//!   `tests/goldens/fleet_32node.txt` (bootstrapped on first run,
//!   byte-compared thereafter), so churn-stream, scheduler or model
//!   drift cannot land silently;
//! * a proptest sweep over fleet shapes and migration budgets checks the
//!   budget invariant: no node ever migrates more residents out in one
//!   round than `migration_budget` allows.

use dicer::experiments::SweepRunner;
use dicer::fleet::{Fleet, FleetConfig, FleetOutcome, SchedulerKind};
use std::fs;
use std::path::Path;

/// The canonical fleet: the standard mix at the size the committed study
/// uses, under the migrating scheduler so eviction paths execute.
fn canonical_outcome(jobs: usize) -> FleetOutcome {
    let cfg = FleetConfig::standard(32, 300, 42);
    let scheduler = SchedulerKind::Migrate.build(
        cfg.seed,
        cfg.server.link.capacity_gbps,
        cfg.server.cache.ways,
        cfg.degraded_streak,
    );
    Fleet::new(cfg, scheduler).run(&SweepRunner::with_jobs(jobs))
}

#[test]
fn worker_count_is_invisible_in_the_outcome_bytes() {
    let serial = canonical_outcome(1).to_json();
    let parallel = canonical_outcome(8).to_json();
    assert_eq!(serial, parallel, "--jobs 8 fleet outcome diverged from --jobs 1");
}

fn fnv1a(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

#[test]
fn canonical_fleet_outcome_matches_the_pinned_golden() {
    let outcome = canonical_outcome(1);
    // Sanity: the canonical run actually exercises the interesting paths
    // before its hash gets pinned.
    assert!(outcome.arrivals > 0, "churn never arrived");
    assert!(outcome.departures > 0, "no resident ever left");
    assert!(outcome.migrations > 0, "the migrating scheduler never migrated");
    let line = format!("{:016x}", fnv1a(outcome.to_json().as_bytes()));

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/fleet_32node.txt");
    if path.exists() {
        let pinned = fs::read_to_string(&path).expect("golden readable");
        assert_eq!(
            pinned.trim(),
            line,
            "32-node fleet outcome diverged from the pinned golden {} — an \
             intentional behaviour change must recut it",
            path.display()
        );
    } else {
        fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        fs::write(&path, format!("{line}\n")).expect("golden writable");
        eprintln!("bootstrapped {} = {line}; commit it to pin the fleet run", path.display());
    }
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(12))]

    /// No node may exceed its per-round migration budget, whatever the
    /// fleet shape, seed or budget — and the per-node migration totals
    /// must reconcile with the fleet-wide counter.
    #[test]
    fn migrations_respect_the_per_node_budget(
        nodes in 1usize..12,
        rounds in 1u32..50,
        seed in proptest::prelude::any::<u64>(),
        budget in 0u32..4,
    ) {
        let mut cfg = FleetConfig::standard(nodes, rounds, seed);
        cfg.migration_budget = budget;
        let scheduler = SchedulerKind::Migrate.build(
            cfg.seed,
            cfg.server.link.capacity_gbps,
            cfg.server.cache.ways,
            cfg.degraded_streak,
        );
        let outcome = Fleet::new(cfg, scheduler).run(&SweepRunner::serial());
        proptest::prop_assert!(
            outcome.max_node_round_migrations <= budget,
            "a node migrated {} residents in one round with budget {budget}",
            outcome.max_node_round_migrations
        );
        let per_node: u64 = outcome.per_node.iter().map(|n| n.migrations_out).sum();
        proptest::prop_assert_eq!(per_node, outcome.migrations);
        if budget == 0 {
            proptest::prop_assert_eq!(outcome.migrations, 0);
        }
    }
}
