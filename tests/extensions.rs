//! Integration tests for the future-work extensions (paper §6): DICER+MBA
//! and overlapping partitions, exercised end-to-end on the simulated
//! server.

use dicer::appmodel::Catalog;
use dicer::experiments::runner::run_colocation_with;
use dicer::experiments::{trace, SoloTable};
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::server::ServerConfig;

fn setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

/// On a persistently saturating workload, DICER+MBA must protect the HP at
/// least as well as stock DICER.
#[test]
fn mba_extension_helps_on_saturating_workloads() {
    let (catalog, solo) = setup();
    let hp = catalog.get("omnetpp1").unwrap();
    let be = catalog.get("lbm1").unwrap();
    let dicer =
        run_colocation_with(&solo, hp, be, 10, &PolicyKind::Dicer(DicerConfig::default()));
    let mba =
        run_colocation_with(&solo, hp, be, 10, &PolicyKind::DicerMba(DicerConfig::default()));
    assert!(
        mba.hp_norm_ipc >= dicer.hp_norm_ipc - 0.01,
        "MBA must not hurt the HP: {:.3} vs {:.3}",
        mba.hp_norm_ipc,
        dicer.hp_norm_ipc
    );
}

/// On quiet workloads the bandwidth loop must stay out of the way: MBA and
/// stock DICER coincide.
#[test]
fn mba_extension_is_a_noop_without_saturation() {
    let (catalog, solo) = setup();
    let hp = catalog.get("gobmk1").unwrap();
    let be = catalog.get("povray1").unwrap();
    let dicer =
        run_colocation_with(&solo, hp, be, 10, &PolicyKind::Dicer(DicerConfig::default()));
    let mba =
        run_colocation_with(&solo, hp, be, 10, &PolicyKind::DicerMba(DicerConfig::default()));
    assert!((dicer.hp_norm_ipc - mba.hp_norm_ipc).abs() < 1e-6);
    assert!((dicer.efu - mba.efu).abs() < 1e-6);
}

/// The MBA timeline actually shows the throttle engaging on a saturating
/// workload.
#[test]
fn mba_timeline_records_throttling() {
    let (catalog, solo) = setup();
    let hp = catalog.get("omnetpp1").unwrap();
    let be = catalog.get("lbm1").unwrap();
    let t = trace::run_traced(
        &solo,
        hp,
        be,
        10,
        &PolicyKind::DicerMba(DicerConfig::default()),
        300,
    );
    assert!(
        t.periods.iter().any(|p| p.be_mba_percent < 100),
        "the BE throttle never engaged"
    );
    // And it is rendered in the timeline.
    assert!(t.render(60).contains("BE MBA"));
}

/// Overlapping plans interpolate between isolation and sharing: the HP's
/// outcome with `overlap e+s` must lie between the pure split (`e` ways)
/// and the generous split (`e+s` ways).
#[test]
fn overlap_interpolates_between_splits() {
    let (catalog, solo) = setup();
    let hp = catalog.get("omnetpp1").unwrap();
    let be = catalog.get("gcc_base1").unwrap();
    let tight = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Static(4));
    let generous = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Static(12));
    let overlap = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Overlap(4, 8));
    assert!(
        overlap.hp_norm_ipc >= tight.hp_norm_ipc - 0.02,
        "overlap ({:.3}) must not be worse than its exclusive floor ({:.3})",
        overlap.hp_norm_ipc,
        tight.hp_norm_ipc
    );
    assert!(
        overlap.hp_norm_ipc <= generous.hp_norm_ipc + 0.02,
        "overlap ({:.3}) cannot beat owning the whole region ({:.3})",
        overlap.hp_norm_ipc,
        generous.hp_norm_ipc
    );
    // The BEs must do at least as well as under the generous split, since
    // they can steal slack from the shared region.
    assert!(overlap.be_norm_ipc_mean() >= generous.be_norm_ipc_mean() - 0.02);
}

/// An overlap plan with a satisfied HP effectively donates the shared
/// region: BEs approach their unmanaged performance.
#[test]
fn overlap_donates_slack_of_satisfied_hp() {
    let (catalog, solo) = setup();
    let hp = catalog.get("namd1").unwrap(); // compute-bound, tiny footprint
    let be = catalog.get("gcc_base1").unwrap();
    let split = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Static(10));
    let overlap = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Overlap(2, 8));
    assert!(
        overlap.be_norm_ipc_mean() > split.be_norm_ipc_mean(),
        "BEs should profit from the donated overlap: {:.3} vs {:.3}",
        overlap.be_norm_ipc_mean(),
        split.be_norm_ipc_mean()
    );
    assert!(overlap.hp_norm_ipc > 0.9, "satisfied HP stays near peak");
}

/// The traced runner and the plain runner agree on the outcome.
#[test]
fn traced_and_plain_runner_agree() {
    let (catalog, solo) = setup();
    let hp = catalog.get("hmmer1").unwrap();
    let be = catalog.get("gobmk1").unwrap();
    let kind = PolicyKind::Dicer(DicerConfig::default());
    let plain = run_colocation_with(&solo, hp, be, 6, &kind);
    let traced = trace::run_traced(&solo, hp, be, 6, &kind, 6000);
    assert_eq!(plain.periods as usize, traced.periods.len());
    let last = traced.periods.last().unwrap();
    assert!((last.time_s - plain.periods as f64).abs() < 1e-9);
}
