//! Property-based tests over the core data structures and models.

use dicer::appmodel::{MissCurve, Phase};
use dicer::cachesim::{AccessKind, CacheConfig, ReplacementKind, SetAssocCache, WriteBackCache};
use dicer::membw::{LinkConfig, LinkModel};
use dicer::metrics::{efu, fairness, stats::Cdf, suci, weighted_speedup};
use dicer::policy::{Dicer, DicerConfig, Policy};
use dicer::rdt::{MbaLevel, PartitionPlan, PerAppSample, PeriodSample, WayMask};
use dicer::server::{contention, equilibrium};
use proptest::prelude::*;

/// Solves a throttled equilibrium and asserts the fixed-point contract:
/// finite positive IPCs, capacity respected, and the returned multiplier
/// reproduced by re-evaluating the latency curve at the returned demands.
/// (At the clamped endpoints the residual is exactly zero by construction.)
fn check_throttled_residual(phases: &[Phase], ways: f64, scale: f64) {
    let link = LinkModel::new(LinkConfig::default());
    let inputs: Vec<(&Phase, f64, f64)> = phases.iter().map(|p| (p, ways, scale)).collect();
    let eq = equilibrium::solve_throttled(&inputs, &link, 198.0, 2.2e9, 64);
    assert!(eq.ipc.iter().all(|i| *i > 0.0 && i.is_finite()));
    assert!(eq.total_gbps <= link.config().capacity_gbps + 1e-9);
    let offered: f64 = eq.demand_gbps.iter().sum();
    let mult = link.latency_multiplier(offered / link.config().capacity_gbps);
    assert!(
        (mult - eq.latency_mult).abs() < 1e-5,
        "fixed-point residual: returned {} vs recomputed {mult}",
        eq.latency_mult
    );
}

/// Replays a sequence of (ways, throttle-scale) configurations through one
/// persistent accelerated engine — each configuration solved twice, so warm
/// starts *and* memo hits are both exercised — and checks every answer is
/// bit-identical to a fresh cold solve.
fn check_replay_bit_identity(phases: &[Phase], steps: &[(f64, f64)]) {
    use dicer::server::EquilibriumSolver;
    let link = LinkModel::new(LinkConfig::default());
    let mut engine = EquilibriumSolver::new(link, 198.0, 2.2e9, 64);
    assert!(engine.accelerated(), "engines accelerate by default");
    for &(ways, scale) in steps {
        for repeat in 0..2 {
            engine.begin();
            for p in phases {
                engine.push(p, p.curve.miss_ratio(ways), scale);
            }
            let fast = engine.solve().clone();
            let inputs: Vec<(&Phase, f64, f64)> =
                phases.iter().map(|p| (p, ways, scale)).collect();
            let cold = equilibrium::solve_throttled(&inputs, &link, 198.0, 2.2e9, 64);
            let ctx = format!("ways {ways}, scale {scale}, repeat {repeat}");
            assert_eq!(
                fast.latency_mult.to_bits(),
                cold.latency_mult.to_bits(),
                "latency_mult diverged ({ctx})"
            );
            assert_eq!(fast.total_gbps.to_bits(), cold.total_gbps.to_bits(), "total ({ctx})");
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(&fast.ipc), bits(&cold.ipc), "ipc diverged ({ctx})");
            assert_eq!(
                bits(&fast.demand_gbps),
                bits(&cold.demand_gbps),
                "demand diverged ({ctx})"
            );
            assert_eq!(
                bits(&fast.achieved_gbps),
                bits(&cold.achieved_gbps),
                "achieved diverged ({ctx})"
            );
        }
    }
}

/// Deterministic smoke coverage for the helpers above (the property tests
/// below drive them across random inputs).
#[test]
fn throttled_residual_smoke() {
    let heavy = Phase {
        insns: 1_000_000,
        base_cpi: 0.6,
        apki: 35.0,
        mlp: 4.0,
        curve: MissCurve::parametric(0.2, 0.8, 3.0, 2.0),
    };
    let phases = vec![heavy; 9];
    check_throttled_residual(&phases, 0.5, 1.0); // saturated link, clamped root
    check_throttled_residual(&phases, 2.0, 1.5); // interior root
    check_throttled_residual(&phases[..1], 19.0, 1.0); // unit multiplier
}

#[test]
fn replay_bit_identity_smoke() {
    let heavy = Phase {
        insns: 1_000_000,
        base_cpi: 0.6,
        apki: 35.0,
        mlp: 4.0,
        curve: MissCurve::parametric(0.2, 0.8, 3.0, 2.0),
    };
    let phases = vec![heavy; 6];
    check_replay_bit_identity(
        &phases,
        &[(0.5, 1.0), (0.61, 1.0), (0.72, 1.5), (19.0, 3.0), (0.5, 1.0), (2.0, 1.0)],
    );
}

fn arb_curve() -> impl Strategy<Value = MissCurve> {
    (0.0f64..0.5, 0.5f64..1.0, 0.3f64..12.0, 1.0f64..4.0)
        .prop_map(|(floor, ceil, w_half, steep)| MissCurve::parametric(floor, ceil, w_half, steep))
}

fn arb_phase() -> impl Strategy<Value = Phase> {
    (0.3f64..1.5, 0.0f64..50.0, 1.0f64..5.0, arb_curve()).prop_map(
        |(base_cpi, apki, mlp, curve)| Phase { insns: 1_000_000, base_cpi, apki, mlp, curve },
    )
}

proptest! {
    /// Miss curves always produce ratios in [0, 1] and never increase with
    /// more cache.
    #[test]
    fn miss_curves_bounded_and_monotone(curve in arb_curve(), w in 0.1f64..40.0) {
        let m = curve.miss_ratio(w);
        prop_assert!((0.0..=1.0).contains(&m));
        let m2 = curve.miss_ratio(w + 0.5);
        prop_assert!(m2 <= m + 1e-12);
    }

    /// CPI decreases (weakly) with more ways and increases (weakly) with
    /// higher memory latency.
    #[test]
    fn cpi_monotonicity(phase in arb_phase(), w in 1.0f64..19.0, lat in 50.0f64..400.0) {
        prop_assert!(phase.cpi(w + 1.0, lat) <= phase.cpi(w, lat) + 1e-12);
        prop_assert!(phase.cpi(w, lat + 50.0) >= phase.cpi(w, lat) - 1e-12);
    }

    /// Contiguous masks round-trip through bits; [`WayMask::from_range`]
    /// always yields `count` ways starting at `start`.
    #[test]
    fn waymask_range_roundtrip(start in 0u32..31, count in 1u32..32) {
        prop_assume!(start + count <= 32);
        let m = WayMask::from_range(start, count).unwrap();
        prop_assert_eq!(m.count(), count);
        prop_assert_eq!(m.first_way(), start);
        prop_assert_eq!(WayMask::from_bits(m.bits()).unwrap(), m);
    }

    /// Any valid split yields disjoint HP/BE masks that cover the cache.
    #[test]
    fn split_masks_partition_the_cache(hp_ways in 1u32..20) {
        let p = PartitionPlan::Split { hp_ways };
        p.validate(20).unwrap();
        let h = p.hp_mask(20);
        let b = p.be_mask(20);
        prop_assert!(!h.overlaps(b));
        prop_assert_eq!(h.count() + b.count(), 20);
    }

    /// The shared-cache solver conserves capacity and keeps every share
    /// positive.
    #[test]
    fn contention_shares_conserve_capacity(
        seeds in prop::collection::vec((1.0f64..50.0, 0.0f64..0.5, 0.5f64..1.0, 0.5f64..10.0), 1..10),
        group in 1.0f64..20.0,
    ) {
        let curves: Vec<(f64, MissCurve)> = seeds
            .iter()
            .map(|(apki, floor, ceil, wh)| {
                (*apki, MissCurve::parametric(*floor, *ceil, *wh, 2.0))
            })
            .collect();
        let apps: Vec<(f64, &MissCurve)> = curves.iter().map(|(a, c)| (*a, c)).collect();
        let shares = contention::shared_effective_ways(&apps, group);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - group).abs() < 1e-6, "sum {} != {}", sum, group);
        prop_assert!(shares.iter().all(|s| *s > 0.0));
    }

    /// The equilibrium solver produces positive IPCs, never exceeds link
    /// capacity, and reports a self-consistent latency multiplier.
    #[test]
    fn equilibrium_self_consistent(phases in prop::collection::vec(arb_phase(), 1..10)) {
        let link = LinkModel::new(LinkConfig::default());
        let inputs: Vec<(&Phase, f64)> = phases.iter().map(|p| (p, 2.0)).collect();
        let eq = equilibrium::solve(&inputs, &link, 198.0, 2.2e9, 64);
        prop_assert!(eq.ipc.iter().all(|i| *i > 0.0 && i.is_finite()));
        prop_assert!(eq.total_gbps <= link.config().capacity_gbps + 1e-9);
        // Fixed point: recompute the multiplier from the reported demands.
        let offered: f64 = eq.demand_gbps.iter().sum();
        let mult = link.latency_multiplier(offered / link.config().capacity_gbps);
        prop_assert!((mult - eq.latency_mult).abs() < 1e-5,
            "multiplier {} vs recomputed {}", eq.latency_mult, mult);
    }

    /// With per-app MBA throttles in play, the equilibrium still satisfies
    /// the fixed-point residual contract `|L(U) − mult| < tol`.
    #[test]
    fn equilibrium_residual_with_throttles(
        phases in prop::collection::vec(arb_phase(), 1..10),
        ways in 0.5f64..20.0,
        scale in 1.0f64..3.0,
    ) {
        check_throttled_residual(&phases, ways, scale);
    }

    /// Warm-started and memoized solves are bit-identical to cold solves on
    /// replayed configuration sequences — the engine's determinism
    /// guarantee.
    #[test]
    fn accelerated_solver_replay_is_bit_identical(
        phases in prop::collection::vec(arb_phase(), 1..6),
        steps in prop::collection::vec((0.5f64..20.0, 1.0f64..3.0), 1..12),
    ) {
        check_replay_bit_identity(&phases, &steps);
    }

    /// EFU is a mean: it lies between the minimum and maximum normalised
    /// IPC, and equals the common value for uniform inputs.
    #[test]
    fn efu_between_min_and_max(values in prop::collection::vec(0.01f64..1.5, 1..12)) {
        let e = efu(&values);
        let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = values.iter().cloned().fold(0.0f64, f64::max);
        prop_assert!(e >= lo - 1e-12 && e <= hi + 1e-12);
    }

    /// SUCI is zero exactly when the SLO is missed, and monotone in EFU.
    #[test]
    fn suci_gating_and_monotonicity(
        norm in 0.0f64..1.2,
        efu_a in 0.01f64..1.0,
        efu_b in 0.01f64..1.0,
        slo in 0.5f64..1.0,
    ) {
        let a = suci(norm, efu_a, slo, 1.0);
        let b = suci(norm, efu_b, slo, 1.0);
        if norm < slo {
            prop_assert_eq!(a, 0.0);
            prop_assert_eq!(b, 0.0);
        } else if efu_a <= efu_b {
            prop_assert!(a <= b + 1e-12);
        }
    }

    /// CDF fractions are monotone in x and bounded by [0, 1].
    #[test]
    fn cdf_monotone(samples in prop::collection::vec(-100.0f64..100.0, 1..50), x in -120.0f64..120.0) {
        let c = Cdf::new(samples);
        let f1 = c.fraction_at(x);
        let f2 = c.fraction_at(x + 1.0);
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!(f2 >= f1);
    }

    /// Whatever sample sequence DICER observes, the plan it emits is always
    /// valid for the cache, and its HP allocation stays in [1, n_ways-1].
    #[test]
    fn dicer_always_emits_valid_plans(
        samples in prop::collection::vec((0.01f64..3.0, 0.0f64..30.0, 0.0f64..80.0), 1..60),
    ) {
        let mut d = Dicer::new(DicerConfig::default());
        let n_ways = 20;
        let mut plan = d.initial_plan(n_ways);
        prop_assert!(plan.validate(n_ways).is_ok());
        for (ipc, hp_bw, be_bw) in samples {
            let hp = PerAppSample {
                ipc,
                llc_occupancy_bytes: 0,
                mem_bw_gbps: hp_bw,
                miss_ratio: 0.2,
            };
            let be = PerAppSample {
                ipc: 0.5,
                llc_occupancy_bytes: 0,
                mem_bw_gbps: be_bw / 9.0,
                miss_ratio: 0.4,
            };
            let sample = PeriodSample {
                time_s: 0.0,
                hp,
                bes: vec![be; 9],
                total_bw_gbps: hp_bw + be_bw,
            };
            plan = d.on_period(&sample, n_ways);
            prop_assert!(plan.validate(n_ways).is_ok(), "invalid plan {:?}", plan);
            match plan {
                PartitionPlan::Split { hp_ways } => {
                    prop_assert!((1..n_ways).contains(&hp_ways));
                }
                other => prop_assert!(false, "DICER only emits splits, got {other:?}"),
            }
        }
    }

    /// A full simulated period preserves the physical invariants for any
    /// workload mix and any valid partition plan: time advances exactly one
    /// period, every running app retires work, total traffic respects the
    /// link, and per-app occupancy fits the cache.
    #[test]
    fn server_period_invariants(
        hp in arb_phase(),
        bes in prop::collection::vec(arb_phase(), 1..9),
        hp_ways in 1u32..20,
    ) {
        use dicer::appmodel::{AppProfile, Archetype};
        use dicer::rdt::PartitionController;
        use dicer::server::{Server, ServerConfig};
        let mk = |name: String, ph: &Phase| {
            AppProfile::new(
                name,
                Archetype::CacheFriendly,
                vec![Phase { insns: u64::MAX / 2, ..ph.clone() }],
            )
        };
        let cfg = ServerConfig::table1();
        let bes_profiles: Vec<_> =
            bes.iter().enumerate().map(|(i, p)| mk(format!("be{i}"), p)).collect();
        let mut server = Server::new(cfg, mk("hp".into(), &hp), bes_profiles);
        server.apply_plan(PartitionPlan::Split { hp_ways });
        let sample = server.step_period();
        prop_assert!((server.time_s() - 1.0).abs() < 1e-9);
        prop_assert!(sample.hp.ipc > 0.0);
        prop_assert!(sample.total_bw_gbps <= cfg.link.capacity_gbps + 1e-9);
        prop_assert!(sample.hp.llc_occupancy_bytes <= cfg.cache.size_bytes);
        for be in &sample.bes {
            prop_assert!(be.ipc > 0.0);
            prop_assert!(be.llc_occupancy_bytes <= cfg.cache.size_bytes);
        }
        // HP's occupancy reflects its exclusive partition.
        let expected = hp_ways as u64 * cfg.cache.way_bytes();
        prop_assert_eq!(sample.hp.llc_occupancy_bytes, expected);
    }

    /// The overlap-share solver conserves the overlap region's capacity.
    #[test]
    fn overlap_shares_conserve_region(
        seeds in prop::collection::vec((1.0f64..40.0, 0.0f64..0.4, 0.5f64..1.0, 0.5f64..10.0, 0.0f64..10.0), 1..8),
        region in 1.0f64..12.0,
    ) {
        let curves: Vec<(f64, MissCurve, f64)> = seeds
            .iter()
            .map(|(apki, floor, ceil, wh, excl)| {
                (*apki, MissCurve::parametric(*floor, *ceil, *wh, 2.0), *excl)
            })
            .collect();
        let apps: Vec<(f64, &MissCurve, f64)> =
            curves.iter().map(|(a, c, e)| (*a, c, *e)).collect();
        let shares = contention::overlap_shares(&apps, region);
        let sum: f64 = shares.iter().sum();
        prop_assert!((sum - region).abs() < 1e-6);
        prop_assert!(shares.iter().all(|s| *s >= 0.0));
    }

    /// MBA levels form a bounded lattice under tighten/relax.
    #[test]
    fn mba_tighten_relax_bounded(steps in prop::collection::vec(any::<bool>(), 0..100)) {
        let mut level = MbaLevel::FULL;
        for tighten in steps {
            level = if tighten { level.tighten() } else { level.relax() };
            let pct = level.percent();
            prop_assert!((10..=100).contains(&pct) && pct.is_multiple_of(10));
        }
    }

    /// Fairness and weighted speedup relate sanely to EFU: fairness is in
    /// (0, 1], and EFU never exceeds the weighted speedup (HM <= AM).
    #[test]
    fn consolidation_metric_relations(values in prop::collection::vec(0.01f64..1.5, 1..12)) {
        let f = fairness(&values);
        prop_assert!(f > 0.0 && f <= 1.0 + 1e-12);
        prop_assert!(efu(&values) <= weighted_speedup(&values) + 1e-12);
    }

    /// Writeback accounting: every line written is eventually written back
    /// exactly once (evicted or flushed), never more.
    #[test]
    fn writeback_conservation(
        ops in prop::collection::vec((0u64..128, 0u16..3, any::<bool>()), 1..300),
    ) {
        let cfg = CacheConfig { size_bytes: 4 * 64 * 4, ways: 4, line_bytes: 64 };
        let mut cache = WriteBackCache::new(cfg);
        let mut writes_per_rmid = [0u64; 3];
        for (line, rmid, is_write) in &ops {
            let kind = if *is_write { AccessKind::Write } else { AccessKind::Read };
            cache.access_line(*line, *rmid, 0b1111, kind);
            if *is_write {
                writes_per_rmid[*rmid as usize] += 1;
            }
        }
        cache.flush();
        // Writebacks are charged to the RMID that *filled* the line (as on
        // real hardware), so a write hit from another class can shift the
        // charge — the conservation law only holds globally: at most one
        // writeback per write access, none without any write.
        let total_wb: u64 = (0u16..3).map(|r| cache.writebacks(r)).sum();
        let total_writes: u64 = writes_per_rmid.iter().sum();
        prop_assert!(total_wb <= total_writes);
        if total_writes == 0 {
            prop_assert_eq!(total_wb, 0);
        }
    }

    /// Cache occupancy accounting matches the valid-line count under
    /// arbitrary access interleavings and masks.
    #[test]
    fn cache_occupancy_invariant(
        ops in prop::collection::vec((0u64..256, 0u16..4, 0u32..8), 1..300),
    ) {
        let cfg = CacheConfig { size_bytes: 8 * 64 * 64, ways: 8, line_bytes: 64 };
        let mut cache = SetAssocCache::new(cfg, ReplacementKind::Lru);
        for (line, rmid, way) in ops {
            let mask = 1u32 << way;
            cache.access_line(line, rmid, mask);
            prop_assert_eq!(cache.total_valid_lines(), cache.total_occupancy_lines());
        }
    }
}

/// Phases sized so boundaries fall within a perturbation script's horizon
/// (seconds to tens of seconds at realistic IPC) — or never, for the
/// steady stretches that let the fingerprint actually skip.
fn arb_longrun_phase() -> impl Strategy<Value = Phase> {
    (
        prop_oneof![
            Just(700_000_000u64),
            Just(3_000_000_000u64),
            Just(u64::MAX / 2),
        ],
        0.3f64..1.5,
        0.0f64..50.0,
        1.0f64..5.0,
        arb_curve(),
    )
        .prop_map(|(insns, base_cpi, apki, mlp, curve)| Phase {
            insns,
            base_cpi,
            apki,
            mlp,
            curve,
        })
}

proptest! {
    // Each case replays a whole perturbation script through two servers;
    // fewer, heavier cases beat the default count here.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The period-input fingerprint fast path — skipping the ways refresh
    /// and the equilibrium solve wholesale whenever the plan, throttle,
    /// admission set and every phase index repeat — is bit-identical to
    /// cold stepping across random phase mixes and random
    /// plan/throttle/admission perturbation scripts.
    #[test]
    fn fingerprint_acceleration_is_bit_identical(
        hp_phases in prop::collection::vec(arb_longrun_phase(), 1..3),
        be_phases in prop::collection::vec(
            prop::collection::vec(arb_longrun_phase(), 1..3), 2..6),
        script in prop::collection::vec(
            (0u32..20, 0usize..4, 1u32..6, 1u32..4), 1..10),
    ) {
        use dicer::appmodel::{AppProfile, Archetype};
        use dicer::rdt::{MbaController, PartitionController};
        use dicer::server::{Server, ServerConfig};

        let hp = AppProfile::new("hp", Archetype::CacheFriendly, hp_phases);
        let bes: Vec<AppProfile> = be_phases
            .into_iter()
            .enumerate()
            .map(|(i, ph)| AppProfile::new(format!("be{i}"), Archetype::CacheFriendly, ph))
            .collect();
        let mut fast = Server::new(ServerConfig::table1(), hp.clone(), bes.clone());
        let mut cold = Server::new(ServerConfig::table1(), hp, bes);
        cold.set_acceleration(false);

        for (hp_ways, tighten, admitted, periods) in script {
            let plan = if hp_ways == 0 {
                PartitionPlan::Unmanaged
            } else {
                PartitionPlan::Split { hp_ways }
            };
            for s in [&mut fast, &mut cold] {
                s.apply_plan(plan);
                let mut level = MbaLevel::FULL;
                for _ in 0..tighten {
                    level = level.tighten();
                }
                s.set_be_throttle(level);
                Server::set_admitted_bes(s, admitted);
            }
            for _ in 0..periods {
                prop_assert_eq!(fast.step_period(), cold.step_period());
            }
        }
        // Both servers saw identical sub-period sequences, so the solve
        // request counts (skips included) must agree too.
        prop_assert_eq!(fast.solver_stats().solves, cold.solver_stats().solves);
        prop_assert_eq!(cold.solver_stats().fingerprint_skips, 0);
    }
}
