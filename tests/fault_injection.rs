//! Fault-injection layer against the live simulated server: determinism,
//! passthrough transparency, holdover semantics and actuator flakiness,
//! end to end through [`FaultyPlatform<Server>`].

use dicer::appmodel::Catalog;
use dicer::experiments::scenarios::{run_scenario, standard_suite, FaultScenario};
use dicer::experiments::{Session, SoloTable};
use dicer::policy::{Dicer, DicerConfig};
use dicer::rdt::{
    FaultConfig, FaultyPlatform, MonitoredPlatform, NoiseSpec, PartitionController, PeriodSample,
};
use dicer::server::{Server, ServerConfig};

const PERIODS: u32 = 30;

fn server(hp: &str, be: &str) -> Server {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    Server::new(
        cfg,
        catalog.get(hp).unwrap().clone(),
        vec![catalog.get(be).unwrap().clone(); 9],
    )
}

/// Runs a DICER loop over any monitored platform on the standard
/// [`Session`] runtime, collecting what each period delivered to the
/// controller (`None` where the sample was dropped) and handing the
/// platform back for inspection.
fn drive<P: MonitoredPlatform>(plat: P, periods: u32) -> (P, Vec<Option<PeriodSample>>) {
    let mut session = Session::new(plat, Dicer::new(DicerConfig::default()), periods);
    let mut seen = Vec::new();
    session.run_observed(
        |_, _| (),
        |step, _, _| seen.push(step.delivered.cloned()),
    );
    let (plat, _dicer) = session.into_parts();
    (plat, seen)
}

#[test]
fn disabled_faults_are_bit_identical_to_the_bare_server() {
    // With every injector off the wrapper must be a perfect no-op: same
    // delivered samples, same plans in force, same simulated time.
    let (_, bare) = drive(server("milc1", "gcc_base1"), PERIODS);
    let wrapped = FaultyPlatform::new(server("milc1", "gcc_base1"), FaultConfig::none(1));
    let (wrapped, through) = drive(wrapped, PERIODS);
    assert_eq!(bare, through, "passthrough must not alter a single bit");
    assert_eq!(wrapped.fault_stats(), Default::default());
    assert!(wrapped.injector().is_passthrough());
}

#[test]
fn same_seed_delivers_identical_faulted_streams() {
    let faults = FaultConfig {
        ipc_noise: NoiseSpec::multiplicative(0.05),
        bw_noise: NoiseSpec::multiplicative(0.10),
        drop_prob: 0.1,
        stale_prob: 0.1,
        ..FaultConfig::none(42)
    };
    let a = FaultyPlatform::new(server("omnetpp1", "gobmk1"), faults.clone());
    let b = FaultyPlatform::new(server("omnetpp1", "gobmk1"), faults);
    let (a, seen_a) = drive(a, PERIODS);
    let (b, seen_b) = drive(b, PERIODS);
    assert_eq!(seen_a, seen_b);
    assert_eq!(a.fault_stats(), b.fault_stats());
}

#[test]
fn different_seeds_deliver_different_faulted_streams() {
    let faults = |seed| FaultConfig {
        ipc_noise: NoiseSpec::multiplicative(0.05),
        ..FaultConfig::none(seed)
    };
    let a = FaultyPlatform::new(server("omnetpp1", "gobmk1"), faults(1));
    let b = FaultyPlatform::new(server("omnetpp1", "gobmk1"), faults(2));
    assert_ne!(drive(a, PERIODS).1, drive(b, PERIODS).1);
}

#[test]
fn sensor_noise_leaves_ground_truth_untouched() {
    // Noise perturbs what the controller sees, never what the server did:
    // wrapped and bare servers advance through identical simulated time as
    // long as the (noise-driven) plans coincide — so compare ground truth
    // after a run whose plans are pinned (no controller in the loop).
    let faults = FaultConfig {
        ipc_noise: NoiseSpec::multiplicative(0.05),
        bw_noise: NoiseSpec::multiplicative(0.10),
        ..FaultConfig::none(9)
    };
    let mut bare = server("milc1", "gcc_base1");
    let mut wrapped = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    let mut perturbed = 0;
    for _ in 0..PERIODS {
        let t = bare.step_period();
        let f = wrapped.step_period();
        assert_eq!(t.time_s, f.time_s, "noise must not bend simulated time");
        if (t.hp.ipc - f.hp.ipc).abs() > 0.0 {
            perturbed += 1;
        }
        assert_eq!(
            bare.hp().retired_insns,
            wrapped.inner().hp().retired_insns,
            "ground-truth progress must match under identical plans"
        );
    }
    assert!(perturbed > PERIODS / 2, "5% sigma noise should touch most periods");
}

#[test]
fn drop_storm_triggers_holdover_and_missing_period_accounting() {
    let faults = FaultConfig { drop_prob: 0.4, ..FaultConfig::none(3) };
    let plat = FaultyPlatform::new(server("omnetpp1", "gobmk1"), faults);
    let mut session = Session::new(plat, Dicer::new(DicerConfig::default()), PERIODS);
    let mut dropped = 0;
    session.run_observed(
        |_, _| (),
        |step, _, _| {
            if step.delivered.is_none() {
                dropped += 1;
            }
        },
    );
    let (plat, dicer) = session.into_parts();
    assert!(dropped > 0, "40% drops over 30 periods must lose something");
    assert_eq!(dicer.stats.missing_periods, dropped);
    assert_eq!(plat.fault_stats().dropped_samples, dropped);
}

#[test]
fn stale_counters_redeliver_the_previous_true_sample() {
    let faults = FaultConfig { stale_prob: 0.5, ..FaultConfig::none(5) };
    let mut truth = server("milc1", "gcc_base1");
    let mut wrapped = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    let mut prev_true: Option<PeriodSample> = None;
    let mut stale_seen = 0;
    for _ in 0..PERIODS {
        let t = truth.step_period();
        let f = wrapped.step_period();
        if f != t {
            // A stale delivery must equal the previous period's true
            // counters — except its timestamp, which the agent reads from
            // its own clock.
            let p = prev_true.as_ref().expect("stale cannot fire before any sample");
            assert_eq!(f.hp.ipc, p.hp.ipc, "stale sample must replay the previous IPC");
            assert_eq!(f.total_bw_gbps, p.total_bw_gbps);
            stale_seen += 1;
        }
        prev_true = Some(t);
    }
    assert!(stale_seen > 0, "50% staleness over 30 periods must fire");
    assert_eq!(wrapped.fault_stats().stale_samples, stale_seen);
}

#[test]
fn occupancy_quantisation_rounds_down_to_the_granule() {
    const Q: u64 = 64 * 1024;
    let faults = FaultConfig { occupancy_quantum_bytes: Q, ..FaultConfig::none(11) };
    let mut plat = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    for _ in 0..PERIODS {
        let s = plat.step_period();
        assert_eq!(s.hp.llc_occupancy_bytes % Q, 0);
        for be in &s.bes {
            assert_eq!(be.llc_occupancy_bytes % Q, 0);
        }
    }
}

#[test]
fn delayed_apply_lands_exactly_one_period_late() {
    // A certain delay with no failures: the plan is pending for the period
    // being stepped and in force from the next boundary on.
    let faults = FaultConfig { apply_delay_prob: 1.0, ..FaultConfig::none(13) };
    let mut plat = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    let before = plat.current_plan();
    let target = dicer::rdt::PartitionPlan::Split { hp_ways: 5 };
    plat.apply_plan(target);
    assert_eq!(plat.current_plan(), before, "delayed apply must not take effect yet");
    assert!(plat.apply_pending());
    plat.step_period();
    assert_eq!(plat.current_plan(), target, "the delayed plan lands one boundary later");
    assert!(!plat.apply_pending());
    assert_eq!(plat.fault_stats().delayed_applies, 1);
}

#[test]
fn failed_apply_burns_its_retry_budget_then_is_abandoned() {
    // A certain failure (retries fail too): the retry budget bounds how
    // long the stale partitioning can persist, then the plan is dropped.
    let faults = FaultConfig {
        apply_fail_prob: 1.0,
        max_apply_retries: 2,
        ..FaultConfig::none(13)
    };
    let mut plat = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    let before = plat.current_plan();
    plat.apply_plan(dicer::rdt::PartitionPlan::Split { hp_ways: 5 });
    assert!(plat.apply_pending());
    plat.step_period(); // retry 1 fails
    plat.step_period(); // retry 2 fails
    assert!(plat.apply_pending(), "budget not yet exhausted");
    plat.step_period(); // budget gone: abandoned
    assert!(!plat.apply_pending());
    assert_eq!(plat.current_plan(), before, "ground truth keeps the old plan");
    let fs = plat.fault_stats();
    assert_eq!(fs.failed_applies, 1);
    assert_eq!(fs.retried_applies, 2);
    assert_eq!(fs.abandoned_applies, 1);
}

#[test]
fn exhausted_retry_budget_abandons_the_plan() {
    // Zero retries and a certain failure: the plan is dropped at the next
    // period boundary and ground truth keeps the old partitioning.
    let faults =
        FaultConfig { apply_fail_prob: 1.0, max_apply_retries: 0, ..FaultConfig::none(17) };
    let mut plat = FaultyPlatform::new(server("milc1", "gcc_base1"), faults);
    let before = plat.current_plan();
    plat.apply_plan(dicer::rdt::PartitionPlan::Split { hp_ways: 3 });
    plat.step_period();
    assert_eq!(plat.current_plan(), before);
    assert!(!plat.apply_pending(), "no budget: the plan must be abandoned");
    assert_eq!(plat.fault_stats().abandoned_applies, 1);
}

#[test]
fn whole_standard_suite_is_deterministic() {
    // The robustness suite's contract: every scenario, same seed, same
    // bytes. (The `robustness_study` binary enforces the same invariant at
    // full length; short periods keep this test cheap.)
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    for sc in standard_suite(1234) {
        let short = FaultScenario { periods: 25, ..sc };
        let a = run_scenario(&catalog, &solo, &short).to_jsonl();
        let b = run_scenario(&catalog, &solo, &short).to_jsonl();
        assert_eq!(a, b, "scenario {} diverged between reruns", short.name);
        assert!(!a.is_empty() && a.lines().count() == 26);
    }
}

#[test]
fn clean_scenario_trace_is_independent_of_the_fault_seed() {
    // With all injectors disabled the seed must be irrelevant: the JSONL
    // trace is a function of the workload and controller alone.
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let clean = |seed| {
        let sc = standard_suite(seed)
            .into_iter()
            .find(|s| s.name == "clean_ctt")
            .unwrap();
        run_scenario(&catalog, &solo, &sc).to_jsonl()
    };
    assert_eq!(clean(1), clean(999));
}
