//! End-to-end checks that the paper's qualitative results hold in this
//! reproduction. Each test asserts a *shape* (who wins, roughly by how
//! much, where crossovers fall) rather than an absolute number.

use dicer::appmodel::Catalog;
use dicer::experiments::figures::{fig2, fig3};
use dicer::experiments::runner::run_colocation_with;
use dicer::experiments::SoloTable;
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::server::ServerConfig;

fn setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

/// Fig. 2: most applications reach near-peak solo performance with a small
/// fraction of the 20 ways (paper: ~50 % reach 99 % with ≤ 6 ways; ~90 %
/// reach 90 % with ≤ 5 ways).
#[test]
fn fig2_most_apps_need_few_ways() {
    let (catalog, solo) = setup();
    let f = fig2::run(&catalog, &solo);
    let frac99_at6 = f.fraction_at(0.99, 6);
    assert!(
        (0.35..=0.90).contains(&frac99_at6),
        "99%-of-peak at <=6 ways should cover roughly half the catalog, got {frac99_at6}"
    );
    let frac90_at5 = f.fraction_at(0.90, 5);
    assert!(frac90_at5 >= 0.70, "90%-of-peak at <=5 ways too rare: {frac90_at5}");
    // Nobody needs more ways for a looser target.
    for (name, mins) in &f.per_app {
        assert!(mins[0] <= mins[2], "{name}: min ways not monotone in target: {mins:?}");
    }
}

/// Fig. 3: for milc (HP) + 9 gcc (BEs), a small static HP allocation beats
/// CT, and UM sits near the best static configuration.
#[test]
fn fig3_u_shape_and_ct_penalty() {
    let (catalog, solo) = setup();
    let f = fig3::run_default(&catalog, &solo);
    let (best_ways, best) = f.best();
    assert!(best_ways <= 6, "best allocation should be small, got {best_ways}");
    let ct = f.ct_slowdown();
    assert!(ct > best * 1.1, "CT ({ct:.3}) must clearly lose to best ({best:.3})");
    assert!(
        f.um_slowdown < best * 1.15,
        "UM ({:.3}) should sit near the best static split ({best:.3})",
        f.um_slowdown
    );
    // The sweep should be (weakly) increasing from the best point to CT.
    let after_best: Vec<f64> = f
        .static_sweep
        .iter()
        .filter(|(w, _)| *w >= best_ways)
        .map(|(_, s)| *s)
        .collect();
    let violations = after_best.windows(2).filter(|w| w[1] < w[0] - 0.02).count();
    assert!(violations <= 1, "right arm of the U should rise: {after_best:?}");
}

/// Key Observation 1+2 combined, on the Fig. 3 workload: DICER must land
/// within a few percent of the best policy for the HP while leaving the BEs
/// far better off than CT does.
#[test]
fn dicer_tracks_best_of_um_and_ct() {
    let (catalog, solo) = setup();
    let cases = [
        ("omnetpp1", "lbm1"),  // CT-F: CT is the right answer
        ("milc1", "gcc_base1"), // CT-T: UM is the right answer
    ];
    for (hp_name, be_name) in cases {
        let hp = catalog.get(hp_name).unwrap();
        let be = catalog.get(be_name).unwrap();
        let um = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        let ct = run_colocation_with(&solo, hp, be, 10, &PolicyKind::CacheTakeover);
        let dicer = run_colocation_with(
            &solo,
            hp,
            be,
            10,
            &PolicyKind::Dicer(DicerConfig::default()),
        );
        let best = um.hp_norm_ipc.max(ct.hp_norm_ipc);
        assert!(
            dicer.hp_norm_ipc > best * 0.90,
            "{hp_name}+{be_name}: DICER HP {:.3} too far from best {best:.3}",
            dicer.hp_norm_ipc
        );
        // And DICER must beat CT for the BEs (it returns spare ways).
        assert!(
            dicer.be_norm_ipc_mean() > ct.be_norm_ipc_mean(),
            "{hp_name}+{be_name}: DICER BEs {:.3} not better than CT {:.3}",
            dicer.be_norm_ipc_mean(),
            ct.be_norm_ipc_mean()
        );
    }
}

/// Fig. 6 ordering at full occupancy: UM ≥ DICER ≥ CT on effective
/// utilisation, with a real gap between DICER and CT.
#[test]
fn efu_ordering_um_dicer_ct() {
    let (catalog, solo) = setup();
    let pairs = [("omnetpp1", "gcc_base1"), ("gcc_base1", "bzip21"), ("mcf1", "gobmk1")];
    let mut efus = [0.0f64; 3];
    for (hp_name, be_name) in pairs {
        let hp = catalog.get(hp_name).unwrap();
        let be = catalog.get(be_name).unwrap();
        let um = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        let ct = run_colocation_with(&solo, hp, be, 10, &PolicyKind::CacheTakeover);
        let dicer = run_colocation_with(
            &solo,
            hp,
            be,
            10,
            &PolicyKind::Dicer(DicerConfig::default()),
        );
        efus[0] += um.efu;
        efus[1] += dicer.efu;
        efus[2] += ct.efu;
    }
    assert!(efus[1] > efus[2] * 1.05, "DICER EFU {} must clearly beat CT {}", efus[1], efus[2]);
    assert!(efus[0] >= efus[1] * 0.98, "UM {} should top DICER {}", efus[0], efus[1]);
}

/// §2.3.2 (bandwidth saturation): under CT, the milc+gcc workload must
/// actually exceed DICER's 50 Gbps saturation threshold — the signal the
/// whole controller pivots on.
#[test]
fn ct_saturates_the_link_for_the_fig3_workload() {
    let (catalog, solo) = setup();
    let hp = catalog.get("milc1").unwrap();
    let be = catalog.get("gcc_base1").unwrap();
    let ct = run_colocation_with(&solo, hp, be, 10, &PolicyKind::CacheTakeover);
    assert!(
        ct.mean_total_bw_gbps > 50.0,
        "CT should saturate the link: {:.1} Gbps",
        ct.mean_total_bw_gbps
    );
    let um = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
    assert!(
        um.mean_total_bw_gbps < ct.mean_total_bw_gbps,
        "UM ({:.1}) should load the link less than CT ({:.1})",
        um.mean_total_bw_gbps,
        ct.mean_total_bw_gbps
    );
}
