//! End-to-end deterministic alerting: a scripted overload scenario runs
//! through the real Session runtime with the observability plane on the
//! bus, the SLO burn-rate rule fires at a pinned period, and the flight
//! recorder's incident bundle is byte-for-byte reproducible — pinned in
//! `tests/goldens/incident_burn_rate.jsonl` (bootstrapped on first run,
//! byte-compared thereafter) and identical across reruns and test/thread
//! parallelism.
//!
//! The scenario: an eternal cache-friendly HP co-located with nine
//! eternal bandwidth-hog BEs. DICER partitions the cache but has no
//! bandwidth lever here, so the HP's normalized IPC sits below the SLO
//! objective period after period; the multi-window burn-rate rule fires
//! at the first evaluation where both windows are full. Every profile is
//! hand-built (no catalog RNG), so the whole pipeline — samples, alert
//! edges, bundle bytes — is environment-independent.

use dicer::appmodel::{AppProfile, Archetype, MissCurve, Phase};
use dicer::experiments::runner::run_colocation_instrumented;
use dicer::experiments::SoloTable;
use dicer::obs::{standard_rules, ObsConfig, ObsPlane, ObsSink};
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::server::ServerConfig;
use dicer::telemetry::{FanoutSink, RingRecorder, Telemetry, TelemetrySink};
use std::path::Path;
use std::sync::Arc;

/// Long enough for the standard burn-rate rule's 512-period long window
/// to fill, plus slack to prove the alert stays firing.
const PERIODS: u32 = 600;

/// The standard rule set fires the burn-rate rule at the first full
/// evaluation: period index `long - 1`.
const PINNED_FIRE_PERIOD: u64 = 511;

fn hp() -> AppProfile {
    AppProfile::new(
        "obs_hp",
        Archetype::CacheFriendly,
        vec![Phase {
            insns: u64::MAX / 2,
            base_cpi: 0.6,
            apki: 22.0,
            mlp: 3.0,
            curve: MissCurve::parametric(0.4, 0.6, 1.3, 2.0),
        }],
    )
}

fn be() -> AppProfile {
    AppProfile::new(
        "obs_be_hog",
        Archetype::CacheFriendly,
        vec![Phase {
            insns: u64::MAX / 2,
            base_cpi: 0.5,
            apki: 40.0,
            mlp: 4.0,
            curve: MissCurve::flat(0.9),
        }],
    )
}

/// Runs the scripted scenario once and returns the plane for inspection.
fn run_scenario() -> Arc<ObsPlane> {
    let (hp, be) = (hp(), be());
    let solo = SoloTable::build_from_profiles([&hp, &be], ServerConfig::table1());
    let plane = Arc::new(ObsPlane::new(ObsConfig {
        hp_solo_ipc: Some(solo.get("obs_hp").ipc_alone),
        // The burn-rate rule alone: one firing edge, one bundle.
        rules: standard_rules().into_iter().take(1).collect(),
        ..Default::default()
    }));
    let ring = Arc::new(RingRecorder::new(256));
    plane.attach_ring(ring.clone());
    let telemetry = Telemetry::new(Arc::new(FanoutSink::new(vec![
        ring as Arc<dyn TelemetrySink>,
        Arc::new(ObsSink::new(plane.clone())),
    ])));
    let out = run_colocation_instrumented(
        &solo,
        &hp,
        &be,
        10,
        &PolicyKind::Dicer(DicerConfig::default()),
        PERIODS,
        &telemetry,
    );
    assert_eq!(out.periods, PERIODS, "the eternal BEs must keep the run at the cap");
    assert!(
        out.hp_norm_ipc < 0.95,
        "the scenario must violate the SLO for the rule to have fired ({})",
        out.hp_norm_ipc
    );
    plane
}

#[test]
fn burn_rate_fires_at_the_pinned_period_and_bundle_matches_the_golden() {
    let plane = run_scenario();

    // The alert fired exactly once, at the pinned period, and is still
    // firing at the end of the run (the overload never clears).
    assert_eq!(plane.firing_count(), 1, "burn-rate alert must be firing");
    assert_eq!(plane.incidents_total(), 1, "exactly one firing edge, one bundle");
    let alerts = plane.alerts_json();
    assert!(alerts.contains("\"alerts_firing\":1"), "{alerts}");
    assert!(alerts.contains("\"rule\":\"hp-slo-burn-rate\""), "{alerts}");
    assert!(alerts.contains(&format!("\"fired_period\":{PINNED_FIRE_PERIOD}")), "{alerts}");

    let incidents = plane.incidents();
    let (name, bundle) = &incidents[0];
    assert_eq!(name, &format!("incident_hp-slo-burn-rate_p{PINNED_FIRE_PERIOD}.jsonl"));
    assert!(bundle.contains("\"events\":[{\"event\":"), "ring events missing: {bundle}");
    assert!(bundle.contains("\"controllers\":[{\"name\":\"DICER\""), "summaries missing: {bundle}");

    // Byte-for-byte against the committed golden (bootstrapped once).
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/goldens/incident_burn_rate.jsonl");
    if path.exists() {
        let pinned = std::fs::read_to_string(&path).expect("golden readable");
        assert_eq!(
            pinned,
            *bundle,
            "incident bundle diverged from the pinned golden {} — an intentional \
             behaviour change must recut it",
            path.display()
        );
    } else {
        std::fs::create_dir_all(path.parent().unwrap()).expect("goldens dir");
        std::fs::write(&path, bundle).expect("golden writable");
        eprintln!("bootstrapped {}; commit it to pin the bundle", path.display());
    }
}

/// The same scenario replayed concurrently on several threads produces
/// identical bundles — alerting does not depend on scheduling, test
/// parallelism, or how many jobs the harness runs with.
#[test]
fn alerting_is_reproducible_across_reruns_and_parallelism() {
    let reference = run_scenario().incidents();
    assert_eq!(reference.len(), 1);
    let handles: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(|| run_scenario().incidents()))
        .collect();
    for h in handles {
        assert_eq!(h.join().expect("scenario thread"), reference, "parallel replay diverged");
    }
}
