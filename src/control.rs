//! The `POST /control` command surface of `dicerd`.
//!
//! A control request is a tiny form-encoded body (`policy=dicer-mba`,
//! `hp=milc1&be=lbm1`, `pause=1`, or any combination) parsed with the
//! same strict [`parse_query_params`] contract the query strings use:
//! unknown keys, duplicated keys, malformed values and empty requests
//! are all client errors — never silently ignored. A validated
//! [`ControlRequest`] travels from the HTTP handler to the simulation
//! thread over a lock-free mailbox and is applied *between* periods, so
//! retargeting never tears a run mid-step.

use crate::cli::{parse_policy, parse_query_params};
use dicer_policy::PolicyKind;

/// One validated retargeting request. Every field is optional; at least
/// one must be set (an empty request is a 400, not a no-op).
#[derive(Debug, Clone, PartialEq)]
pub struct ControlRequest {
    /// Switch the active policy (takes effect on the next run).
    pub policy: Option<PolicyKind>,
    /// Switch the HP application (catalog name, validated at parse time).
    pub hp: Option<String>,
    /// Switch the BE application (catalog name, validated at parse time).
    pub be: Option<String>,
    /// Pause (`true`) or resume (`false`) the simulation loop.
    pub pause: Option<bool>,
}

impl ControlRequest {
    /// Whether the request changes what is being simulated (policy or
    /// workload), as opposed to only pausing/resuming. Fleet mode rejects
    /// workload retargets (nodes run their configured mix) but accepts
    /// pause.
    pub fn retargets_workload(&self) -> bool {
        self.policy.is_some() || self.hp.is_some() || self.be.is_some()
    }

    /// Summarises the accepted request as a small JSON object (the 200
    /// response body), listing exactly the fields that were set.
    pub fn to_json(&self) -> String {
        let mut fields = vec![r#""status":"accepted""#.to_string()];
        if let Some(p) = &self.policy {
            fields.push(format!(r#""policy":"{}""#, p.name()));
        }
        if let Some(hp) = &self.hp {
            fields.push(format!(r#""hp":"{hp}""#));
        }
        if let Some(be) = &self.be {
            fields.push(format!(r#""be":"{be}""#));
        }
        if let Some(p) = self.pause {
            fields.push(format!(r#""pause":{p}"#));
        }
        format!("{{{}}}\n", fields.join(","))
    }
}

/// Parses and validates a `POST /control` body. `app_exists` answers
/// whether a catalog application name is known (the daemon passes a
/// lookup into its catalog), so an invalid workload is rejected at the
/// HTTP layer — the sim thread only ever sees appliable requests.
pub fn parse_control_body(
    body: &str,
    app_exists: impl Fn(&str) -> bool,
) -> Result<ControlRequest, String> {
    let params = parse_query_params(body.trim(), &["policy", "hp", "be", "pause"])?;
    if params.is_empty() {
        return Err(
            "control request must set at least one of policy, hp, be, pause".to_string()
        );
    }
    let policy = match params.get("policy") {
        None => None,
        Some(spec) => Some(parse_policy(spec)?),
    };
    let app = |key: &str| -> Result<Option<String>, String> {
        match params.get(key) {
            None => Ok(None),
            Some(name) if app_exists(name) => Ok(Some(name.clone())),
            Some(name) => Err(format!("unknown {key} application {name:?}")),
        }
    };
    let hp = app("hp")?;
    let be = app("be")?;
    let pause = match params.get("pause").map(String::as_str) {
        None => None,
        Some("0") => Some(false),
        Some("1") => Some(true),
        Some(other) => return Err(format!("bad pause {other:?}: must be 0 or 1")),
    };
    Ok(ControlRequest { policy, hp, be, pause })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_policy::DicerConfig;

    fn apps(name: &str) -> bool {
        ["milc1", "lbm1", "gcc_base1"].contains(&name)
    }

    /// The accepted/rejected transition table: one row per control body,
    /// with the expected parse outcome. The daemon's HTTP layer builds
    /// directly on this function, so the table is the API contract.
    #[test]
    fn control_body_transition_table() {
        let accepted: &[(&str, ControlRequest)] = &[
            (
                "policy=dicer-mba",
                ControlRequest {
                    policy: Some(PolicyKind::DicerMba(DicerConfig::default())),
                    hp: None,
                    be: None,
                    pause: None,
                },
            ),
            (
                "policy=static:7",
                ControlRequest {
                    policy: Some(PolicyKind::Static(7)),
                    hp: None,
                    be: None,
                    pause: None,
                },
            ),
            (
                "hp=milc1&be=lbm1",
                ControlRequest {
                    policy: None,
                    hp: Some("milc1".into()),
                    be: Some("lbm1".into()),
                    pause: None,
                },
            ),
            (
                "pause=1",
                ControlRequest { policy: None, hp: None, be: None, pause: Some(true) },
            ),
            (
                "pause=0",
                ControlRequest { policy: None, hp: None, be: None, pause: Some(false) },
            ),
            (
                "policy=um&hp=gcc_base1&be=gcc_base1&pause=0",
                ControlRequest {
                    policy: Some(PolicyKind::Unmanaged),
                    hp: Some("gcc_base1".into()),
                    be: Some("gcc_base1".into()),
                    pause: Some(false),
                },
            ),
            // Surrounding whitespace (curl -d adds none, humans might).
            (
                "  policy=ct  ",
                ControlRequest {
                    policy: Some(PolicyKind::CacheTakeover),
                    hp: None,
                    be: None,
                    pause: None,
                },
            ),
        ];
        for (body, want) in accepted {
            let got = parse_control_body(body, apps)
                .unwrap_or_else(|e| panic!("{body:?} must parse: {e}"));
            assert_eq!(&got, want, "{body:?}");
        }

        let rejected: &[(&str, &str)] = &[
            ("", "at least one"),
            ("   ", "at least one"),
            ("policy=herakles", "unknown policy"),
            ("policy=static:x", "bad static ways"),
            ("hp=nosuchapp", "unknown hp application"),
            ("be=nosuchapp", "unknown be application"),
            ("pause=2", "must be 0 or 1"),
            ("pause=true", "must be 0 or 1"),
            ("pause=", "must be 0 or 1"),
            ("verbose=1", "unknown query parameter"),
            ("policy=um&policy=ct", "more than once"),
            ("policy=um&verbose=1", "unknown query parameter"),
        ];
        for (body, needle) in rejected {
            let err = parse_control_body(body, apps)
                .expect_err(&format!("{body:?} must be rejected"));
            assert!(err.contains(needle), "{body:?}: error {err:?} must mention {needle:?}");
        }
    }

    #[test]
    fn workload_retarget_classification() {
        let parse = |b| parse_control_body(b, apps).unwrap();
        assert!(parse("policy=um").retargets_workload());
        assert!(parse("hp=milc1").retargets_workload());
        assert!(parse("be=lbm1").retargets_workload());
        assert!(!parse("pause=1").retargets_workload());
        assert!(parse("policy=um&pause=1").retargets_workload());
    }

    #[test]
    fn accepted_response_lists_exactly_the_set_fields() {
        let cr = parse_control_body("policy=dicer&pause=1", apps).unwrap();
        assert_eq!(cr.to_json(), "{\"status\":\"accepted\",\"policy\":\"DICER\",\"pause\":true}\n");
        let cr = parse_control_body("hp=milc1", apps).unwrap();
        assert_eq!(cr.to_json(), "{\"status\":\"accepted\",\"hp\":\"milc1\"}\n");
    }
}
