//! The embeddable `dicerd` daemon: simulation thread + netd event loop.
//!
//! This module is everything the `dicerd` binary used to be, minus the
//! argument parsing: [`Daemon::start`] binds the listener, spawns the
//! simulation thread (classic co-location runs or the fleet control
//! plane) and the network thread (a [`dicer_netd`] event loop serving
//! every endpoint concurrently from one thread), and hands back a
//! [`DaemonHandle`] for clean shutdown. Keeping it in the library makes
//! the full daemon — routes, retargeting, drain-on-quit — testable
//! in-process on an ephemeral port, which is how `tests/dicerd_api.rs`
//! exercises it.
//!
//! ```text
//!        HTTP clients                    simulation thread
//!             │                                 ▲
//!             ▼                                 │ drains between
//!   ┌─────────────────────┐   ControlRequest    │ periods/rounds
//!   │ netd EventLoop      │ ──── Mailbox ─────► │
//!   │  DicerdHandler      │   (lock-free push)  │
//!   │  /metrics /events   │ ◄─── registry ───── │ (atomic observes)
//!   │  /healthz /fleet    │ ◄─── ring ───────── │ (seq-stamped slots)
//!   │  /control /quit     │ ◄─── fleet_json ─── │ (snapshot swap)
//!   └─────────────────────┘
//! ```
//!
//! The two threads never share a lock on a hot path: telemetry flows
//! through the registry's atomics and the ring's per-slot mutexes, and
//! control flows the other way through a Treiber-stack mailbox the sim
//! thread drains at run boundaries — a retarget never tears a period.

use crate::appmodel::Catalog;
use crate::cli::{parse_events_query, parse_query_params, parse_range_query};
use crate::control::{parse_control_body, ControlRequest};
use crate::experiments::runner::{run_colocation_traced_until, MAX_PERIODS};
use crate::experiments::{SoloTable, SweepRunner};
use crate::fleet::{Fleet, FleetConfig, SchedulerKind};
use crate::netd::{
    EventLoop, Handler, Mailbox, Method, NetConfig, Reply, Request, ServerMetrics, StreamStatus,
    Streamer,
};
use crate::obs::{IncidentConfig, ObsConfig, ObsPlane, ObsSink};
use crate::server::ServerConfig;
use crate::telemetry::{
    Counter, FanoutSink, Gauge, Histogram, MetricsRegistry, RingRecorder, Telemetry,
    TelemetryEvent, TelemetrySink, Tracer, STAGE_SECONDS_BOUNDS,
};
use dicer_policy::PolicyKind;
use std::collections::HashSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Everything `dicerd` is configured by. The binary fills this from
/// flags; tests fill it directly (with `port: 0` for an ephemeral bind).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// HP application (catalog name).
    pub hp: String,
    /// BE application (catalog name; every BE is an instance of it).
    pub be: String,
    /// Employed cores (1 HP + n−1 BEs).
    pub cores: u32,
    /// Consolidation policy.
    pub policy: PolicyKind,
    /// Listen port on 127.0.0.1 (`0` picks an ephemeral port).
    pub port: u16,
    /// Telemetry ring capacity (events).
    pub ring_cap: usize,
    /// Stop after this many runs/rounds (`0` = unbounded).
    pub max_runs: u64,
    /// Sleep between runs/rounds, milliseconds.
    pub pause_ms: u64,
    /// `> 0` switches the daemon into fleet-control-plane mode.
    pub fleet_nodes: usize,
    /// Placement scheduler for fleet mode.
    pub fleet_scheduler: SchedulerKind,
    /// Fleet RNG seed.
    pub seed: u64,
    /// Event-loop tuning (connection bound, tick, idle/drain budgets).
    pub net: NetConfig,
    /// Where the flight recorder persists incident bundles (`None`
    /// keeps them in memory; the binary passes `results/incidents`).
    pub incidents_dir: Option<std::path::PathBuf>,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            hp: "milc1".to_string(),
            be: "gcc_base1".to_string(),
            cores: 10,
            policy: PolicyKind::Dicer(Default::default()),
            port: 9090,
            ring_cap: 1024,
            max_runs: 0,
            pause_ms: 0,
            fleet_nodes: 0,
            fleet_scheduler: SchedulerKind::Migrate,
            seed: 42,
            net: NetConfig::default(),
            incidents_dir: None,
        }
    }
}

/// What the daemon is doing right now, refreshed by the sim thread after
/// every retarget and reported by `/healthz`.
#[derive(Debug, Clone)]
pub struct DaemonStatus {
    pub policy: String,
    pub hp: String,
    pub be: String,
    pub paused: bool,
}

/// Folds the telemetry stream into the metrics registry. Period-sample
/// fields land in pre-registered histograms (lock-free observes);
/// controller and fault events count into labelled counter series. The
/// solo-IPC reference is an atomic because `POST /control` can retarget
/// the HP application while the sink keeps normalising live periods.
pub struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    hp_solo_ipc_bits: AtomicU64,
    periods_total: Counter,
    applies_total: Counter,
    hp_ipc: Histogram,
    hp_norm_ipc: Histogram,
    total_bw: Histogram,
    hp_ways: Histogram,
    hp_ways_now: Gauge,
}

impl MetricsSink {
    pub fn new(registry: Arc<MetricsRegistry>, hp_solo_ipc: f64, link_gbps: f64) -> Self {
        let ipc_bounds = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0];
        let norm_bounds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05];
        let bw_bounds: Vec<f64> = (1..=10).map(|i| link_gbps * i as f64 / 10.0).collect();
        let way_bounds: Vec<f64> = (1..=20).map(|w| w as f64).collect();
        MetricsSink {
            periods_total: registry.counter(
                "dicer_periods_total",
                "Monitoring periods simulated",
                &[],
            ),
            applies_total: registry.counter(
                "dicer_partition_applies_total",
                "Partition plans programmed onto the platform",
                &[],
            ),
            hp_ipc: registry.histogram(
                "dicer_hp_ipc",
                "HP IPC per monitoring period",
                &[],
                &ipc_bounds,
            ),
            hp_norm_ipc: registry.histogram(
                "dicer_hp_norm_ipc",
                "HP IPC per period, normalised to the solo reference",
                &[],
                &norm_bounds,
            ),
            total_bw: registry.histogram(
                "dicer_total_bw_gbps",
                "Total link traffic per period, Gbps",
                &[],
                &bw_bounds,
            ),
            hp_ways: registry.histogram(
                "dicer_hp_ways",
                "HP cache ways in force per period",
                &[],
                &way_bounds,
            ),
            hp_ways_now: registry.gauge(
                "dicer_hp_ways_current",
                "HP cache ways of the most recently applied plan",
                &[],
            ),
            registry,
            hp_solo_ipc_bits: AtomicU64::new(hp_solo_ipc.to_bits()),
        }
    }

    /// Swaps the solo-IPC normalisation reference (HP retarget).
    pub fn set_hp_solo_ipc(&self, ipc: f64) {
        self.hp_solo_ipc_bits.store(ipc.to_bits(), Ordering::Relaxed);
    }

    fn hp_solo_ipc(&self) -> f64 {
        f64::from_bits(self.hp_solo_ipc_bits.load(Ordering::Relaxed))
    }
}

impl TelemetrySink for MetricsSink {
    fn emit(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::Period(p) => {
                self.periods_total.inc();
                self.hp_ipc.observe(p.hp_ipc);
                self.hp_norm_ipc.observe(p.hp_ipc / self.hp_solo_ipc());
                self.total_bw.observe(p.total_bw_gbps);
                self.hp_ways.observe(p.hp_ways as f64);
            }
            TelemetryEvent::Controller { event, .. } => {
                self.registry
                    .counter(
                        "dicer_controller_events_total",
                        "Controller state-machine events by kind",
                        &[("event", event.kind())],
                    )
                    .inc();
            }
            // Registered controllers report their framework status through
            // ControllerPolicy: one event per (state, severity) change. The
            // severity code lands in a per-controller gauge so dashboards
            // and alerts see "how bad is it right now" without parsing
            // state strings; transitions also count into a labelled series.
            TelemetryEvent::ControllerStatus { name, state, severity, .. } => {
                self.registry
                    .gauge(
                        "dicer_controller_severity",
                        "Current severity code of a registered controller \
                         (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
                        &[("controller", name)],
                    )
                    .set(*severity as f64);
                self.registry
                    .counter(
                        "dicer_controller_transitions_total",
                        "Controller (state, severity) changes by controller and state",
                        &[("controller", name), ("state", state)],
                    )
                    .inc();
            }
            TelemetryEvent::PartitionApplied { hp_ways, .. } => {
                self.applies_total.inc();
                self.hp_ways_now.set(*hp_ways as f64);
            }
            TelemetryEvent::Fault { label } => {
                self.registry
                    .counter(
                        "dicer_fault_events_total",
                        "Injected fault events by kind",
                        &[("event", label)],
                    )
                    .inc();
            }
            // Self-profiling: each closed span with a wall-clock reading
            // feeds a per-stage latency histogram. Sim-clock-only spans
            // carry no duration in seconds and are skipped.
            TelemetryEvent::Span(s) => {
                if let Some(wall_ns) = s.wall_ns {
                    self.registry
                        .histogram(
                            "dicer_stage_seconds",
                            "Wall-clock seconds spent per pipeline stage (from spans)",
                            &[("stage", s.name)],
                            &STAGE_SECONDS_BOUNDS,
                        )
                        .observe(wall_ns as f64 / 1e9);
                }
            }
            // Scenario-trace events are not produced on the daemon's path.
            TelemetryEvent::Decision(_) | TelemetryEvent::ScenarioSummary(_) => {}
        }
    }
}

/// Maps the event loop's connection hooks onto `dicer_conn_*` series.
struct ConnMetrics {
    registry: Arc<MetricsRegistry>,
    accepted: Counter,
    closed: Counter,
    rejected: Counter,
    parse_errors: Counter,
    active: Gauge,
}

impl ConnMetrics {
    fn new(registry: Arc<MetricsRegistry>) -> Self {
        ConnMetrics {
            accepted: registry.counter(
                "dicer_conn_accepted_total",
                "Connections accepted by the event loop",
                &[],
            ),
            closed: registry.counter(
                "dicer_conn_closed_total",
                "Connections closed (any reason: done, idle, drain)",
                &[],
            ),
            rejected: registry.counter(
                "dicer_conn_rejected_total",
                "Connections refused 503 at the max_conns bound",
                &[],
            ),
            parse_errors: registry.counter(
                "dicer_conn_parse_errors_total",
                "Requests answered with a parse-level error status",
                &[],
            ),
            active: registry.gauge(
                "dicer_conn_active",
                "Connections currently registered with the event loop",
                &[],
            ),
            registry,
        }
    }
}

const REQUEST_SECONDS_BOUNDS: [f64; 7] = [1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0];

impl ServerMetrics for ConnMetrics {
    fn conn_accepted(&self) {
        self.accepted.inc();
    }
    fn conn_closed(&self) {
        self.closed.inc();
    }
    fn conn_rejected_at_limit(&self) {
        self.rejected.inc();
    }
    fn parse_error(&self) {
        self.parse_errors.inc();
    }
    fn request_served(&self, endpoint: &str, seconds: f64) {
        self.registry
            .histogram(
                "dicer_conn_request_seconds",
                "Wall-clock seconds from dispatch to response render, per endpoint",
                &[("endpoint", endpoint)],
                &REQUEST_SECONDS_BOUNDS,
            )
            .observe(seconds);
    }
    fn stream_started(&self, endpoint: &str) {
        self.registry
            .counter(
                "dicer_conn_streams_total",
                "Streaming (chunked) responses started, per endpoint",
                &[("endpoint", endpoint)],
            )
            .inc();
    }
    fn conns_active(&self, n: usize) {
        self.active.set(n as f64);
    }
}

/// Renders a client error as the JSON body every endpoint answers
/// 4xx/5xx with.
fn json_error(message: &str) -> String {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    format!("{{\"error\":\"{escaped}\"}}\n")
}

/// `GET /events?follow=1`: an endless NDJSON feed off the telemetry
/// ring. Each poll reads forward from a cursor; a reader too slow for
/// the ring's retention gets a `{"skipped":N}` notice instead of
/// blocking the producer (the ring never waits on consumers).
struct EventStreamer {
    ring: Arc<RingRecorder>,
    cursor: u64,
}

/// Events drained from the ring per streamer poll. Bounds the bytes one
/// slow client can queue in a single event-loop pass.
const FOLLOW_BATCH: usize = 128;

impl Streamer for EventStreamer {
    fn poll(&mut self, out: &mut Vec<u8>, shutting_down: bool) -> StreamStatus {
        if shutting_down {
            return StreamStatus::Done;
        }
        let (events, next, skipped) = self.ring.read_since(self.cursor, FOLLOW_BATCH);
        if skipped > 0 {
            out.extend_from_slice(format!("{{\"skipped\":{skipped}}}\n").as_bytes());
        }
        for ev in &events {
            out.extend_from_slice(ev.to_json().as_bytes());
            out.push(b'\n');
        }
        self.cursor = next;
        StreamStatus::Pending
    }
}

/// Routes requests. Runs inline on the event-loop thread, so every arm
/// only reads shared state (registry render, ring drain, snapshot lock)
/// or pushes to the lock-free mailbox — nothing here blocks on the sim.
struct DicerdHandler {
    registry: Arc<MetricsRegistry>,
    ring: Arc<RingRecorder>,
    obs: Arc<ObsPlane>,
    shutdown: Arc<AtomicBool>,
    mailbox: Arc<Mailbox<ControlRequest>>,
    status: Arc<Mutex<DaemonStatus>>,
    fleet_json: Option<Arc<Mutex<String>>>,
    fleet_nodes: usize,
    known_apps: HashSet<String>,
}

impl DicerdHandler {
    fn healthz(&self) -> Reply {
        // Liveness plus a self-diagnosis snapshot. Registry lookups are
        // idempotent, so this reads the sim thread's counter.
        let periods = self
            .registry
            .counter("dicer_periods_total", "Monitoring periods simulated", &[])
            .get();
        let status = self.status.lock().unwrap().clone();
        let body = format!(
            "{{\"status\":\"ok\",\"version\":\"{}\",\"uptime_periods\":{},\"nodes\":{},\
             \"events_dropped\":{},\"alerts_firing\":{},\"policy\":\"{}\",\"hp\":\"{}\",\
             \"be\":\"{}\",\"paused\":{}}}\n",
            env!("CARGO_PKG_VERSION"),
            periods,
            self.fleet_nodes,
            self.ring.dropped(),
            self.obs.firing_count(),
            status.policy,
            status.hp,
            status.be,
            status.paused,
        );
        Reply::full("/healthz", "200 OK", "application/json", body)
    }

    fn events(&self, query: &str) -> Reply {
        match parse_events_query(query) {
            Err(e) => {
                Reply::full("/events", "400 Bad Request", "application/json", json_error(&e))
            }
            Ok((n, false)) => {
                let lines: Vec<String> =
                    self.ring.recent(n.unwrap_or(100)).iter().map(TelemetryEvent::to_json).collect();
                let body = format!("[{}]\n", lines.join(","));
                Reply::full("/events", "200 OK", "application/json", body)
            }
            Ok((n, true)) => {
                // Follow mode starts `n` events back (0 without an explicit
                // n: live tail only); read_since clamps to what the ring
                // still retains and reports the difference as skipped.
                let cursor = self.ring.cursor_now().saturating_sub(n.unwrap_or(0) as u64);
                Reply::stream(
                    "/events",
                    "200 OK",
                    "application/x-ndjson",
                    Box::new(EventStreamer { ring: self.ring.clone(), cursor }),
                )
            }
        }
    }

    fn fleet(&self, query: &str) -> Reply {
        match &self.fleet_json {
            None => Reply::full(
                "/fleet",
                "404 Not Found",
                "application/json",
                json_error("fleet mode is off (start dicerd with --fleet-nodes N)"),
            ),
            // The snapshot takes no parameters; anything in the query
            // string is a client error, same contract as /events.
            Some(snapshot) => match parse_query_params(query, &[]) {
                Ok(_) => {
                    let body = format!("{}\n", snapshot.lock().unwrap());
                    Reply::full("/fleet", "200 OK", "application/json", body)
                }
                Err(e) => {
                    Reply::full("/fleet", "400 Bad Request", "application/json", json_error(&e))
                }
            },
        }
    }

    /// `GET /query?metric=NAME[&start=P&end=P&step=N]`: a range read
    /// from the observability plane's period-series store. Strict on
    /// parameters (400), explicit on unknown series (404 naming what is
    /// queryable).
    fn query(&self, query: &str) -> Reply {
        match parse_range_query(query) {
            Err(e) => {
                Reply::full("/query", "400 Bad Request", "application/json", json_error(&e))
            }
            Ok((metric, start, end, step)) => match self.obs.query_json(&metric, start, end, step)
            {
                Some(body) => Reply::full("/query", "200 OK", "application/json", body),
                None => Reply::full(
                    "/query",
                    "404 Not Found",
                    "application/json",
                    json_error(&format!(
                        "unknown metric {metric:?} — series are the obs_* keys plus every \
                         scraped registry scalar"
                    )),
                ),
            },
        }
    }

    /// `GET /alerts`: currently firing alerts plus bounded resolved
    /// history. Takes no parameters.
    fn alerts(&self, query: &str) -> Reply {
        match parse_query_params(query, &[]) {
            Ok(_) => {
                Reply::full("/alerts", "200 OK", "application/json", self.obs.alerts_json())
            }
            Err(e) => {
                Reply::full("/alerts", "400 Bad Request", "application/json", json_error(&e))
            }
        }
    }

    fn control(&self, req: &Request) -> Reply {
        let Ok(body) = std::str::from_utf8(&req.body) else {
            return Reply::full(
                "/control",
                "400 Bad Request",
                "application/json",
                json_error("control body must be UTF-8"),
            );
        };
        let cr = match parse_control_body(body, |name| self.known_apps.contains(name)) {
            Ok(cr) => cr,
            Err(e) => {
                return Reply::full(
                    "/control",
                    "400 Bad Request",
                    "application/json",
                    json_error(&e),
                )
            }
        };
        // Fleet nodes run their configured mixes; only pause/resume makes
        // sense fleet-wide. Workload retargets are a conflict, not a 400 —
        // the request is well-formed, the daemon's mode refuses it.
        if self.fleet_nodes > 0 && cr.retargets_workload() {
            return Reply::full(
                "/control",
                "409 Conflict",
                "application/json",
                json_error("fleet mode accepts only pause; restart to change workloads"),
            );
        }
        let response = cr.to_json();
        self.mailbox.push(cr);
        Reply::full("/control", "200 OK", "application/json", response)
    }
}

impl Handler for DicerdHandler {
    fn handle(&mut self, req: &Request) -> Reply {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/healthz") => self.healthz(),
            (Method::Get, "/metrics") => Reply::full(
                "/metrics",
                "200 OK",
                "text/plain; version=0.0.4",
                self.registry.render(),
            ),
            (Method::Get, "/events") => self.events(&req.query),
            (Method::Get, "/fleet") => self.fleet(&req.query),
            (Method::Get, "/query") => self.query(&req.query),
            (Method::Get, "/alerts") => self.alerts(&req.query),
            (Method::Get, "/quit") => {
                self.shutdown.store(true, Ordering::Relaxed);
                Reply::full("/quit", "200 OK", "text/plain", "shutting down\n")
            }
            (Method::Post, "/control") => self.control(req),
            // Known path, wrong verb: 405 names the one verb that works.
            (_, "/healthz" | "/metrics" | "/events" | "/fleet" | "/query" | "/alerts" | "/quit") => {
                Reply::full("other", "405 Method Not Allowed", "text/plain", "GET only\n")
            }
            (_, "/control") => {
                Reply::full("other", "405 Method Not Allowed", "text/plain", "POST only\n")
            }
            _ => Reply::full("other", "404 Not Found", "text/plain", "not found\n"),
        }
    }
}

/// A running daemon: join handles for both threads plus the bound
/// address and the shutdown latch.
pub struct DaemonHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    loop_thread: JoinHandle<()>,
    sim_thread: JoinHandle<()>,
}

impl DaemonHandle {
    /// The bound listen address (resolves `port: 0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shutdown (same latch `GET /quit` sets).
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits for clean exit. The network thread goes first — it drains
    /// in-flight connections (every accepted request gets its response)
    /// — then the simulation thread, which stops at the next period
    /// boundary. This ordering is the `/quit` contract: once the process
    /// exits, no client is left holding a half-written response.
    pub fn join(self) -> Result<(), String> {
        self.loop_thread.join().map_err(|_| "network thread panicked".to_string())?;
        self.sim_thread.join().map_err(|_| "simulation thread panicked".to_string())?;
        Ok(())
    }
}

/// The daemon as a value: bind, spawn, return.
pub struct Daemon;

impl Daemon {
    /// Starts the daemon: validates the config, binds 127.0.0.1, spawns
    /// the sim and event-loop threads. Fails (with a user-facing message)
    /// on unknown applications, a zero ring, or an unbindable port.
    pub fn start(cfg: DaemonConfig) -> Result<DaemonHandle, String> {
        if cfg.ring_cap == 0 {
            return Err("--ring-cap must be at least 1".to_string());
        }
        let catalog = Catalog::paper();
        let (Some(hp), Some(be)) = (catalog.get(&cfg.hp), catalog.get(&cfg.be)) else {
            return Err("unknown app — try `dicer-sim catalog`".to_string());
        };
        let (hp, be) = (hp.clone(), be.clone());
        let server_cfg = ServerConfig::table1();
        let solo = SoloTable::build(&catalog, server_cfg);

        let registry = Arc::new(MetricsRegistry::new());
        registry
            .gauge(
                "dicer_build_info",
                "Build metadata carried in labels (the value is always 1)",
                &[("version", env!("CARGO_PKG_VERSION"))],
            )
            .set(1.0);
        let ring = Arc::new(RingRecorder::new(cfg.ring_cap));
        let metrics_sink = Arc::new(MetricsSink::new(
            registry.clone(),
            solo.get(&cfg.hp).ipc_alone,
            server_cfg.link.capacity_gbps,
        ));
        // The observability plane scrapes the registry each period (or
        // fleet round), evaluates the alert rules, and cuts incident
        // bundles off the same ring `/events` serves.
        let obs = Arc::new(ObsPlane::new(ObsConfig {
            hp_solo_ipc: Some(solo.get(&cfg.hp).ipc_alone),
            incident: IncidentConfig { dir: cfg.incidents_dir.clone(), ..Default::default() },
            ..Default::default()
        }));
        obs.attach_registry(&registry);
        obs.attach_ring(ring.clone());
        let telemetry = Telemetry::new(Arc::new(FanoutSink::new(vec![
            ring.clone() as Arc<dyn TelemetrySink>,
            metrics_sink.clone(),
            Arc::new(ObsSink::new(obs.clone())),
        ])));

        let listener = TcpListener::bind(("127.0.0.1", cfg.port))
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", cfg.port))?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let mailbox = Arc::new(Mailbox::new());
        let status = Arc::new(Mutex::new(DaemonStatus {
            policy: cfg.policy.name().to_string(),
            hp: cfg.hp.clone(),
            be: cfg.be.clone(),
            paused: false,
        }));
        // In fleet mode the sim thread refreshes a pre-rendered JSON
        // snapshot after every round; `/fleet` serves it without touching
        // the fleet.
        let fleet_json: Option<Arc<Mutex<String>>> =
            (cfg.fleet_nodes > 0).then(|| Arc::new(Mutex::new(String::from("{}"))));

        let handler = DicerdHandler {
            registry: registry.clone(),
            ring: ring.clone(),
            obs: obs.clone(),
            shutdown: shutdown.clone(),
            mailbox: mailbox.clone(),
            status: status.clone(),
            fleet_json: fleet_json.clone(),
            fleet_nodes: cfg.fleet_nodes,
            known_apps: catalog.names().map(str::to_string).collect(),
        };
        let conn_metrics = Arc::new(ConnMetrics::new(registry.clone()));
        let mut event_loop =
            EventLoop::new(listener, handler, shutdown.clone(), conn_metrics, cfg.net)
                .map_err(|e| format!("cannot start event loop: {e}"))?;
        let addr = event_loop.local_addr().map_err(|e| format!("no local addr: {e}"))?;

        let sim_thread = if let Some(fleet_json) = fleet_json {
            spawn_fleet_sim(FleetSim {
                cfg: cfg.clone(),
                registry,
                obs,
                shutdown: shutdown.clone(),
                mailbox,
                status,
                fleet_json,
            })
        } else {
            spawn_classic_sim(ClassicSim {
                cfg: cfg.clone(),
                catalog,
                solo,
                hp,
                be,
                registry,
                metrics_sink,
                obs,
                telemetry,
                shutdown: shutdown.clone(),
                mailbox,
                status,
            })
        };
        let loop_thread = std::thread::spawn(move || {
            if let Err(e) = event_loop.run() {
                eprintln!("dicerd event loop failed: {e}");
            }
        });

        Ok(DaemonHandle { addr, shutdown, loop_thread, sim_thread })
    }
}

/// Shared-state bundle for the classic (single co-location) sim thread.
struct ClassicSim {
    cfg: DaemonConfig,
    catalog: Catalog,
    solo: SoloTable,
    hp: crate::appmodel::AppProfile,
    be: crate::appmodel::AppProfile,
    registry: Arc<MetricsRegistry>,
    metrics_sink: Arc<MetricsSink>,
    obs: Arc<ObsPlane>,
    telemetry: Telemetry,
    shutdown: Arc<AtomicBool>,
    mailbox: Arc<Mailbox<ControlRequest>>,
    status: Arc<Mutex<DaemonStatus>>,
}

/// Classic mode: back-to-back co-location runs, each one feeding the
/// shared telemetry bus plus run-level metrics. Control requests are
/// drained between runs — and mid-run the runner is asked to stop at the
/// next period boundary, so a retarget takes effect within one period
/// rather than one run.
fn spawn_classic_sim(sim: ClassicSim) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let ClassicSim {
            cfg,
            catalog,
            solo,
            mut hp,
            mut be,
            registry,
            metrics_sink,
            obs,
            telemetry,
            shutdown,
            mailbox,
            status,
        } = sim;
        let mut policy = cfg.policy.clone();
        let mut paused = false;
        let runs_total = registry.counter("dicer_runs_total", "Co-location runs started", &[]);
        let runs_completed = registry.counter(
            "dicer_runs_completed_total",
            "Runs in which every application finished at least once",
            &[],
        );
        let retargets_total = registry.counter(
            "dicer_retargets_total",
            "Control requests applied by the simulation thread",
            &[],
        );
        let run_norm_ipc = registry.histogram(
            "dicer_run_hp_norm_ipc",
            "Whole-run HP IPC normalised to solo",
            &[],
            &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05],
        );
        let step_seconds = registry.histogram(
            "dicer_period_step_seconds",
            "Mean wall-clock seconds per simulated period, one observation per run",
            &[],
            &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0],
        );
        let efu = registry.gauge("dicer_run_efu", "Effective Utilisation of the last run", &[]);
        let solver = [
            ("solves", "Equilibrium solve requests"),
            ("cache_hits", "Solves served from the memo"),
            ("warm_solves", "Computed solves with a warm-start bracket"),
            ("cold_solves", "Computed solves bracketed from scratch"),
            ("curve_evals", "Curve-evaluation rounds across computed solves"),
            ("fingerprint_skips", "Solves skipped by the period-input fingerprint"),
            ("evictions", "Memo entries discarded by bounded-cache clears"),
        ]
        .map(|(kind, help)| {
            (kind, registry.counter("dicer_solver_events_total", help, &[("kind", kind)]))
        });

        // Wall-clock tracer: spans land on the same bus as the rest of
        // the telemetry, so the ring shows them and the metrics sink
        // folds their durations into dicer_stage_seconds{stage=...}.
        let tracer = Tracer::with_wall_clock(telemetry.clone());
        let mut runs = 0u64;
        while !shutdown.load(Ordering::Relaxed) {
            // Apply queued control requests, last-wins per field. The
            // HTTP layer already validated names and specs, so lookups
            // here cannot fail.
            let queued = mailbox.drain();
            if !queued.is_empty() {
                for cr in queued {
                    if let Some(p) = cr.policy {
                        policy = p;
                    }
                    if let Some(name) = cr.hp {
                        hp = catalog.get(&name).expect("validated at the HTTP layer").clone();
                        metrics_sink.set_hp_solo_ipc(solo.get(&name).ipc_alone);
                        obs.set_hp_solo_ipc(solo.get(&name).ipc_alone);
                    }
                    if let Some(name) = cr.be {
                        be = catalog.get(&name).expect("validated at the HTTP layer").clone();
                    }
                    if let Some(p) = cr.pause {
                        paused = p;
                    }
                    retargets_total.inc();
                }
                let mut st = status.lock().unwrap();
                st.policy = policy.name().to_string();
                st.hp = hp.name.clone();
                st.be = be.name.clone();
                st.paused = paused;
            }
            if paused {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            runs_total.inc();
            let t0 = Instant::now();
            let mut interrupted = false;
            let out = run_colocation_traced_until(
                &solo,
                &hp,
                &be,
                cfg.cores,
                &policy,
                MAX_PERIODS,
                &telemetry,
                &tracer,
                || {
                    if shutdown.load(Ordering::Relaxed) || !mailbox.is_empty() {
                        interrupted = true;
                        return false;
                    }
                    true
                },
            );
            let dt = t0.elapsed().as_secs_f64();
            if out.completed {
                runs_completed.inc();
            }
            // An interrupted run can stop before its first period; its
            // zeroed outcome is a non-event, not a sample.
            if out.periods > 0 {
                run_norm_ipc.observe(out.hp_norm_ipc);
                step_seconds.observe(dt / out.periods as f64);
                efu.set(out.efu);
            }
            let s = out.solver_stats;
            for (kind, counter) in &solver {
                counter.add(match *kind {
                    "solves" => s.solves,
                    "cache_hits" => s.cache_hits,
                    "warm_solves" => s.warm_solves,
                    "cold_solves" => s.cold_solves,
                    "fingerprint_skips" => s.fingerprint_skips,
                    "evictions" => s.evictions,
                    _ => s.curve_evals,
                });
            }
            if !interrupted {
                runs += 1;
                if cfg.max_runs > 0 && runs >= cfg.max_runs {
                    break;
                }
                if cfg.pause_ms > 0 {
                    std::thread::sleep(Duration::from_millis(cfg.pause_ms));
                }
            }
        }
    })
}

/// Shared-state bundle for the fleet-control-plane sim thread.
struct FleetSim {
    cfg: DaemonConfig,
    registry: Arc<MetricsRegistry>,
    obs: Arc<ObsPlane>,
    shutdown: Arc<AtomicBool>,
    mailbox: Arc<Mailbox<ControlRequest>>,
    status: Arc<Mutex<DaemonStatus>>,
    fleet_json: Arc<Mutex<String>>,
}

/// Fleet mode: scheduling rounds over N node sessions, folding the fleet
/// state into per-node and fleet-level metrics after each round. The
/// mailbox only ever carries pause/resume here (workload retargets are
/// refused 409 at the HTTP layer).
fn spawn_fleet_sim(sim: FleetSim) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let FleetSim { cfg, registry, obs, shutdown, mailbox, status, fleet_json } = sim;
        let fleet_cfg = FleetConfig::standard(cfg.fleet_nodes, u32::MAX, cfg.seed);
        let scheduler = cfg.fleet_scheduler.build(
            fleet_cfg.seed,
            fleet_cfg.server.link.capacity_gbps,
            fleet_cfg.server.cache.ways,
            fleet_cfg.degraded_streak,
        );
        let mut fleet = Fleet::new(fleet_cfg, scheduler);
        let runner = SweepRunner::auto();
        let rounds_total =
            registry.counter("dicer_fleet_rounds_total", "Fleet scheduling rounds completed", &[]);
        let worst_severity = registry.gauge(
            "dicer_fleet_worst_severity",
            "Worst controller severity code across all fleet nodes \
             (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
            &[],
        );
        let migrations_total = registry.gauge(
            "dicer_fleet_migrations_total",
            "Scheduler-initiated BE migrations since startup",
            &[],
        );
        let mut paused = false;
        let mut rounds = 0u64;
        while !shutdown.load(Ordering::Relaxed) {
            for cr in mailbox.drain() {
                if let Some(p) = cr.pause {
                    paused = p;
                    status.lock().unwrap().paused = p;
                }
            }
            if paused {
                std::thread::sleep(Duration::from_millis(5));
                continue;
            }
            fleet.step_round(&runner);
            rounds_total.inc();
            let fleet_status = fleet.status();
            for node in &fleet_status.per_node {
                let id = node.node.to_string();
                registry
                    .gauge(
                        "dicer_node_severity",
                        "Current controller severity code per fleet node \
                         (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
                        &[("node", &id)],
                    )
                    .set(node.severity.code() as f64);
                registry
                    .gauge(
                        "dicer_node_hp_slowdown",
                        "Mean HP slowdown per fleet node since startup",
                        &[("node", &id)],
                    )
                    .set(node.hp_slowdown_mean);
            }
            worst_severity.set(fleet_status.worst_severity.code() as f64);
            migrations_total.set(fleet_status.migrations as f64);
            *fleet_json.lock().unwrap() = fleet_status.to_json();
            // Rounds are the fleet's period clock: one obs tick per round
            // scrapes the per-node gauges set above into per-node series
            // (plus the fleet aggregates) and evaluates the alert rules.
            obs.tick();
            rounds += 1;
            if cfg.max_runs > 0 && rounds >= cfg.max_runs {
                break;
            }
            if cfg.pause_ms > 0 {
                std::thread::sleep(Duration::from_millis(cfg.pause_ms));
            }
        }
    })
}
