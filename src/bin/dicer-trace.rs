//! `dicer-trace` — explain a recorded DICER run from its telemetry trace.
//!
//! ```text
//! dicer-trace <trace.jsonl> [--chrome FILE]
//! ```
//!
//! Ingests the span/event JSONL a run writes (`dicer-sim --trace FILE`, or
//! a scenario trace from the robustness suite) and emits:
//!
//! - a **time-in-state** table and a compressed **decision timeline** —
//!   where the controller spent the run and every transition it took;
//! - a **stage cost breakdown** from the hierarchical spans: per-stage
//!   span counts, inclusive and self logical ticks, and wall-clock totals
//!   when the trace was recorded with a wall-clock tracer;
//! - with `--chrome FILE`, a Chrome trace-event JSON export of the spans,
//!   loadable in Perfetto / `chrome://tracing`.
//!
//! The report is a pure function of the input bytes: rerunning the tool on
//! the same trace reproduces both the report and the Chrome export
//! byte-for-byte. Parsing is hand-rolled (like the emitters, DESIGN.md §9)
//! so the tool adds no dependency and tolerates only the line formats the
//! telemetry crate actually writes; unknown lines are counted and skipped.

use dicer::cli::parse_flags;
use dicer::telemetry::ChromeTraceBuilder;
use std::collections::HashMap;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: dicer-trace <trace.jsonl> [--chrome FILE]");
    ExitCode::from(2)
}

/// Raw value of a top-level `"key":` in one JSON object line. Tracks
/// brace/bracket depth and string state so nested objects (a decision
/// line's `stats`) cannot shadow top-level keys.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let bytes = line.as_bytes();
    let pat = format!("\"{key}\":");
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
            i += 1;
            continue;
        }
        match c {
            b'"' => {
                if depth == 1 && line[i..].starts_with(&pat) {
                    return Some(value_at(line, i + pat.len()));
                }
                in_str = true;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    None
}

/// The value starting at `start`: everything up to the `,` or closing
/// delimiter of the enclosing object, respecting nested strings/objects.
fn value_at(line: &str, start: usize) -> &str {
    let bytes = line.as_bytes();
    let (mut depth, mut in_str, mut esc) = (0i32, false, false);
    for (off, &c) in bytes[start..].iter().enumerate() {
        if in_str {
            if esc {
                esc = false;
            } else if c == b'\\' {
                esc = true;
            } else if c == b'"' {
                in_str = false;
            }
            continue;
        }
        match c {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' if depth > 0 => depth -= 1,
            b'}' | b']' => return &line[start..start + off],
            b',' if depth == 0 => return &line[start..start + off],
            _ => {}
        }
    }
    &line[start..]
}

/// Unescapes a parsed JSON string token (with its quotes); `None` if the
/// token is not a string.
fn unquote(raw: &str) -> Option<String> {
    let inner = raw.strip_prefix('"')?.strip_suffix('"')?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code = u32::from_str_radix(&hex, 16).ok()?;
                out.push(char::from_u32(code)?);
            }
            Some(e) => out.push(e),
            None => return None,
        }
    }
    Some(out)
}

fn u64_field(line: &str, key: &str) -> Option<u64> {
    field(line, key)?.parse().ok()
}

fn f64_field(line: &str, key: &str) -> Option<f64> {
    let raw = field(line, key)?;
    if raw == "null" {
        return None;
    }
    raw.parse().ok()
}

fn str_field(line: &str, key: &str) -> Option<String> {
    unquote(field(line, key)?)
}

/// One parsed span line.
struct Span {
    name: String,
    id: u64,
    parent: u64,
    lane: u32,
    start: u64,
    end: u64,
    wall_ns: Option<u64>,
    label: String,
}

impl Span {
    fn parse(line: &str) -> Option<Span> {
        Some(Span {
            name: str_field(line, "name")?,
            id: u64_field(line, "id")?,
            parent: u64_field(line, "parent")?,
            lane: u64_field(line, "lane")? as u32,
            start: u64_field(line, "start")?,
            end: u64_field(line, "end")?,
            wall_ns: u64_field(line, "wall_ns"),
            label: str_field(line, "label").unwrap_or_default(),
        })
    }

    fn ticks(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    fn time_s(&self, line: &str) -> Option<f64> {
        f64_field(line, "time_s")
    }
}

/// A decision line of a scenario trace (no `event` discriminator).
struct Decision {
    period: u64,
    time_s: f64,
    state: String,
    events: bool,
    dropped: bool,
}

/// Per-stage cost accumulator.
#[derive(Default)]
struct StageCost {
    spans: u64,
    ticks: u64,
    self_ticks: u64,
    wall_ns: u64,
    any_wall: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first().filter(|a| !a.starts_with("--")) else {
        return usage();
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let chrome_path = flags.get("chrome").cloned();
    if flags.keys().any(|k| k != "chrome") {
        eprintln!("unknown flag — only --chrome is accepted");
        return usage();
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut spans: Vec<(Span, Option<f64>)> = Vec::new();
    let mut decisions: Vec<Decision> = Vec::new();
    let mut controller: Vec<(u64, String)> = Vec::new();
    let mut counts: HashMap<&'static str, u64> = HashMap::new();
    let mut chrome = chrome_path.as_ref().map(|_| ChromeTraceBuilder::new());
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let kind = str_field(line, "event");
        match kind.as_deref() {
            Some("span") => {
                let Some(s) = Span::parse(line) else {
                    *counts.entry("malformed").or_default() += 1;
                    continue;
                };
                if let Some(b) = &mut chrome {
                    b.push(
                        &s.name,
                        s.id,
                        s.parent,
                        s.lane,
                        s.start,
                        s.end,
                        s.time_s(line),
                        s.wall_ns,
                        &s.label,
                    );
                }
                let t = s.time_s(line);
                spans.push((s, t));
                *counts.entry("span").or_default() += 1;
            }
            Some("controller") => {
                let (Some(p), Some(k)) = (u64_field(line, "period"), str_field(line, "kind"))
                else {
                    *counts.entry("malformed").or_default() += 1;
                    continue;
                };
                controller.push((p, k));
                *counts.entry("controller").or_default() += 1;
            }
            Some("period") => *counts.entry("period").or_default() += 1,
            Some("partition_applied") => *counts.entry("partition_applied").or_default() += 1,
            Some("fault") => *counts.entry("fault").or_default() += 1,
            Some(_) => *counts.entry("other").or_default() += 1,
            // Decision and summary lines carry no discriminator.
            None => {
                if let (Some(period), Some(time_s), Some(state)) = (
                    u64_field(line, "period"),
                    f64_field(line, "time_s"),
                    str_field(line, "state"),
                ) {
                    decisions.push(Decision {
                        period,
                        time_s,
                        state,
                        events: field(line, "events").is_some_and(|v| v != "[]"),
                        dropped: field(line, "dropped") == Some("true"),
                    });
                    *counts.entry("decision").or_default() += 1;
                } else if field(line, "scenario").is_some() {
                    *counts.entry("summary").or_default() += 1;
                } else {
                    *counts.entry("other").or_default() += 1;
                }
            }
        }
    }

    println!("dicer-trace: {path}");
    let mut families: Vec<(&str, u64)> = counts.iter().map(|(k, v)| (*k, *v)).collect();
    families.sort();
    let summary: Vec<String> = families.iter().map(|(k, v)| format!("{k}={v}")).collect();
    println!("events: {}", summary.join(" "));

    report_states(&decisions, &controller);
    report_costs(&spans);

    if let Some(out) = chrome_path {
        let doc = chrome.expect("builder exists when --chrome is set").finish();
        if let Err(e) = std::fs::write(&out, &doc) {
            eprintln!("cannot write {out}: {e}");
            return ExitCode::FAILURE;
        }
        println!(
            "\nchrome trace: {} spans -> {out}",
            counts.get("span").copied().unwrap_or(0)
        );
    }
    ExitCode::SUCCESS
}

/// Time-in-state table plus a compressed decision timeline. Scenario
/// traces carry explicit per-period states; sim traces fall back to the
/// controller transition stream.
fn report_states(decisions: &[Decision], controller: &[(u64, String)]) {
    if !decisions.is_empty() {
        // Attribute each period's duration to the state in force at its
        // end; the first period starts at t=0.
        let mut by_state: Vec<(String, u64, f64)> = Vec::new();
        let mut prev_t = 0.0;
        for d in decisions {
            let dt = d.time_s - prev_t;
            prev_t = d.time_s;
            match by_state.iter_mut().find(|(s, ..)| *s == d.state) {
                Some((_, n, secs)) => {
                    *n += 1;
                    *secs += dt;
                }
                None => by_state.push((d.state.clone(), 1, dt)),
            }
        }
        let total: f64 = by_state.iter().map(|(_, _, s)| *s).sum();
        println!("\ntime in state ({} periods, {:.1} s):", decisions.len(), total);
        by_state.sort_by(|a, b| b.2.total_cmp(&a.2).then(a.0.cmp(&b.0)));
        println!("  {:<14} {:>8} {:>10} {:>7}", "state", "periods", "seconds", "share");
        for (state, n, secs) in &by_state {
            println!(
                "  {state:<14} {n:>8} {secs:>10.1} {:>6.1}%",
                100.0 * secs / total.max(f64::MIN_POSITIVE)
            );
        }

        println!("\ndecision timeline:");
        let mut i = 0;
        while i < decisions.len() {
            let run_state = &decisions[i].state;
            let mut j = i;
            let (mut faults, mut drops) = (0u64, 0u64);
            while j < decisions.len() && decisions[j].state == *run_state {
                faults += decisions[j].events as u64;
                drops += decisions[j].dropped as u64;
                j += 1;
            }
            let (a, b) = (&decisions[i], &decisions[j - 1]);
            let mut notes = String::new();
            if faults > 0 {
                notes.push_str(&format!("  faults={faults}"));
            }
            if drops > 0 {
                notes.push_str(&format!("  drops={drops}"));
            }
            println!(
                "  [{:>8.1}s] periods {:>4}-{:<4} {:<14} x{}{notes}",
                a.time_s,
                a.period,
                b.period,
                run_state,
                j - i
            );
            i = j;
        }
        return;
    }
    if controller.is_empty() {
        println!("\nno controller decisions in trace");
        return;
    }
    let mut by_kind: Vec<(String, u64)> = Vec::new();
    for (_, k) in controller {
        match by_kind.iter_mut().find(|(s, _)| s == k) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((k.clone(), 1)),
        }
    }
    let total: u64 = by_kind.iter().map(|(_, n)| n).sum();
    println!("\ncontroller activity ({total} events):");
    by_kind.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("  {:<20} {:>8} {:>7}", "event", "count", "share");
    for (kind, n) in &by_kind {
        println!("  {kind:<20} {n:>8} {:>6.1}%", 100.0 * *n as f64 / total as f64);
    }

    println!("\ndecision timeline:");
    let mut i = 0;
    while i < controller.len() {
        let run_kind = &controller[i].1;
        let mut j = i;
        while j < controller.len() && controller[j].1 == *run_kind {
            j += 1;
        }
        println!(
            "  periods {:>4}-{:<4} {:<20} x{}",
            controller[i].0,
            controller[j - 1].0,
            run_kind,
            j - i
        );
        i = j;
    }
}

/// Per-stage cost table from the span stream: inclusive ticks, self ticks
/// (inclusive minus the ticks of directly nested spans), and wall-clock
/// totals when recorded. Spans close innermost-first, so a child can
/// credit its parent before the parent's own line arrives.
fn report_costs(spans: &[(Span, Option<f64>)]) {
    if spans.is_empty() {
        println!("\nno spans in trace (record one with `dicer-sim run ... --trace FILE`)");
        return;
    }
    let mut stages: Vec<(String, StageCost)> = Vec::new();
    // Child ticks pending attribution, keyed by (lane, parent id). Entries
    // are consumed when the parent closes, so id reuse across back-to-back
    // sessions in one file cannot cross-credit.
    let mut pending: HashMap<(u32, u64), u64> = HashMap::new();
    for (s, _) in spans {
        let child_ticks = pending.remove(&(s.lane, s.id)).unwrap_or(0);
        if s.parent != 0 {
            *pending.entry((s.lane, s.parent)).or_default() += s.ticks();
        }
        let cost = match stages.iter_mut().find(|(n, _)| *n == s.name) {
            Some((_, c)) => c,
            None => {
                stages.push((s.name.clone(), StageCost::default()));
                &mut stages.last_mut().expect("just pushed").1
            }
        };
        cost.spans += 1;
        cost.ticks += s.ticks();
        cost.self_ticks += s.ticks().saturating_sub(child_ticks);
        if let Some(w) = s.wall_ns {
            cost.wall_ns += w;
            cost.any_wall = true;
        }
    }
    let total_self: u64 = stages.iter().map(|(_, c)| c.self_ticks).sum();
    println!("\nstage cost breakdown ({} spans):", spans.len());
    stages.sort_by(|a, b| b.1.self_ticks.cmp(&a.1.self_ticks).then(a.0.cmp(&b.0)));
    println!(
        "  {:<18} {:>8} {:>10} {:>10} {:>7} {:>12}",
        "stage", "spans", "ticks", "self", "self%", "wall_ms"
    );
    for (name, c) in &stages {
        let wall = if c.any_wall {
            format!("{:>12.3}", c.wall_ns as f64 / 1e6)
        } else {
            format!("{:>12}", "-")
        };
        println!(
            "  {name:<18} {:>8} {:>10} {:>10} {:>6.1}% {wall}",
            c.spans,
            c.ticks,
            c.self_ticks,
            100.0 * c.self_ticks as f64 / (total_self.max(1)) as f64,
        );
    }
}
