//! `dicer-sim` — command-line front end for the DICER reproduction.
//!
//! ```text
//! dicer-sim catalog                      # list the 59 workloads
//! dicer-sim solo <APP>                   # solo profile of one workload
//! dicer-sim run --hp milc1 --be gcc_base1 [--cores 10] [--policy dicer] [--telemetry jsonl]
//! dicer-sim compare --hp milc1 --be gcc_base1 [--cores 10]
//! dicer-sim matrix [--jobs N]            # panel × policy evaluation matrix
//! dicer-sim fleet [--nodes N] [--rounds N] [--scheduler S|all] [--seed N] [--jobs N]
//! ```
//!
//! `fleet` consolidates N simulated servers under one placement
//! scheduler: a seeded arrival/departure stream (plus scripted flash
//! crowds) is placed node by node, each node runs its own DICER session,
//! and the command reports fleet-wide HP slowdown percentiles, BE
//! throughput, and migrations. `--scheduler all` races every scheduler
//! on the same churn stream. Output is deterministic at any `--jobs`.
//!
//! `--telemetry jsonl` streams the run's full event bus (period samples,
//! controller transitions, partition applies) as JSON lines on stdout
//! after the summary table; `off` (the default) disables it.
//!
//! `--trace FILE` writes the same event bus *plus* hierarchical spans
//! (session → period → sensor-read / policy-step / equilibrium-solve /
//! partition-apply) as JSON lines to `FILE`. Spans carry deterministic
//! logical ticks and simulated seconds — rerunning the same command
//! reproduces the file byte-for-byte. Feed it to `dicer-trace` for
//! reports or a Chrome trace export. Composes with `--telemetry`:
//! stdout output is unchanged by `--trace`.
//!
//! `--jobs N` bounds sweep parallelism (`matrix`, and the solo-table
//! profiling behind `run`/`compare`). The default is one worker per
//! available core; `--jobs 1` forces the serial path. Parallel and serial
//! runs produce identical output — sweeps collect in input order.
//!
//! Policies: `um`, `ct`, `dicer`, `dicer-mba`, `dicer-adm`, `dcp-qos`,
//! `static:<ways>`, `overlap:<exclusive>:<shared>`.

use dicer::appmodel::Catalog;
use dicer::cli::{parse_flags, parse_jobs, parse_policy};
use dicer::experiments::figures::matrix::EvalMatrix;
use dicer::experiments::runner::{run_colocation_traced, run_colocation_with, MAX_PERIODS};
use dicer::experiments::workloads::WorkloadSet;
use dicer::experiments::{ablation, trace, SoloTable};
use dicer::fleet::{Fleet, FleetConfig, SchedulerKind};
use dicer::metrics::geomean;
use dicer::policy::{DicerConfig, PolicyKind};
use dicer::server::ServerConfig;
use dicer::telemetry::{FanoutSink, JsonlSink, Telemetry, TelemetrySink, Tracer};
use std::process::ExitCode;
use std::sync::Arc;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dicer-sim catalog\n  dicer-sim solo <APP>\n  \
         dicer-sim run --hp <APP> --be <APP> [--cores N] [--policy P] [--timeline] [--telemetry jsonl|off] [--trace FILE] [--jobs N]\n  \
         dicer-sim compare --hp <APP> --be <APP> [--cores N] [--trace FILE] [--jobs N]\n  \
         dicer-sim matrix [--cores N] [--jobs N]\n  \
         dicer-sim fleet [--nodes N] [--rounds N] [--scheduler S|all] [--seed N] [--jobs N]\n\
         policies: um | ct | dicer | dicer-mba | dicer-adm | dcp-qos | static:<ways> | overlap:<excl>:<shared>\n\
         schedulers: round-robin | random | sensitivity-pack | sensitivity-migrate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().map(String::as_str) else {
        return usage();
    };

    let catalog = Catalog::paper();
    match cmd {
        "catalog" => {
            println!("{:<18} {:<16} {:>8} {:>9} {:>7}", "name", "archetype", "APKI", "solo IPC", "phases");
            let cfg = ServerConfig::table1();
            let solo = SoloTable::build(&catalog, cfg);
            for app in catalog.profiles() {
                println!(
                    "{:<18} {:<16} {:>8.1} {:>9.3} {:>7}",
                    app.name,
                    app.archetype.to_string(),
                    app.mean_apki(),
                    solo.get(&app.name).ipc_alone,
                    app.phases.len()
                );
            }
            ExitCode::SUCCESS
        }
        "solo" => {
            let Some(name) = args.get(1) else { return usage() };
            let Some(app) = catalog.get(name) else {
                eprintln!("unknown app {name:?} — try `dicer-sim catalog`");
                return ExitCode::FAILURE;
            };
            let cfg = ServerConfig::table1();
            let solo = SoloTable::build(&catalog, cfg);
            let p = solo.get(name);
            println!("{name}: {} ({} phases)", app.archetype, app.phases.len());
            println!("  solo IPC (full LLC): {:.3}", p.ipc_alone);
            println!("  solo time:           {:.1} s", p.time_alone_s);
            println!("  IPC by ways:");
            for (i, ipc) in p.ipc_by_ways.iter().enumerate() {
                println!("    {:>2} ways: {:.3} ({:.1}% of peak)", i + 1, ipc, 100.0 * ipc / p.ipc_alone);
            }
            for target in [0.90, 0.95, 0.99] {
                println!(
                    "  min ways for {:>2.0}% of peak: {}",
                    target * 100.0,
                    p.min_ways_for(target)
                );
            }
            ExitCode::SUCCESS
        }
        "run" | "compare" => {
            let flags = match parse_flags(&args[1..]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let (Some(hp_name), Some(be_name)) = (flags.get("hp"), flags.get("be")) else {
                return usage();
            };
            let cores: u32 = flags.get("cores").map(|c| c.parse().unwrap_or(10)).unwrap_or(10);
            let (Some(hp), Some(be)) = (catalog.get(hp_name), catalog.get(be_name)) else {
                eprintln!("unknown app — try `dicer-sim catalog`");
                return ExitCode::FAILURE;
            };
            let sweep = match parse_jobs(&flags) {
                Ok(p) => p.runner(),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let cfg = ServerConfig::table1();
            let solo = SoloTable::build_with(&catalog, cfg, &sweep);

            let policies: Vec<PolicyKind> = if cmd == "compare" {
                vec![
                    PolicyKind::Unmanaged,
                    PolicyKind::CacheTakeover,
                    PolicyKind::Dicer(DicerConfig::default()),
                    PolicyKind::DicerMba(DicerConfig::default()),
                    PolicyKind::DicerAdmission(DicerConfig::default()),
                ]
            } else {
                let p = flags.get("policy").map(String::as_str).unwrap_or("dicer");
                match parse_policy(p) {
                    Ok(k) => vec![k],
                    Err(e) => {
                        eprintln!("{e}");
                        return usage();
                    }
                }
            };

            let telemetry_jsonl = match flags.get("telemetry").map(String::as_str) {
                None | Some("off") => false,
                Some("jsonl") => true,
                Some(other) => {
                    eprintln!("--telemetry must be jsonl or off, got {other:?}");
                    return usage();
                }
            };
            let trace_path = flags.get("trace").cloned();

            println!(
                "{:<10} {:>8} {:>9} {:>8} {:>7} {:>9} {:>8}",
                "policy", "HP norm", "HP slow", "BE norm", "EFU", "link Gbps", "periods"
            );
            let mut jsonl_out = String::new();
            let mut trace_out = String::new();
            for kind in &policies {
                let out = if telemetry_jsonl || trace_path.is_some() {
                    // stdout and the trace file each get their own buffer:
                    // the bus fans out to both, spans go only to the file,
                    // so `--trace` never changes what `--telemetry` prints.
                    let stdout_sink = telemetry_jsonl.then(|| Arc::new(JsonlSink::new()));
                    let file_sink = trace_path.as_ref().map(|_| Arc::new(JsonlSink::new()));
                    let bus_sinks: Vec<Arc<dyn TelemetrySink>> = stdout_sink
                        .iter()
                        .map(|s| s.clone() as Arc<dyn TelemetrySink>)
                        .chain(file_sink.iter().map(|s| s.clone() as Arc<dyn TelemetrySink>))
                        .collect();
                    let bus = Telemetry::new(Arc::new(FanoutSink::new(bus_sinks)));
                    let tracer = match &file_sink {
                        Some(s) => Tracer::new(Telemetry::new(s.clone())),
                        None => Tracer::off(),
                    };
                    let out = run_colocation_traced(
                        &solo,
                        hp,
                        be,
                        cores,
                        kind,
                        MAX_PERIODS,
                        &bus,
                        &tracer,
                    );
                    if let Some(s) = stdout_sink {
                        jsonl_out.push_str(&s.take());
                    }
                    if let Some(s) = file_sink {
                        trace_out.push_str(&s.take());
                    }
                    out
                } else {
                    run_colocation_with(&solo, hp, be, cores, kind)
                };
                println!(
                    "{:<10} {:>8.3} {:>8.2}x {:>8.3} {:>7.3} {:>9.1} {:>8}",
                    out.policy,
                    out.hp_norm_ipc,
                    out.hp_slowdown,
                    out.be_norm_ipc_mean(),
                    out.efu,
                    out.mean_total_bw_gbps,
                    out.periods
                );
            }
            if !jsonl_out.is_empty() {
                print!("{jsonl_out}");
            }
            if let Some(path) = &trace_path {
                if let Err(e) = std::fs::write(path, &trace_out) {
                    eprintln!("cannot write trace to {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("trace: {} lines -> {path}", trace_out.lines().count());
            }
            if flags.contains_key("timeline") {
                for kind in &policies {
                    let t = trace::run_traced(&solo, hp, be, cores, kind, 2000);
                    println!("\n{}", t.render(72));
                }
            }
            ExitCode::SUCCESS
        }
        "matrix" => {
            let flags = match parse_flags(&args[1..]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let sweep = match parse_jobs(&flags) {
                Ok(p) => p.runner(),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let cores: u32 = flags.get("cores").map(|c| c.parse().unwrap_or(10)).unwrap_or(10);
            let cfg = ServerConfig::table1();
            let solo = SoloTable::build_with(&catalog, cfg, &sweep);
            // The class-balanced ablation panel keeps the matrix small
            // enough for an interactive command; the full 120-workload
            // sample is the figure runners' job.
            let set = WorkloadSet::classify_pairs(&catalog, &solo, &ablation::PANEL, &sweep);
            let sample: Vec<_> = set.all.iter().collect();
            let policies = [
                PolicyKind::Unmanaged,
                PolicyKind::CacheTakeover,
                PolicyKind::Dicer(DicerConfig::default()),
            ];
            let m = EvalMatrix::run_with(&catalog, &solo, &sample, &[cores], &policies, &sweep);
            println!(
                "panel matrix: {} workloads x {} policies on {cores} cores ({} workers)",
                sample.len(),
                policies.len(),
                sweep.jobs()
            );
            println!("{:<10} {:>8} {:>8} {:>7}", "policy", "HP norm", "BE norm", "EFU");
            for policy in m.policies() {
                let cells = m.slice(&policy, cores);
                let hp: Vec<f64> = cells.iter().map(|c| c.hp_norm_ipc).collect();
                let be: Vec<f64> = cells.iter().map(|c| c.be_norm_ipc_mean).collect();
                let efu: Vec<f64> = cells.iter().map(|c| c.efu).collect();
                println!(
                    "{policy:<10} {:>8.3} {:>8.3} {:>7.3}",
                    geomean(&hp),
                    geomean(&be),
                    geomean(&efu)
                );
            }
            ExitCode::SUCCESS
        }
        "fleet" => {
            let flags = match parse_flags(&args[1..]) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let sweep = match parse_jobs(&flags) {
                Ok(p) => p.runner(),
                Err(e) => {
                    eprintln!("{e}");
                    return usage();
                }
            };
            let uint = |key: &str, default: u64| -> Result<u64, String> {
                match flags.get(key) {
                    None => Ok(default),
                    Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
                }
            };
            let (nodes, rounds, seed) =
                match (uint("nodes", 8), uint("rounds", 200), uint("seed", 42)) {
                    (Ok(n), Ok(r), Ok(s)) => (n as usize, r as u32, s),
                    _ => {
                        eprintln!("--nodes, --rounds, and --seed take unsigned integers");
                        return usage();
                    }
                };
            if nodes == 0 || rounds == 0 {
                eprintln!("--nodes and --rounds must be at least 1");
                return usage();
            }
            let scheduler_arg =
                flags.get("scheduler").map(String::as_str).unwrap_or("sensitivity-migrate");
            let kinds: Vec<SchedulerKind> = if scheduler_arg == "all" {
                SchedulerKind::ALL.to_vec()
            } else {
                match SchedulerKind::parse(scheduler_arg) {
                    Some(k) => vec![k],
                    None => {
                        eprintln!("unknown scheduler {scheduler_arg:?}");
                        return usage();
                    }
                }
            };
            println!(
                "fleet: {nodes} nodes x {rounds} rounds, seed {seed} ({} workers)",
                sweep.jobs()
            );
            println!(
                "{:<20} {:>8} {:>8} {:>10} {:>7} {:>7} {:>8} {:>9}",
                "scheduler", "P50 slow", "P99 slow", "BE Ginsns", "migr", "rej", "arrivals", "worst sev"
            );
            for kind in kinds {
                let cfg = FleetConfig::standard(nodes, rounds, seed);
                let scheduler = kind.build(
                    cfg.seed,
                    cfg.server.link.capacity_gbps,
                    cfg.server.cache.ways,
                    cfg.degraded_streak,
                );
                let out = Fleet::new(cfg, scheduler).run(&sweep);
                println!(
                    "{:<20} {:>7.3}x {:>7.3}x {:>10.2} {:>7} {:>7} {:>8} {:>9}",
                    out.scheduler,
                    out.hp_slowdown_p50,
                    out.hp_slowdown_p99,
                    out.be_retired_insns / 1e9,
                    out.migrations,
                    out.rejected,
                    out.arrivals,
                    out.worst_severity.as_str(),
                );
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
