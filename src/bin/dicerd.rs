//! `dicerd` — a long-running consolidation daemon over the simulator.
//!
//! Runs one co-location (HP + BEs under a policy) to completion, then
//! starts it again, forever — a stand-in for the control loop a production
//! DICER deployment would run against resctrl. Every run is wired to the
//! telemetry bus: a bounded ring buffer retains recent events and a
//! metrics sink folds the stream into Prometheus series, served over a
//! readiness-driven event loop ([`dicer::netd`]; one network thread, many
//! concurrent connections, no external deps).
//!
//! ```text
//! dicerd [--hp APP] [--be APP] [--cores N] [--policy P] [--port N]
//!        [--ring-cap N] [--max-runs N] [--pause-ms N] [--max-conns N]
//!        [--fleet-nodes N] [--fleet-scheduler S] [--seed N]
//! ```
//!
//! With `--fleet-nodes N` (N ≥ 1) the daemon becomes the *fleet control
//! plane*: instead of one co-location it drives an N-node fleet —
//! churned arrivals placed by a scheduler, one DICER session per node —
//! round after round, and aggregates the whole fleet into the same
//! metrics endpoint (`dicer_node_severity{node=...}` per node, plus
//! fleet-level worst-severity / migration gauges).
//!
//! Routes:
//! - `GET /healthz`           — liveness; a small JSON body (crate version,
//!   periods simulated so far, fleet node count, ring-buffer drops, the
//!   alerts-firing count, the active policy/workloads and the pause state)
//!   with `200 OK`.
//! - `GET /metrics`           — Prometheus text format 0.0.4, deterministic layout.
//! - `GET /events?n=K`        — newest `K` (default 100) bus events as a JSON array.
//! - `GET /events?follow=1`   — endless NDJSON stream of new events (chunked);
//!   slow readers skip oldest events and are told how many.
//! - `GET /fleet`             — live fleet snapshot as JSON (fleet mode only).
//! - `GET /query?metric=M`    — period-series range read from the observability
//!   plane (`start=`/`end=` period bounds, `step=` picks the raw, /16 or
//!   /256 downsampling tier).
//! - `GET /alerts`            — firing alerts plus bounded resolved history;
//!   firing rules also cut incident bundles under `results/incidents/`.
//! - `POST /control`          — live retargeting: `policy=`, `hp=`, `be=`,
//!   `pause=0|1` (form-encoded body), applied by the sim thread at the next
//!   period boundary without a restart.
//! - `GET /quit`              — clean shutdown: drains in-flight connections,
//!   then joins the sim thread (used by the CI smoke test).
//!
//! A malformed, unknown, or duplicated query parameter or control field is
//! answered with `400 Bad Request` and a JSON error body (`{"error":"..."}`)
//! — never silently ignored.
//!
//! Defaults: `milc1` vs 9× `gcc_base1` on 10 cores under `dicer`,
//! port 9090, 1024-event ring, unbounded runs, no pause between runs.
//!
//! The daemon itself lives in [`dicer::daemon`]; this binary only parses
//! flags, prints the banner, and waits.

use dicer::cli::{parse_flags, parse_policy};
use dicer::daemon::{Daemon, DaemonConfig};
use dicer::fleet::SchedulerKind;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: dicerd [--hp APP] [--be APP] [--cores N] [--policy P] [--port N]\n\
         \x20             [--ring-cap N] [--max-runs N] [--pause-ms N] [--max-conns N]\n\
         \x20             [--fleet-nodes N] [--fleet-scheduler S] [--seed N]\n\
         policies: um | ct | dicer | dicer-mba | dicer-adm | dcp-qos | static:<ways> | overlap:<excl>:<shared>\n\
         schedulers: round-robin | random | sensitivity-pack | sensitivity-migrate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let uint_flag = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    };
    let policy = match parse_policy(flags.get("policy").map(String::as_str).unwrap_or("dicer")) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let defaults = DaemonConfig::default();
    let (cores, port, ring_cap, max_runs, pause_ms, max_conns, fleet_nodes, seed) = match (
        uint_flag("cores", 10),
        uint_flag("port", 9090),
        uint_flag("ring-cap", 1024),
        uint_flag("max-runs", 0),
        uint_flag("pause-ms", 0),
        uint_flag("max-conns", defaults.net.max_conns as u64),
        uint_flag("fleet-nodes", 0),
        uint_flag("seed", 42),
    ) {
        (Ok(c), Ok(p), Ok(r), Ok(m), Ok(w), Ok(k), Ok(n), Ok(s)) => {
            (c as u32, p as u16, r as usize, m, w, k as usize, n as usize, s)
        }
        _ => {
            eprintln!("numeric flags take unsigned integers");
            return usage();
        }
    };
    let scheduler_name =
        flags.get("fleet-scheduler").map(String::as_str).unwrap_or("sensitivity-migrate");
    let Some(fleet_scheduler) = SchedulerKind::parse(scheduler_name) else {
        eprintln!("unknown scheduler {scheduler_name:?}");
        return usage();
    };

    let mut cfg = DaemonConfig {
        hp: flags.get("hp").cloned().unwrap_or(defaults.hp),
        be: flags.get("be").cloned().unwrap_or(defaults.be),
        cores,
        policy,
        port,
        ring_cap,
        max_runs,
        pause_ms,
        fleet_nodes,
        fleet_scheduler,
        seed,
        net: defaults.net,
        incidents_dir: Some(std::path::PathBuf::from("results/incidents")),
    };
    cfg.net.max_conns = max_conns;

    let handle = match Daemon::start(cfg.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = handle.addr();
    if fleet_nodes > 0 {
        println!(
            "dicerd on {bound}: fleet control plane, {fleet_nodes} nodes \
             under {scheduler_name} (seed {seed}, {})",
            if max_runs == 0 { "unbounded".to_string() } else { format!("{max_runs} rounds") },
        );
    } else {
        println!(
            "dicerd on {bound}: {} + {}x {} under {} \
             (ring {ring_cap}, {})",
            cfg.hp,
            cores - 1,
            cfg.be,
            cfg.policy.name(),
            if max_runs == 0 { "unbounded".to_string() } else { format!("{max_runs} runs") },
        );
    }
    match handle.join() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
