//! `dicerd` — a long-running consolidation daemon over the simulator.
//!
//! Runs one co-location (HP + BEs under a policy) to completion, then
//! starts it again, forever — a stand-in for the control loop a production
//! DICER deployment would run against resctrl. Every run is wired to the
//! telemetry bus: a bounded ring buffer retains recent events and a
//! metrics sink folds the stream into Prometheus series, served over a
//! small built-in HTTP endpoint (std `TcpListener`; no external deps).
//!
//! ```text
//! dicerd [--hp APP] [--be APP] [--cores N] [--policy P] [--port N]
//!        [--ring-cap N] [--max-runs N] [--pause-ms N]
//!        [--fleet-nodes N] [--fleet-scheduler S] [--seed N]
//! ```
//!
//! With `--fleet-nodes N` (N ≥ 1) the daemon becomes the *fleet control
//! plane*: instead of one co-location it drives an N-node [`Fleet`] —
//! churned arrivals placed by a scheduler, one DICER session per node —
//! round after round, and aggregates the whole fleet into the same
//! metrics endpoint (`dicer_node_severity{node=...}` per node, plus
//! fleet-level worst-severity / migration gauges).
//!
//! Routes:
//! - `GET /healthz`         — liveness; a small JSON body (crate version,
//!   periods simulated so far, fleet node count, ring-buffer drops since
//!   the last drain) with `200 OK` once the listener is up.
//! - `GET /metrics`         — Prometheus text format 0.0.4, deterministic layout.
//! - `GET /events?n=K`      — newest `K` (default 100) bus events as a JSON array.
//! - `GET /fleet`           — live fleet snapshot as JSON (fleet mode only).
//! - `GET /quit`            — clean shutdown (used by the CI smoke test).
//!
//! A malformed, unknown, or duplicated query parameter on `/events` or
//! `/fleet` is answered with `400 Bad Request` and a JSON error body
//! (`{"error":"..."}`) — never silently ignored.
//!
//! Defaults: `milc1` vs 9× `gcc_base1` on 10 cores under `dicer`,
//! port 9090, 1024-event ring, unbounded runs, no pause between runs.

use dicer::appmodel::Catalog;
use dicer::cli::{parse_events_n, parse_flags, parse_policy, parse_query_params};
use dicer::experiments::runner::{run_colocation_traced, MAX_PERIODS};
use dicer::experiments::{SoloTable, SweepRunner};
use dicer::fleet::{Fleet, FleetConfig, SchedulerKind};
use dicer::server::ServerConfig;
use dicer::telemetry::{
    Counter, FanoutSink, Gauge, Histogram, MetricsRegistry, RingRecorder, Telemetry,
    TelemetryEvent, TelemetrySink, Tracer, STAGE_SECONDS_BOUNDS,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Folds the telemetry stream into the metrics registry. Period-sample
/// fields land in pre-registered histograms (lock-free observes);
/// controller and fault events count into labelled counter series.
struct MetricsSink {
    registry: Arc<MetricsRegistry>,
    hp_solo_ipc: f64,
    periods_total: Counter,
    applies_total: Counter,
    hp_ipc: Histogram,
    hp_norm_ipc: Histogram,
    total_bw: Histogram,
    hp_ways: Histogram,
    hp_ways_now: Gauge,
}

impl MetricsSink {
    fn new(registry: Arc<MetricsRegistry>, hp_solo_ipc: f64, link_gbps: f64) -> Self {
        let ipc_bounds = [0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0];
        let norm_bounds = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05];
        let bw_bounds: Vec<f64> =
            (1..=10).map(|i| link_gbps * i as f64 / 10.0).collect();
        let way_bounds: Vec<f64> = (1..=20).map(|w| w as f64).collect();
        MetricsSink {
            periods_total: registry.counter(
                "dicer_periods_total",
                "Monitoring periods simulated",
                &[],
            ),
            applies_total: registry.counter(
                "dicer_partition_applies_total",
                "Partition plans programmed onto the platform",
                &[],
            ),
            hp_ipc: registry.histogram(
                "dicer_hp_ipc",
                "HP IPC per monitoring period",
                &[],
                &ipc_bounds,
            ),
            hp_norm_ipc: registry.histogram(
                "dicer_hp_norm_ipc",
                "HP IPC per period, normalised to the solo reference",
                &[],
                &norm_bounds,
            ),
            total_bw: registry.histogram(
                "dicer_total_bw_gbps",
                "Total link traffic per period, Gbps",
                &[],
                &bw_bounds,
            ),
            hp_ways: registry.histogram(
                "dicer_hp_ways",
                "HP cache ways in force per period",
                &[],
                &way_bounds,
            ),
            hp_ways_now: registry.gauge(
                "dicer_hp_ways_current",
                "HP cache ways of the most recently applied plan",
                &[],
            ),
            registry,
            hp_solo_ipc,
        }
    }
}

impl TelemetrySink for MetricsSink {
    fn emit(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::Period(p) => {
                self.periods_total.inc();
                self.hp_ipc.observe(p.hp_ipc);
                self.hp_norm_ipc.observe(p.hp_ipc / self.hp_solo_ipc);
                self.total_bw.observe(p.total_bw_gbps);
                self.hp_ways.observe(p.hp_ways as f64);
            }
            TelemetryEvent::Controller { event, .. } => {
                self.registry
                    .counter(
                        "dicer_controller_events_total",
                        "Controller state-machine events by kind",
                        &[("event", event.kind())],
                    )
                    .inc();
            }
            // Registered controllers report their framework status through
            // ControllerPolicy: one event per (state, severity) change. The
            // severity code lands in a per-controller gauge so dashboards
            // and alerts see "how bad is it right now" without parsing
            // state strings; transitions also count into a labelled series.
            TelemetryEvent::ControllerStatus { name, state, severity, .. } => {
                self.registry
                    .gauge(
                        "dicer_controller_severity",
                        "Current severity code of a registered controller \
                         (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
                        &[("controller", name)],
                    )
                    .set(*severity as f64);
                self.registry
                    .counter(
                        "dicer_controller_transitions_total",
                        "Controller (state, severity) changes by controller and state",
                        &[("controller", name), ("state", state)],
                    )
                    .inc();
            }
            TelemetryEvent::PartitionApplied { hp_ways, .. } => {
                self.applies_total.inc();
                self.hp_ways_now.set(*hp_ways as f64);
            }
            TelemetryEvent::Fault { label } => {
                self.registry
                    .counter(
                        "dicer_fault_events_total",
                        "Injected fault events by kind",
                        &[("event", label)],
                    )
                    .inc();
            }
            // Self-profiling: each closed span with a wall-clock reading
            // feeds a per-stage latency histogram. Sim-clock-only spans
            // carry no duration in seconds and are skipped.
            TelemetryEvent::Span(s) => {
                if let Some(wall_ns) = s.wall_ns {
                    self.registry
                        .histogram(
                            "dicer_stage_seconds",
                            "Wall-clock seconds spent per pipeline stage (from spans)",
                            &[("stage", s.name)],
                            &STAGE_SECONDS_BOUNDS,
                        )
                        .observe(wall_ns as f64 / 1e9);
                }
            }
            // Scenario-trace events are not produced on the daemon's path.
            TelemetryEvent::Decision(_) | TelemetryEvent::ScenarioSummary(_) => {}
        }
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: dicerd [--hp APP] [--be APP] [--cores N] [--policy P] [--port N]\n\
         \x20             [--ring-cap N] [--max-runs N] [--pause-ms N]\n\
         \x20             [--fleet-nodes N] [--fleet-scheduler S] [--seed N]\n\
         policies: um | ct | dicer | dicer-mba | dicer-adm | dcp-qos | static:<ways> | overlap:<excl>:<shared>\n\
         schedulers: round-robin | random | sensitivity-pack | sensitivity-migrate"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let uint_flag = |key: &str, default: u64| -> Result<u64, String> {
        match flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e| format!("--{key}: {e}")),
        }
    };
    let hp_name = flags.get("hp").map(String::as_str).unwrap_or("milc1");
    let be_name = flags.get("be").map(String::as_str).unwrap_or("gcc_base1");
    let policy = match parse_policy(flags.get("policy").map(String::as_str).unwrap_or("dicer")) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return usage();
        }
    };
    let (cores, port, ring_cap, max_runs, pause_ms, fleet_nodes, fleet_seed) = match (
        uint_flag("cores", 10),
        uint_flag("port", 9090),
        uint_flag("ring-cap", 1024),
        uint_flag("max-runs", 0),
        uint_flag("pause-ms", 0),
        uint_flag("fleet-nodes", 0),
        uint_flag("seed", 42),
    ) {
        (Ok(c), Ok(p), Ok(r), Ok(m), Ok(w), Ok(n), Ok(s)) => {
            (c as u32, p as u16, r as usize, m, w, n as usize, s)
        }
        _ => {
            eprintln!("numeric flags take unsigned integers");
            return usage();
        }
    };
    if ring_cap == 0 {
        eprintln!("--ring-cap must be at least 1");
        return usage();
    }
    let scheduler_name =
        flags.get("fleet-scheduler").map(String::as_str).unwrap_or("sensitivity-migrate");
    let Some(scheduler_kind) = SchedulerKind::parse(scheduler_name) else {
        eprintln!("unknown scheduler {scheduler_name:?}");
        return usage();
    };

    let catalog = Catalog::paper();
    let (Some(hp), Some(be)) = (catalog.get(hp_name), catalog.get(be_name)) else {
        eprintln!("unknown app — try `dicer-sim catalog`");
        return ExitCode::FAILURE;
    };
    let cfg = ServerConfig::table1();
    let solo = SoloTable::build(&catalog, cfg);

    let registry = Arc::new(MetricsRegistry::new());
    let ring = Arc::new(RingRecorder::new(ring_cap));
    let metrics_sink = Arc::new(MetricsSink::new(
        registry.clone(),
        solo.get(hp_name).ipc_alone,
        cfg.link.capacity_gbps,
    ));
    let telemetry = Telemetry::new(Arc::new(FanoutSink::new(vec![
        ring.clone() as Arc<dyn TelemetrySink>,
        metrics_sink,
    ])));

    let listener = match TcpListener::bind(("127.0.0.1", port)) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("cannot bind 127.0.0.1:{port}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("cannot set listener non-blocking: {e}");
        return ExitCode::FAILURE;
    }
    let shutdown = Arc::new(AtomicBool::new(false));
    // In fleet mode the sim thread refreshes a pre-rendered JSON snapshot
    // after every round; `/fleet` serves it without touching the fleet.
    let fleet_json: Option<Arc<Mutex<String>>> =
        (fleet_nodes > 0).then(|| Arc::new(Mutex::new(String::from("{}"))));
    if fleet_nodes > 0 {
        println!(
            "dicerd on 127.0.0.1:{port}: fleet control plane, {fleet_nodes} nodes \
             under {scheduler_name} (seed {fleet_seed}, {})",
            if max_runs == 0 { "unbounded".to_string() } else { format!("{max_runs} rounds") },
        );
    } else {
        println!(
            "dicerd on 127.0.0.1:{port}: {hp_name} + {}x {be_name} under {} \
             (ring {ring_cap}, {})",
            cores - 1,
            policy.name(),
            if max_runs == 0 { "unbounded".to_string() } else { format!("{max_runs} runs") },
        );
    }

    // Simulation thread. Fleet mode: scheduling rounds over N node
    // sessions, folding the fleet state into per-node and fleet-level
    // metrics after each round. Classic mode: back-to-back co-location
    // runs, each one feeding the shared telemetry bus plus run-level
    // metrics.
    let sim = if let Some(fleet_json) = fleet_json.clone() {
        let registry = registry.clone();
        let shutdown = shutdown.clone();
        std::thread::spawn(move || {
            let cfg = FleetConfig::standard(fleet_nodes, u32::MAX, fleet_seed);
            let scheduler = scheduler_kind.build(
                cfg.seed,
                cfg.server.link.capacity_gbps,
                cfg.server.cache.ways,
                cfg.degraded_streak,
            );
            let mut fleet = Fleet::new(cfg, scheduler);
            let runner = SweepRunner::auto();
            let rounds_total = registry.counter(
                "dicer_fleet_rounds_total",
                "Fleet scheduling rounds completed",
                &[],
            );
            let worst_severity = registry.gauge(
                "dicer_fleet_worst_severity",
                "Worst controller severity code across all fleet nodes \
                 (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
                &[],
            );
            let migrations_total = registry.gauge(
                "dicer_fleet_migrations_total",
                "Scheduler-initiated BE migrations since startup",
                &[],
            );
            let mut rounds = 0u64;
            while !shutdown.load(Ordering::Relaxed) {
                fleet.step_round(&runner);
                rounds_total.inc();
                let status = fleet.status();
                for node in &status.per_node {
                    let id = node.node.to_string();
                    registry
                        .gauge(
                            "dicer_node_severity",
                            "Current controller severity code per fleet node \
                             (0 nominal, 1 adjusting, 2 degraded, 3 critical)",
                            &[("node", &id)],
                        )
                        .set(node.severity.code() as f64);
                    registry
                        .gauge(
                            "dicer_node_hp_slowdown",
                            "Mean HP slowdown per fleet node since startup",
                            &[("node", &id)],
                        )
                        .set(node.hp_slowdown_mean);
                }
                worst_severity.set(status.worst_severity.code() as f64);
                migrations_total.set(status.migrations as f64);
                *fleet_json.lock().unwrap() = status.to_json();
                rounds += 1;
                if max_runs > 0 && rounds >= max_runs {
                    break;
                }
                if pause_ms > 0 {
                    std::thread::sleep(Duration::from_millis(pause_ms));
                }
            }
        })
    } else {
        let registry = registry.clone();
        let shutdown = shutdown.clone();
        let hp = hp.clone();
        let be = be.clone();
        std::thread::spawn(move || {
            let runs_total =
                registry.counter("dicer_runs_total", "Co-location runs started", &[]);
            let runs_completed = registry.counter(
                "dicer_runs_completed_total",
                "Runs in which every application finished at least once",
                &[],
            );
            let run_norm_ipc = registry.histogram(
                "dicer_run_hp_norm_ipc",
                "Whole-run HP IPC normalised to solo",
                &[],
                &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 1.0, 1.05],
            );
            let step_seconds = registry.histogram(
                "dicer_period_step_seconds",
                "Mean wall-clock seconds per simulated period, one observation per run",
                &[],
                &[1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0],
            );
            let efu = registry.gauge("dicer_run_efu", "Effective Utilisation of the last run", &[]);
            let solver = [
                ("solves", "Equilibrium solve requests"),
                ("cache_hits", "Solves served from the memo"),
                ("warm_solves", "Computed solves with a warm-start bracket"),
                ("cold_solves", "Computed solves bracketed from scratch"),
                ("curve_evals", "Curve-evaluation rounds across computed solves"),
                ("fingerprint_skips", "Solves skipped by the period-input fingerprint"),
                ("evictions", "Memo entries discarded by bounded-cache clears"),
            ]
            .map(|(kind, help)| {
                (kind, registry.counter("dicer_solver_events_total", help, &[("kind", kind)]))
            });

            // Wall-clock tracer: spans land on the same bus as the rest of
            // the telemetry, so the ring shows them and the metrics sink
            // folds their durations into dicer_stage_seconds{stage=...}.
            let tracer = Tracer::with_wall_clock(telemetry.clone());
            let mut runs = 0u64;
            while !shutdown.load(Ordering::Relaxed) {
                runs_total.inc();
                let t0 = Instant::now();
                let out = run_colocation_traced(
                    &solo,
                    &hp,
                    &be,
                    cores,
                    &policy,
                    MAX_PERIODS,
                    &telemetry,
                    &tracer,
                );
                let dt = t0.elapsed().as_secs_f64();
                if out.completed {
                    runs_completed.inc();
                }
                run_norm_ipc.observe(out.hp_norm_ipc);
                step_seconds.observe(dt / out.periods as f64);
                efu.set(out.efu);
                let s = out.solver_stats;
                for (kind, counter) in &solver {
                    counter.add(match *kind {
                        "solves" => s.solves,
                        "cache_hits" => s.cache_hits,
                        "warm_solves" => s.warm_solves,
                        "cold_solves" => s.cold_solves,
                        "fingerprint_skips" => s.fingerprint_skips,
                        "evictions" => s.evictions,
                        _ => s.curve_evals,
                    });
                }
                runs += 1;
                if max_runs > 0 && runs >= max_runs {
                    break;
                }
                if pause_ms > 0 {
                    std::thread::sleep(Duration::from_millis(pause_ms));
                }
            }
        })
    };

    while !shutdown.load(Ordering::Relaxed) {
        match listener.accept() {
            Ok((stream, _)) => {
                let registry = registry.clone();
                let ring = ring.clone();
                let shutdown = shutdown.clone();
                let fleet_json = fleet_json.clone();
                std::thread::spawn(move || {
                    handle(stream, &registry, &ring, &shutdown, fleet_nodes, fleet_json.as_deref())
                });
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => {
                eprintln!("accept failed: {e}");
                break;
            }
        }
    }
    shutdown.store(true, Ordering::Relaxed);
    let _ = sim.join();
    ExitCode::SUCCESS
}

/// Renders a client error as the JSON body every endpoint with query
/// parameters answers 400s with.
fn json_error(message: &str) -> String {
    let escaped = message.replace('\\', "\\\\").replace('"', "\\\"");
    format!("{{\"error\":\"{escaped}\"}}\n")
}

/// Serves one connection: a single HTTP/1.1 request, then close.
fn handle(
    mut stream: TcpStream,
    registry: &MetricsRegistry,
    ring: &RingRecorder,
    shutdown: &AtomicBool,
    fleet_nodes: usize,
    fleet_json: Option<&Mutex<String>>,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = Vec::new();
    let mut chunk = [0u8; 1024];
    // Read until the end of the request headers (the routes take no body).
    while !buf.windows(4).any(|w| w == b"\r\n\r\n") && buf.len() < 8192 {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let Some(line) = request.lines().next() else { return };
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        respond(&mut stream, "400 Bad Request", "text/plain", "bad request\n");
        return;
    };
    if method != "GET" {
        respond(&mut stream, "405 Method Not Allowed", "text/plain", "GET only\n");
        return;
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/healthz" => {
            // Liveness plus a self-diagnosis snapshot. Registry lookups
            // are idempotent, so this reads the sim thread's counter.
            let periods = registry
                .counter("dicer_periods_total", "Monitoring periods simulated", &[])
                .get();
            let body = format!(
                "{{\"status\":\"ok\",\"version\":\"{}\",\"uptime_periods\":{},\"nodes\":{},\"events_dropped\":{}}}\n",
                env!("CARGO_PKG_VERSION"),
                periods,
                fleet_nodes,
                ring.dropped(),
            );
            respond(&mut stream, "200 OK", "application/json", &body);
        }
        "/metrics" => respond(
            &mut stream,
            "200 OK",
            "text/plain; version=0.0.4",
            &registry.render(),
        ),
        "/events" => match parse_events_n(query) {
            Ok(n) => {
                let lines: Vec<String> =
                    ring.recent(n).iter().map(TelemetryEvent::to_json).collect();
                let body = format!("[{}]\n", lines.join(","));
                respond(&mut stream, "200 OK", "application/json", &body);
            }
            Err(e) => {
                respond(&mut stream, "400 Bad Request", "application/json", &json_error(&e));
            }
        },
        "/fleet" => match fleet_json {
            None => respond(
                &mut stream,
                "404 Not Found",
                "application/json",
                &json_error("fleet mode is off (start dicerd with --fleet-nodes N)"),
            ),
            // The snapshot takes no parameters; anything in the query
            // string is a client error, same contract as /events.
            Some(snapshot) => match parse_query_params(query, &[]) {
                Ok(_) => {
                    let body = format!("{}\n", snapshot.lock().unwrap());
                    respond(&mut stream, "200 OK", "application/json", &body);
                }
                Err(e) => {
                    respond(&mut stream, "400 Bad Request", "application/json", &json_error(&e));
                }
            },
        },
        "/quit" => {
            shutdown.store(true, Ordering::Relaxed);
            respond(&mut stream, "200 OK", "text/plain", "shutting down\n");
        }
        _ => respond(&mut stream, "404 Not Found", "text/plain", "not found\n"),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}
