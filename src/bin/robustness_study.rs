//! `robustness_study` — replays the standard fault-injection scenario
//! suite against DICER, verifies trace determinism, and writes one JSONL
//! decision trace per scenario for golden-file comparison.
//!
//! ```text
//! robustness_study [--seed N] [--out DIR] [--jobs N]
//! ```
//!
//! Every scenario is run twice with the same seed; the run aborts if the
//! two traces are not byte-identical (the determinism contract of
//! DESIGN.md §8). Traces land in `results/robustness/<scenario>.jsonl`.
//! Scenarios fan out on a [`SweepRunner`] (`--jobs`, default one worker
//! per core); results are collected and written in suite order, so the
//! goldens are byte-identical at any parallelism.
//!
//! Traces are captured live through a telemetry [`JsonlSink`] attached to
//! the scenario runner — the same sink code path the `dicerd` daemon and
//! any other consumer use — so the golden files certify the production
//! serialisation path, not a separate formatter.

use dicer::appmodel::Catalog;
use dicer::cli::{parse_flags, parse_jobs};
use dicer::experiments::scenarios::{run_scenario_with, standard_suite, ScenarioResult};
use dicer::experiments::{SoloTable, SweepRunner};
use dicer::server::ServerConfig;
use dicer::telemetry::{JsonlSink, Telemetry};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

const DEFAULT_SEED: u64 = 0xD1CE;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = match parse_flags(&args) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}\nusage: robustness_study [--seed N] [--out DIR] [--jobs N]");
            return ExitCode::from(2);
        }
    };
    let seed: u64 = match flags.get("seed").map(|s| s.parse()) {
        None => DEFAULT_SEED,
        Some(Ok(n)) => n,
        Some(Err(_)) => {
            eprintln!("--seed takes an unsigned integer\nusage: robustness_study [--seed N] [--out DIR] [--jobs N]");
            return ExitCode::from(2);
        }
    };
    let sweep: SweepRunner = match parse_jobs(&flags) {
        Ok(p) => p.runner(),
        Err(e) => {
            eprintln!("{e}\nusage: robustness_study [--seed N] [--out DIR] [--jobs N]");
            return ExitCode::from(2);
        }
    };
    let out_dir = PathBuf::from(
        flags.get("out").map(String::as_str).unwrap_or("results/robustness"),
    );

    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let suite = standard_suite(seed);

    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("cannot create {}: {e}", out_dir.display());
        return ExitCode::FAILURE;
    }

    println!(
        "{:<16} {:>7} {:>8} {:>8} {:>7} {:>8} {:>9} {:>9}",
        "scenario", "periods", "dropped", "perturb", "resets", "samples", "failedapp", "abandoned"
    );
    // One scenario run, decision trace streamed live into a JSONL sink.
    let run_traced = |sc: &dicer::experiments::FaultScenario| {
        let sink = Arc::new(JsonlSink::new());
        let result: ScenarioResult =
            run_scenario_with(&catalog, &solo, sc, &Telemetry::new(sink.clone()), &Telemetry::off());
        (result, sink.take())
    };
    // Scenarios fan out; the sweep collects in suite order, so validation,
    // golden writes and the report are identical at any --jobs.
    let traced = sweep.map(&suite, |sc| {
        let (a, jsonl) = run_traced(sc);
        let (_, jsonl_b) = run_traced(sc);
        (a, jsonl, jsonl_b)
    });
    for (sc, (a, jsonl, jsonl_b)) in suite.iter().zip(traced) {
        if jsonl != jsonl_b {
            eprintln!(
                "DETERMINISM VIOLATION: scenario {:?} (seed {seed}) diverged between reruns",
                sc.name
            );
            return ExitCode::FAILURE;
        }
        let path = out_dir.join(format!("{}.jsonl", sc.name));
        if let Err(e) = std::fs::write(&path, &jsonl) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let fs = a.fault_stats;
        println!(
            "{:<16} {:>7} {:>8} {:>8} {:>7} {:>8} {:>9} {:>9}",
            sc.name,
            a.records.len(),
            fs.dropped_samples,
            fs.perturbed_samples,
            a.dicer_stats.resets,
            a.dicer_stats.sampling_periods,
            fs.failed_applies,
            fs.abandoned_applies,
        );
    }
    println!(
        "\n{} scenarios, seed {seed}: all traces deterministic; JSONL in {}",
        suite.len(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}
