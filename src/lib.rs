//! # DICER — Diligent Cache Partitioning for Efficient Workload Consolidation
//!
//! A from-scratch Rust reproduction of the ICPP 2019 paper by Nikas et al.
//! This facade crate re-exports the whole workspace; see the individual
//! crates for the subsystems:
//!
//! * [`cachesim`] — way-partitioned set-associative LLC simulator (CAT/CMT/MBM).
//! * [`membw`] — memory-link bandwidth and latency-inflation model.
//! * [`appmodel`] — synthetic SPEC/PARSEC-style application catalog.
//! * [`rdt`] — Intel-RDT-style control/monitoring abstraction.
//! * [`server`] — the 10-core server simulator (Table 1 configuration).
//! * [`policy`] — co-location policies: UM, CT, static partitions, DICER.
//! * [`metrics`] — EFU, SLO conformance, SUCI, CDFs.
//! * [`experiments`] — figure/table runners for the paper's evaluation.
//! * [`fleet`] — many-node consolidation: placement schedulers and churn.
//! * [`telemetry`] — structured event bus, metrics registry, JSONL sinks.
//! * [`netd`] — readiness-driven event-loop runtime (reactor, HTTP/1.1,
//!   lock-free mailbox) the daemon serves its API on.
//! * [`obs`] — observability plane: period-series store, SLO burn-rate
//!   alerting, flight-recorder incident bundles.
//! * [`daemon`] — the embeddable `dicerd` daemon (sim thread + event loop).
//!
//! ## Quickstart
//!
//! ```
//! use dicer::prelude::*;
//! use dicer::policy::PolicyKind;
//!
//! // Build the Table-1 server, co-locate one HP with three BEs, run DICER.
//! let catalog = Catalog::paper();
//! let hp = catalog.get("milc1").unwrap();
//! let be = catalog.get("gcc_base1").unwrap();
//! let outcome = run_colocation(hp, be, 4, PolicyKind::Dicer(DicerConfig::default()));
//! assert!(outcome.hp_slowdown >= 0.99);
//! ```

#![forbid(unsafe_code)]

pub mod cli;
pub mod control;
pub mod daemon;

pub use dicer_appmodel as appmodel;
pub use dicer_netd as netd;
pub use dicer_obs as obs;
pub use dicer_cachesim as cachesim;
pub use dicer_experiments as experiments;
pub use dicer_fleet as fleet;
pub use dicer_membw as membw;
pub use dicer_metrics as metrics;
pub use dicer_policy as policy;
pub use dicer_rdt as rdt;
pub use dicer_server as server;
pub use dicer_telemetry as telemetry;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use dicer_appmodel::{AppProfile, Catalog};
    pub use dicer_experiments::runner::{run_colocation, ColocationOutcome};
    pub use dicer_membw::{LinkConfig, SaturationDetector};
    pub use dicer_metrics::{efu, suci};
    pub use dicer_policy::{CacheTakeover, Dicer, DicerConfig, Policy, PolicyKind, Unmanaged};
    pub use dicer_rdt::{PartitionPlan, WayMask};
    pub use dicer_server::{Server, ServerConfig};
}
