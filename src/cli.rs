//! Argument parsing for the `dicer-sim` CLI (kept in the library so it is
//! unit-testable without spawning the binary).

use dicer_policy::{DicerConfig, PolicyKind};
use std::collections::HashMap;

/// Parses a policy spec: `um`, `ct`, `dicer`, `dicer-mba`, `dicer-adm`,
/// `dcp-qos`, `static:<ways>`, `overlap:<exclusive>:<shared>`.
pub fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "um" => Ok(PolicyKind::Unmanaged),
        "ct" => Ok(PolicyKind::CacheTakeover),
        "dicer" => Ok(PolicyKind::Dicer(DicerConfig::default())),
        "dicer-mba" => Ok(PolicyKind::DicerMba(DicerConfig::default())),
        "dicer-adm" => Ok(PolicyKind::DicerAdmission(DicerConfig::default())),
        "dcp-qos" => Ok(PolicyKind::DcpQos),
        other => {
            if let Some(w) = other.strip_prefix("static:") {
                let w: u32 = w.parse().map_err(|e| format!("bad static ways: {e}"))?;
                return Ok(PolicyKind::Static(w));
            }
            if let Some(rest) = other.strip_prefix("overlap:") {
                let (e, s) = rest
                    .split_once(':')
                    .ok_or_else(|| "overlap needs <exclusive>:<shared>".to_string())?;
                let e: u32 = e.parse().map_err(|x| format!("bad exclusive: {x}"))?;
                let s: u32 = s.parse().map_err(|x| format!("bad shared: {x}"))?;
                return Ok(PolicyKind::Overlap(e, s));
            }
            Err(format!("unknown policy {other:?}"))
        }
    }
}

/// Boolean flags that take no value.
const SWITCHES: [&str; 1] = ["timeline"];

/// Parses `--key value` pairs (plus bare switches) into a map. A flag given
/// twice is an error — silently keeping one occurrence would make the
/// command line order-sensitive in a way users only discover from wrong
/// results.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
        let value = if SWITCHES.contains(&key) {
            "true".to_string()
        } else {
            it.next().ok_or_else(|| format!("--{key} needs a value"))?.clone()
        };
        if out.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given more than once"));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_policies_parse() {
        for (s, name) in [
            ("um", "UM"),
            ("ct", "CT"),
            ("dicer", "DICER"),
            ("dicer-mba", "DICER+MBA"),
            ("dicer-adm", "DICER+ADM"),
            ("dcp-qos", "DCP-QOS"),
        ] {
            assert_eq!(parse_policy(s).unwrap().name(), name, "{s}");
        }
    }

    #[test]
    fn parameterised_policies_parse() {
        assert_eq!(parse_policy("static:7").unwrap(), PolicyKind::Static(7));
        assert_eq!(parse_policy("overlap:4:6").unwrap(), PolicyKind::Overlap(4, 6));
    }

    #[test]
    fn bad_policies_rejected() {
        assert!(parse_policy("herakles").is_err());
        assert!(parse_policy("static:x").is_err());
        assert!(parse_policy("overlap:4").is_err());
        assert!(parse_policy("overlap:a:b").is_err());
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let args: Vec<String> =
            ["--hp", "milc1", "--timeline", "--cores", "8"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["hp"], "milc1");
        assert_eq!(f["timeline"], "true");
        assert_eq!(f["cores"], "8");
    }

    #[test]
    fn flags_reject_missing_values_and_bare_words() {
        assert!(parse_flags(&["--hp".to_string()]).is_err());
        assert!(parse_flags(&["milc1".to_string()]).is_err());
    }

    #[test]
    fn duplicate_flags_rejected() {
        let args: Vec<String> =
            ["--hp", "milc1", "--hp", "lbm1"].iter().map(|s| s.to_string()).collect();
        let err = parse_flags(&args).unwrap_err();
        assert!(err.contains("--hp"), "error should name the flag: {err}");
        // Switches too, and mixed switch/value duplication.
        let args: Vec<String> =
            ["--timeline", "--timeline"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
        // Distinct flags still fine.
        let args: Vec<String> =
            ["--hp", "milc1", "--be", "milc1"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_ok());
    }
}
