//! Argument parsing for the `dicer-sim` CLI (kept in the library so it is
//! unit-testable without spawning the binary).

use dicer_experiments::Parallelism;
use dicer_policy::{DicerConfig, PolicyKind};
use std::collections::HashMap;

/// Parses a policy spec: `um`, `ct`, `dicer`, `dicer-mba`, `dicer-adm`,
/// `dcp-qos`, `static:<ways>`, `overlap:<exclusive>:<shared>`.
pub fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    match s {
        "um" => Ok(PolicyKind::Unmanaged),
        "ct" => Ok(PolicyKind::CacheTakeover),
        "dicer" => Ok(PolicyKind::Dicer(DicerConfig::default())),
        "dicer-mba" => Ok(PolicyKind::DicerMba(DicerConfig::default())),
        "dicer-adm" => Ok(PolicyKind::DicerAdmission(DicerConfig::default())),
        "dcp-qos" => Ok(PolicyKind::DcpQos),
        other => {
            if let Some(w) = other.strip_prefix("static:") {
                let w: u32 = w.parse().map_err(|e| format!("bad static ways: {e}"))?;
                return Ok(PolicyKind::Static(w));
            }
            if let Some(rest) = other.strip_prefix("overlap:") {
                let (e, s) = rest
                    .split_once(':')
                    .ok_or_else(|| "overlap needs <exclusive>:<shared>".to_string())?;
                let e: u32 = e.parse().map_err(|x| format!("bad exclusive: {x}"))?;
                let s: u32 = s.parse().map_err(|x| format!("bad shared: {x}"))?;
                return Ok(PolicyKind::Overlap(e, s));
            }
            Err(format!("unknown policy {other:?}"))
        }
    }
}

/// Boolean flags that take no value.
const SWITCHES: [&str; 1] = ["timeline"];

/// Parses `--key value` pairs (plus bare switches) into a map. A flag given
/// twice is an error — silently keeping one occurrence would make the
/// command line order-sensitive in a way users only discover from wrong
/// results.
pub fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let key = a
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got {a:?}"))?;
        let value = if SWITCHES.contains(&key) {
            "true".to_string()
        } else {
            it.next().ok_or_else(|| format!("--{key} needs a value"))?.clone()
        };
        if out.insert(key.to_string(), value).is_some() {
            return Err(format!("--{key} given more than once"));
        }
    }
    Ok(out)
}

/// Interprets the `--jobs` flag: absent means every available core, `N`
/// means exactly N sweep workers (`1` forces the serial path). Malformed
/// or zero values are errors, same as a duplicated flag — guessing a
/// worker count the user didn't ask for hides typos.
pub fn parse_jobs(flags: &HashMap<String, String>) -> Result<Parallelism, String> {
    match flags.get("jobs") {
        None => Ok(Parallelism::Auto),
        Some(v) => match v.parse::<u32>() {
            Ok(n) if n >= 1 => Ok(Parallelism::Fixed(n)),
            Ok(_) => Err("--jobs must be at least 1".to_string()),
            Err(e) => Err(format!("--jobs: {e}")),
        },
    }
}

/// Strictly parses an HTTP query string into `key → value` pairs. Every
/// key must be in `allowed` and appear at most once; anything else is a
/// client error (HTTP 400), not a silent ignore — a typoed `?m=5` that
/// quietly falls back to the default window is how operators read the
/// wrong dashboard for a week.
pub fn parse_query_params(
    query: &str,
    allowed: &[&str],
) -> Result<HashMap<String, String>, String> {
    let mut out = HashMap::new();
    if query.is_empty() {
        return Ok(out);
    }
    for kv in query.split('&') {
        let (k, v) = match kv.split_once('=') {
            Some((k, v)) => (k, v),
            None => (kv, ""),
        };
        if !allowed.contains(&k) {
            return Err(format!("unknown query parameter {k:?}"));
        }
        if out.insert(k.to_string(), v.to_string()).is_some() {
            return Err(format!("query parameter {k:?} given more than once"));
        }
    }
    Ok(out)
}

/// Interprets the `n=K` parameter of a `GET /events?n=K` query string.
/// Absent means the default window of 100 events; present, it must be a
/// positive integer. Unknown or duplicated parameters are client errors
/// (HTTP 400) via [`parse_query_params`].
pub fn parse_events_n(query: &str) -> Result<usize, String> {
    let params = parse_query_params(query, &["n"])?;
    match params.get("n") {
        None => Ok(100),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("n must be at least 1".to_string()),
            Err(e) => Err(format!("bad n {v:?}: {e}")),
        },
    }
}

/// Interprets the full `GET /events` query string of the daemon:
/// `n=K` (positive backlog size, `None` when absent so follow mode can
/// distinguish "no backlog asked for" from an explicit window) and
/// `follow=0|1` (switch to streaming mode). Same strictness contract as
/// [`parse_events_n`]: unknown keys, duplicates and malformed values are
/// client errors.
pub fn parse_events_query(query: &str) -> Result<(Option<usize>, bool), String> {
    let params = parse_query_params(query, &["n", "follow"])?;
    let n = match params.get("n") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n >= 1 => Some(n),
            Ok(_) => return Err("n must be at least 1".to_string()),
            Err(e) => return Err(format!("bad n {v:?}: {e}")),
        },
    };
    let follow = match params.get("follow").map(String::as_str) {
        None => false,
        Some("0") => false,
        Some("1") => true,
        Some(other) => return Err(format!("bad follow {other:?}: must be 0 or 1")),
    };
    Ok((n, follow))
}

/// Interprets the `GET /query` query string of the daemon:
/// `metric=NAME` (required, the series name verbatim), `start=P` /
/// `end=P` (inclusive period range, defaults `0..=u64::MAX`), and
/// `step=N` (≥ 1, default 1; the store picks the raw, /16 or /256 tier
/// from it). Unknown or duplicated parameters are client errors via
/// [`parse_query_params`].
pub fn parse_range_query(query: &str) -> Result<(String, u64, u64, u64), String> {
    let params = parse_query_params(query, &["metric", "start", "end", "step"])?;
    let metric = match params.get("metric") {
        Some(m) if !m.is_empty() => m.clone(),
        _ => return Err("metric is required (e.g. /query?metric=obs_hp_norm_ipc)".to_string()),
    };
    let int = |key: &str, default: u64| -> Result<u64, String> {
        match params.get(key) {
            None => Ok(default),
            Some(v) => v.parse::<u64>().map_err(|e| format!("bad {key} {v:?}: {e}")),
        }
    };
    let start = int("start", 0)?;
    let end = int("end", u64::MAX)?;
    let step = int("step", 1)?;
    if step == 0 {
        return Err("step must be at least 1".to_string());
    }
    if start > end {
        return Err(format!("empty range: start {start} > end {end}"));
    }
    Ok((metric, start, end, step))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_policies_parse() {
        for (s, name) in [
            ("um", "UM"),
            ("ct", "CT"),
            ("dicer", "DICER"),
            ("dicer-mba", "DICER+MBA"),
            ("dicer-adm", "DICER+ADM"),
            ("dcp-qos", "DCP-QOS"),
        ] {
            assert_eq!(parse_policy(s).unwrap().name(), name, "{s}");
        }
    }

    #[test]
    fn parameterised_policies_parse() {
        assert_eq!(parse_policy("static:7").unwrap(), PolicyKind::Static(7));
        assert_eq!(parse_policy("overlap:4:6").unwrap(), PolicyKind::Overlap(4, 6));
    }

    #[test]
    fn bad_policies_rejected() {
        assert!(parse_policy("herakles").is_err());
        assert!(parse_policy("static:x").is_err());
        assert!(parse_policy("overlap:4").is_err());
        assert!(parse_policy("overlap:a:b").is_err());
    }

    #[test]
    fn flags_parse_pairs_and_switches() {
        let args: Vec<String> =
            ["--hp", "milc1", "--timeline", "--cores", "8"].iter().map(|s| s.to_string()).collect();
        let f = parse_flags(&args).unwrap();
        assert_eq!(f["hp"], "milc1");
        assert_eq!(f["timeline"], "true");
        assert_eq!(f["cores"], "8");
    }

    #[test]
    fn flags_reject_missing_values_and_bare_words() {
        assert!(parse_flags(&["--hp".to_string()]).is_err());
        assert!(parse_flags(&["milc1".to_string()]).is_err());
    }

    fn flags_of(args: &[&str]) -> HashMap<String, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn jobs_defaults_to_auto_and_parses_fixed() {
        assert_eq!(parse_jobs(&flags_of(&[])).unwrap(), Parallelism::Auto);
        assert_eq!(parse_jobs(&flags_of(&["--jobs", "1"])).unwrap(), Parallelism::Fixed(1));
        assert_eq!(parse_jobs(&flags_of(&["--jobs", "8"])).unwrap(), Parallelism::Fixed(8));
    }

    #[test]
    fn malformed_jobs_rejected() {
        for bad in ["0", "-2", "four", "2.5", ""] {
            let err = parse_jobs(&flags_of(&["--jobs", bad])).unwrap_err();
            assert!(err.contains("--jobs") || err.contains("at least 1"), "{bad:?}: {err}");
        }
    }

    #[test]
    fn events_n_defaults_and_parses() {
        assert_eq!(parse_events_n(""), Ok(100));
        assert_eq!(parse_events_n("n=1"), Ok(1));
        assert_eq!(parse_events_n("n=250"), Ok(250));
    }

    #[test]
    fn malformed_events_n_is_an_error_not_a_fallback() {
        for bad in ["n=0", "n=", "n=-3", "n=ten", "n=1.5"] {
            assert!(parse_events_n(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn unknown_events_params_are_rejected_not_ignored() {
        // These used to be silently tolerated; a typoed parameter now gets
        // an HTTP 400 instead of the default window.
        for bad in ["verbose", "a=b&n=7", "m=5", "n=7&n=7"] {
            let err = parse_events_n(bad).unwrap_err();
            assert!(
                err.contains("query parameter"),
                "{bad:?} must name the offending parameter: {err}"
            );
        }
    }

    #[test]
    fn events_query_parses_n_and_follow() {
        assert_eq!(parse_events_query(""), Ok((None, false)));
        assert_eq!(parse_events_query("n=7"), Ok((Some(7), false)));
        assert_eq!(parse_events_query("follow=1"), Ok((None, true)));
        assert_eq!(parse_events_query("follow=0"), Ok((None, false)));
        assert_eq!(parse_events_query("n=3&follow=1"), Ok((Some(3), true)));
    }

    #[test]
    fn malformed_events_query_is_an_error_not_a_fallback() {
        for bad in ["n=0", "n=x", "follow=2", "follow=yes", "follow=", "tail=1", "follow=1&follow=1"] {
            assert!(parse_events_query(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn range_query_parses_with_defaults() {
        assert_eq!(
            parse_range_query("metric=obs_hp_norm_ipc"),
            Ok(("obs_hp_norm_ipc".to_string(), 0, u64::MAX, 1))
        );
        assert_eq!(
            parse_range_query("metric=dicer_hp_ipc&start=100&end=200&step=16"),
            Ok(("dicer_hp_ipc".to_string(), 100, 200, 16))
        );
    }

    #[test]
    fn malformed_range_query_is_an_error_not_a_fallback() {
        for bad in [
            "",
            "metric=",
            "start=1",
            "metric=x&start=a",
            "metric=x&step=0",
            "metric=x&start=5&end=4",
            "metric=x&window=3",
            "metric=x&metric=y",
        ] {
            assert!(parse_range_query(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn query_params_parse_strictly() {
        let p = parse_query_params("n=5&node=2", &["n", "node"]).unwrap();
        assert_eq!(p["n"], "5");
        assert_eq!(p["node"], "2");
        assert!(parse_query_params("", &[]).unwrap().is_empty());
        // Bare keys parse as empty values (the caller validates content).
        assert_eq!(parse_query_params("n", &["n"]).unwrap()["n"], "");
        // Unknown and duplicated keys are errors, regardless of position.
        assert!(parse_query_params("x=1", &["n"]).is_err());
        assert!(parse_query_params("n=1&x=1", &["n"]).is_err());
        assert!(parse_query_params("n=1&n=2", &["n"]).is_err());
        // Anything at all is an error when nothing is allowed.
        assert!(parse_query_params("n=1", &[]).is_err());
    }

    #[test]
    fn duplicate_flags_rejected() {
        let args: Vec<String> =
            ["--hp", "milc1", "--hp", "lbm1"].iter().map(|s| s.to_string()).collect();
        let err = parse_flags(&args).unwrap_err();
        assert!(err.contains("--hp"), "error should name the flag: {err}");
        // Switches too, and mixed switch/value duplication.
        let args: Vec<String> =
            ["--timeline", "--timeline"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_err());
        // Distinct flags still fine.
        let args: Vec<String> =
            ["--hp", "milc1", "--be", "milc1"].iter().map(|s| s.to_string()).collect();
        assert!(parse_flags(&args).is_ok());
    }
}
