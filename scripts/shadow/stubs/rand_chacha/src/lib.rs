//! Offline stub of `rand_chacha`: `ChaCha8Rng` is splitmix64 underneath.
//! Seed-sensitive and self-deterministic, but the stream does NOT match
//! the real ChaCha8 keystream.

use rand::util::SplitMix64;
use rand::{RngCore, SeedableRng};

#[derive(Clone, Debug)]
pub struct ChaCha8Rng(SplitMix64);

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        (self.0.next_u64() >> 32) as u32
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];
    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u8; 8];
        s.copy_from_slice(&seed[..8]);
        Self(SplitMix64::new(u64::from_le_bytes(s)))
    }
}

pub type ChaCha12Rng = ChaCha8Rng;
pub type ChaCha20Rng = ChaCha8Rng;
