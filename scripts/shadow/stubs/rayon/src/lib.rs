//! Offline stub of `rayon`: everything runs serially on the calling
//! thread. `par_iter()` is a plain slice iterator, so the full std
//! `Iterator` adapter surface (enumerate/map/collect) works unchanged.

use std::fmt;

#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rayon stub: pool construction never fails")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        op()
    }

    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

#[derive(Default)]
pub struct ThreadPoolBuilder {
    threads: usize,
}

impl ThreadPoolBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn num_threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { threads: self.threads.max(1) })
    }
}

pub fn current_thread_index() -> Option<usize> {
    None
}

pub fn current_num_threads() -> usize {
    1
}

pub mod prelude {
    pub trait IntoParallelRefIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data + Sync> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    pub trait IntoParallelRefMutIterator<'data> {
        type Item: 'data;
        type Iter: Iterator<Item = Self::Item>;
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data + Send> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;
        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    pub trait IntoParallelIterator {
        type Item;
        type Iter: Iterator<Item = Self::Item>;
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<T: Send> IntoParallelIterator for Vec<T> {
        type Item = T;
        type Iter = std::vec::IntoIter<T>;
        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}
