//! Offline stub of `serde_derive`: emits empty marker-trait impls (the
//! stub `serde` traits carry no methods). Handles plain structs/enums and
//! simple type generics (`Foo<T, U>`), which covers this workspace.

use proc_macro::{TokenStream, TokenTree};

/// Returns the type name and its type-parameter idents (`Foo<T>` ->
/// ("Foo", ["T"])). Only simple parameter lists are understood: each
/// comma-separated slot's first ident is taken, bounds are ignored.
fn parse_type(input: TokenStream) -> (String, Vec<String>) {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" {
                let name = loop {
                    match iter.next() {
                        Some(TokenTree::Ident(id2)) => break id2.to_string(),
                        Some(_) => continue,
                        None => panic!("serde_derive stub: no type name"),
                    }
                };
                let mut params = Vec::new();
                if let Some(TokenTree::Punct(p)) = iter.peek() {
                    if p.as_char() == '<' {
                        iter.next();
                        let mut depth = 1usize;
                        let mut slot_named = false;
                        for tt2 in iter.by_ref() {
                            match tt2 {
                                TokenTree::Punct(p) => match p.as_char() {
                                    '<' => depth += 1,
                                    '>' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    ',' if depth == 1 => slot_named = false,
                                    _ => {}
                                },
                                TokenTree::Ident(id2) if depth == 1 && !slot_named => {
                                    params.push(id2.to_string());
                                    slot_named = true;
                                }
                                _ => {}
                            }
                        }
                    }
                }
                return (name, params);
            }
        }
    }
    panic!("serde_derive stub: no struct/enum found")
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_type(input);
    let code = if params.is_empty() {
        format!("impl ::serde::Serialize for {name} {{}}")
    } else {
        let bounded: Vec<String> =
            params.iter().map(|p| format!("{p}: ::serde::Serialize")).collect();
        format!(
            "impl<{}> ::serde::Serialize for {name}<{}> {{}}",
            bounded.join(", "),
            params.join(", ")
        )
    };
    code.parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, params) = parse_type(input);
    let code = if params.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    } else {
        let bounded: Vec<String> =
            params.iter().map(|p| format!("{p}: ::serde::Deserialize<'de>")).collect();
        format!(
            "impl<'de, {}> ::serde::Deserialize<'de> for {name}<{}> {{}}",
            bounded.join(", "),
            params.join(", ")
        )
    };
    code.parse().unwrap()
}
