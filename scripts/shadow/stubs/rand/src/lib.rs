//! Offline stub of the `rand` crate: deterministic splitmix64-backed
//! generators with just the API surface this workspace uses. Streams do
//! NOT match the real crate; only self-relative determinism holds.

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let w = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

pub trait SeedableRng: Sized {
    type Seed: Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = crate::util::SplitMix64::new(state);
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let w = sm.next_u64().to_le_bytes();
            let n = (bytes.len() - i).min(8);
            bytes[i..i + n].copy_from_slice(&w[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
    fn from_entropy() -> Self {
        Self::seed_from_u64(0x9e37_79b9_7f4a_7c15)
    }
}

pub mod util {
    /// The canonical splitmix64 step (Vigna), the engine behind every
    /// stub generator.
    #[derive(Clone, Debug)]
    pub struct SplitMix64 {
        pub state: u64,
    }

    impl SplitMix64 {
        pub fn new(state: u64) -> Self {
            Self { state }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

/// Types samplable from the "standard" distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize);

impl SampleRange<i64> for core::ops::Range<i64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> i64 {
        assert!(self.start < self.end, "empty range");
        let span = (self.end - self.start) as u64;
        self.start.wrapping_add((rng.next_u64() % span) as i64)
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        self.start() + f64::sample_standard(rng) * (self.end() - self.start())
    }
}

pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Stand-in for `rand::rngs::StdRng` (splitmix64 underneath).
    #[derive(Clone, Debug)]
    pub struct StdRng(crate::util::SplitMix64);

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.0.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];
        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u8; 8];
            s.copy_from_slice(&seed[..8]);
            Self(crate::util::SplitMix64::new(u64::from_le_bytes(s)))
        }
    }
}

pub mod seq {
    use super::RngCore;

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}
