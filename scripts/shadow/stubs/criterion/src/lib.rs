//! Offline stub of `criterion`: compiles the bench targets but performs
//! a single timing-free pass per closure (no statistics, no reports).

use std::fmt::Display;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkId {
    #[allow(dead_code)]
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        Self { id: format!("{}/{}", function_name.into(), parameter) }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self { id: parameter.to_string() }
    }
}

pub struct Bencher;

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
    }
}

pub struct BenchmarkGroup<'a> {
    #[allow(dead_code)]
    parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        _id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    pub fn finish(self) {}
}

#[derive(Default)]
pub struct Criterion;

impl Criterion {
    pub fn benchmark_group(&mut self, _name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _id: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    pub fn final_summary(&mut self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
