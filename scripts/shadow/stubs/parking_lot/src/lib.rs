//! Offline stub of `parking_lot`: thin wrappers over `std::sync` with
//! parking_lot's non-poisoning API shape.

use std::sync;

pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|p| p.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|p| p.into_inner())
    }
}
