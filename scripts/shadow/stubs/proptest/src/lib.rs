//! Offline stub of `proptest`. The `proptest!` macro expands to NOTHING
//! (property bodies are not compiled or run in the shadow build); the
//! `Strategy` combinator surface exists only so helper functions written
//! outside the macro (`fn arb_x() -> impl Strategy<Value = X>`) still
//! typecheck.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub trait Strategy: Sized {
    type Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { strategy: self, map: f }
    }

    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F> {
        Filter { strategy: self, filter: f }
    }

    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { strategy: self, map: f }
    }

    fn boxed(self) -> BoxedStrategy<Self::Value> {
        BoxedStrategy(PhantomData)
    }
}

pub struct Map<S, F> {
    #[allow(dead_code)]
    strategy: S,
    #[allow(dead_code)]
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
}

pub struct Filter<S, F> {
    #[allow(dead_code)]
    strategy: S,
    #[allow(dead_code)]
    filter: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
}

pub struct FlatMap<S, F> {
    #[allow(dead_code)]
    strategy: S,
    #[allow(dead_code)]
    map: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
}

pub struct BoxedStrategy<T>(PhantomData<T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
}

#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T> Strategy for Just<T> {
    type Value = T;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

pub mod collection {
    use super::Strategy;

    pub struct VecStrategy<S>(#[allow(dead_code)] S);

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
    }

    /// Size argument accepted loosely (`usize`, ranges, ...): the stub
    /// never generates values, so only the element type matters.
    pub fn vec<S: Strategy, Z>(element: S, _size: Z) -> VecStrategy<S> {
        VecStrategy(element)
    }
}

pub struct Any<T>(PhantomData<T>);

impl<T> Strategy for Any<T> {
    type Value = T;
}

pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

#[derive(Clone, Debug, Default)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Expands to nothing: property bodies are not compiled in shadow.
#[macro_export]
macro_rules! proptest {
    ($($tt:tt)*) => {};
}

/// Returns the FIRST arm's strategy; the rest are consumed unevaluated
/// at runtime but still typechecked. All arms must share a `Value` type
/// in real proptest; the stub only requires the first to be one.
#[macro_export]
macro_rules! prop_oneof {
    ($first:expr $(,)?) => { $first };
    ($first:expr, $($rest:expr),+ $(,)?) => {{
        let _ = || { $( let _ = &$rest; )+ };
        $first
    }};
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assume {
    ($($tt:tt)*) => {};
}

#[macro_export]
macro_rules! prop_compose {
    ($($tt:tt)*) => {};
}

pub mod strategy {
    pub use super::{Any, BoxedStrategy, Just, Strategy};
}

pub mod prelude {
    pub use super::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_compose, prop_oneof,
        proptest, Just, ProptestConfig, Strategy,
    };
    pub use crate as prop;
}
