//! Offline stub: unused placeholder.
