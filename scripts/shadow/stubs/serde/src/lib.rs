//! Offline stub of `serde`: marker traits only. The paired stub
//! `serde_json` never inspects values, so the traits carry no methods.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}

pub trait Deserialize<'de>: Sized {}

pub mod de {
    pub trait DeserializeOwned: for<'de> crate::Deserialize<'de> {}
    impl<T> DeserializeOwned for T where T: for<'de> crate::Deserialize<'de> {}
}

pub mod ser {
    pub use crate::Serialize;
}

macro_rules! impl_marker {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {}
        impl<'de> Deserialize<'de> for $t {}
    )*};
}

impl_marker!(
    bool, char, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64,
    String, ()
);

impl Serialize for str {}

impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {}

macro_rules! impl_tuple {
    ($($name:ident),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {}
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {}
    };
}

impl_tuple!(A);
impl_tuple!(A, B);
impl_tuple!(A, B, C);
impl_tuple!(A, B, C, D);
impl_tuple!(A, B, C, D, E);
impl_tuple!(A, B, C, D, E, F);

impl<K: Serialize, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {}
impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de>
    for std::collections::BTreeMap<K, V>
{
}
impl<K: Serialize, V: Serialize> Serialize for std::collections::HashMap<K, V> {}
