//! Offline stub of `serde_json`: a NO-OP. `to_string*` returns `Ok("")`
//! and `from_str` always errors — callers that round-trip through JSON
//! must tolerate empty artifacts / cache misses in the shadow build.

use std::fmt;

#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("serde_json stub: serialisation disabled in offline shadow build")
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_string<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_string_pretty<T: ?Sized + serde::Serialize>(_value: &T) -> Result<String> {
    Ok(String::new())
}

pub fn to_vec<T: ?Sized + serde::Serialize>(_value: &T) -> Result<Vec<u8>> {
    Ok(Vec::new())
}

pub fn from_str<T: serde::de::DeserializeOwned>(_s: &str) -> Result<T> {
    Err(Error)
}

pub fn from_slice<T: serde::de::DeserializeOwned>(_s: &[u8]) -> Result<T> {
    Err(Error)
}
