//! Offline stub: unused placeholder.
