#!/usr/bin/env bash
# Sync the repo into the stubbed shadow build tree (/tmp/shadow), keeping
# the shadow's patched root Cargo.toml / Cargo.lock / stubs intact.
set -euo pipefail
SRC=/root/repo
DST=/tmp/shadow
cd "$SRC"
git ls-files -co --exclude-standard | while read -r f; do
  case "$f" in
    Cargo.toml|Cargo.lock) continue ;;
  esac
  mkdir -p "$DST/$(dirname "$f")"
  cp -p "$f" "$DST/$f"
done
# Remove files that vanished from the repo (tracked dirs only).
(cd "$DST" && find crates src tests examples scripts -type f 2>/dev/null) | while read -r f; do
  case "$f" in
    */target/*) continue ;;
  esac
  if [ ! -e "$SRC/$f" ] && [ "$f" != "examples/speedup_check.rs" ]; then
    rm -f "$DST/$f"
  fi
done
