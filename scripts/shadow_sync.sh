#!/usr/bin/env bash
# Sync the repo into the stubbed shadow build tree (/tmp/shadow), keeping
# the shadow's patched root Cargo.toml / Cargo.lock / stubs intact.
#
# /tmp is wiped between sessions: when the shadow root manifest or the
# stubs are missing, they are re-seeded from the committed copies under
# scripts/shadow/ (Cargo.shadow.toml + stubs/). The live shadow copies
# win over the committed ones on every later sync, so local stub fixes
# survive until deliberately copied back into scripts/shadow/.
set -euo pipefail
SRC=/root/repo
DST=/tmp/shadow
mkdir -p "$DST"
if [ ! -f "$DST/Cargo.toml" ] && [ -f "$SRC/scripts/shadow/Cargo.shadow.toml" ]; then
  cp -p "$SRC/scripts/shadow/Cargo.shadow.toml" "$DST/Cargo.toml"
fi
if [ ! -d "$DST/stubs" ] && [ -d "$SRC/scripts/shadow/stubs" ]; then
  cp -pr "$SRC/scripts/shadow/stubs" "$DST/stubs"
fi
cd "$SRC"
git ls-files -co --exclude-standard | while read -r f; do
  case "$f" in
    Cargo.toml|Cargo.lock) continue ;;
  esac
  mkdir -p "$DST/$(dirname "$f")"
  cp -p "$f" "$DST/$f"
done
# Remove files that vanished from the repo (tracked dirs only).
(cd "$DST" && find crates src tests examples scripts -type f 2>/dev/null) | while read -r f; do
  case "$f" in
    */target/*) continue ;;
  esac
  if [ ! -e "$SRC/$f" ] && [ "$f" != "examples/speedup_check.rs" ]; then
    rm -f "$DST/$f"
  fi
done
