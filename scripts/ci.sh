#!/usr/bin/env bash
# Repo-local CI: formatting, lints, and the full test suite.
#
# Designed to run offline: no network access is attempted beyond what
# cargo itself needs, and CARGO_NET_OFFLINE forces cargo to fail fast
# (with a clear message) instead of hanging on an unreachable registry.
#
# Usage: scripts/ci.sh [--fast|--update-baselines]
#
#   (default)  formatting, clippy, the full workspace test suite, the
#              fault-injection robustness suite (deterministic JSONL traces
#              under results/robustness/), the serial-vs-parallel sweep
#              benchmark (results/BENCH_sweep.json, gated against the
#              committed baseline), the span-tracing overhead benchmark
#              (results/BENCH_trace_overhead.json, gated against the
#              committed baseline), the long-horizon hot-path benchmark
#              (results/BENCH_longrun.json) gated against the committed
#              baseline (>15% throughput regression fails), the fleet
#              fan-out benchmark (results/BENCH_fleet.json, byte-identity
#              required and >15% serial regression gated), the fleet
#              scheduler study (results/fleet_study.json, asserts
#              sensitivity-aware packing beats round-robin), a dicer-trace
#              round trip (record a trace, render the report, JSON-validate
#              the Chrome export), the dicerd load test
#              (results/BENCH_dicerd.json, >15% req/s regression gated),
#              the observability-plane overhead benchmark
#              (results/BENCH_obs.json, the bench hard-asserts the <3%
#              managed-scenario budget and the gate fails a >15%
#              throughput drop vs the committed baseline), and a dicerd
#              daemon smoke test (endpoints, conn metrics, live POST
#              /control retargeting, /query range reads, /alerts).
#   --fast     clippy plus controller-stack + netd + obs unit tests, the
#              conformance, fault-injection, sweep-determinism and
#              fleet-determinism suites, the dicerd API suite (concurrent
#              clients, control conformance, drain-on-quit), the
#              SLO-alerting golden-bundle suite, the placement-signal
#              clause check, and the controller-registry coverage check —
#              the inner-loop tier.
#   --update-baselines
#              run the full tier but skip the perf regression gates,
#              letting the freshly written BENCH_*.json files become the
#              next committed baselines. Loudly logged: use only when a
#              deliberate perf change (or new hardware) moves the numbers.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
update_baselines=0
case "${1:-}" in
    --fast) fast=1 ;;
    --update-baselines) update_baselines=1 ;;
    "") ;;
    *) echo "usage: scripts/ci.sh [--fast|--update-baselines]" >&2; exit 2 ;;
esac
if [ "$#" -gt 1 ]; then
    echo "usage: scripts/ci.sh [--fast|--update-baselines]" >&2
    exit 2
fi

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR=${CARGO_TERM_COLOR:-always}

step() {
    printf '\n== %s ==\n' "$*"
}

fail=0

if ! command -v cargo >/dev/null 2>&1; then
    echo "error: cargo not found on PATH" >&2
    exit 1
fi

if [ "$fast" -eq 1 ]; then
    # Scoped to the controller-stack crates the fast tier tests; the
    # workspace-wide sweep (which also lints the proptest suites) runs in
    # the full tier.
    step "cargo clippy -D warnings (controller stack + netd + obs)"
    if cargo clippy --version >/dev/null 2>&1; then
        cargo clippy -p dicer-policy -p dicer-rdt -p dicer-membw -p dicer-telemetry \
            -p dicer-netd -p dicer-obs --all-targets -- -D warnings || fail=1
    else
        echo "skipped: clippy not installed"
    fi

    step "cargo test (controller stack + netd + obs units)"
    cargo test -q -p dicer-policy -p dicer-rdt -p dicer-membw -p dicer-telemetry \
        -p dicer-netd -p dicer-obs --lib || fail=1

    step "cargo test (conformance + fault injection)"
    cargo test -q --test controller_conformance --test fault_injection || fail=1

    step "cargo test (dicerd API: concurrent clients, /control conformance, drain-on-quit)"
    # The full daemon on ephemeral ports: >=8 concurrent clients (valid,
    # keep-alive, and malformed traffic) must all get well-formed
    # responses; POST /control must follow its accepted/rejected table;
    # /quit must drain in-flight connections before the threads join.
    cargo test -q --test dicerd_api || fail=1

    step "cargo test (SLO alerting: burn-rate fire period + golden incident bundle)"
    # Replays the pinned scenario through the obs plane: the burn-rate
    # page must fire at the committed period, and the cut incident bundle
    # must stay byte-identical to tests/goldens/incident_burn_rate.jsonl
    # regardless of thread count.
    cargo test -q --test obs_alerting || fail=1

    step "registry coverage (every registered controller passes the contract)"
    # The conformance kit fails this test if any controller in the standard
    # registry is missing a CONTRACT_TABLE row or violates a contract
    # clause — landing a new policy without tests fails the build here.
    cargo test -q --test controller_conformance \
        every_registered_controller_is_covered_and_conformant || fail=1

    step "cargo test (sweep determinism: parallel == serial, byte for byte)"
    cargo test -q --release --test sweep_determinism || fail=1

    step "cargo test (fleet determinism: outcome bytes pinned at any --jobs)"
    cargo test -q --release --test fleet_determinism || fail=1

    step "placement signal (the conformance clause fleet migration stands on)"
    # Fleet eviction triggers on a sustained severity ladder; this named
    # check keeps the clause wired even if the conformance suite above is
    # ever rescoped.
    cargo test -q --test controller_conformance \
        placement_signal_controllers_hold_a_stable_severity_ladder || fail=1

    step "result"
    if [ "$fail" -ne 0 ]; then
        echo "CI FAILED (fast tier)"
        exit 1
    fi
    echo "CI OK (fast tier)"
    exit 0
fi

# Advisory only: the tree predates any enforced rustfmt config, so
# formatting drift is reported without failing the run.
step "cargo fmt --check (advisory)"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check || echo "note: formatting drift (not fatal)"
else
    echo "skipped: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings || fail=1
else
    echo "skipped: clippy not installed"
fi

step "cargo test"
cargo test --workspace -q || fail=1

step "robustness suite (deterministic fault-injection traces)"
cargo run -q --bin robustness_study || fail=1

step "sweep benchmark (serial vs parallel matrix, results/BENCH_sweep.json)"
sweep_baseline="$(mktemp)"
git show HEAD:results/BENCH_sweep.json > "$sweep_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin sweep_bench || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the sweep perf gate." >&2
    elif [ ! -s "$sweep_baseline" ]; then
        echo "note: no committed BENCH_sweep.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_sweep.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        # Wall-clock tolerance is generous (the serial pass is ~10 ms, so
        # scheduler noise is a visible fraction); the structural fields are
        # exact: the parallel matrix must stay byte-identical.
        python3 - "$sweep_baseline" results/BENCH_sweep.json <<'PY' || { echo "sweep benchmark regressed vs the committed baseline" >&2; fail=1; }
import json, sys
TOLERANCE = 0.50
base, cur = (json.load(open(p)) for p in sys.argv[1:3])
bad = 0
if not cur["byte_identical"]:
    print("  parallel matrix no longer byte-identical to serial", file=sys.stderr)
    bad += 1
delta = (cur["serial_s"] - base["serial_s"]) / base["serial_s"]
verdict = "FAIL" if delta > TOLERANCE else "ok"
print(f"  serial pass: {base['serial_s']*1e3:.1f} -> {cur['serial_s']*1e3:.1f} ms ({delta:+.1%}) {verdict}")
if delta > TOLERANCE:
    bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the sweep perf gate"
    fi
fi
rm -f "$sweep_baseline"

step "span tracing overhead (results/BENCH_trace_overhead.json, <3% budget)"
trace_baseline="$(mktemp)"
git show HEAD:results/BENCH_trace_overhead.json > "$trace_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin trace_overhead || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the tracing overhead gate." >&2
    elif [ ! -s "$trace_baseline" ]; then
        echo "note: no committed BENCH_trace_overhead.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_trace_overhead.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        # The bench already hard-asserts overhead < limit_pct; the gate adds
        # drift detection: overhead may not creep more than 1.5 points past
        # the committed baseline even while staying inside the budget.
        python3 - "$trace_baseline" results/BENCH_trace_overhead.json <<'PY' || { echo "span tracing overhead drifted vs the committed baseline" >&2; fail=1; }
import json, sys
DRIFT_PTS = 1.5
base, cur = (json.load(open(p)) for p in sys.argv[1:3])
bad = 0
if not cur["identical"]:
    print("  traced pipeline no longer byte-identical to untraced", file=sys.stderr)
    bad += 1
# A negative baseline is measurement noise, not a credit to spend: drift
# is measured from max(baseline, 0).
old, new = base["overhead_pct"], cur["overhead_pct"]
ceiling = max(old, 0.0) + DRIFT_PTS
verdict = "FAIL" if new > ceiling else "ok"
print(f"  sweep-level overhead: {old:+.2f}% -> {new:+.2f}% (ceiling {ceiling:.2f}%) {verdict}")
if new > ceiling:
    bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the tracing overhead gate"
    fi
fi
rm -f "$trace_baseline"

step "long-horizon hot path (results/BENCH_longrun.json, perf gate vs baseline)"
# Snapshot the committed baseline before the bench overwrites the file,
# then gate the fresh numbers against it: a >15% drop of any scenario's
# incremental periods/sec fails CI. The bench itself asserts the hard
# invariants (bit-identity vs the cold path, the 5x steady-state speedup
# floor, zero hot-loop allocations with sinks detached).
longrun_baseline="$(mktemp)"
git show HEAD:results/BENCH_longrun.json > "$longrun_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin longrun_bench || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the throughput regression" >&2
        echo "WARNING: gate. Commit the refreshed results/BENCH_longrun.json only if" >&2
        echo "WARNING: the perf change is deliberate." >&2
    elif [ ! -s "$longrun_baseline" ]; then
        echo "note: no committed BENCH_longrun.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_longrun.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        python3 - "$longrun_baseline" results/BENCH_longrun.json <<'PY' || { echo "long-horizon throughput regressed >15% vs the committed baseline" >&2; fail=1; }
import json, sys
TOLERANCE = 0.15
base = {s["name"]: s for s in json.load(open(sys.argv[1]))["scenarios"]}
cur = {s["name"]: s for s in json.load(open(sys.argv[2]))["scenarios"]}
bad = 0
for name, b in sorted(base.items()):
    c = cur.get(name)
    if c is None:
        print(f"  {name}: scenario missing from the fresh run", file=sys.stderr)
        bad += 1
        continue
    old, new = b["incremental_periods_per_sec"], c["incremental_periods_per_sec"]
    delta = (new - old) / old
    verdict = "FAIL" if delta < -TOLERANCE else "ok"
    print(f"  {name}: {old:.0f} -> {new:.0f} periods/s ({delta:+.1%}) {verdict}")
    if delta < -TOLERANCE:
        bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the throughput regression gate"
    fi
fi
rm -f "$longrun_baseline"

step "fleet benchmark (500-node serial vs parallel, results/BENCH_fleet.json)"
# The bench hard-asserts byte identity between the serial and parallel
# fleet runs (and a 4x speedup floor when the rayon pool is genuinely
# parallel); the gate adds serial-throughput drift detection against the
# committed baseline.
fleet_baseline="$(mktemp)"
git show HEAD:results/BENCH_fleet.json > "$fleet_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin fleet_bench || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the fleet perf gate." >&2
    elif [ ! -s "$fleet_baseline" ]; then
        echo "note: no committed BENCH_fleet.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_fleet.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        python3 - "$fleet_baseline" results/BENCH_fleet.json <<'PY' || { echo "fleet benchmark regressed vs the committed baseline" >&2; fail=1; }
import json, sys
TOLERANCE = 0.15
base, cur = (json.load(open(p)) for p in sys.argv[1:3])
bad = 0
if not cur["byte_identical"]:
    print("  parallel fleet outcome no longer byte-identical to serial", file=sys.stderr)
    bad += 1
delta = (cur["serial_s"] - base["serial_s"]) / base["serial_s"]
verdict = "FAIL" if delta > TOLERANCE else "ok"
print(f"  serial fleet run: {base['serial_s']:.2f} -> {cur['serial_s']:.2f} s ({delta:+.1%}) {verdict}")
if delta > TOLERANCE:
    bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the fleet perf gate"
    fi
fi
rm -f "$fleet_baseline"

step "fleet scheduler study (results/fleet_study.json, pack must beat round-robin)"
# The study binary hard-asserts the committed artifact's headline claim:
# sensitivity-aware packing beats round-robin on mean P99 HP slowdown.
cargo run -q --release -p dicer-bench --bin fleet_study || fail=1

step "dicer-trace round trip (record, report, Chrome export)"
trace_dir="$(mktemp -d)"
cargo run -q --release --bin dicer-sim -- run --hp milc1 --be gcc_base1 \
    --trace "$trace_dir/run.jsonl" >/dev/null || fail=1
if [ "$fail" -eq 0 ]; then
    cargo run -q --release --bin dicer-trace -- "$trace_dir/run.jsonl" \
        --chrome "$trace_dir/chrome.json" > "$trace_dir/report1.txt" || fail=1
    grep -q 'stage cost breakdown' "$trace_dir/report1.txt" \
        || { echo "report missing cost breakdown" >&2; fail=1; }
    grep -q 'decision timeline' "$trace_dir/report1.txt" \
        || { echo "report missing decision timeline" >&2; fail=1; }
    # The report and export are pure functions of the trace bytes.
    cargo run -q --release --bin dicer-trace -- "$trace_dir/run.jsonl" \
        --chrome "$trace_dir/chrome2.json" > "$trace_dir/report2.txt" || fail=1
    sed 's/chrome2\.json/chrome.json/' "$trace_dir/report2.txt" \
        | cmp -s - "$trace_dir/report1.txt" \
        || { echo "dicer-trace report not deterministic" >&2; fail=1; }
    cmp -s "$trace_dir/chrome.json" "$trace_dir/chrome2.json" \
        || { echo "Chrome export not deterministic" >&2; fail=1; }
    if command -v python3 >/dev/null 2>&1; then
        python3 - "$trace_dir/chrome.json" <<'PY' || { echo "Chrome export is not valid JSON" >&2; fail=1; }
import json, sys
doc = json.load(open(sys.argv[1]))
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "no trace events"
assert all(e["ph"] == "X" for e in doc["traceEvents"]), "non-complete event"
PY
    else
        echo "note: python3 not installed, skipping Chrome JSON validation"
    fi
fi
rm -rf "$trace_dir"

step "dicerd load test (results/BENCH_dicerd.json, req/s gate vs baseline)"
# In-process daemon, 12 concurrent keep-alive clients, every response
# strictly validated (the binary exits non-zero on a single malformed
# one). The gate fails CI on a >15% requests/sec drop vs the committed
# baseline; latency percentiles are recorded for inspection but not
# gated (they track the poll tick, not the code under test).
dicerd_baseline="$(mktemp)"
git show HEAD:results/BENCH_dicerd.json > "$dicerd_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin dicerd_loadgen || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the dicerd req/s gate." >&2
    elif [ ! -s "$dicerd_baseline" ]; then
        echo "note: no committed BENCH_dicerd.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_dicerd.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        python3 - "$dicerd_baseline" results/BENCH_dicerd.json <<'PY' || { echo "dicerd throughput regressed >15% vs the committed baseline" >&2; fail=1; }
import json, sys
TOLERANCE = 0.15
base, cur = (json.load(open(p)) for p in sys.argv[1:3])
bad = 0
if cur["malformed"] != 0:
    print(f"  {cur['malformed']} malformed responses under load", file=sys.stderr)
    bad += 1
old, new = base["requests_per_sec"], cur["requests_per_sec"]
delta = (new - old) / old
verdict = "FAIL" if delta < -TOLERANCE else "ok"
print(f"  load test: {old:.0f} -> {new:.0f} req/s ({delta:+.1%}) {verdict}")
print(f"  latency: p50 {cur['latency_us']['p50']:.0f}us, p99 {cur['latency_us']['p99']:.0f}us, p999 {cur['latency_us']['p999']:.0f}us")
if delta < -TOLERANCE:
    bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the dicerd req/s gate"
    fi
fi
rm -f "$dicerd_baseline"

step "observability-plane overhead (results/BENCH_obs.json, perf gate vs baseline)"
# The bench replays the long-horizon scenarios with the full obs plane
# attached (store + rules + flight recorder + /metrics scrapes) and
# hard-asserts the managed-scenario overhead stays under 3% of the
# daemon-grade pipeline, plus bit-identity of the replay under
# observation. The gate adds throughput drift detection: a >15% drop of
# any scenario's observed periods/sec vs the committed baseline fails.
obs_baseline="$(mktemp)"
git show HEAD:results/BENCH_obs.json > "$obs_baseline" 2>/dev/null || true
cargo run -q --release -p dicer-bench --bin obs_bench || fail=1
if [ "$fail" -eq 0 ]; then
    if [ "$update_baselines" -eq 1 ]; then
        echo "WARNING: --update-baselines set; skipping the obs overhead gate." >&2
    elif [ ! -s "$obs_baseline" ]; then
        echo "note: no committed BENCH_obs.json baseline yet (first run);"
        echo "note: gate skipped — commit results/BENCH_obs.json to arm it."
    elif command -v python3 >/dev/null 2>&1; then
        python3 - "$obs_baseline" results/BENCH_obs.json <<'PY' || { echo "observed throughput regressed >15% vs the committed baseline" >&2; fail=1; }
import json, sys
TOLERANCE = 0.15
base = {s["name"]: s for s in json.load(open(sys.argv[1]))["scenarios"]}
cur = {s["name"]: s for s in json.load(open(sys.argv[2]))["scenarios"]}
bad = 0
for name, b in sorted(base.items()):
    c = cur.get(name)
    if c is None:
        print(f"  {name}: scenario missing from the fresh run", file=sys.stderr)
        bad += 1
        continue
    old, new = b["obs_periods_per_sec"], c["obs_periods_per_sec"]
    delta = (new - old) / old
    verdict = "FAIL" if delta < -TOLERANCE else "ok"
    print(f"  {name}: {old:.0f} -> {new:.0f} observed periods/s ({delta:+.1%}, overhead {c['overhead_pct']:+.2f}%) {verdict}")
    if delta < -TOLERANCE:
        bad += 1
sys.exit(1 if bad else 0)
PY
    else
        echo "note: python3 not installed, skipping the obs overhead gate"
    fi
fi
rm -f "$obs_baseline"

step "dicerd smoke test (start, scrape, retarget, shut down)"
DICERD_PORT="${DICERD_PORT:-18950}"
if command -v curl >/dev/null 2>&1; then
    cargo build -q --bin dicerd || fail=1
    if [ "$fail" -eq 0 ]; then
        ./target/debug/dicerd --port "$DICERD_PORT" --max-runs 1 &
        dicerd_pid=$!
        up=0
        for _ in $(seq 1 50); do
            if curl -sf "http://127.0.0.1:$DICERD_PORT/healthz" >/dev/null 2>&1; then
                up=1
                break
            fi
            sleep 0.2
        done
        if [ "$up" -ne 1 ]; then
            echo "dicerd never became healthy on port $DICERD_PORT" >&2
            fail=1
        else
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^# TYPE dicer_hp_ipc histogram$' || { echo "missing hp_ipc histogram" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^dicer_runs_total ' || { echo "missing runs counter" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^# TYPE dicer_stage_seconds histogram$' \
                || { echo "missing per-stage latency histogram" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^dicer_controller_severity{controller=' \
                || { echo "missing per-controller severity gauge" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/healthz" \
                | grep -q '"status":"ok"' || { echo "bad /healthz payload" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/events?n=5" \
                | grep -q '^\[' || { echo "bad /events payload" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DICERD_PORT/events?bogus=1")
            [ "$code" = "400" ] || { echo "unknown /events param must 400 (got $code)" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DICERD_PORT/fleet")
            [ "$code" = "404" ] || { echo "/fleet without fleet mode must 404 (got $code)" >&2; fail=1; }
            # netd connection telemetry: the event loop publishes its own
            # accept/close counters and per-endpoint latency histograms.
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^dicer_conn_accepted_total ' \
                || { echo "missing conn accepted counter" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/metrics" \
                | grep -q '^# TYPE dicer_conn_request_seconds histogram$' \
                || { echo "missing per-endpoint request histogram" >&2; fail=1; }
            # Live retargeting: a valid control request is accepted, a
            # malformed one is a strict 400, a GET on /control is a 405.
            code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d 'pause=1' \
                "http://127.0.0.1:$DICERD_PORT/control")
            [ "$code" = "200" ] || { echo "POST /control pause=1 must 200 (got $code)" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -d 'verbose=1' \
                "http://127.0.0.1:$DICERD_PORT/control")
            [ "$code" = "400" ] || { echo "unknown control field must 400 (got $code)" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DICERD_PORT/control")
            [ "$code" = "405" ] || { echo "GET /control must 405 (got $code)" >&2; fail=1; }
            # Observability plane: /query serves period-series range reads
            # (metric required, unknown params are strict 400s) and
            # /alerts reports rule state; both are backed by the embedded
            # store, so a healthy daemon answers them from period zero.
            curl -sf "http://127.0.0.1:$DICERD_PORT/query?metric=obs_hp_ipc&step=1" \
                | grep -q '"metric"' || { echo "bad /query payload" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' \
                "http://127.0.0.1:$DICERD_PORT/query?metric=obs_hp_ipc&bogus=1")
            [ "$code" = "400" ] || { echo "unknown /query param must 400 (got $code)" >&2; fail=1; }
            curl -sf "http://127.0.0.1:$DICERD_PORT/alerts" \
                | grep -q '"alerts_firing"' || { echo "bad /alerts payload" >&2; fail=1; }
            code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$DICERD_PORT/alerts?bogus=1")
            [ "$code" = "400" ] || { echo "unknown /alerts param must 400 (got $code)" >&2; fail=1; }
            # Follow mode: the chunked NDJSON stream starts promptly (the
            # bounded read ends the connection; any output means the head
            # and first chunk framed correctly).
            follow_first=$(curl -sN --max-time 2 \
                "http://127.0.0.1:$DICERD_PORT/events?follow=1&n=3" 2>/dev/null | head -c 1 || true)
            [ "$follow_first" = "{" ] \
                || { echo "/events?follow=1 produced no NDJSON" >&2; fail=1; }
        fi
        # Clean shutdown via /quit; escalate to kill if it lingers.
        curl -s "http://127.0.0.1:$DICERD_PORT/quit" >/dev/null 2>&1 || true
        for _ in $(seq 1 25); do
            kill -0 "$dicerd_pid" 2>/dev/null || break
            sleep 0.2
        done
        kill "$dicerd_pid" 2>/dev/null || true
        wait "$dicerd_pid" 2>/dev/null || true
    fi
else
    echo "skipped: curl not installed"
fi

step "result"
if [ "$fail" -ne 0 ]; then
    echo "CI FAILED"
    exit 1
fi
echo "CI OK"
