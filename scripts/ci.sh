#!/usr/bin/env bash
# Repo-local CI: formatting, lints, and the full test suite.
#
# Designed to run offline: no network access is attempted beyond what
# cargo itself needs, and CARGO_NET_OFFLINE forces cargo to fail fast
# (with a clear message) instead of hanging on an unreachable registry.
#
# Usage: scripts/ci.sh [--fast]
#
#   (default)  formatting, clippy, the full workspace test suite, and the
#              fault-injection robustness suite (deterministic JSONL traces
#              under results/robustness/).
#   --fast     controller-stack unit tests plus the conformance and
#              fault-injection suites only — the inner-loop tier.
set -euo pipefail

cd "$(dirname "$0")/.."

fast=0
case "${1:-}" in
    --fast) fast=1 ;;
    "") ;;
    *) echo "usage: scripts/ci.sh [--fast]" >&2; exit 2 ;;
esac
if [ "$#" -gt 1 ]; then
    echo "usage: scripts/ci.sh [--fast]" >&2
    exit 2
fi

export CARGO_NET_OFFLINE=true
export CARGO_TERM_COLOR=${CARGO_TERM_COLOR:-always}

step() {
    printf '\n== %s ==\n' "$*"
}

fail=0

if ! command -v cargo >/dev/null 2>&1; then
    echo "error: cargo not found on PATH" >&2
    exit 1
fi

if [ "$fast" -eq 1 ]; then
    step "cargo test (controller stack units)"
    cargo test -q -p dicer-policy -p dicer-rdt -p dicer-membw --lib || fail=1

    step "cargo test (conformance + fault injection)"
    cargo test -q --test controller_conformance --test fault_injection || fail=1

    step "result"
    if [ "$fail" -ne 0 ]; then
        echo "CI FAILED (fast tier)"
        exit 1
    fi
    echo "CI OK (fast tier)"
    exit 0
fi

# Advisory only: the tree predates any enforced rustfmt config, so
# formatting drift is reported without failing the run.
step "cargo fmt --check (advisory)"
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check || echo "note: formatting drift (not fatal)"
else
    echo "skipped: rustfmt not installed"
fi

step "cargo clippy -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings || fail=1
else
    echo "skipped: clippy not installed"
fi

step "cargo test"
cargo test --workspace -q || fail=1

step "robustness suite (deterministic fault-injection traces)"
cargo run -q --bin robustness_study || fail=1

step "result"
if [ "$fail" -ne 0 ]; then
    echo "CI FAILED"
    exit 1
fi
echo "CI OK"
