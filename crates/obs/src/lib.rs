//! # dicer-obs — the embedded observability plane
//!
//! Everything in this crate runs on **logical periods**, never the wall
//! clock, so the whole plane is deterministic: replaying a workload
//! reproduces the same series samples, the same alert transitions at
//! the same period indices, and byte-identical incident bundles. That
//! is what lets the end-to-end alerting test pin a committed golden and
//! what keeps `results/` artifacts stable across machines and `--jobs`
//! levels.
//!
//! Three layers, composed by [`ObsPlane`]:
//!
//! * [`store`] — a tiered period-series store. Each series keeps a raw
//!   ring of `(period, value)` samples plus `/16` and `/256`
//!   downsampled tiers whose buckets carry `min/max/sum/count/last`, so
//!   long-horizon queries stay cheap under a fixed memory bound.
//! * [`rules`] — a declarative alerting engine: threshold,
//!   severity-streak, and multi-window SLO **burn-rate** rules (HP
//!   normalized-IPC violations against the error budget over a short
//!   and a long window, Google-SRE style), evaluated once per period
//!   with firing/resolved edge tracking.
//! * [`recorder`] — the flight recorder: on a firing edge the plane
//!   snapshots the triggering rule, the raw-tier window of every key
//!   series, the last events off the daemon's ring, and the active
//!   controller summaries into one JSONL bundle under
//!   `results/incidents/`.
//!
//! The daemon exposes the plane over HTTP: `GET /query` serves
//! downsample-aware range queries and `GET /alerts` the firing set plus
//! history; `/healthz` carries the firing count and the registry gains
//! `dicer_alerts_firing` and `dicer_obs_*` self-metrics.

pub mod plane;
pub mod recorder;
pub mod rules;
pub mod store;

pub use plane::{ObsConfig, ObsPlane, ObsSink, DEFAULT_SLO_NORM_IPC, KEY_SERIES};
pub use recorder::{build_bundle, bundle_file_name, FlightRecorder, IncidentConfig};
pub use rules::{standard_rules, AlertRecord, Rule, RuleKind, RulesEngine, Transition};
pub use store::{QueryResult, SeriesId, SeriesStore, StoreConfig};
