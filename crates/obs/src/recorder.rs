//! The flight recorder: byte-stable incident bundles cut on alert fire.
//!
//! When a rule fires, the plane snapshots everything a responder needs
//! into one JSONL bundle:
//!
//! 1. the triggering rule and the observed value at the edge;
//! 2. the TSDB window around the violation (raw-tier points of every
//!    key series);
//! 3. the last N telemetry events off the attached
//!    [`RingRecorder`](dicer_telemetry::RingRecorder)'s cursors;
//! 4. the active controller summaries (last status per controller).
//!
//! Every line is hand-rolled JSON over logical-period data — no wall
//! clock, no map iteration order, no serialiser — so rerunning the same
//! scenario reproduces the bundle byte-for-byte, which is what lets the
//! burn-rate end-to-end test pin a committed golden.

use std::collections::VecDeque;
use std::path::PathBuf;

use dicer_telemetry::{json_f64, json_str, TelemetryEvent};

use crate::rules::Rule;

/// Flight-recorder shape.
#[derive(Debug, Clone)]
pub struct IncidentConfig {
    /// Where bundles are written (`results/incidents/` in the daemon).
    /// `None` keeps them in memory only (tests, benches).
    pub dir: Option<PathBuf>,
    /// Telemetry events included per bundle (read off the ring's newest
    /// cursors at fire time).
    pub max_events: usize,
    /// Raw-tier periods of history included before the firing period.
    pub window: u64,
    /// Bundles retained in memory (oldest evicted first).
    pub max_bundles: usize,
}

impl Default for IncidentConfig {
    fn default() -> Self {
        IncidentConfig { dir: None, max_events: 32, window: 64, max_bundles: 16 }
    }
}

/// Retains (and optionally persists) incident bundles.
pub struct FlightRecorder {
    cfg: IncidentConfig,
    bundles: VecDeque<(String, String)>,
    recorded: u64,
    write_errors: u64,
}

impl FlightRecorder {
    /// An empty recorder.
    pub fn new(cfg: IncidentConfig) -> Self {
        FlightRecorder { cfg, bundles: VecDeque::new(), recorded: 0, write_errors: 0 }
    }

    /// The recorder's configuration.
    pub fn config(&self) -> &IncidentConfig {
        &self.cfg
    }

    /// Bundles recorded over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Failed bundle writes (disk errors never take the plane down).
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// In-memory bundles, oldest first, as `(file_name, jsonl)`.
    pub fn bundles(&self) -> impl Iterator<Item = (&str, &str)> {
        self.bundles.iter().map(|(n, b)| (n.as_str(), b.as_str()))
    }

    /// Records one bundle under its deterministic file name; persists it
    /// when a directory is configured.
    pub fn record(&mut self, file_name: String, bundle: String) {
        if let Some(dir) = &self.cfg.dir {
            let write = std::fs::create_dir_all(dir)
                .and_then(|()| std::fs::write(dir.join(&file_name), &bundle));
            if write.is_err() {
                self.write_errors += 1;
            }
        }
        if self.bundles.len() == self.cfg.max_bundles {
            self.bundles.pop_front();
        }
        self.bundles.push_back((file_name, bundle));
        self.recorded += 1;
    }
}

/// Deterministic bundle file name: the rule slug plus the firing period.
pub fn bundle_file_name(rule: &str, period: u64) -> String {
    let slug: String =
        rule.chars().map(|c| if c.is_ascii_alphanumeric() { c } else { '-' }).collect();
    format!("incident_{slug}_p{period}.jsonl")
}

/// Builds one incident bundle. `series` holds
/// `(name, raw points in the window)` per key series; `controllers`
/// holds `(name, last status period, state, severity)` in stable order.
pub fn build_bundle(
    rule: &Rule,
    period: u64,
    value: f64,
    series: &[(&str, Vec<(u64, f64)>)],
    events: &[TelemetryEvent],
    controllers: &[(&str, u64, &str, u8)],
) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str(&format!(
        "{{\"incident\":{},\"fired_period\":{},\"value\":{},\"rule\":{}}}\n",
        json_str(&rule.name),
        period,
        json_f64(value),
        rule.to_json(),
    ));
    for (name, points) in series {
        let pts: Vec<String> =
            points.iter().map(|(p, v)| format!("[{},{}]", p, json_f64(*v))).collect();
        out.push_str(&format!(
            "{{\"series\":{},\"points\":[{}]}}\n",
            json_str(name),
            pts.join(","),
        ));
    }
    let evs: Vec<String> = events.iter().map(TelemetryEvent::to_json).collect();
    out.push_str(&format!("{{\"events\":[{}]}}\n", evs.join(",")));
    let ctrls: Vec<String> = controllers
        .iter()
        .map(|(name, p, state, sev)| {
            format!(
                "{{\"name\":{},\"period\":{},\"state\":{},\"severity\":{}}}",
                json_str(name),
                p,
                json_str(state),
                sev,
            )
        })
        .collect();
    out.push_str(&format!("{{\"controllers\":[{}]}}\n", ctrls.join(",")));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    fn rule() -> Rule {
        Rule {
            name: "hp-slo-burn-rate".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 4, long: 8, budget: 0.25, threshold: 2.0 },
        }
    }

    #[test]
    fn file_names_are_deterministic_slugs() {
        assert_eq!(bundle_file_name("hp-slo-burn-rate", 42), "incident_hp-slo-burn-rate_p42.jsonl");
        assert_eq!(bundle_file_name("weird name!", 7), "incident_weird-name-_p7.jsonl");
    }

    #[test]
    fn bundle_layout_is_byte_stable() {
        let build = || {
            build_bundle(
                &rule(),
                100,
                2.5,
                &[("obs_hp_norm_ipc", vec![(98, 0.5), (99, 0.75)])],
                &[TelemetryEvent::Fault { label: "sample_dropped" }],
                &[("DICER", 97, "sampling", 2)],
            )
        };
        let bundle = build();
        assert_eq!(bundle, build());
        let lines: Vec<&str> = bundle.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with(
            "{\"incident\":\"hp-slo-burn-rate\",\"fired_period\":100,\"value\":2.5,\"rule\":"
        ));
        assert_eq!(
            lines[1],
            "{\"series\":\"obs_hp_norm_ipc\",\"points\":[[98,0.5],[99,0.75]]}"
        );
        assert_eq!(lines[2], "{\"events\":[{\"event\":\"fault\",\"kind\":\"sample_dropped\"}]}");
        assert_eq!(
            lines[3],
            "{\"controllers\":[{\"name\":\"DICER\",\"period\":97,\"state\":\"sampling\",\
             \"severity\":2}]}"
        );
    }

    #[test]
    fn recorder_bounds_memory_and_counts() {
        let mut rec =
            FlightRecorder::new(IncidentConfig { max_bundles: 2, ..IncidentConfig::default() });
        for i in 0..3u64 {
            rec.record(bundle_file_name("r", i), format!("bundle {i}\n"));
        }
        assert_eq!(rec.recorded(), 3);
        let names: Vec<&str> = rec.bundles().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["incident_r_p1.jsonl", "incident_r_p2.jsonl"]);
        assert_eq!(rec.write_errors(), 0);
    }

    #[test]
    fn recorder_persists_to_the_configured_directory() {
        let dir = std::env::temp_dir().join("dicer_obs_recorder_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut rec = FlightRecorder::new(IncidentConfig {
            dir: Some(dir.clone()),
            ..IncidentConfig::default()
        });
        rec.record("incident_x_p1.jsonl".to_string(), "line\n".to_string());
        let on_disk = std::fs::read_to_string(dir.join("incident_x_p1.jsonl")).unwrap();
        assert_eq!(on_disk, "line\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
