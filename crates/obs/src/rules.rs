//! Declarative alert rules evaluated at period boundaries.
//!
//! Three rule kinds cover the signals the DICER stack cares about:
//!
//! * [`RuleKind::Threshold`] — a stored series crossing a bound,
//!   sustained for N consecutive periods (classic "metric too high/low").
//! * [`RuleKind::SeverityStreak`] — a registered controller reporting
//!   `Degraded`-or-worse (or any chosen floor) for N consecutive periods.
//! * [`RuleKind::BurnRate`] — the multi-window SLO burn rate over the
//!   HP's normalized IPC (delivered IPC / solo IPC): the SLO allows a
//!   `budget` fraction of periods to violate the objective; the rule
//!   fires when **both** a short and a long window are burning that
//!   budget faster than `threshold`× — the standard multi-window,
//!   multi-burn-rate recipe, which pages on fast burns without flapping
//!   on noise.
//!
//! Everything is driven by the logical period clock: no wall time, so a
//! given sample stream always fires at the same period, which is what
//! lets an incident bundle be pinned as a byte-for-byte golden.

use std::collections::VecDeque;

use dicer_telemetry::json_str;

/// What a rule watches.
#[derive(Debug, Clone)]
pub enum RuleKind {
    /// Fires when the named stored series is above (`above == true`) or
    /// below the bound for `for_periods` consecutive evaluations.
    Threshold {
        /// Stored series name (`obs_*` key series or a scraped scalar).
        metric: String,
        /// Direction: `true` fires on `value > bound`, `false` on `<`.
        above: bool,
        /// The bound.
        bound: f64,
        /// Consecutive violating periods required to fire.
        for_periods: u32,
    },
    /// Fires when a controller's severity stays at or above a floor for
    /// `for_periods` consecutive periods.
    SeverityStreak {
        /// Controller display name (`"DICER"`), or empty for *any*
        /// registered controller.
        controller: String,
        /// Severity floor (0 nominal ..= 3 critical).
        min_severity: u8,
        /// Consecutive periods required to fire.
        for_periods: u32,
    },
    /// Multi-window SLO burn rate over HP normalized IPC.
    BurnRate {
        /// Short window length, periods (the fast-burn detector).
        short: u32,
        /// Long window length, periods (the sustained-burn confirmation).
        long: u32,
        /// Error budget: the fraction of periods the SLO lets violate
        /// the objective (e.g. `0.05`).
        budget: f64,
        /// Fire when both windows burn faster than this multiple of the
        /// budget (e.g. `2.0` = burning a month of budget in two weeks).
        threshold: f64,
    },
}

/// One declarative alert rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Stable rule name (used in alert JSON and incident file names).
    pub name: String,
    /// Alert severity label: `"page"` or `"warn"`.
    pub severity: &'static str,
    /// What to watch.
    pub kind: RuleKind,
}

impl Rule {
    /// Hand-rolled JSON description (embedded in incident bundles).
    pub fn to_json(&self) -> String {
        let kind = match &self.kind {
            RuleKind::Threshold { metric, above, bound, for_periods } => format!(
                "{{\"kind\":\"threshold\",\"metric\":{},\"above\":{},\"bound\":{},\
                 \"for_periods\":{}}}",
                json_str(metric),
                above,
                dicer_telemetry::json_f64(*bound),
                for_periods,
            ),
            RuleKind::SeverityStreak { controller, min_severity, for_periods } => format!(
                "{{\"kind\":\"severity_streak\",\"controller\":{},\"min_severity\":{},\
                 \"for_periods\":{}}}",
                json_str(controller),
                min_severity,
                for_periods,
            ),
            RuleKind::BurnRate { short, long, budget, threshold } => format!(
                "{{\"kind\":\"burn_rate\",\"short\":{},\"long\":{},\"budget\":{},\
                 \"threshold\":{}}}",
                short,
                long,
                dicer_telemetry::json_f64(*budget),
                dicer_telemetry::json_f64(*threshold),
            ),
        };
        format!(
            "{{\"name\":{},\"severity\":{},\"rule\":{}}}",
            json_str(&self.name),
            json_str(self.severity),
            kind
        )
    }
}

/// The default rule set the daemon arms (callers can replace it
/// wholesale through [`crate::ObsConfig::rules`]).
pub fn standard_rules() -> Vec<Rule> {
    vec![
        Rule {
            name: "hp-slo-burn-rate".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 64, long: 512, budget: 0.05, threshold: 2.0 },
        },
        Rule {
            name: "hp-norm-ipc-floor".to_string(),
            severity: "page",
            kind: RuleKind::Threshold {
                metric: "obs_hp_norm_ipc".to_string(),
                above: false,
                bound: 0.5,
                for_periods: 32,
            },
        },
        Rule {
            name: "controller-degraded".to_string(),
            severity: "warn",
            kind: RuleKind::SeverityStreak {
                controller: String::new(),
                min_severity: 2,
                for_periods: 64,
            },
        },
    ]
}

/// Fixed-length boolean window with an incrementally maintained count of
/// `true` slots: one ring write + two adds per push.
#[derive(Debug, Clone)]
struct Window {
    buf: Vec<bool>,
    len: usize,
    pos: usize,
    bad: u32,
}

impl Window {
    fn new(cap: u32) -> Self {
        Window { buf: vec![false; cap.max(1) as usize], len: 0, pos: 0, bad: 0 }
    }

    #[inline]
    fn push(&mut self, bad: bool) {
        if self.len == self.buf.len() {
            self.bad -= self.buf[self.pos] as u32;
        } else {
            self.len += 1;
        }
        self.buf[self.pos] = bad;
        self.bad += bad as u32;
        // Branch instead of `%`: window lengths are arbitrary, so the
        // modulo would be a real division on the per-period hot path.
        self.pos += 1;
        if self.pos == self.buf.len() {
            self.pos = 0;
        }
    }

    fn full(&self) -> bool {
        self.len == self.buf.len()
    }

    fn bad_fraction(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.bad as f64 / self.len as f64
        }
    }
}

/// What the engine needs from the plane each period. Generic over the
/// lookup closures (instead of `&dyn Fn`) so they inline into the
/// evaluation loop — rule evaluation runs once per period on the hot
/// path.
pub struct EvalInput<'a, M: Fn(&str) -> Option<f64>, S: Fn(&str) -> Option<u8>> {
    /// The logical period being closed.
    pub period: u64,
    /// HP normalized IPC this period (`NaN` when the solo IPC is not
    /// yet known — burn-rate windows then hold).
    pub norm_ipc: f64,
    /// The SLO objective: a period is *bad* when `norm_ipc < objective`.
    pub objective: f64,
    /// Last stored value of a named series (threshold rules).
    pub metric: &'a M,
    /// Current severity of a named controller, or the worst across all
    /// controllers when the name is empty.
    pub severity: &'a S,
}

/// One firing-edge or resolve-edge, reported to the plane so it can cut
/// an incident bundle / update gauges.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Index into the engine's rule vector.
    pub rule: usize,
    /// `true` on fire, `false` on resolve.
    pub fired: bool,
    /// The period the edge happened.
    pub period: u64,
    /// The observed value at the edge (burn rate, metric value, or
    /// severity as f64).
    pub value: f64,
}

/// One alert: a fire edge, and eventually a resolve edge.
#[derive(Debug, Clone, PartialEq)]
pub struct AlertRecord {
    /// Rule name.
    pub rule: String,
    /// Rule severity label.
    pub severity: &'static str,
    /// Period the alert fired.
    pub fired_period: u64,
    /// Observed value at fire time.
    pub value: f64,
    /// Period the alert resolved (`None` while firing).
    pub resolved_period: Option<u64>,
}

impl AlertRecord {
    fn to_json(&self) -> String {
        let resolved = match self.resolved_period {
            Some(p) => format!(",\"resolved_period\":{p}"),
            None => String::new(),
        };
        format!(
            "{{\"rule\":{},\"severity\":{},\"fired_period\":{},\"value\":{}{}}}",
            json_str(&self.rule),
            json_str(self.severity),
            self.fired_period,
            dicer_telemetry::json_f64(self.value),
            resolved,
        )
    }
}

struct RuleState {
    rule: Rule,
    streak: u32,
    firing: bool,
    short: Window,
    long: Window,
}

/// Evaluates every armed rule once per period and tracks firing state
/// plus a bounded alert history.
pub struct RulesEngine {
    rules: Vec<RuleState>,
    active: Vec<AlertRecord>,
    history: VecDeque<AlertRecord>,
    history_cap: usize,
    evaluations: u64,
    transitions_total: u64,
}

impl RulesEngine {
    /// Arms `rules`; history keeps the last `history_cap` resolved alerts.
    pub fn new(rules: Vec<Rule>, history_cap: usize) -> Self {
        let rules = rules
            .into_iter()
            .map(|rule| {
                let (s, l) = match rule.kind {
                    RuleKind::BurnRate { short, long, .. } => (short, long),
                    _ => (1, 1),
                };
                RuleState {
                    rule,
                    streak: 0,
                    firing: false,
                    short: Window::new(s),
                    long: Window::new(l),
                }
            })
            .collect();
        RulesEngine {
            rules,
            active: Vec::new(),
            history: VecDeque::new(),
            history_cap,
            evaluations: 0,
            transitions_total: 0,
        }
    }

    /// Armed rules, in evaluation order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().map(|s| &s.rule)
    }

    /// Rule evaluations so far (rules × periods).
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Fire + resolve edges so far.
    pub fn transitions_total(&self) -> u64 {
        self.transitions_total
    }

    /// Alerts currently firing.
    pub fn firing_count(&self) -> usize {
        self.active.len()
    }

    /// Evaluates every rule against this period's input, appending any
    /// fire/resolve edges to `out` (cleared first). Deterministic: the
    /// same input stream produces the same edges at the same periods.
    pub fn eval<M: Fn(&str) -> Option<f64>, S: Fn(&str) -> Option<u8>>(
        &mut self,
        input: &EvalInput<'_, M, S>,
        out: &mut Vec<Transition>,
    ) {
        out.clear();
        self.evaluations += self.rules.len() as u64;
        for (idx, st) in self.rules.iter_mut().enumerate() {
            let (violating, value) = match &st.rule.kind {
                RuleKind::Threshold { metric, above, bound, .. } => {
                    match (input.metric)(metric) {
                        Some(v) => (if *above { v > *bound } else { v < *bound }, v),
                        None => (false, 0.0),
                    }
                }
                RuleKind::SeverityStreak { controller, min_severity, .. } => {
                    match (input.severity)(controller) {
                        Some(sev) => (sev >= *min_severity, sev as f64),
                        None => (false, 0.0),
                    }
                }
                RuleKind::BurnRate { budget, threshold, .. } => {
                    // A period with no norm-IPC sample (solo unknown)
                    // holds the windows: no data is not a violation.
                    if input.norm_ipc.is_finite() {
                        let bad = input.norm_ipc < input.objective;
                        st.short.push(bad);
                        st.long.push(bad);
                    }
                    // Warm-up discipline: a window that has not yet seen
                    // its full span never fires — determinism would
                    // otherwise depend on when the plane was attached.
                    // `bad/len/budget > threshold` is checked as
                    // `bad > threshold·budget·len`: two multiplies
                    // instead of two divisions on the steady-state path.
                    let tb = *threshold * *budget;
                    let violating = st.short.full()
                        && st.long.full()
                        && st.short.bad as f64 > tb * st.short.len as f64
                        && st.long.bad as f64 > tb * st.long.len as f64;
                    // The burn value is only reported on fire/resolve
                    // edges — divide only when one is happening.
                    let value = if violating != st.firing {
                        (st.short.bad_fraction() / *budget).min(st.long.bad_fraction() / *budget)
                    } else {
                        0.0
                    };
                    (violating, value)
                }
            };

            let needed = match &st.rule.kind {
                RuleKind::Threshold { for_periods, .. } => *for_periods,
                RuleKind::SeverityStreak { for_periods, .. } => *for_periods,
                RuleKind::BurnRate { .. } => 1,
            };
            if violating {
                st.streak = st.streak.saturating_add(1);
            } else {
                st.streak = 0;
            }
            let should_fire = st.streak >= needed.max(1);
            if should_fire != st.firing {
                st.firing = should_fire;
                self.transitions_total += 1;
                out.push(Transition {
                    rule: idx,
                    fired: should_fire,
                    period: input.period,
                    value,
                });
                if should_fire {
                    self.active.push(AlertRecord {
                        rule: st.rule.name.clone(),
                        severity: st.rule.severity,
                        fired_period: input.period,
                        value,
                        resolved_period: None,
                    });
                } else if let Some(pos) =
                    self.active.iter().position(|a| a.rule == st.rule.name)
                {
                    let mut rec = self.active.remove(pos);
                    rec.resolved_period = Some(input.period);
                    if self.history.len() == self.history_cap {
                        self.history.pop_front();
                    }
                    self.history.push_back(rec);
                }
            }
        }
    }

    /// Batched evaluation of `norms.len()` consecutive periods starting
    /// at `start_period` — byte-identical to calling [`Self::eval`] once
    /// per period, provided every input the rules read is sample-local
    /// or batch-constant: `metric_at(i, name)` must answer what the
    /// per-period `metric` closure would have answered at period
    /// `start_period + i`, and `severity` must be constant across the
    /// batch (the plane flushes staged periods whenever a controller
    /// status lands, so it is).
    ///
    /// Looping rules-outer keeps each rule's windows and streaks hot
    /// across the whole batch; edge side effects are applied in
    /// (period, rule) order afterwards, so transition order, the active
    /// list, and history are order-identical to per-period evaluation.
    pub fn eval_batch<M: Fn(usize, &str) -> Option<f64>, S: Fn(&str) -> Option<u8>>(
        &mut self,
        start_period: u64,
        norms: &[f64],
        objective: f64,
        metric_at: &M,
        severity: &S,
        out: &mut Vec<Transition>,
    ) {
        out.clear();
        let n = norms.len();
        self.evaluations += (self.rules.len() * n) as u64;
        for (idx, st) in self.rules.iter_mut().enumerate() {
            match &st.rule.kind {
                RuleKind::BurnRate { budget, threshold, .. } => {
                    let tb = *threshold * *budget;
                    // `bad > tb·len` over integer bad-counts ⟺
                    // `bad ≥ ⌊tb·len⌋ + 1`: one integer compare per
                    // period instead of two converts and a multiply.
                    // Violation requires full windows, so `len` is the
                    // capacity.
                    let int_thr = |cap: usize| {
                        ((tb * cap as f64).floor() + 1.0).min(u32::MAX as f64) as u32
                    };
                    let sthr = int_thr(st.short.buf.len());
                    let lthr = int_thr(st.long.buf.len());
                    for (i, &norm) in norms.iter().enumerate() {
                        if norm.is_finite() {
                            let bad = norm < objective;
                            st.short.push(bad);
                            st.long.push(bad);
                        }
                        let violating = st.short.full()
                            && st.long.full()
                            && st.short.bad >= sthr
                            && st.long.bad >= lthr;
                        st.streak = if violating { st.streak.saturating_add(1) } else { 0 };
                        let should_fire = st.streak >= 1;
                        if should_fire != st.firing {
                            st.firing = should_fire;
                            let value = (st.short.bad_fraction() / *budget)
                                .min(st.long.bad_fraction() / *budget);
                            out.push(Transition {
                                rule: idx,
                                fired: should_fire,
                                period: start_period + i as u64,
                                value,
                            });
                        }
                    }
                }
                RuleKind::Threshold { metric, above, bound, for_periods } => {
                    let needed = (*for_periods).max(1);
                    // The derived norm series IS `norms` — hoist the name
                    // dispatch out of the per-period loop. (`metric_at`
                    // must agree: finite norm → `Some`, else `None` —
                    // which is exactly how the plane derives it.)
                    let on_norm = metric == crate::plane::NORM_SERIES;
                    for (i, &nv) in norms.iter().enumerate().take(n) {
                        let looked_up =
                            if on_norm { nv.is_finite().then_some(nv) } else { metric_at(i, metric) };
                        let (violating, value) = match looked_up {
                            Some(v) => (if *above { v > *bound } else { v < *bound }, v),
                            None => (false, 0.0),
                        };
                        st.streak = if violating { st.streak.saturating_add(1) } else { 0 };
                        let should_fire = st.streak >= needed;
                        if should_fire != st.firing {
                            st.firing = should_fire;
                            out.push(Transition {
                                rule: idx,
                                fired: should_fire,
                                period: start_period + i as u64,
                                value,
                            });
                        }
                    }
                }
                RuleKind::SeverityStreak { controller, min_severity, for_periods } => {
                    let needed = (*for_periods).max(1);
                    let (violating, value) = match (severity)(controller) {
                        Some(sev) => (sev >= *min_severity, sev as f64),
                        None => (false, 0.0),
                    };
                    // Severity is batch-constant, so the whole batch
                    // collapses to closed form: at most one edge, at the
                    // period the per-period loop would have found it.
                    if violating {
                        let streak0 = st.streak;
                        st.streak = streak0.saturating_add(n as u32);
                        if !st.firing {
                            // Fires at the first i with streak0+i+1 ≥ needed.
                            let first = needed.saturating_sub(streak0).saturating_sub(1) as usize;
                            if first < n {
                                st.firing = true;
                                out.push(Transition {
                                    rule: idx,
                                    fired: true,
                                    period: start_period + first as u64,
                                    value,
                                });
                            }
                        }
                    } else {
                        st.streak = 0;
                        if st.firing {
                            st.firing = false;
                            out.push(Transition {
                                rule: idx,
                                fired: false,
                                period: start_period,
                                value,
                            });
                        }
                    }
                }
            }
        }
        // Unstable sort: (period, rule) pairs are unique, and transitions
        // are rare enough that this never allocates.
        out.sort_unstable_by_key(|tr| (tr.period, tr.rule));
        for tr in out.iter() {
            self.transitions_total += 1;
            let st = &self.rules[tr.rule];
            if tr.fired {
                self.active.push(AlertRecord {
                    rule: st.rule.name.clone(),
                    severity: st.rule.severity,
                    fired_period: tr.period,
                    value: tr.value,
                    resolved_period: None,
                });
            } else if let Some(pos) = self.active.iter().position(|a| a.rule == st.rule.name) {
                let mut rec = self.active.remove(pos);
                rec.resolved_period = Some(tr.period);
                if self.history.len() == self.history_cap {
                    self.history.pop_front();
                }
                self.history.push_back(rec);
            }
        }
    }

    /// The rule behind a transition index.
    pub fn rule(&self, idx: usize) -> &Rule {
        &self.rules[idx].rule
    }

    /// `{"alerts_firing":N,"firing":[...],"history":[...]}` — active
    /// alerts in fire order, resolved history oldest first.
    pub fn alerts_json(&self) -> String {
        let firing: Vec<String> = self.active.iter().map(AlertRecord::to_json).collect();
        let history: Vec<String> = self.history.iter().map(AlertRecord::to_json).collect();
        format!(
            "{{\"alerts_firing\":{},\"firing\":[{}],\"history\":[{}]}}\n",
            self.active.len(),
            firing.join(","),
            history.join(","),
        )
    }

    /// Currently firing alerts (a clone; for tests and bundles).
    pub fn active(&self) -> Vec<AlertRecord> {
        self.active.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval_stream(
        engine: &mut RulesEngine,
        norms: &[f64],
        objective: f64,
    ) -> Vec<(u64, usize, bool)> {
        let metric = |_: &str| None;
        let severity = |_: &str| None;
        let mut edges = Vec::new();
        let mut out = Vec::new();
        for (p, &n) in norms.iter().enumerate() {
            let input = EvalInput {
                period: p as u64,
                norm_ipc: n,
                objective,
                metric: &metric,
                severity: &severity,
            };
            engine.eval(&input, &mut out);
            for t in &out {
                edges.push((t.period, t.rule, t.fired));
            }
        }
        edges
    }

    #[test]
    fn burn_rate_fires_only_when_both_windows_burn_and_is_deterministic() {
        let rule = Rule {
            name: "burn".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 4, long: 8, budget: 0.25, threshold: 2.0 },
        };
        let run = || {
            let mut engine = RulesEngine::new(vec![rule.clone()], 16);
            // 8 good periods (fills both windows), then all-bad: the
            // long window's bad fraction crosses 2 × 0.25 = 0.5 once 5 of
            // its 8 slots are bad → period 12.
            let norms: Vec<f64> = (0..8).map(|_| 1.0).chain((0..8).map(|_| 0.5)).collect();
            eval_stream(&mut engine, &norms, 0.95)
        };
        let edges = run();
        assert_eq!(edges, vec![(12, 0, true)], "fires exactly once, at a pinned period");
        assert_eq!(edges, run(), "same stream, same edges");
    }

    #[test]
    fn burn_rate_resolves_when_burn_subsides_and_history_records_it() {
        let rule = Rule {
            name: "burn".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 4, long: 4, budget: 0.25, threshold: 2.0 },
        };
        let mut engine = RulesEngine::new(vec![rule], 16);
        let norms: Vec<f64> =
            (0..4).map(|_| 1.0).chain((0..4).map(|_| 0.5)).chain((0..8).map(|_| 1.0)).collect();
        let edges = eval_stream(&mut engine, &norms, 0.95);
        assert_eq!(edges.len(), 2);
        assert!(edges[0].2, "fire edge first");
        assert!(!edges[1].2, "then resolve");
        assert_eq!(engine.firing_count(), 0);
        let json = engine.alerts_json();
        assert!(json.starts_with("{\"alerts_firing\":0,\"firing\":[],\"history\":[{\"rule\":\"burn\""));
        assert!(json.contains("\"resolved_period\":"));
        assert_eq!(engine.transitions_total(), 2);
    }

    #[test]
    fn burn_rate_windows_hold_when_norm_ipc_is_unknown() {
        let rule = Rule {
            name: "burn".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 2, long: 2, budget: 0.5, threshold: 1.5 },
        };
        let mut engine = RulesEngine::new(vec![rule], 16);
        // NaN periods must not fill the windows with "good" slots or fire.
        let norms = vec![f64::NAN; 32];
        assert!(eval_stream(&mut engine, &norms, 0.95).is_empty());
    }

    #[test]
    fn threshold_requires_the_full_streak_and_resets_on_recovery() {
        let rule = Rule {
            name: "floor".to_string(),
            severity: "page",
            kind: RuleKind::Threshold {
                metric: "m".to_string(),
                above: false,
                bound: 1.0,
                for_periods: 3,
            },
        };
        let mut engine = RulesEngine::new(vec![rule], 16);
        let severity = |_: &str| None;
        let mut out = Vec::new();
        let values = [0.5, 0.5, 2.0, 0.5, 0.5, 0.5, 0.5];
        let mut edges = Vec::new();
        for (p, v) in values.iter().enumerate() {
            let metric = |name: &str| if name == "m" { Some(*v) } else { None };
            let input = EvalInput {
                period: p as u64,
                norm_ipc: f64::NAN,
                objective: 0.95,
                metric: &metric,
                severity: &severity,
            };
            engine.eval(&input, &mut out);
            edges.extend(out.iter().cloned());
        }
        // Streak broken at p=2; the three violations at p=3,4,5 fire at 5.
        assert_eq!(edges.len(), 1);
        assert_eq!((edges[0].period, edges[0].fired), (5, true));
        assert_eq!(edges[0].value, 0.5);
    }

    #[test]
    fn severity_streak_watches_the_named_or_worst_controller() {
        let rule = Rule {
            name: "degraded".to_string(),
            severity: "warn",
            kind: RuleKind::SeverityStreak {
                controller: String::new(),
                min_severity: 2,
                for_periods: 2,
            },
        };
        let mut engine = RulesEngine::new(vec![rule], 16);
        let metric = |_: &str| None;
        let mut out = Vec::new();
        let mut fired_at = None;
        for p in 0..5u64 {
            let sev = if p >= 1 { 2u8 } else { 0 };
            let severity = move |name: &str| if name.is_empty() { Some(sev) } else { None };
            let input = EvalInput {
                period: p,
                norm_ipc: f64::NAN,
                objective: 0.95,
                metric: &metric,
                severity: &severity,
            };
            engine.eval(&input, &mut out);
            if let Some(t) = out.first() {
                assert!(t.fired);
                fired_at = Some(t.period);
            }
        }
        assert_eq!(fired_at, Some(2), "two consecutive degraded periods");
        assert_eq!(engine.active()[0].rule, "degraded");
    }

    #[test]
    fn eval_batch_matches_per_period_eval_exactly() {
        // A full mixed rule set over a stream that fires and resolves
        // every rule kind, chopped into uneven batches: every edge, the
        // active list, history, and counters must be byte-identical to
        // per-period evaluation.
        let rules = vec![
            Rule {
                name: "burn".to_string(),
                severity: "page",
                kind: RuleKind::BurnRate { short: 4, long: 8, budget: 0.25, threshold: 2.0 },
            },
            Rule {
                name: "floor".to_string(),
                severity: "page",
                kind: RuleKind::Threshold {
                    metric: "m".to_string(),
                    above: false,
                    bound: 0.8,
                    for_periods: 3,
                },
            },
            Rule {
                name: "degraded".to_string(),
                severity: "warn",
                kind: RuleKind::SeverityStreak {
                    controller: String::new(),
                    min_severity: 2,
                    for_periods: 2,
                },
            },
        ];
        let norm_at =
            |p: u64| if (10..30).contains(&p) || p.is_multiple_of(17) { 0.5 } else { 1.0 };
        let sev_at = |p: u64| if (12..40).contains(&p) { 2u8 } else { 0 };

        let mut per = RulesEngine::new(rules.clone(), 8);
        let mut per_edges = Vec::new();
        let mut out = Vec::new();
        for p in 0..64u64 {
            let metric = |name: &str| (name == "m").then(|| norm_at(p));
            let severity = |_: &str| Some(sev_at(p));
            let input = EvalInput {
                period: p,
                norm_ipc: norm_at(p),
                objective: 0.95,
                metric: &metric,
                severity: &severity,
            };
            per.eval(&input, &mut out);
            per_edges.extend(out.iter().cloned());
        }

        let mut batched = RulesEngine::new(rules, 8);
        let mut batch_edges = Vec::new();
        let mut start = 0u64;
        for len in [12usize, 28, 24] {
            let norms: Vec<f64> = (0..len).map(|i| norm_at(start + i as u64)).collect();
            // Severity is constant per batch in the plane's contract;
            // these batch boundaries are chosen so that holds here too.
            let sev = sev_at(start);
            assert!((0..len).all(|i| sev_at(start + i as u64) == sev), "test batch boundaries");
            let metric_at = |i: usize, name: &str| (name == "m").then(|| norm_at(start + i as u64));
            let severity = |_: &str| Some(sev);
            batched.eval_batch(start, &norms, 0.95, &metric_at, &severity, &mut out);
            batch_edges.extend(out.iter().cloned());
            start += len as u64;
        }

        assert_eq!(per_edges, batch_edges);
        assert_eq!(per.alerts_json(), batched.alerts_json());
        assert_eq!(per.evaluations(), batched.evaluations());
        assert_eq!(per.transitions_total(), batched.transitions_total());
    }

    #[test]
    fn rule_json_is_stable() {
        let rules = standard_rules();
        assert_eq!(
            rules[0].to_json(),
            "{\"name\":\"hp-slo-burn-rate\",\"severity\":\"page\",\"rule\":\
             {\"kind\":\"burn_rate\",\"short\":64,\"long\":512,\"budget\":0.05,\
             \"threshold\":2}}"
        );
        assert_eq!(
            rules[1].to_json(),
            "{\"name\":\"hp-norm-ipc-floor\",\"severity\":\"page\",\"rule\":\
             {\"kind\":\"threshold\",\"metric\":\"obs_hp_norm_ipc\",\"above\":false,\
             \"bound\":0.5,\"for_periods\":32}}"
        );
    }
}
