//! The observability plane: one object wiring the series store, the
//! rules engine and the flight recorder onto the telemetry bus.
//!
//! The plane is driven entirely by logical periods. In a classic
//! (single-node) deployment it sits on the event bus as an [`ObsSink`]:
//! every [`TelemetryEvent::Period`] closes one logical period — key
//! series are recorded, the metrics registry is scraped, rules are
//! evaluated, and firing edges cut incident bundles. In fleet mode the
//! daemon calls [`ObsPlane::tick`] once per round instead (fleet nodes
//! publish per-node gauges, which the scrape turns into per-node
//! series). Either way there is no wall clock anywhere, so a given
//! workload always produces the same series, the same alerts at the
//! same periods, and byte-identical incident bundles.
//!
//! # The ingest fast path
//!
//! Period events are *staged*, not processed inline: the bus-facing
//! path copies the 48-byte sample into a bounded buffer and returns.
//! Every [`FLUSH_BATCH`] periods — whole /16 store buckets — the staged
//! batch is processed in one pass: store ingest, registry scrape, rule
//! evaluation and incident cutting, with all their data structures hot
//! in cache instead of cold every period. Periods keep their exact
//! logical clock through the batch (each staged sample is processed at
//! its own period, in order), and **every** read path flushes the
//! staging buffer first, so queries, alert reads and counters never
//! observe a stale plane. Batching therefore changes *when* the work
//! happens (by at most `FLUSH_BATCH - 1` periods of wall time), never *what* it
//! computes — alert edges and bundles stay byte-identical.

use std::sync::Arc;

use parking_lot::Mutex;

use dicer_telemetry::{
    Counter, Gauge, Interests, MetricsRegistry, PeriodEvent, RingRecorder, Scalar,
    TelemetryEvent, TelemetrySink,
};

use crate::recorder::{build_bundle, bundle_file_name, FlightRecorder, IncidentConfig};
use crate::rules::{standard_rules, EvalInput, Rule, RuleKind, RulesEngine, Transition};
use crate::store::{SeriesId, SeriesStore, StoreConfig};

/// Default SLO objective: the HP must deliver at least this fraction of
/// its solo IPC each period.
pub const DEFAULT_SLO_NORM_IPC: f64 = 0.95;

/// The event-driven key series. IPC and bandwidth are dense (one sample
/// per period); `obs_hp_ways` is a step series, recorded only when the
/// allocation actually changes. `obs_hp_norm_ipc` is *derived*, not
/// stored: it is exactly `obs_hp_ipc × 1/solo`, a positive pointwise
/// scaling that commutes with every tier statistic (min/max order is
/// preserved, sums scale linearly), so queries and bundles synthesize it
/// from the ipc series instead of paying a third record every period.
/// HP slowdown is not stored either — it is pointwise
/// `1 / obs_hp_norm_ipc`, and a reciprocal cannot be aggregated through
/// downsampled `sum`s, so its coarse tiers would lie.
pub const KEY_SERIES: [&str; 4] =
    ["obs_hp_ipc", "obs_hp_norm_ipc", "obs_total_bw_gbps", "obs_hp_ways"];

/// The derived norm-IPC series name (`KEY_SERIES[1]`).
pub(crate) const NORM_SERIES: &str = "obs_hp_norm_ipc";

/// Plane configuration.
#[derive(Debug, Clone)]
pub struct ObsConfig {
    /// Series-store tier capacities.
    pub store: StoreConfig,
    /// Armed alert rules ([`standard_rules`] by default).
    pub rules: Vec<Rule>,
    /// SLO objective on HP normalized IPC.
    pub slo_norm_ipc: f64,
    /// HP solo IPC, when already known (settable later through
    /// [`ObsPlane::set_hp_solo_ipc`]; norm-IPC series and burn-rate
    /// windows hold until it is).
    pub hp_solo_ipc: Option<f64>,
    /// Scrape the metrics registry every N periods (1 = every period).
    /// Fleet-mode [`ObsPlane::tick`]s always scrape — rounds are already
    /// coarse — so this cadence only paces event-driven periods, where
    /// the key series cover every period anyway; the default (64, one
    /// self-metrics flush interval) keeps the scrape well off the
    /// per-period hot path — alerting never waits on it, since the
    /// standard rules read the per-period samples directly.
    pub scrape_every: u64,
    /// Flight-recorder shape.
    pub incident: IncidentConfig,
    /// Resolved alerts retained in history.
    pub history_cap: usize,
}

impl Default for ObsConfig {
    fn default() -> Self {
        ObsConfig {
            store: StoreConfig::default(),
            rules: standard_rules(),
            slo_norm_ipc: DEFAULT_SLO_NORM_IPC,
            hp_solo_ipc: None,
            scrape_every: 64,
            incident: IncidentConfig::default(),
            history_cap: 64,
        }
    }
}

struct KeyIds {
    ipc: SeriesId,
    bw: SeriesId,
    ways: SeriesId,
}

struct Scraper {
    registry: Arc<MetricsRegistry>,
    every: u64,
    /// Periods until the next scheduled scrape. A countdown instead of
    /// `period % every` keeps a runtime-divisor division off the
    /// per-period hot path.
    countdown: u64,
    /// Registry generation the handle cache was built against.
    generation: u64,
    /// Scalar handle, its store series, and the bits of the last value
    /// recorded — scrapes are change-compressed: an unchanged scalar is
    /// not re-recorded (the store handles sparse series natively).
    handles: Vec<(SeriesId, Scalar, u64)>,
}

struct SelfMetrics {
    alerts_firing: Gauge,
    samples_total: Counter,
    evals_total: Counter,
    transitions_total: Counter,
    incidents_total: Counter,
    /// Values already flushed into the counters above.
    flushed: (u64, u64, u64, u64),
}

/// How often (periods) batched self-metric counters flush to the
/// registry. Keeps the per-period cost at two integer compares.
const SELF_FLUSH_EVERY: u64 = 64;

/// Staged period samples processed together — two /16 store buckets, so
/// a flush folds whole tier buckets while they are hot in cache and the
/// fixed flush costs (scraper walk, engine and series metadata refills)
/// amortize over twice the periods.
pub const FLUSH_BATCH: usize = 32;

struct PlaneInner {
    store: SeriesStore,
    engine: RulesEngine,
    recorder: FlightRecorder,
    /// Logical period clock: monotone across runs, never resets.
    period: u64,
    objective: f64,
    /// Reciprocal of the HP solo IPC (`NaN` = unknown): a multiply per
    /// period instead of a divide.
    inv_hp_solo_ipc: f64,
    /// Last recorded `obs_hp_ways` value (`u32::MAX` = none yet) — the
    /// step series records on change only.
    last_ways: u32,
    key: KeyIds,
    /// Last status per controller, sorted by name: (name, period, state,
    /// severity).
    controllers: Vec<(&'static str, u64, &'static str, u8)>,
    scraper: Option<Scraper>,
    ring: Option<Arc<RingRecorder>>,
    metrics: Option<SelfMetrics>,
    /// Reused transition buffer (zero steady-state allocation).
    transitions: Vec<Transition>,
    scrape_every: u64,
    /// Period samples staged for batch processing. An inline array (not
    /// a `Vec`): the bus-facing push touches only lines adjacent to the
    /// plane's own lock, with no data-pointer indirection.
    staged: [PeriodEvent; FLUSH_BATCH],
    staged_len: usize,
    /// Whether every armed rule reads only the period sample or
    /// batch-constant state — true for [`standard_rules`] — which
    /// unlocks the batched flush path ([`RulesEngine::eval_batch`]).
    rules_sample_local: bool,
}

/// Zero-filled staging slot (never read before written).
const EMPTY_PERIOD: PeriodEvent =
    PeriodEvent { time_s: 0.0, hp_ipc: 0.0, hp_bw_gbps: 0.0, total_bw_gbps: 0.0, hp_ways: 0, n_bes: 0 };

/// The plane itself. Interior-locked: the simulation thread records
/// through [`ObsPlane::on_event`]/[`ObsPlane::tick`] while HTTP threads
/// answer [`ObsPlane::query_json`]/[`ObsPlane::alerts_json`].
pub struct ObsPlane {
    inner: Mutex<PlaneInner>,
}

impl ObsPlane {
    /// Builds a plane; key series are pre-registered.
    pub fn new(cfg: ObsConfig) -> Self {
        let mut store = SeriesStore::new(cfg.store);
        let key = KeyIds {
            ipc: store.series_id(KEY_SERIES[0]),
            bw: store.series_id(KEY_SERIES[2]),
            ways: store.series_id(KEY_SERIES[3]),
        };
        // Registered so `series_names` advertises it, but never recorded
        // — the norm series is derived from ipc at read time.
        store.series_id(NORM_SERIES);
        let rules_sample_local = cfg.rules.iter().all(|r| match &r.kind {
            RuleKind::BurnRate { .. } | RuleKind::SeverityStreak { .. } => true,
            RuleKind::Threshold { metric, .. } => KEY_SERIES.contains(&metric.as_str()),
        });
        ObsPlane {
            inner: Mutex::new(PlaneInner {
                store,
                engine: RulesEngine::new(cfg.rules, cfg.history_cap),
                recorder: FlightRecorder::new(cfg.incident),
                period: 0,
                objective: cfg.slo_norm_ipc,
                inv_hp_solo_ipc: cfg.hp_solo_ipc.map_or(f64::NAN, f64::recip),
                last_ways: u32::MAX,
                key,
                controllers: Vec::new(),
                scraper: None,
                ring: None,
                metrics: None,
                transitions: Vec::new(),
                scrape_every: cfg.scrape_every.max(1),
                staged: [EMPTY_PERIOD; FLUSH_BATCH],
                staged_len: 0,
                rules_sample_local,
            }),
        }
    }

    /// Attaches a metrics registry: every `scrape_every` periods all its
    /// scalar series are sampled into the store, and the plane registers
    /// its own `dicer_alerts_firing` gauge plus `dicer_obs_*`
    /// self-metrics there. Scraping caches the lock-free scalar handles
    /// and re-enumerates only when the registry generation changes, so a
    /// steady-state scrape never touches the registry lock.
    pub fn attach_registry(&self, registry: &Arc<MetricsRegistry>) {
        let metrics = SelfMetrics {
            alerts_firing: registry
                .gauge("dicer_alerts_firing", "Alert rules currently firing.", &[]),
            samples_total: registry.counter(
                "dicer_obs_samples_total",
                "Samples recorded into the period-series store.",
                &[],
            ),
            evals_total: registry.counter(
                "dicer_obs_rule_evals_total",
                "Alert rule evaluations.",
                &[],
            ),
            transitions_total: registry.counter(
                "dicer_obs_alert_transitions_total",
                "Alert fire/resolve edges.",
                &[],
            ),
            incidents_total: registry.counter(
                "dicer_obs_incidents_total",
                "Incident bundles recorded by the flight recorder.",
                &[],
            ),
            flushed: (0, 0, 0, 0),
        };
        let mut inner = self.inner.lock();
        Self::flush_staged(&mut inner);
        let every = inner.scrape_every;
        inner.scraper = Some(Scraper {
            registry: registry.clone(),
            every,
            countdown: 0,
            generation: u64::MAX,
            handles: Vec::new(),
        });
        inner.metrics = Some(metrics);
    }

    /// Attaches the event ring incident bundles read their "last N
    /// events" from (the daemon passes its `/events` ring).
    pub fn attach_ring(&self, ring: Arc<RingRecorder>) {
        self.with_flushed(|inner| inner.ring = Some(ring));
    }

    /// Sets (or updates) the HP solo IPC the norm-IPC series and the
    /// SLO are computed against. Non-positive or non-finite values are
    /// ignored.
    pub fn set_hp_solo_ipc(&self, solo: f64) {
        if solo.is_finite() && solo > 0.0 {
            // Flush first: staged periods were observed under the old
            // solo, exactly as they would have been processed live.
            self.with_flushed(|inner| inner.inv_hp_solo_ipc = solo.recip());
        }
    }

    /// Logical periods closed so far.
    pub fn period(&self) -> u64 {
        self.with_flushed(|inner| inner.period)
    }

    /// Alert rules currently firing (the `/healthz` count).
    pub fn firing_count(&self) -> usize {
        self.with_flushed(|inner| inner.engine.firing_count())
    }

    /// Samples recorded into the store so far.
    pub fn samples_total(&self) -> u64 {
        self.with_flushed(|inner| inner.store.samples_total())
    }

    /// Registered series names, sorted.
    pub fn series_names(&self) -> Vec<String> {
        self.with_flushed(|inner| inner.store.names().iter().map(|s| s.to_string()).collect())
    }

    /// In-memory incident bundles, oldest first, as `(file_name, jsonl)`.
    pub fn incidents(&self) -> Vec<(String, String)> {
        self.with_flushed(|inner| {
            inner.recorder.bundles().map(|(n, b)| (n.to_string(), b.to_string())).collect()
        })
    }

    /// Incident bundles recorded over the plane's lifetime.
    pub fn incidents_total(&self) -> u64 {
        self.with_flushed(|inner| inner.recorder.recorded())
    }

    /// Answers one `/query` range request; `None` for unknown metrics.
    /// `obs_hp_norm_ipc` is synthesized from the ipc series (an exact
    /// positive scaling, so every tier statistic stays truthful); it is
    /// empty until the solo IPC is known, then covers the full retained
    /// ipc history.
    pub fn query_json(&self, metric: &str, start: u64, end: u64, step: u64) -> Option<String> {
        self.with_flushed(|inner| {
            if metric == NORM_SERIES {
                let inv = inner.inv_hp_solo_ipc;
                let mut r = inner.store.query(KEY_SERIES[0], start, end, step)?;
                r.metric = NORM_SERIES.to_string();
                if inv.is_finite() {
                    for a in &mut r.points {
                        a.min *= inv;
                        a.max *= inv;
                        a.sum *= inv;
                        a.last *= inv;
                    }
                } else {
                    r.points.clear();
                }
                return Some(r.to_json(start, end, step));
            }
            inner.store.query(metric, start, end, step).map(|r| r.to_json(start, end, step))
        })
    }

    /// Answers `/alerts`: active alerts plus bounded resolved history.
    pub fn alerts_json(&self) -> String {
        self.with_flushed(|inner| inner.engine.alerts_json())
    }

    /// Ingests one bus event. `Period` closes a logical period (staged;
    /// see the module docs) and `ControllerStatus` updates the
    /// controller summaries (and the sparse `obs_severity{...}`
    /// series). Everything else is ignored in a single branch, so the
    /// plane adds nothing to non-period traffic.
    pub fn on_event(&self, event: &TelemetryEvent) {
        match event {
            TelemetryEvent::Period(p) => {
                let mut inner = self.inner.lock();
                let n = inner.staged_len;
                inner.staged[n] = *p;
                inner.staged_len = n + 1;
                if n + 1 == FLUSH_BATCH {
                    Self::flush_staged(&mut inner);
                }
            }
            TelemetryEvent::ControllerStatus { name, period, state, severity } => {
                let mut inner = self.inner.lock();
                // Stamp against the post-flush period clock — exactly
                // where this status sits in the event stream.
                Self::flush_staged(&mut inner);
                let stamp = inner.period;
                match inner.controllers.binary_search_by(|c| c.0.cmp(name)) {
                    Ok(i) => inner.controllers[i] = (name, *period, state, *severity),
                    Err(i) => inner.controllers.insert(i, (name, *period, state, *severity)),
                }
                let series = format!("obs_severity{{controller=\"{name}\"}}");
                let id = inner.store.series_id(&series);
                inner.store.record(id, stamp, *severity as f64);
            }
            _ => {}
        }
    }

    /// Closes one logical period with no period sample — fleet mode,
    /// where the signal lives in per-node registry gauges and rounds are
    /// the period clock. Ticks always scrape the registry (rounds are
    /// coarse; the per-node series live there), regardless of
    /// [`ObsConfig::scrape_every`].
    pub fn tick(&self) {
        let mut inner = self.inner.lock();
        Self::flush_staged(&mut inner);
        Self::process_period(&mut inner, None, true);
    }

    /// Processes every staged period sample in order, then empties the
    /// buffer. Called with the lock held — at batch boundaries, from
    /// [`ObsPlane::tick`], and from every read path.
    ///
    /// The dense key series (`ipc`, `bw`) fold as one
    /// [`SeriesStore::record_batch`] per series up front — the open /16
    /// bucket stays in registers across the batch. Rule evaluation still
    /// walks the periods one by one below, reading key values straight
    /// from each staged sample, and incident windows filter on `period
    /// <= fire period`, so neither can observe the fold ahead of its
    /// period: the result is byte-identical to per-period recording.
    fn flush_staged(inner: &mut PlaneInner) {
        let n = inner.staged_len;
        if n == 0 {
            return;
        }
        let start = inner.period;
        let inv = inner.inv_hp_solo_ipc;
        let objective = inner.objective;
        let mut ipc = [0.0f64; FLUSH_BATCH];
        let mut bw = [0.0f64; FLUSH_BATCH];
        for (i, p) in inner.staged[..n].iter().enumerate() {
            ipc[i] = p.hp_ipc;
            bw[i] = p.total_bw_gbps;
        }
        let (kipc, kbw) = (inner.key.ipc, inner.key.bw);
        inner.store.record_batch(kipc, start, &ipc[..n]);
        inner.store.record_batch(kbw, start, &bw[..n]);

        if !inner.rules_sample_local {
            // A custom rule reads arbitrary stored series: evaluation
            // must interleave with scrapes period by period.
            for i in 0..n {
                let p = inner.staged[i];
                Self::process_period(inner, Some(&p), false);
            }
            inner.staged_len = 0;
            return;
        }

        // Batched path: every armed rule is sample-local, so the whole
        // batch evaluates in one `eval_batch` (byte-identical to the
        // per-period path — see its contract) and the bookkeeping loops
        // below each run tight over the batch.
        inner.period += n as u64;

        for i in 0..n {
            let w = inner.staged[i].hp_ways;
            if w != inner.last_ways {
                inner.last_ways = w;
                let id = inner.key.ways;
                inner.store.record(id, start + i as u64, w as f64);
            }
        }

        if let Some(s) = &mut inner.scraper {
            for i in 0..n {
                if Self::scrape_pace(s) {
                    Self::scrape_now(s, &mut inner.store, start + i as u64);
                }
            }
        }

        let mut norms = [f64::NAN; FLUSH_BATCH];
        for i in 0..n {
            norms[i] = ipc[i] * inv; // NaN propagates when solo unknown
        }

        let PlaneInner { store, engine, recorder, key, controllers, ring, transitions, staged, .. } =
            inner;
        {
            let metric_at = |i: usize, name: &str| {
                let p = &staged[i];
                let direct = match name {
                    NORM_SERIES => norms[i],
                    "obs_hp_ipc" => p.hp_ipc,
                    "obs_total_bw_gbps" => p.total_bw_gbps,
                    "obs_hp_ways" => p.hp_ways as f64,
                    // Unreachable: `rules_sample_local` admits key
                    // series thresholds only.
                    _ => f64::NAN,
                };
                if direct.is_finite() {
                    return Some(direct);
                }
                let id = match name {
                    NORM_SERIES => return None,
                    "obs_hp_ipc" => Some(key.ipc),
                    "obs_total_bw_gbps" => Some(key.bw),
                    "obs_hp_ways" => Some(key.ways),
                    _ => store.lookup(name),
                };
                id.and_then(|id| store.last(id)).map(|(_, v)| v)
            };
            // Controller statuses flush the staging buffer before they
            // land, so severities are constant across a batch.
            let severity = |name: &str| {
                if name.is_empty() {
                    controllers.iter().map(|c| c.3).max()
                } else {
                    controllers.iter().find(|c| c.0 == name).map(|c| c.3)
                }
            };
            engine.eval_batch(start, &norms[..n], objective, &metric_at, &severity, transitions);
        }

        Self::cut_incidents(store, engine, recorder, key, controllers, ring, transitions, inv);

        if let Some(m) = &mut inner.metrics {
            if !inner.transitions.is_empty() {
                m.alerts_firing.set(inner.engine.firing_count() as f64);
            }
            // Same cadence as the per-period path: flush the self
            // counters when the batch contains a boundary period.
            if start.next_multiple_of(SELF_FLUSH_EVERY) < start + n as u64 {
                let now = (
                    inner.store.samples_total(),
                    inner.engine.evaluations(),
                    inner.engine.transitions_total(),
                    inner.recorder.recorded(),
                );
                m.samples_total.add(now.0 - m.flushed.0);
                m.evals_total.add(now.1 - m.flushed.1);
                m.transitions_total.add(now.2 - m.flushed.2);
                m.incidents_total.add(now.3 - m.flushed.3);
                m.flushed = now;
            }
        }

        inner.staged_len = 0;
    }

    /// Locks, drains the staging buffer, then runs `f`. Every read path
    /// goes through here, so no caller can observe a stale plane.
    fn with_flushed<R>(&self, f: impl FnOnce(&mut PlaneInner) -> R) -> R {
        let mut inner = self.inner.lock();
        Self::flush_staged(&mut inner);
        f(&mut inner)
    }

    /// Cuts a flight-recorder bundle for every fire edge in
    /// `transitions`, windowed to each edge's own period.
    #[allow(clippy::too_many_arguments)]
    fn cut_incidents(
        store: &SeriesStore,
        engine: &RulesEngine,
        recorder: &mut FlightRecorder,
        key: &KeyIds,
        controllers: &[(&'static str, u64, &'static str, u8)],
        ring: &Option<Arc<RingRecorder>>,
        transitions: &[Transition],
        inv: f64,
    ) {
        for tr in transitions.iter().filter(|tr| tr.fired) {
            let t = tr.period;
            let rule = engine.rule(tr.rule);
            let window = recorder.config().window;
            let start = t.saturating_sub(window);
            let mut series: Vec<(&str, Vec<(u64, f64)>)> = Vec::with_capacity(KEY_SERIES.len());
            for name in KEY_SERIES {
                let id = if name == NORM_SERIES {
                    key.ipc
                } else {
                    store.lookup(name).expect("key series pre-registered")
                };
                let mut window = store.raw_window(id, start, t);
                // A step series (ways) may not have changed inside the
                // window — carry its last known value so the bundle
                // still answers "what was it at fire time".
                if window.is_empty() {
                    window.extend(store.last(id));
                }
                if name == NORM_SERIES {
                    // Derived: scale the ipc window (empty if solo is
                    // still unknown — a NaN must never reach a bundle).
                    if inv.is_finite() {
                        for (_, v) in &mut window {
                            *v *= inv;
                        }
                    } else {
                        window.clear();
                    }
                }
                series.push((name, window));
            }
            let max_events = recorder.config().max_events;
            let events = match ring {
                Some(r) => {
                    let head = r.cursor_now();
                    let (events, _, _) =
                        r.read_since(head.saturating_sub(max_events as u64), max_events);
                    events
                }
                None => Vec::new(),
            };
            let ctrls: Vec<(&str, u64, &str, u8)> =
                controllers.iter().map(|c| (c.0, c.1, c.2, c.3)).collect();
            let bundle = build_bundle(rule, t, tr.value, &series, &events, &ctrls);
            recorder.record(bundle_file_name(&rule.name, t), bundle);
        }
    }

    /// Advances the scrape countdown by one period, returning whether a
    /// scrape is due now.
    #[inline]
    fn scrape_pace(s: &mut Scraper) -> bool {
        if s.countdown == 0 {
            s.countdown = s.every - 1;
            true
        } else {
            s.countdown -= 1;
            false
        }
    }

    /// Samples every registry scalar into the store at period `t`,
    /// change-compressed, re-caching handles when the registry
    /// generation moved.
    fn scrape_now(s: &mut Scraper, store: &mut SeriesStore, t: u64) {
        let gen = s.registry.generation();
        if gen != s.generation {
            s.generation = gen;
            s.handles = s
                .registry
                .scalars()
                .into_iter()
                // NaN bits = "nothing recorded yet" — registry scalars
                // are pinned finite, and a real NaN would be dropped by
                // the store anyway.
                .map(|(name, h)| (store.series_id(&name), h, f64::NAN.to_bits()))
                .collect();
        }
        for (id, h, last_bits) in &mut s.handles {
            let bits = h.value().to_bits();
            if bits != *last_bits {
                *last_bits = bits;
                store.record(*id, t, f64::from_bits(bits));
            }
        }
    }

    #[inline]
    fn process_period(inner: &mut PlaneInner, sample: Option<&PeriodEvent>, force_scrape: bool) {
        let t = inner.period;
        inner.period += 1;
        let objective = inner.objective;

        let inv = inner.inv_hp_solo_ipc;
        let mut norm = f64::NAN;
        if let Some(p) = sample {
            norm = p.hp_ipc * inv; // NaN propagates when solo unknown
            // ipc/bw were batch-recorded by `flush_staged`; only the
            // change-compressed ways step series records here.
            if p.hp_ways != inner.last_ways {
                inner.last_ways = p.hp_ways;
                let id = inner.key.ways;
                inner.store.record(id, t, p.hp_ways as f64);
            }
        }

        if let Some(s) = &mut inner.scraper {
            if force_scrape || Self::scrape_pace(s) {
                Self::scrape_now(s, &mut inner.store, t);
            }
        }

        let PlaneInner { store, engine, recorder, key, controllers, ring, transitions, .. } = inner;
        {
            // Key series resolve without touching the name map, and —
            // when this period has a sample — straight from it: the
            // value the store would return for period `t`, without the
            // lookup. Ticks (no sample) fall through to the store.
            let metric = |name: &str| {
                if let Some(p) = sample {
                    let direct = match name {
                        NORM_SERIES => norm,
                        "obs_hp_ipc" => p.hp_ipc,
                        "obs_total_bw_gbps" => p.total_bw_gbps,
                        "obs_hp_ways" => p.hp_ways as f64,
                        _ => f64::NAN,
                    };
                    if direct.is_finite() {
                        return Some(direct);
                    }
                }
                let id = match name {
                    // Derived (never stored); gated until solo is known.
                    NORM_SERIES => return None,
                    "obs_hp_ipc" => Some(key.ipc),
                    "obs_total_bw_gbps" => Some(key.bw),
                    "obs_hp_ways" => Some(key.ways),
                    _ => store.lookup(name),
                };
                id.and_then(|id| store.last(id)).map(|(_, v)| v)
            };
            let severity = |name: &str| {
                if name.is_empty() {
                    controllers.iter().map(|c| c.3).max()
                } else {
                    controllers.iter().find(|c| c.0 == name).map(|c| c.3)
                }
            };
            let input = EvalInput {
                period: t,
                norm_ipc: norm,
                objective,
                metric: &metric,
                severity: &severity,
            };
            engine.eval(&input, transitions);
        }

        Self::cut_incidents(store, engine, recorder, key, controllers, ring, transitions, inv);

        if let Some(m) = &mut inner.metrics {
            if !inner.transitions.is_empty() {
                m.alerts_firing.set(inner.engine.firing_count() as f64);
            }
            if t.is_multiple_of(SELF_FLUSH_EVERY) {
                let now = (
                    inner.store.samples_total(),
                    inner.engine.evaluations(),
                    inner.engine.transitions_total(),
                    inner.recorder.recorded(),
                );
                m.samples_total.add(now.0 - m.flushed.0);
                m.evals_total.add(now.1 - m.flushed.1);
                m.transitions_total.add(now.2 - m.flushed.2);
                m.incidents_total.add(now.3 - m.flushed.3);
                m.flushed = now;
            }
        }
    }
}

/// A [`TelemetrySink`] adapter: put this on the bus (typically inside a
/// `FanoutSink`) and the plane observes everything the session emits.
pub struct ObsSink {
    plane: Arc<ObsPlane>,
}

impl ObsSink {
    /// A sink delivering into `plane`.
    pub fn new(plane: Arc<ObsPlane>) -> Self {
        ObsSink { plane }
    }
}

impl TelemetrySink for ObsSink {
    fn emit(&self, event: &TelemetryEvent) {
        self.plane.on_event(event);
    }

    /// Only periods and controller statuses reach the plane — the
    /// fan-out router skips this sink for every other family (span
    /// events outnumber periods ~3:1 on a traced daemon, so this keeps
    /// their dispatch off the plane entirely).
    fn interests(&self) -> Interests {
        Interests::PERIOD | Interests::CONTROLLER_STATUS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::RuleKind;

    fn period(hp_ipc: f64) -> TelemetryEvent {
        TelemetryEvent::Period(PeriodEvent {
            time_s: 0.0,
            hp_ipc,
            hp_bw_gbps: 10.0,
            total_bw_gbps: 40.0,
            hp_ways: 8,
            n_bes: 3,
        })
    }

    fn burn_rule() -> Rule {
        Rule {
            name: "hp-slo-burn-rate".to_string(),
            severity: "page",
            kind: RuleKind::BurnRate { short: 4, long: 8, budget: 0.25, threshold: 2.0 },
        }
    }

    #[test]
    fn period_events_populate_key_series_and_answer_queries() {
        let plane = ObsPlane::new(ObsConfig {
            hp_solo_ipc: Some(2.0),
            rules: Vec::new(),
            ..ObsConfig::default()
        });
        for _ in 0..4 {
            plane.on_event(&period(1.0));
        }
        assert_eq!(plane.period(), 4);
        let q = plane.query_json("obs_hp_norm_ipc", 0, 3, 1).unwrap();
        assert!(q.contains("\"metric\":\"obs_hp_norm_ipc\""), "{q}");
        assert!(q.contains("\"last\":0.5"), "{q}");
        assert!(plane.query_json("no_such_metric", 0, 10, 1).is_none());
    }

    #[test]
    fn norm_series_is_derived_and_gated_until_solo_known() {
        let plane = ObsPlane::new(ObsConfig { rules: Vec::new(), ..ObsConfig::default() });
        plane.on_event(&period(1.0));
        let before = plane.query_json("obs_hp_norm_ipc", 0, 10, 1).unwrap();
        assert!(before.contains("\"points\":[]"), "{before}");
        plane.set_hp_solo_ipc(2.0);
        plane.on_event(&period(1.0));
        // Derived from the ipc series: once the solo is known the whole
        // retained history normalizes, period 0 included.
        let after = plane.query_json("obs_hp_norm_ipc", 0, 10, 1).unwrap();
        assert!(after.contains("[{\"period\":0,"), "{after}");
        assert!(after.contains("\"last\":0.5"), "{after}");
    }

    #[test]
    fn burn_rate_fires_at_a_pinned_period_and_cuts_one_bundle() {
        let run = || {
            let plane = ObsPlane::new(ObsConfig {
                hp_solo_ipc: Some(1.0),
                rules: vec![burn_rule()],
                ..ObsConfig::default()
            });
            plane.on_event(&TelemetryEvent::ControllerStatus {
                name: "DICER",
                period: 0,
                state: "sampling",
                severity: 1,
            });
            // Every period violates the SLO; the rule may only fire once
            // both windows are full, i.e. at period index 7.
            for _ in 0..12 {
                plane.on_event(&period(0.5));
            }
            plane
        };
        let plane = run();
        assert_eq!(plane.firing_count(), 1);
        assert_eq!(plane.incidents_total(), 1);
        let incidents = plane.incidents();
        assert_eq!(incidents[0].0, "incident_hp-slo-burn-rate_p7.jsonl");
        assert!(incidents[0].1.contains("\"fired_period\":7"), "{}", incidents[0].1);
        assert!(incidents[0].1.contains("\"name\":\"DICER\""), "{}", incidents[0].1);
        // Byte-for-byte reproducible.
        assert_eq!(run().incidents(), incidents);
    }

    #[test]
    fn registry_scrape_lands_in_the_store_and_tracks_new_series() {
        let registry = Arc::new(MetricsRegistry::new());
        let g = registry.gauge("dicer_x", "x", &[]);
        g.set(3.0);
        let plane = ObsPlane::new(ObsConfig { rules: Vec::new(), ..ObsConfig::default() });
        plane.attach_registry(&registry);
        plane.tick();
        let q = plane.query_json("dicer_x", 0, 10, 1).unwrap();
        assert!(q.contains("\"last\":3"), "{q}");
        // A series registered later is picked up on the next scrape.
        registry.counter("dicer_y_total", "y", &[]).add(2);
        plane.tick();
        let q = plane.query_json("dicer_y_total", 0, 10, 1).unwrap();
        assert!(q.contains("\"last\":2"), "{q}");
        // Self-metrics registered alongside.
        assert!(plane.query_json("dicer_alerts_firing", 0, 10, 1).is_some());
    }

    #[test]
    fn controller_status_records_a_sparse_severity_series() {
        let plane = ObsPlane::new(ObsConfig { rules: Vec::new(), ..ObsConfig::default() });
        plane.on_event(&period(1.0));
        plane.on_event(&period(1.0));
        plane.on_event(&TelemetryEvent::ControllerStatus {
            name: "DICER",
            period: 2,
            state: "throttled",
            severity: 2,
        });
        let q = plane.query_json("obs_severity{controller=\"DICER\"}", 0, 10, 1).unwrap();
        assert!(q.contains("[{\"period\":2,\"min\":2,"), "{q}");
    }

    #[test]
    fn bundles_include_ring_events_when_attached() {
        let ring = Arc::new(RingRecorder::new(64));
        ring.emit(&TelemetryEvent::Fault { label: "sample_dropped" });
        let plane = ObsPlane::new(ObsConfig {
            hp_solo_ipc: Some(1.0),
            rules: vec![burn_rule()],
            ..ObsConfig::default()
        });
        plane.attach_ring(ring.clone());
        for _ in 0..8 {
            plane.on_event(&period(0.5));
        }
        let incidents = plane.incidents();
        assert_eq!(incidents.len(), 1);
        assert!(
            incidents[0].1.contains("{\"event\":\"fault\",\"kind\":\"sample_dropped\"}"),
            "{}",
            incidents[0].1
        );
    }
}
