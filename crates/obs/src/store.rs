//! The period-series store: a tiny embedded TSDB keyed by logical period.
//!
//! Every series holds three tiers under bounded memory:
//!
//! * **raw** — the last `raw_cap` samples at period resolution;
//! * **/16** — one [`Agg`] per 16-period bucket, last `t1_cap` buckets;
//! * **/256** — one [`Agg`] per 256-period bucket, last `t2_cap` buckets.
//!
//! Aggregates carry `min`/`max`/`sum`/`count`/`last`, so any question the
//! raw tier could answer (extremes, means, latest value) survives
//! downsampling. Buckets fold incrementally on the record path — closing
//! a bucket is a ring push, never a rescan — and the whole store is plain
//! data: no wall clock, no allocation in steady state beyond the fixed
//! rings, byte-stable queries for identical sample streams.

use std::collections::{BTreeMap, VecDeque};

use dicer_telemetry::json_f64;

/// Dense handle for a registered series; stable for the store's lifetime.
pub type SeriesId = usize;

/// Periods per tier-1 bucket.
pub const T1_FACTOR: u64 = 16;
/// Periods per tier-2 bucket.
pub const T2_FACTOR: u64 = 256;

/// Per-tier ring capacities.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Raw samples retained per series (rounded up to a power of two so
    /// the raw ring indexes with a mask instead of wrapping arithmetic).
    pub raw_cap: usize,
    /// /16 buckets retained per series.
    pub t1_cap: usize,
    /// /256 buckets retained per series.
    pub t2_cap: usize,
}

impl Default for StoreConfig {
    /// 512 raw + 512×16 + 512×256 ≈ the last 131k periods visible per
    /// series, in ~1.5k ring slots.
    fn default() -> Self {
        StoreConfig { raw_cap: 512, t1_cap: 512, t2_cap: 512 }
    }
}

/// One downsampled bucket: the five stats that survive tiering.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Agg {
    /// First period of the bucket (a multiple of the tier factor).
    pub start: u64,
    /// Minimum sample in the bucket.
    pub min: f64,
    /// Maximum sample in the bucket.
    pub max: f64,
    /// Sum of samples (mean = `sum / count`).
    pub sum: f64,
    /// Samples folded in.
    pub count: u64,
    /// Most recent sample.
    pub last: f64,
}

impl Agg {
    fn open(start: u64, v: f64) -> Self {
        Agg { start, min: v, max: v, sum: v, count: 1, last: v }
    }

    /// Absorbs a whole closed finer-tier bucket (aggregates are
    /// associative, so /256 buckets fold from closed /16 buckets instead
    /// of re-folding every raw sample).
    #[inline]
    fn merge(&mut self, other: &Agg) {
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.sum += other.sum;
        self.count += other.count;
        self.last = other.last;
    }

    #[inline]
    fn fold(&mut self, v: f64) {
        // `v` is already finite (the record path drops non-finite
        // samples), so plain compares beat `f64::min`'s NaN handling.
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.sum += v;
        self.count += 1;
        self.last = v;
    }

    fn to_json(self) -> String {
        format!(
            "{{\"period\":{},\"min\":{},\"max\":{},\"sum\":{},\"count\":{},\"last\":{}}}",
            self.start,
            json_f64(self.min),
            json_f64(self.max),
            json_f64(self.sum),
            self.count,
            json_f64(self.last),
        )
    }
}

/// Fixed power-of-two ring of raw `(period, value)` samples. A push is
/// one slot write and one increment — no capacity branch, no wrapping
/// arithmetic beyond a mask — because the raw push sits on the plane's
/// per-period hot path three times over.
struct RawRing {
    buf: Box<[(u64, f64)]>,
    /// Samples pushed over the ring's lifetime; the next write lands at
    /// `pushed & (buf.len() - 1)`.
    pushed: u64,
}

impl RawRing {
    fn new(cap: usize) -> Self {
        let cap = cap.max(1).next_power_of_two();
        RawRing { buf: vec![(0, 0.0); cap].into_boxed_slice(), pushed: 0 }
    }

    #[inline]
    fn push(&mut self, period: u64, v: f64) {
        let mask = self.buf.len() as u64 - 1;
        self.buf[(self.pushed & mask) as usize] = (period, v);
        self.pushed += 1;
    }

    fn last(&self) -> Option<(u64, f64)> {
        let mask = self.buf.len() as u64 - 1;
        self.pushed.checked_sub(1).map(|i| self.buf[(i & mask) as usize])
    }

    /// Retained samples, oldest first.
    fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let mask = self.buf.len() as u64 - 1;
        let len = self.pushed.min(self.buf.len() as u64);
        (self.pushed - len..self.pushed).map(move |i| self.buf[(i & mask) as usize])
    }
}

struct Series {
    name: String,
    raw: RawRing,
    t1: VecDeque<Agg>,
    open1: Option<Agg>,
    t2: VecDeque<Agg>,
    open2: Option<Agg>,
}

/// The answer to one range query: which tier served it and the points.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The series name queried.
    pub metric: String,
    /// `"raw"`, `"t1"` (/16) or `"t2"` (/256).
    pub tier: &'static str,
    /// Periods per point at this tier (1, 16 or 256).
    pub resolution: u64,
    /// Matching buckets, oldest first. Raw samples are degenerate
    /// buckets (`count == 1`, `min == max == sum == last`), so every
    /// tier renders the same shape.
    pub points: Vec<Agg>,
}

impl QueryResult {
    /// Hand-rolled JSON (the daemon must not depend on an external
    /// serialiser): echoes the resolved range, then the points.
    pub fn to_json(&self, start: u64, end: u64, step: u64) -> String {
        let points: Vec<String> = self.points.iter().map(|a| a.to_json()).collect();
        format!(
            "{{\"metric\":{},\"start\":{},\"end\":{},\"step\":{},\"tier\":\"{}\",\
             \"resolution\":{},\"points\":[{}]}}\n",
            dicer_telemetry::json_str(&self.metric),
            start,
            end,
            step,
            self.tier,
            self.resolution,
            points.join(","),
        )
    }
}

/// The store: many named series, each with the three tiers. Plain data —
/// the owner (the [`crate::ObsPlane`]) provides locking.
pub struct SeriesStore {
    cfg: StoreConfig,
    series: Vec<Series>,
    by_name: BTreeMap<String, SeriesId>,
    samples: u64,
}

impl SeriesStore {
    /// An empty store.
    pub fn new(cfg: StoreConfig) -> Self {
        SeriesStore { cfg, series: Vec::new(), by_name: BTreeMap::new(), samples: 0 }
    }

    /// Registers (or looks up) a series, returning its dense id.
    pub fn series_id(&mut self, name: &str) -> SeriesId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = self.series.len();
        self.series.push(Series {
            name: name.to_string(),
            raw: RawRing::new(self.cfg.raw_cap),
            // Grown on demand: sparse series (scraped scalars) never
            // come near the caps, and preallocating `cap` buckets for
            // every series multiplies the plane's cache footprint.
            t1: VecDeque::new(),
            open1: None,
            t2: VecDeque::new(),
            open2: None,
        });
        self.by_name.insert(name.to_string(), id);
        id
    }

    /// Looks a series up without registering it.
    pub fn lookup(&self, name: &str) -> Option<SeriesId> {
        self.by_name.get(name).copied()
    }

    /// Registered series names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.by_name.keys().map(String::as_str).collect()
    }

    /// Registered series count.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// Whether no series is registered yet.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Samples recorded over the store's lifetime.
    pub fn samples_total(&self) -> u64 {
        self.samples
    }

    /// Records one sample. Periods must be non-decreasing per series
    /// (the plane's logical clock guarantees it); non-finite values are
    /// dropped, mirroring the metrics-registry pinning, so a bad sample
    /// can never poison a bucket's `sum` or `min`/`max`.
    ///
    /// The per-sample work is one raw ring push plus one /16 fold; the
    /// /256 tier absorbs *closed* /16 buckets (a [`Agg::merge`] every 16
    /// samples), so the tiering cost stays off the per-period hot path.
    #[inline]
    pub fn record(&mut self, id: SeriesId, period: u64, v: f64) {
        if !v.is_finite() {
            return;
        }
        self.samples += 1;
        let cfg = self.cfg;
        let s = &mut self.series[id];
        s.raw.push(period, v);
        let start1 = period & !(T1_FACTOR - 1);
        match &mut s.open1 {
            Some(a) if a.start == start1 => a.fold(v),
            Some(a) => {
                let closed = *a;
                *a = Agg::open(start1, v);
                if s.t1.len() == cfg.t1_cap {
                    s.t1.pop_front();
                }
                s.t1.push_back(closed);
                Self::merge_t2(&mut s.open2, &mut s.t2, cfg.t2_cap, closed);
            }
            None => s.open1 = Some(Agg::open(start1, v)),
        }
    }

    /// Records a batch of consecutive-period samples (`vals[i]` at period
    /// `start + i`) — exactly equivalent to calling [`Self::record`] once
    /// per value, but the open /16 bucket stays in registers across the
    /// whole batch instead of round-tripping memory per sample. This is
    /// the plane's flush path: its staged batch is bounded by
    /// [`crate::FLUSH_BATCH`], a multiple of the /16 bucket width, so a
    /// batch closes whole tier-1 buckets.
    pub fn record_batch(&mut self, id: SeriesId, start: u64, vals: &[f64]) {
        let cfg = self.cfg;
        let s = &mut self.series[id];
        // Fast path: the batch is whole, aligned /16 buckets of finite
        // values — the steady state of the plane's flush. Each bucket
        // folds into a register-resident [`Agg`] with no per-value
        // boundary arithmetic; the bucket closes once, at the end.
        if start & (T1_FACTOR - 1) == 0
            && vals.len().is_multiple_of(T1_FACTOR as usize)
            && vals.iter().all(|v| v.is_finite())
        {
            for (b, chunk) in vals.chunks_exact(T1_FACTOR as usize).enumerate() {
                let bstart = start + b as u64 * T1_FACTOR;
                // Periods are non-decreasing, so any open bucket is
                // strictly older than this one: close it, exactly as
                // `record` would on the bucket's first sample.
                if let Some(a) = s.open1.take() {
                    if s.t1.len() == cfg.t1_cap {
                        s.t1.pop_front();
                    }
                    s.t1.push_back(a);
                    Self::merge_t2(&mut s.open2, &mut s.t2, cfg.t2_cap, a);
                }
                s.raw.push(bstart, chunk[0]);
                let mut agg = Agg::open(bstart, chunk[0]);
                for (i, &v) in chunk.iter().enumerate().skip(1) {
                    s.raw.push(bstart + i as u64, v);
                    agg.fold(v);
                }
                s.open1 = Some(agg);
            }
            self.samples += vals.len() as u64;
            return;
        }
        let mut recorded = 0u64;
        let mut open1 = s.open1;
        for (i, &v) in vals.iter().enumerate() {
            if !v.is_finite() {
                continue;
            }
            recorded += 1;
            let period = start + i as u64;
            s.raw.push(period, v);
            let start1 = period & !(T1_FACTOR - 1);
            match &mut open1 {
                Some(a) if a.start == start1 => a.fold(v),
                Some(a) => {
                    let closed = *a;
                    *a = Agg::open(start1, v);
                    if s.t1.len() == cfg.t1_cap {
                        s.t1.pop_front();
                    }
                    s.t1.push_back(closed);
                    Self::merge_t2(&mut s.open2, &mut s.t2, cfg.t2_cap, closed);
                }
                None => open1 = Some(Agg::open(start1, v)),
            }
        }
        s.open1 = open1;
        self.samples += recorded;
    }

    /// Folds a closed /16 bucket into the /256 tier.
    fn merge_t2(open: &mut Option<Agg>, ring: &mut VecDeque<Agg>, cap: usize, closed: Agg) {
        let start = closed.start & !(T2_FACTOR - 1);
        match open {
            Some(a) if a.start == start => a.merge(&closed),
            Some(a) => {
                if ring.len() == cap {
                    ring.pop_front();
                }
                ring.push_back(*a);
                *open = Some(Agg { start, ..closed });
            }
            None => *open = Some(Agg { start, ..closed }),
        }
    }

    /// The most recent sample of a series, if any.
    pub fn last(&self, id: SeriesId) -> Option<(u64, f64)> {
        self.series[id].raw.last()
    }

    /// Raw-tier samples of `id` in `[start, end]`, oldest first — the
    /// flight recorder's incident window.
    pub fn raw_window(&self, id: SeriesId, start: u64, end: u64) -> Vec<(u64, f64)> {
        self.series[id].raw.iter().filter(|(p, _)| *p >= start && *p <= end).collect()
    }

    /// Range query. `step` picks the tier (downsample-aware): `< 16`
    /// serves raw samples, `< 256` serves /16 buckets, anything larger
    /// serves /256 buckets. The range is inclusive and clamps to what
    /// each tier retains — asking for history that has aged out returns
    /// the surviving suffix, never an error. Unknown metric → `None`.
    pub fn query(&self, metric: &str, start: u64, end: u64, step: u64) -> Option<QueryResult> {
        let id = self.lookup(metric)?;
        let s = &self.series[id];
        let (tier, resolution, points) = if step < T1_FACTOR {
            let pts = s
                .raw
                .iter()
                .filter(|(p, _)| *p >= start && *p <= end)
                .map(|(p, v)| Agg::open(p, v))
                .collect();
            ("raw", 1, pts)
        } else if step < T2_FACTOR {
            ("t1", T1_FACTOR, Self::tier_range(&s.t1, s.open1, None, T1_FACTOR, start, end))
        } else {
            // The open /16 bucket has not been merged into /256 yet —
            // project it in on demand so the coarse tier is as fresh as
            // the fine one.
            let open1 = s.open1.map(|a| Agg { start: a.start & !(T2_FACTOR - 1), ..a });
            let (open2, extra) = match (s.open2, open1) {
                (Some(mut o2), Some(o1)) if o2.start == o1.start => {
                    o2.merge(&o1);
                    (Some(o2), None)
                }
                (o2, o1) => (o2, o1),
            };
            ("t2", T2_FACTOR, Self::tier_range(&s.t2, open2, extra, T2_FACTOR, start, end))
        };
        Some(QueryResult { metric: s.name.clone(), tier, resolution, points })
    }

    fn tier_range(
        ring: &VecDeque<Agg>,
        open: Option<Agg>,
        extra: Option<Agg>,
        factor: u64,
        start: u64,
        end: u64,
    ) -> Vec<Agg> {
        // A bucket covering [s, s + factor) matches if it overlaps the
        // inclusive [start, end]; the open (still folding) buckets count —
        // they are the freshest data the tier has.
        ring.iter()
            .copied()
            .chain(open)
            .chain(extra)
            .filter(|a| a.start <= end && a.start + factor > start)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> SeriesStore {
        SeriesStore::new(StoreConfig { raw_cap: 8, t1_cap: 4, t2_cap: 2 })
    }

    #[test]
    fn series_registration_is_idempotent_and_dense() {
        let mut st = store();
        let a = st.series_id("obs_a");
        let b = st.series_id("obs_b");
        assert_eq!(st.series_id("obs_a"), a);
        assert_eq!((a, b), (0, 1));
        assert_eq!(st.lookup("obs_b"), Some(1));
        assert_eq!(st.lookup("nope"), None);
        assert_eq!(st.names(), vec!["obs_a", "obs_b"]);
    }

    #[test]
    fn raw_tier_keeps_the_newest_samples_only() {
        let mut st = store();
        let id = st.series_id("obs_x");
        for p in 0..20u64 {
            st.record(id, p, p as f64);
        }
        let q = st.query("obs_x", 0, 100, 1).unwrap();
        assert_eq!(q.tier, "raw");
        let periods: Vec<u64> = q.points.iter().map(|a| a.start).collect();
        assert_eq!(periods, (12..20).collect::<Vec<_>>(), "raw_cap=8 keeps the tail");
        assert_eq!(st.last(id), Some((19, 19.0)));
        assert_eq!(st.samples_total(), 20);
    }

    #[test]
    fn tier1_buckets_fold_min_max_sum_count_last() {
        let mut st = store();
        let id = st.series_id("obs_x");
        for p in 0..33u64 {
            st.record(id, p, p as f64);
        }
        // step=16 → t1: buckets [0,16), [16,32) closed, [32,...) open.
        let q = st.query("obs_x", 0, 1000, 16).unwrap();
        assert_eq!(q.tier, "t1");
        assert_eq!(q.resolution, 16);
        assert_eq!(q.points.len(), 3);
        let b0 = q.points[0];
        assert_eq!((b0.start, b0.min, b0.max, b0.count, b0.last), (0, 0.0, 15.0, 16, 15.0));
        assert_eq!(b0.sum, (0..16).sum::<u64>() as f64);
        let open = q.points[2];
        assert_eq!((open.start, open.count, open.last), (32, 1, 32.0));
    }

    #[test]
    fn tier2_serves_coarse_steps_and_bounds_memory() {
        let mut st = store();
        let id = st.series_id("obs_x");
        for p in 0..2000u64 {
            st.record(id, p, 1.0);
        }
        let q = st.query("obs_x", 0, 10_000, 256).unwrap();
        assert_eq!(q.tier, "t2");
        // t2_cap=2 closed buckets + the open one survive.
        assert_eq!(q.points.len(), 3);
        assert_eq!(q.points[0].start, 1280, "oldest /256 buckets aged out");
        assert!(q.points.iter().all(|a| a.count <= 256));
    }

    #[test]
    fn query_range_filters_and_unknown_metric_is_none() {
        let mut st = store();
        let id = st.series_id("obs_x");
        for p in 0..8u64 {
            st.record(id, p, p as f64);
        }
        let q = st.query("obs_x", 3, 5, 1).unwrap();
        let periods: Vec<u64> = q.points.iter().map(|a| a.start).collect();
        assert_eq!(periods, vec![3, 4, 5], "inclusive range");
        assert!(st.query("nope", 0, 10, 1).is_none());
    }

    #[test]
    fn non_finite_samples_are_dropped() {
        let mut st = store();
        let id = st.series_id("obs_x");
        st.record(id, 0, 1.0);
        st.record(id, 1, f64::NAN);
        st.record(id, 2, f64::INFINITY);
        st.record(id, 3, 2.0);
        assert_eq!(st.samples_total(), 2);
        let q = st.query("obs_x", 0, 10, 16).unwrap();
        assert_eq!(q.points.len(), 1);
        let a = q.points[0];
        assert_eq!((a.min, a.max, a.sum, a.count), (1.0, 2.0, 3.0, 2));
    }

    #[test]
    fn sparse_series_keep_their_period_stamps() {
        // Severity-style series record on change only; stamps survive.
        let mut st = store();
        let id = st.series_id("obs_sev");
        st.record(id, 7, 1.0);
        st.record(id, 90, 2.0);
        let q = st.query("obs_sev", 0, 100, 1).unwrap();
        let periods: Vec<u64> = q.points.iter().map(|a| a.start).collect();
        assert_eq!(periods, vec![7, 90]);
        // And the /16 tier buckets them by true period, not arrival order.
        let q = st.query("obs_sev", 0, 100, 16).unwrap();
        assert_eq!(q.points.iter().map(|a| a.start).collect::<Vec<_>>(), vec![0, 80]);
    }

    #[test]
    fn record_batch_equals_per_sample_record() {
        // Same stream through record() and record_batch() — spanning
        // bucket closures, a non-finite sample, and a partial tail batch
        // — must leave byte-identical tiers and counters.
        let mut one = store();
        let mut batch = store();
        let a = one.series_id("obs_x");
        let b = batch.series_id("obs_x");
        let vals: Vec<f64> = (0..40).map(|p| if p == 21 { f64::NAN } else { p as f64 * 0.5 }).collect();
        for (p, &v) in vals.iter().enumerate() {
            one.record(a, p as u64, v);
        }
        for (i, chunk) in vals.chunks(16).enumerate() {
            batch.record_batch(b, i as u64 * 16, chunk);
        }
        assert_eq!(one.samples_total(), batch.samples_total());
        assert_eq!(one.last(a), batch.last(b));
        for step in [1, 16, 256] {
            let qa = one.query("obs_x", 0, 100, step).unwrap().to_json(0, 100, step);
            let qb = batch.query("obs_x", 0, 100, step).unwrap().to_json(0, 100, step);
            assert_eq!(qa, qb, "step {step}");
        }
    }

    #[test]
    fn query_json_is_byte_stable() {
        let mut st = store();
        let id = st.series_id("obs_x");
        st.record(id, 0, 1.5);
        st.record(id, 1, 0.25);
        let q = st.query("obs_x", 0, 1, 1).unwrap();
        let json = q.to_json(0, 1, 1);
        assert_eq!(
            json,
            "{\"metric\":\"obs_x\",\"start\":0,\"end\":1,\"step\":1,\"tier\":\"raw\",\
             \"resolution\":1,\"points\":[\
             {\"period\":0,\"min\":1.5,\"max\":1.5,\"sum\":1.5,\"count\":1,\"last\":1.5},\
             {\"period\":1,\"min\":0.25,\"max\":0.25,\"sum\":0.25,\"count\":1,\"last\":0.25}]}\n"
        );
        assert_eq!(json, st.query("obs_x", 0, 1, 1).unwrap().to_json(0, 1, 1));
    }
}
