//! Geometry of the simulated last-level cache.

use serde::{Deserialize, Serialize};

/// Cache geometry. The default mirrors the paper's evaluation machine
/// (Table 1): a 25 MB, 20-way set-associative LLC with 64-byte lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Cache-line size in bytes; must be a power of two.
    pub line_bytes: u32,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self { size_bytes: 25 * 1024 * 1024, ways: 20, line_bytes: 64 }
    }
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.ways as u64 * self.line_bytes as u64)
    }

    /// Total number of lines the cache can hold.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }

    /// Capacity of a single way, in bytes.
    pub fn way_bytes(&self) -> u64 {
        self.size_bytes / self.ways as u64
    }

    /// Bitmask with all ways allowed.
    pub fn full_mask(&self) -> u32 {
        if self.ways == 32 { u32::MAX } else { (1u32 << self.ways) - 1 }
    }

    /// Checks internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.ways == 0 || self.ways > 32 {
            return Err(format!("ways must be in 1..=32, got {}", self.ways));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(format!("line size must be a power of two, got {}", self.line_bytes));
        }
        let denom = self.ways as u64 * self.line_bytes as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(format!(
                "size {} not divisible by ways*line ({} bytes)",
                self.size_bytes, denom
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1_geometry() {
        let c = CacheConfig::default();
        c.validate().unwrap();
        assert_eq!(c.sets(), 20480);
        assert_eq!(c.lines(), 409_600);
        assert_eq!(c.way_bytes(), 25 * 1024 * 1024 / 20);
        assert_eq!(c.full_mask(), 0xF_FFFF);
    }

    #[test]
    fn rejects_zero_ways() {
        let c = CacheConfig { ways: 0, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_non_pow2_line() {
        let c = CacheConfig { line_bytes: 48, ..Default::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn rejects_indivisible_size() {
        let c = CacheConfig { size_bytes: 1000, ways: 3, line_bytes: 64 };
        assert!(c.validate().is_err());
    }

    #[test]
    fn full_mask_32_ways() {
        let c = CacheConfig { size_bytes: 64 * 32 * 4, ways: 32, line_bytes: 64 };
        assert_eq!(c.full_mask(), u32::MAX);
    }
}
