//! Miss-ratio-curve (MRC) extraction.
//!
//! Two independent routes to a curve of miss ratio vs. allocated ways:
//!
//! * **Analytic** — a single stack-distance pass gives the fully-associative
//!   LRU miss ratio at *every* capacity at once ([`from_stack_distances`]).
//! * **Empirical** — re-simulate the trace through [`SetAssocCache`] once per
//!   way count ([`by_simulation`]), capturing set-conflict effects and the
//!   exact CAT insertion semantics.
//!
//! The app model (`dicer-appmodel`) uses parametric curves for speed but is
//! validated against these extractors in integration tests.

use crate::{
    cache::{ReplacementKind, SetAssocCache},
    config::CacheConfig,
    stackdist::StackDistanceProfiler,
};
use serde::{Deserialize, Serialize};

/// Miss ratio per way allocation: `ratios[w - 1]` is the miss ratio with
/// `w` ways.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissRatioCurve {
    ratios: Vec<f64>,
}

impl MissRatioCurve {
    /// Builds a curve from per-way ratios (`ratios[0]` = 1 way). Enforces
    /// values in `[0, 1]`.
    pub fn new(ratios: Vec<f64>) -> Self {
        assert!(!ratios.is_empty(), "curve needs at least one point");
        assert!(
            ratios.iter().all(|r| (0.0..=1.0).contains(r)),
            "miss ratios must lie in [0, 1]"
        );
        Self { ratios }
    }

    /// Number of way points tabulated.
    pub fn ways(&self) -> u32 {
        self.ratios.len() as u32
    }

    /// Miss ratio at an integral way count (clamped to the tabulated range).
    pub fn at(&self, ways: u32) -> f64 {
        let idx = (ways.max(1) as usize - 1).min(self.ratios.len() - 1);
        self.ratios[idx]
    }

    /// Miss ratio at a fractional way count, by linear interpolation. Values
    /// below 1 way extrapolate towards the 1-way ratio; above the tabulated
    /// maximum they clamp.
    pub fn at_fractional(&self, ways: f64) -> f64 {
        let w = ways.max(1.0);
        let lo = (w.floor() as usize - 1).min(self.ratios.len() - 1);
        let hi = (lo + 1).min(self.ratios.len() - 1);
        let frac = (w - w.floor()).clamp(0.0, 1.0);
        self.ratios[lo] * (1.0 - frac) + self.ratios[hi] * frac
    }

    /// Raw per-way ratios.
    pub fn ratios(&self) -> &[f64] {
        &self.ratios
    }

    /// Whether the curve is monotonically non-increasing (more cache never
    /// hurts under LRU inclusion).
    pub fn is_monotone(&self) -> bool {
        self.ratios.windows(2).all(|w| w[1] <= w[0] + 1e-9)
    }
}

/// Builds an MRC from a stack-distance profile for a cache with the given
/// geometry: way `w` corresponds to a fully-associative capacity of
/// `w × sets` lines.
pub fn from_stack_distances(profile: &StackDistanceProfiler, cfg: &CacheConfig) -> MissRatioCurve {
    let sets = cfg.sets();
    let ratios = (1..=cfg.ways).map(|w| profile.miss_ratio_at(w as u64 * sets)).collect();
    MissRatioCurve::new(ratios)
}

/// Builds an MRC by exact simulation: the trace is replayed once per way
/// count with the accessor confined to the lowest `w` ways.
pub fn by_simulation(trace: &[u64], cfg: &CacheConfig, replacement: ReplacementKind) -> MissRatioCurve {
    let ratios = (1..=cfg.ways)
        .map(|w| {
            let mut cache = SetAssocCache::new(*cfg, replacement);
            let mask = if w == 32 { u32::MAX } else { (1u32 << w) - 1 };
            for &line in trace {
                cache.access_line(line, 0, mask);
            }
            cache.miss_ratio(0)
        })
        .collect();
    MissRatioCurve::new(ratios)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceGen;

    fn small_cfg() -> CacheConfig {
        // 64 sets x 8 ways.
        CacheConfig { size_bytes: 64 * 8 * 64, ways: 8, line_bytes: 64 }
    }

    #[test]
    fn curve_accessors() {
        let c = MissRatioCurve::new(vec![0.9, 0.5, 0.1]);
        assert_eq!(c.ways(), 3);
        assert_eq!(c.at(1), 0.9);
        assert_eq!(c.at(3), 0.1);
        assert_eq!(c.at(10), 0.1, "clamps above range");
        assert!((c.at_fractional(1.5) - 0.7).abs() < 1e-12);
        assert_eq!(c.at_fractional(0.2), 0.9, "clamps below 1 way");
    }

    #[test]
    #[should_panic]
    fn curve_rejects_out_of_range() {
        MissRatioCurve::new(vec![1.5]);
    }

    #[test]
    fn streaming_trace_has_flat_high_mrc() {
        let cfg = small_cfg();
        let trace = TraceGen::Stream.generate(50_000);
        let mrc = by_simulation(&trace, &cfg, ReplacementKind::Lru);
        // Streaming never reuses: miss ratio 1.0 regardless of ways.
        for w in 1..=8 {
            assert!(mrc.at(w) > 0.99, "way {w}: {}", mrc.at(w));
        }
    }

    #[test]
    fn working_set_mrc_drops_once_it_fits() {
        let cfg = small_cfg(); // way = 64 lines
        // Working set of 200 lines: fits at >= 4 ways (256 lines).
        let trace = TraceGen::WorkingSet { lines: 200, seed: 9 }.generate(200_000);
        let mrc = by_simulation(&trace, &cfg, ReplacementKind::Lru);
        assert!(mrc.at(1) > 0.5, "1 way thrashes: {}", mrc.at(1));
        assert!(mrc.at(8) < 0.05, "8 ways fit: {}", mrc.at(8));
        assert!(mrc.at(8) < mrc.at(2));
    }

    #[test]
    fn analytic_and_simulated_mrc_agree_for_uniform_reuse() {
        let cfg = small_cfg();
        let trace = TraceGen::WorkingSet { lines: 150, seed: 5 }.generate(100_000);
        let mut prof = StackDistanceProfiler::new();
        prof.access_all(trace.iter().copied());
        let analytic = from_stack_distances(&prof, &cfg);
        let simulated = by_simulation(&trace, &cfg, ReplacementKind::Lru);
        for w in 1..=8u32 {
            let d = (analytic.at(w) - simulated.at(w)).abs();
            assert!(d < 0.12, "way {w}: analytic {} vs sim {}", analytic.at(w), simulated.at(w));
        }
    }

    #[test]
    fn simulated_mrc_is_monotone_for_lru_uniform() {
        let cfg = small_cfg();
        let trace = TraceGen::WorkingSet { lines: 300, seed: 11 }.generate(80_000);
        let mrc = by_simulation(&trace, &cfg, ReplacementKind::Lru);
        assert!(mrc.is_monotone(), "{:?}", mrc.ratios());
    }

    #[test]
    fn zipf_mrc_has_diminishing_returns() {
        let cfg = small_cfg();
        let trace = TraceGen::Zipf { lines: 2000, s: 1.0, seed: 2 }.generate(100_000);
        let mrc = by_simulation(&trace, &cfg, ReplacementKind::Lru);
        let gain_early = mrc.at(1) - mrc.at(4);
        let gain_late = mrc.at(5) - mrc.at(8);
        assert!(gain_early > gain_late, "early {gain_early} vs late {gain_late}");
    }
}
