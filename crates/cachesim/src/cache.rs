//! The set-associative cache with CAT way masks and CMT/MBM counters.

use crate::{config::CacheConfig, Rmid};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was found (in any way — CAT masks only constrain
    /// insertion, not lookup).
    pub hit: bool,
    /// RMID whose line was evicted to make room, if an eviction happened.
    pub evicted: Option<Rmid>,
}

/// Replacement policy used to pick a victim among the ways allowed by the
/// accessor's CAT mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementKind {
    /// True least-recently-used via global access stamps.
    #[default]
    Lru,
    /// Not-recently-used: one reference bit per line, cleared lazily when
    /// every allowed way has been referenced.
    Nru,
    /// Uniform random victim among allowed ways (deterministic, seeded).
    Random,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    rmid: Rmid,
    valid: bool,
    stamp: u64,
    referenced: bool,
}

const INVALID: Line = Line { tag: 0, rmid: 0, valid: false, stamp: 0, referenced: false };

/// A way-partitioned set-associative cache.
///
/// Lines are tagged with the RMID that inserted them; per-RMID occupancy
/// (CMT) and miss traffic (MBM) counters are maintained incrementally.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    cfg: CacheConfig,
    sets: u64,
    ways: usize,
    /// `sets * ways` lines, row-major by set.
    lines: Vec<Line>,
    clock: u64,
    replacement: ReplacementKind,
    rng: ChaCha8Rng,
    /// CMT: lines currently held per RMID.
    occupancy: HashMap<Rmid, u64>,
    /// MBM: misses per RMID since construction (each miss = one line fill).
    misses: HashMap<Rmid, u64>,
    /// Total accesses per RMID.
    accesses: HashMap<Rmid, u64>,
}

impl SetAssocCache {
    /// Creates an empty cache; panics on invalid geometry.
    pub fn new(cfg: CacheConfig, replacement: ReplacementKind) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CacheConfig: {e}");
        }
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        Self {
            cfg,
            sets,
            ways,
            lines: vec![INVALID; (sets as usize) * ways],
            clock: 0,
            replacement,
            rng: ChaCha8Rng::seed_from_u64(0x000D_1CEF_u64),
            occupancy: HashMap::new(),
            misses: HashMap::new(),
            accesses: HashMap::new(),
        }
    }

    /// Cache geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, line_addr: u64) -> u64 {
        line_addr % self.sets
    }

    #[inline]
    fn tag_of(&self, line_addr: u64) -> u64 {
        line_addr / self.sets
    }

    /// Accesses a *byte* address on behalf of `rmid`, restricted to insert
    /// into ways set in `mask`.
    pub fn access(&mut self, addr: u64, rmid: Rmid, mask: u32) -> AccessOutcome {
        self.access_line(addr >> self.cfg.line_bytes.trailing_zeros(), rmid, mask)
    }

    /// Accesses a *line* address (byte address already divided by the line
    /// size) on behalf of `rmid` with CAT mask `mask`.
    pub fn access_line(&mut self, line_addr: u64, rmid: Rmid, mask: u32) -> AccessOutcome {
        let mask = mask & self.cfg.full_mask();
        assert!(mask != 0, "CAT mask must allow at least one way");
        self.clock += 1;
        *self.accesses.entry(rmid).or_insert(0) += 1;

        let set = self.set_of(line_addr) as usize;
        let tag = self.tag_of(line_addr);
        let base = set * self.ways;

        // Lookup: hits are allowed in ANY way, regardless of mask.
        for w in 0..self.ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                line.referenced = true;
                return AccessOutcome { hit: true, evicted: None };
            }
        }

        // Miss: fill into an allowed way.
        *self.misses.entry(rmid).or_insert(0) += 1;
        let victim_way = self.pick_victim(base, mask);
        let victim = &mut self.lines[base + victim_way];
        let evicted = if victim.valid {
            let prev = victim.rmid;
            if let Some(o) = self.occupancy.get_mut(&prev) {
                *o = o.saturating_sub(1);
            }
            Some(prev)
        } else {
            None
        };
        *victim = Line { tag, rmid, valid: true, stamp: self.clock, referenced: true };
        *self.occupancy.entry(rmid).or_insert(0) += 1;
        AccessOutcome { hit: false, evicted }
    }

    fn pick_victim(&mut self, base: usize, mask: u32) -> usize {
        // Prefer an invalid allowed way.
        for w in 0..self.ways {
            if mask & (1 << w) != 0 && !self.lines[base + w].valid {
                return w;
            }
        }
        match self.replacement {
            ReplacementKind::Lru => {
                let mut best = usize::MAX;
                let mut best_stamp = u64::MAX;
                for w in 0..self.ways {
                    if mask & (1 << w) != 0 {
                        let s = self.lines[base + w].stamp;
                        if s < best_stamp {
                            best_stamp = s;
                            best = w;
                        }
                    }
                }
                best
            }
            ReplacementKind::Nru => {
                // First pass: any allowed way with the reference bit clear.
                for w in 0..self.ways {
                    if mask & (1 << w) != 0 && !self.lines[base + w].referenced {
                        return w;
                    }
                }
                // All referenced: clear bits of allowed ways, evict the first.
                let mut first = usize::MAX;
                for w in 0..self.ways {
                    if mask & (1 << w) != 0 {
                        self.lines[base + w].referenced = false;
                        if first == usize::MAX {
                            first = w;
                        }
                    }
                }
                first
            }
            ReplacementKind::Random => {
                let allowed: Vec<usize> =
                    (0..self.ways).filter(|w| mask & (1 << w) != 0).collect();
                allowed[self.rng.gen_range(0..allowed.len())]
            }
        }
    }

    /// CMT read: bytes currently occupied by `rmid`.
    pub fn occupancy_bytes(&self, rmid: Rmid) -> u64 {
        self.occupancy.get(&rmid).copied().unwrap_or(0) * self.cfg.line_bytes as u64
    }

    /// MBM read: total bytes fetched from memory by `rmid` since
    /// construction (misses × line size).
    pub fn traffic_bytes(&self, rmid: Rmid) -> u64 {
        self.misses.get(&rmid).copied().unwrap_or(0) * self.cfg.line_bytes as u64
    }

    /// Misses recorded for `rmid`.
    pub fn misses(&self, rmid: Rmid) -> u64 {
        self.misses.get(&rmid).copied().unwrap_or(0)
    }

    /// Accesses recorded for `rmid`.
    pub fn accesses(&self, rmid: Rmid) -> u64 {
        self.accesses.get(&rmid).copied().unwrap_or(0)
    }

    /// Miss ratio observed for `rmid` (0 if it never accessed the cache).
    pub fn miss_ratio(&self, rmid: Rmid) -> f64 {
        let a = self.accesses(rmid);
        if a == 0 {
            0.0
        } else {
            self.misses(rmid) as f64 / a as f64
        }
    }

    /// Clears the per-RMID miss/access counters (occupancy and contents are
    /// left untouched), as a monitoring-period boundary would.
    pub fn reset_event_counters(&mut self) {
        self.misses.clear();
        self.accesses.clear();
    }

    /// Total valid lines across all RMIDs (for invariant checking).
    pub fn total_valid_lines(&self) -> u64 {
        self.lines.iter().filter(|l| l.valid).count() as u64
    }

    /// Sum of per-RMID occupancy counters (must equal
    /// [`Self::total_valid_lines`]).
    pub fn total_occupancy_lines(&self) -> u64 {
        self.occupancy.values().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 4 ways x 64B = 1 KiB
        let cfg = CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 64 };
        SetAssocCache::new(cfg, ReplacementKind::Lru)
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        let full = c.config().full_mask();
        assert!(!c.access_line(0, 1, full).hit);
        assert!(c.access_line(0, 1, full).hit);
        assert_eq!(c.misses(1), 1);
        assert_eq!(c.accesses(1), 2);
    }

    #[test]
    fn lru_evicts_oldest_within_mask() {
        let mut c = tiny();
        let full = c.config().full_mask();
        // Fill set 0 (addresses congruent mod 4): lines 0,4,8,12.
        for l in [0u64, 4, 8, 12] {
            c.access_line(l, 1, full);
        }
        // Touch 0 to refresh it; insert a 5th line -> victim should be 4.
        c.access_line(0, 1, full);
        c.access_line(16, 1, full);
        assert!(c.access_line(0, 1, full).hit, "refreshed line survived");
        assert!(!c.access_line(4, 1, full).hit, "LRU line was evicted");
    }

    #[test]
    fn mask_restricts_insertion_not_lookup() {
        let mut c = tiny();
        // RMID 1 inserts into way 0 only.
        c.access_line(0, 1, 0b0001);
        // RMID 2, masked to ways 2-3, still HITS on the line in way 0.
        assert!(c.access_line(0, 2, 0b1100).hit);
    }

    #[test]
    fn masked_rmid_cannot_evict_outside_mask() {
        let mut c = tiny();
        // RMID 1 fills ways 0-3 of set 0 using the full mask.
        for l in [0u64, 4, 8, 12] {
            c.access_line(l, 1, 0b1111);
        }
        // RMID 2 restricted to way 3 thrashes through many lines of set 0.
        for l in (16..16 + 40).step_by(4) {
            c.access_line(l as u64, 2, 0b1000);
        }
        // RMID 2 can hold at most 1 line (way 3 of its only set touched).
        assert!(c.occupancy_bytes(2) <= 64);
        // RMID 1 lost at most the line that lived in way 3.
        assert!(c.occupancy_bytes(1) >= 3 * 64);
    }

    #[test]
    fn repartitioning_does_not_flush() {
        let mut c = tiny();
        c.access_line(0, 1, 0b0011);
        // "Re-partition": RMID 1 now owns only way 2; its old line still hits.
        assert!(c.access_line(0, 1, 0b0100).hit);
    }

    #[test]
    fn occupancy_tracks_insertions_and_evictions() {
        let mut c = tiny();
        let full = c.config().full_mask();
        for l in 0..16u64 {
            c.access_line(l, 7, full);
        }
        assert_eq!(c.occupancy_bytes(7), 1024); // cache fully owned
        // A different RMID steals lines; occupancy must shift.
        for l in 16..24u64 {
            c.access_line(l, 9, full);
        }
        assert_eq!(c.occupancy_bytes(7) + c.occupancy_bytes(9), 1024);
        assert_eq!(c.occupancy_bytes(9), 8 * 64);
    }

    #[test]
    fn occupancy_invariant_holds_under_random_traffic() {
        use rand::RngCore;
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        for kind in [ReplacementKind::Lru, ReplacementKind::Nru, ReplacementKind::Random] {
            let cfg = CacheConfig { size_bytes: 2048, ways: 8, line_bytes: 64 };
            let mut c = SetAssocCache::new(cfg, kind);
            for _ in 0..5000 {
                let addr = rng.next_u64() % 512;
                let rmid = (rng.next_u32() % 4) as Rmid;
                let mask = 1u32 << (rng.next_u32() % 8) | 1;
                c.access_line(addr, rmid, mask);
                assert_eq!(c.total_valid_lines(), c.total_occupancy_lines());
            }
        }
    }

    #[test]
    fn traffic_counts_fill_bytes() {
        let mut c = tiny();
        let full = c.config().full_mask();
        for l in 0..10u64 {
            c.access_line(l, 3, full);
        }
        assert_eq!(c.traffic_bytes(3), 10 * 64);
        // Re-touching is free.
        for l in 0..10u64 {
            c.access_line(l, 3, full);
        }
        assert_eq!(c.traffic_bytes(3), 10 * 64);
    }

    #[test]
    fn miss_ratio_streaming_is_one() {
        let mut c = tiny();
        let full = c.config().full_mask();
        for l in 0..1000u64 {
            c.access_line(l, 5, full);
        }
        assert_eq!(c.miss_ratio(5), 1.0);
    }

    #[test]
    fn reset_event_counters_keeps_contents() {
        let mut c = tiny();
        let full = c.config().full_mask();
        c.access_line(0, 1, full);
        c.reset_event_counters();
        assert_eq!(c.misses(1), 0);
        assert!(c.access_line(0, 1, full).hit, "contents survived counter reset");
    }

    #[test]
    fn nru_prefers_unreferenced_victims() {
        let cfg = CacheConfig { size_bytes: 256, ways: 4, line_bytes: 64 }; // 1 set
        let mut c = SetAssocCache::new(cfg, ReplacementKind::Nru);
        for l in 0..4u64 {
            c.access_line(l, 1, 0b1111);
        }
        // All referenced; next miss clears bits and evicts way 0 (line 0).
        c.access_line(4, 1, 0b1111);
        assert!(!c.access_line(0, 1, 0b1111).hit);
    }

    #[test]
    fn random_replacement_stays_within_mask() {
        let cfg = CacheConfig { size_bytes: 256, ways: 4, line_bytes: 64 }; // 1 set
        let mut c = SetAssocCache::new(cfg, ReplacementKind::Random);
        // Owner fills everything.
        for l in 0..4u64 {
            c.access_line(l, 1, 0b1111);
        }
        // Intruder restricted to way 1 cannot destroy more than one line.
        for l in 10..60u64 {
            c.access_line(l, 2, 0b0010);
        }
        assert!(c.occupancy_bytes(1) >= 3 * 64);
    }

    #[test]
    #[should_panic]
    fn empty_mask_panics() {
        let mut c = tiny();
        c.access_line(0, 1, 0);
    }

    #[test]
    fn working_set_fits_after_warmup() {
        // Working set of 8 lines in a 16-line cache: zero misses after warmup.
        let cfg = CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 64 };
        let mut c = SetAssocCache::new(cfg, ReplacementKind::Lru);
        let full = c.config().full_mask();
        for _ in 0..3 {
            for l in 0..8u64 {
                c.access_line(l, 1, full);
            }
        }
        assert_eq!(c.misses(1), 8, "only cold misses");
    }
}
