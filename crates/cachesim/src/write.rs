//! Write handling: dirty lines and writeback traffic.
//!
//! Real MBM counters include the write-back traffic of evicted dirty
//! lines, so a store-heavy workload loads the memory link roughly twice as
//! hard per miss as a load-only one. [`WriteBackCache`] wraps
//! [`crate::SetAssocCache`]-style state with a dirty bit per line and a per-RMID
//! writeback counter.

use crate::{config::CacheConfig, Rmid};
use std::collections::HashMap;

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Load: fills a clean line on miss.
    Read,
    /// Store: marks the line dirty (write-allocate policy).
    Write,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    rmid: Rmid,
    valid: bool,
    dirty: bool,
    stamp: u64,
}

const INVALID: Line = Line { tag: 0, rmid: 0, valid: false, dirty: false, stamp: 0 };

/// A write-allocate, write-back, way-partitioned cache with LRU
/// replacement and per-RMID fill/writeback accounting.
#[derive(Debug, Clone)]
pub struct WriteBackCache {
    cfg: CacheConfig,
    sets: u64,
    ways: usize,
    lines: Vec<Line>,
    clock: u64,
    fills: HashMap<Rmid, u64>,
    writebacks: HashMap<Rmid, u64>,
    accesses: HashMap<Rmid, u64>,
}

impl WriteBackCache {
    /// Creates an empty cache; panics on invalid geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid CacheConfig: {e}");
        }
        let sets = cfg.sets();
        let ways = cfg.ways as usize;
        Self {
            cfg,
            sets,
            ways,
            lines: vec![INVALID; sets as usize * ways],
            clock: 0,
            fills: HashMap::new(),
            writebacks: HashMap::new(),
            accesses: HashMap::new(),
        }
    }

    /// Geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Accesses a line address. On a miss the victim is the LRU line among
    /// the ways allowed by `mask`; if it is dirty, a writeback is charged
    /// to the *victim's* RMID (the owner wrote the data).
    pub fn access_line(&mut self, line_addr: u64, rmid: Rmid, mask: u32, kind: AccessKind) -> bool {
        let mask = mask & self.cfg.full_mask();
        assert!(mask != 0, "CAT mask must allow at least one way");
        self.clock += 1;
        *self.accesses.entry(rmid).or_insert(0) += 1;

        let set = (line_addr % self.sets) as usize;
        let tag = line_addr / self.sets;
        let base = set * self.ways;

        for w in 0..self.ways {
            let line = &mut self.lines[base + w];
            if line.valid && line.tag == tag {
                line.stamp = self.clock;
                if kind == AccessKind::Write {
                    line.dirty = true;
                }
                return true;
            }
        }

        // Miss: fill. Victim = invalid way, else LRU among allowed ways.
        *self.fills.entry(rmid).or_insert(0) += 1;
        let mut victim = usize::MAX;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            if mask & (1 << w) == 0 {
                continue;
            }
            let line = &self.lines[base + w];
            if !line.valid {
                victim = w;
                break;
            }
            if line.stamp < best_stamp {
                best_stamp = line.stamp;
                victim = w;
            }
        }
        let v = &mut self.lines[base + victim];
        if v.valid && v.dirty {
            *self.writebacks.entry(v.rmid).or_insert(0) += 1;
        }
        *v = Line { tag, rmid, valid: true, dirty: kind == AccessKind::Write, stamp: self.clock };
        false
    }

    /// Line fills charged to `rmid`.
    pub fn fills(&self, rmid: Rmid) -> u64 {
        self.fills.get(&rmid).copied().unwrap_or(0)
    }

    /// Writebacks charged to `rmid`.
    pub fn writebacks(&self, rmid: Rmid) -> u64 {
        self.writebacks.get(&rmid).copied().unwrap_or(0)
    }

    /// Total memory traffic for `rmid` in bytes: fills + writebacks, which
    /// is what MBM's "total" counter reports.
    pub fn traffic_bytes(&self, rmid: Rmid) -> u64 {
        (self.fills(rmid) + self.writebacks(rmid)) * self.cfg.line_bytes as u64
    }

    /// Flushes every dirty line, charging writebacks to their owners (what
    /// `wbinvd` or a drain at program exit would do).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            if line.valid && line.dirty {
                *self.writebacks.entry(line.rmid).or_insert(0) += 1;
                line.dirty = false;
            }
        }
    }

    /// Miss ratio for `rmid`.
    pub fn miss_ratio(&self, rmid: Rmid) -> f64 {
        let a = self.accesses.get(&rmid).copied().unwrap_or(0);
        if a == 0 {
            0.0
        } else {
            self.fills(rmid) as f64 / a as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> WriteBackCache {
        // 4 sets x 4 ways.
        WriteBackCache::new(CacheConfig { size_bytes: 1024, ways: 4, line_bytes: 64 })
    }

    const FULL: u32 = 0b1111;

    #[test]
    fn read_only_traffic_has_no_writebacks() {
        let mut c = tiny();
        for l in 0..64u64 {
            c.access_line(l, 1, FULL, AccessKind::Read);
        }
        assert_eq!(c.writebacks(1), 0);
        assert_eq!(c.fills(1), 64);
    }

    #[test]
    fn dirty_eviction_charges_writeback_to_owner() {
        let mut c = tiny();
        // RMID 1 dirties line 0 (set 0).
        c.access_line(0, 1, FULL, AccessKind::Write);
        // RMID 2 streams through set 0 until line 0 is evicted.
        for l in (4..24u64).step_by(4) {
            c.access_line(l, 2, FULL, AccessKind::Read);
        }
        assert_eq!(c.writebacks(1), 1, "owner pays for the writeback");
        assert_eq!(c.writebacks(2), 0);
    }

    #[test]
    fn write_hit_marks_dirty_without_fill() {
        let mut c = tiny();
        c.access_line(0, 1, FULL, AccessKind::Read);
        assert!(c.access_line(0, 1, FULL, AccessKind::Write), "write hit");
        assert_eq!(c.fills(1), 1);
        c.flush();
        assert_eq!(c.writebacks(1), 1, "the write-hit dirtied the line");
    }

    #[test]
    fn store_heavy_stream_doubles_traffic() {
        let mut reads = tiny();
        let mut writes = tiny();
        for l in 0..1000u64 {
            reads.access_line(l, 1, FULL, AccessKind::Read);
            writes.access_line(l, 1, FULL, AccessKind::Write);
        }
        reads.flush();
        writes.flush();
        let rd = reads.traffic_bytes(1) as f64;
        let wr = writes.traffic_bytes(1) as f64;
        assert!(
            wr > rd * 1.9,
            "write stream should ~double the traffic: {wr} vs {rd}"
        );
    }

    #[test]
    fn flush_is_idempotent() {
        let mut c = tiny();
        c.access_line(0, 1, FULL, AccessKind::Write);
        c.flush();
        c.flush();
        assert_eq!(c.writebacks(1), 1);
    }

    #[test]
    fn mask_respected_for_dirty_victims() {
        let mut c = tiny();
        // RMID 1 dirties a line in way 0 only.
        c.access_line(0, 1, 0b0001, AccessKind::Write);
        // RMID 2 confined to ways 2-3 cannot evict it.
        for l in (4..40u64).step_by(4) {
            c.access_line(l, 2, 0b1100, AccessKind::Read);
        }
        assert_eq!(c.writebacks(1), 0, "line in way 0 was protected by the mask");
    }

    #[test]
    fn miss_ratio_counts_fills_over_accesses() {
        let mut c = tiny();
        c.access_line(0, 1, FULL, AccessKind::Read);
        c.access_line(0, 1, FULL, AccessKind::Write);
        assert!((c.miss_ratio(1) - 0.5).abs() < 1e-12);
    }
}
