//! Trace-driven, way-partitioned, set-associative LLC simulator.
//!
//! This crate models the hardware substrate DICER actuates: an Intel-style
//! last-level cache with **Cache Allocation Technology (CAT)** semantics,
//! **Cache Monitoring Technology (CMT)** occupancy counters and **Memory
//! Bandwidth Monitoring (MBM)** traffic counters.
//!
//! CAT semantics faithfully reproduced (paper §3.3):
//!
//! * A class of service is a *way bitmask*. The mask restricts where a
//!   request may **insert** (and thus whom it may victimise) — lookups hit
//!   in *any* way.
//! * Re-partitioning does not flush anything: lines outside the new mask
//!   stay valid until naturally evicted by future misses.
//!
//! Components:
//!
//! * [`SetAssocCache`] — the cache proper, with pluggable replacement
//!   ([`ReplacementKind`]), per-RMID occupancy and miss/traffic counters.
//! * [`StackDistanceProfiler`] — exact LRU reuse-distance histograms.
//! * [`mrc`] — miss-ratio-curve extraction, both analytic (from stack
//!   distances) and empirical (by re-simulating at every way count).
//! * [`trace`] — deterministic synthetic address-trace generators used to
//!   stand in for SPEC/PARSEC memory behaviour.
//! * [`WriteBackCache`] — a write-allocate/write-back variant with dirty
//!   bits and per-RMID writeback accounting (MBM's "total" counter).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod config;
pub mod mrc;
pub mod stackdist;
pub mod trace;
pub mod write;

pub use cache::{AccessOutcome, ReplacementKind, SetAssocCache};
pub use config::CacheConfig;
pub use mrc::MissRatioCurve;
pub use stackdist::StackDistanceProfiler;
pub use trace::TraceGen;
pub use write::{AccessKind, WriteBackCache};

/// Resource monitoring ID tagging cache lines with their owner, mirroring
/// Intel RDT RMIDs.
pub type Rmid = u16;
