//! Deterministic synthetic address-trace generators.
//!
//! Each generator produces a stream of *line* addresses that reproduces a
//! memory-behaviour archetype found in SPEC CPU 2006 / PARSEC 3.0:
//!
//! * [`TraceGen::Stream`] — pure streaming (lbm, libquantum): never reuses.
//! * [`TraceGen::Strided`] — regular stride over a large footprint.
//! * [`TraceGen::WorkingSet`] — uniform reuse inside a fixed working set
//!   (cache-friendly codes).
//! * [`TraceGen::Zipf`] — skewed reuse over a large footprint
//!   (cache-sensitive pointer codes: mcf, omnetpp).
//! * [`TraceGen::Phased`] — concatenation of sub-traces, modelling program
//!   phases (Sherwood et al., reference 40 of the paper).
//!
//! All randomness is ChaCha8-seeded: the same generator yields the same
//! trace on every run and platform.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A synthetic trace description. Call [`TraceGen::generate`] to materialise
/// `n` line addresses.
#[derive(Debug, Clone)]
pub enum TraceGen {
    /// Monotone streaming: address `i` at step `i`, no reuse.
    Stream,
    /// Strided scan with the given stride (in lines) over `footprint` lines,
    /// wrapping around.
    Strided {
        /// Stride between consecutive accesses, in lines.
        stride: u64,
        /// Total distinct lines, after which the scan wraps.
        footprint: u64,
    },
    /// Uniform random accesses within a working set of `lines` lines.
    WorkingSet {
        /// Working-set size in lines.
        lines: u64,
        /// RNG seed.
        seed: u64,
    },
    /// Zipf-distributed accesses over `lines` lines with exponent `s`.
    Zipf {
        /// Footprint in lines.
        lines: u64,
        /// Skew exponent (`s = 0` is uniform; larger = more skewed).
        s: f64,
        /// RNG seed.
        seed: u64,
    },
    /// Concatenated phases, each `(gen, n_accesses)`.
    Phased(Vec<(TraceGen, u64)>),
}

impl TraceGen {
    /// Materialises `n` line addresses.
    pub fn generate(&self, n: u64) -> Vec<u64> {
        let mut out = Vec::with_capacity(n as usize);
        self.generate_into(n, &mut out);
        out
    }

    fn generate_into(&self, n: u64, out: &mut Vec<u64>) {
        match self {
            TraceGen::Stream => {
                let start = out.len() as u64;
                out.extend((start..start + n).map(|i| i.wrapping_mul(1)));
            }
            TraceGen::Strided { stride, footprint } => {
                assert!(*footprint > 0 && *stride > 0, "stride/footprint must be positive");
                let mut pos = 0u64;
                for _ in 0..n {
                    out.push(pos);
                    pos = (pos + stride) % footprint;
                }
            }
            TraceGen::WorkingSet { lines, seed } => {
                assert!(*lines > 0, "working set must be non-empty");
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                for _ in 0..n {
                    out.push(rng.gen_range(0..*lines));
                }
            }
            TraceGen::Zipf { lines, s, seed } => {
                assert!(*lines > 0, "footprint must be non-empty");
                let mut rng = ChaCha8Rng::seed_from_u64(*seed);
                let zipf = ZipfSampler::new(*lines, *s);
                for _ in 0..n {
                    out.push(zipf.sample(&mut rng));
                }
            }
            TraceGen::Phased(phases) => {
                assert!(!phases.is_empty(), "phased trace needs at least one phase");
                let total: u64 = phases.iter().map(|(_, c)| *c).sum();
                assert!(total > 0, "phased trace needs accesses");
                for (g, count) in phases {
                    // Scale each phase so the whole trace has n accesses.
                    let take = (n as u128 * *count as u128 / total as u128) as u64;
                    g.generate_into(take, out);
                }
                // Rounding remainder goes to the last phase.
                let missing = n as usize - out.len().min(n as usize);
                if missing > 0 {
                    phases.last().unwrap().0.generate_into(missing as u64, out);
                }
                out.truncate(n as usize);
            }
        }
    }
}

/// Inverse-CDF Zipf sampler via binary search on precomputed cumulative
/// weights (footprints used here are small enough to tabulate).
struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: u64, s: f64) -> Self {
        assert!(n > 0);
        assert!(s >= 0.0, "zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let norm = acc;
        for v in &mut cdf {
            *v /= norm;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut impl Rng) -> u64 {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|p| p.partial_cmp(&u).unwrap()) {
            Ok(i) | Err(i) => (i as u64).min(self.cdf.len() as u64 - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn stream_never_reuses() {
        let t = TraceGen::Stream.generate(1000);
        let distinct: HashSet<_> = t.iter().collect();
        assert_eq!(distinct.len(), 1000);
    }

    #[test]
    fn strided_wraps_at_footprint() {
        let t = TraceGen::Strided { stride: 3, footprint: 10 }.generate(20);
        assert!(t.iter().all(|&l| l < 10));
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 3);
        assert_eq!(t[4], 2); // 12 % 10
    }

    #[test]
    fn working_set_stays_in_bounds_and_reuses() {
        let t = TraceGen::WorkingSet { lines: 64, seed: 7 }.generate(10_000);
        assert!(t.iter().all(|&l| l < 64));
        let distinct: HashSet<_> = t.iter().collect();
        assert!(distinct.len() <= 64);
        assert!(distinct.len() > 32, "should cover most of the working set");
    }

    #[test]
    fn working_set_is_deterministic() {
        let a = TraceGen::WorkingSet { lines: 128, seed: 1 }.generate(1000);
        let b = TraceGen::WorkingSet { lines: 128, seed: 1 }.generate(1000);
        assert_eq!(a, b);
        let c = TraceGen::WorkingSet { lines: 128, seed: 2 }.generate(1000);
        assert_ne!(a, c);
    }

    #[test]
    fn zipf_is_skewed_towards_low_ranks() {
        let t = TraceGen::Zipf { lines: 1000, s: 1.2, seed: 3 }.generate(50_000);
        let head = t.iter().filter(|&&l| l < 10).count() as f64 / t.len() as f64;
        let tail = t.iter().filter(|&&l| l >= 500).count() as f64 / t.len() as f64;
        assert!(head > 0.3, "zipf head too light: {head}");
        assert!(tail < head, "zipf tail heavier than head");
    }

    #[test]
    fn zipf_zero_exponent_is_roughly_uniform() {
        let t = TraceGen::Zipf { lines: 100, s: 0.0, seed: 4 }.generate(100_000);
        let head = t.iter().filter(|&&l| l < 50).count() as f64 / t.len() as f64;
        assert!((head - 0.5).abs() < 0.02, "uniform split off: {head}");
    }

    #[test]
    fn phased_emits_requested_length_and_phases() {
        let t = TraceGen::Phased(vec![
            (TraceGen::WorkingSet { lines: 8, seed: 1 }, 500),
            (TraceGen::WorkingSet { lines: 100_000, seed: 2 }, 500),
        ])
        .generate(1000);
        assert_eq!(t.len(), 1000);
        // First half tight, second half wide.
        assert!(t[..500].iter().all(|&l| l < 8));
        let distinct_late: HashSet<_> = t[500..].iter().collect();
        assert!(distinct_late.len() > 300);
    }

    #[test]
    fn phased_rounding_remainder_filled() {
        let t = TraceGen::Phased(vec![
            (TraceGen::Stream, 1),
            (TraceGen::Stream, 1),
            (TraceGen::Stream, 1),
        ])
        .generate(100);
        assert_eq!(t.len(), 100);
    }

    #[test]
    #[should_panic]
    fn zero_footprint_rejected() {
        TraceGen::Strided { stride: 1, footprint: 0 }.generate(1);
    }
}
