//! Exact LRU stack-distance (reuse-distance) profiling.
//!
//! The stack distance of an access is the number of *distinct* lines touched
//! since the previous access to the same line. Under fully-associative LRU,
//! an access hits in a cache of `C` lines iff its stack distance is `< C` —
//! which makes the histogram a single-pass source for an entire miss-ratio
//! curve (see [`crate::mrc`]).

use std::collections::HashMap;

/// Single-pass stack-distance profiler.
///
/// Uses a move-to-front vector plus a position index. Complexity is
/// `O(n · d)` in the mean distance `d`; ample for the synthetic traces used
/// in this reproduction (≤ a few million accesses).
#[derive(Debug, Default)]
pub struct StackDistanceProfiler {
    /// LRU stack, most recently used at the back.
    stack: Vec<u64>,
    /// line -> current index in `stack`.
    index: HashMap<u64, usize>,
    /// histogram[d] = number of accesses with stack distance d.
    histogram: Vec<u64>,
    /// Accesses to never-seen lines (infinite distance).
    cold: u64,
    total: u64,
}

impl StackDistanceProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one access to `line`, returning its stack distance
    /// (`None` = cold / infinite).
    pub fn access(&mut self, line: u64) -> Option<u64> {
        self.total += 1;
        match self.index.get(&line).copied() {
            Some(pos) => {
                let dist = (self.stack.len() - 1 - pos) as u64;
                // Move to front (back of the vec), shifting the tail down.
                self.stack.remove(pos);
                for (i, l) in self.stack.iter().enumerate().skip(pos) {
                    self.index.insert(*l, i);
                }
                self.index.insert(line, self.stack.len());
                self.stack.push(line);
                if self.histogram.len() <= dist as usize {
                    self.histogram.resize(dist as usize + 1, 0);
                }
                self.histogram[dist as usize] += 1;
                Some(dist)
            }
            None => {
                self.cold += 1;
                self.index.insert(line, self.stack.len());
                self.stack.push(line);
                None
            }
        }
    }

    /// Feeds an entire trace.
    pub fn access_all<I: IntoIterator<Item = u64>>(&mut self, lines: I) {
        for l in lines {
            self.access(l);
        }
    }

    /// Finite-distance histogram (`histogram()[d]` = count at distance `d`).
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Cold (first-touch) accesses.
    pub fn cold_misses(&self) -> u64 {
        self.cold
    }

    /// Total accesses observed.
    pub fn total_accesses(&self) -> u64 {
        self.total
    }

    /// Number of distinct lines seen.
    pub fn footprint_lines(&self) -> u64 {
        self.stack.len() as u64
    }

    /// Miss ratio of a fully-associative LRU cache holding `capacity_lines`
    /// lines, computed from the histogram: an access misses iff its stack
    /// distance is `>= capacity_lines` (or cold).
    pub fn miss_ratio_at(&self, capacity_lines: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let hits: u64 = self
            .histogram
            .iter()
            .take(capacity_lines.min(self.histogram.len() as u64) as usize)
            .sum();
        (self.total - hits) as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_reuse_has_distance_zero() {
        let mut p = StackDistanceProfiler::new();
        assert_eq!(p.access(1), None);
        assert_eq!(p.access(1), Some(0));
    }

    #[test]
    fn distance_counts_distinct_intervening_lines() {
        let mut p = StackDistanceProfiler::new();
        p.access_all([1, 2, 3, 1]); // two distinct lines between the 1s
        assert_eq!(p.histogram()[2], 1);
    }

    #[test]
    fn repeated_intervening_lines_count_once() {
        let mut p = StackDistanceProfiler::new();
        p.access_all([1, 2, 2, 2, 1]);
        assert_eq!(p.histogram()[1], 1, "only one distinct line between the 1s");
    }

    #[test]
    fn cold_misses_counted() {
        let mut p = StackDistanceProfiler::new();
        p.access_all([10, 20, 30]);
        assert_eq!(p.cold_misses(), 3);
        assert_eq!(p.footprint_lines(), 3);
    }

    #[test]
    fn cyclic_scan_distance_equals_footprint_minus_one() {
        // 0,1,2,3,0,1,2,3 -> second round all at distance 3.
        let mut p = StackDistanceProfiler::new();
        p.access_all([0, 1, 2, 3, 0, 1, 2, 3]);
        assert_eq!(p.histogram()[3], 4);
    }

    #[test]
    fn miss_ratio_matches_lru_semantics() {
        let mut p = StackDistanceProfiler::new();
        // Cyclic over 4 lines, many rounds: with capacity 4 only cold misses;
        // with capacity <= 3, LRU thrashes -> 100% misses.
        for _ in 0..100 {
            p.access_all([0u64, 1, 2, 3]);
        }
        assert!(p.miss_ratio_at(4) < 0.02);
        assert_eq!(p.miss_ratio_at(3), 1.0);
        assert_eq!(p.miss_ratio_at(1), 1.0);
    }

    #[test]
    fn miss_ratio_monotone_in_capacity() {
        let mut p = StackDistanceProfiler::new();
        let trace: Vec<u64> = (0..2000u64).map(|i| (i * i + i / 3) % 97).collect();
        p.access_all(trace);
        let mut prev = 1.0;
        for c in 0..100 {
            let m = p.miss_ratio_at(c);
            assert!(m <= prev + 1e-12, "MRC not monotone at capacity {c}");
            prev = m;
        }
    }

    #[test]
    fn empty_profiler_reports_zero() {
        let p = StackDistanceProfiler::new();
        assert_eq!(p.miss_ratio_at(10), 0.0);
        assert_eq!(p.total_accesses(), 0);
    }
}
