//! The multiprogrammed workload space and its CT-F/CT-T classification.
//!
//! §4.1 of the paper: 59 applications give 59 × 59 = 3481 multiprogrammed
//! workloads (one HP + multiple instances of one BE). §2.3.3 classifies each
//! workload by whether CT improves HP's performance over UM (**CT-Favoured**)
//! or not (**CT-Thwarted**); ~60 % of the paper's workloads are CT-T. The
//! evaluation then uses a representative sample of 120 workloads (50 CT-F +
//! 70 CT-T).

use crate::{runner, solo_table::SoloTable, sweep::SweepRunner};
use dicer_appmodel::Catalog;
use dicer_policy::PolicyKind;
use dicer_server::SolverStats;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// §2.3.3 workload classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// CT improves HP's performance over UM.
    CtFavoured,
    /// CT offers no improvement, or degrades HP vs. UM.
    CtThwarted,
}

/// One HP/BE pairing with its classification data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassifiedWorkload {
    /// HP application name.
    pub hp: String,
    /// BE application name.
    pub be: String,
    /// HP slowdown under UM with 9 BEs.
    pub um_slowdown: f64,
    /// HP slowdown under CT with 9 BEs.
    pub ct_slowdown: f64,
    /// EFU under UM.
    pub um_efu: f64,
    /// EFU under CT.
    pub ct_efu: f64,
    /// Resulting class.
    pub class: WorkloadClass,
}

/// The full classified workload space plus the deterministic 120-sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadSet {
    /// Every classified pair (3481 for the full catalog).
    pub all: Vec<ClassifiedWorkload>,
    /// Aggregated equilibrium-solver counters across every run in the
    /// classification. Diagnostic only; skipped during serialization so
    /// cached artifacts stay bit-identical across solver paths.
    #[serde(skip)]
    pub solver_stats: SolverStats,
}

/// Seed for the deterministic evaluation sample.
const SAMPLE_SEED: u64 = 0x5EED_D1CE;

/// Relative improvement CT must show over UM to count as CT-Favoured: the
/// paper's "offers no improvement" boundary. Differences inside the paper's
/// own IPC-stability noise band (`a = 5 %`, Eq. 3) do not count as
/// improvement — on the paper's real hardware they are measurement noise.
const IMPROVEMENT_EPS: f64 = 0.05;

impl WorkloadSet {
    /// Classifies every HP × BE pair at full occupancy (9 BEs) on the
    /// default (all-cores) [`SweepRunner`].
    pub fn classify(catalog: &Catalog, solo: &SoloTable) -> Self {
        Self::classify_with(catalog, solo, &SweepRunner::auto())
    }

    /// [`WorkloadSet::classify`] on an explicit runner (`--jobs`). Pair
    /// order is the name-list cross product regardless of parallelism.
    pub fn classify_with(catalog: &Catalog, solo: &SoloTable, sweep: &SweepRunner) -> Self {
        let names: Vec<&str> = catalog.names().collect();
        let pairs: Vec<(&str, &str)> = names
            .iter()
            .flat_map(|hp| names.iter().map(move |be| (*hp, *be)))
            .collect();
        Self::classify_pairs(catalog, solo, &pairs, sweep)
    }

    /// Classifies an explicit list of (HP, BE) pairs — the building block
    /// behind [`WorkloadSet::classify_with`], also used to label panel
    /// subsets without paying for the full 59 × 59 square.
    pub fn classify_pairs(
        catalog: &Catalog,
        solo: &SoloTable,
        pairs: &[(&str, &str)],
        sweep: &SweepRunner,
    ) -> Self {
        let classified: Vec<(ClassifiedWorkload, SolverStats)> =
            sweep.map(pairs, |(hp_name, be_name)| {
                let hp = catalog.get(hp_name).expect("catalog name");
                let be = catalog.get(be_name).expect("catalog name");
                let n_cores = solo.config().n_cores;
                let um =
                    runner::run_colocation_with(solo, hp, be, n_cores, &PolicyKind::Unmanaged);
                let ct =
                    runner::run_colocation_with(solo, hp, be, n_cores, &PolicyKind::CacheTakeover);
                let class = if ct.hp_slowdown < um.hp_slowdown * (1.0 - IMPROVEMENT_EPS) {
                    WorkloadClass::CtFavoured
                } else {
                    WorkloadClass::CtThwarted
                };
                let mut stats = um.solver_stats;
                stats.merge(&ct.solver_stats);
                (
                    ClassifiedWorkload {
                        hp: hp.name.clone(),
                        be: be.name.clone(),
                        um_slowdown: um.hp_slowdown,
                        ct_slowdown: ct.hp_slowdown,
                        um_efu: um.efu,
                        ct_efu: ct.efu,
                        class,
                    },
                    stats,
                )
            });
        let mut solver_stats = SolverStats::default();
        let all = classified
            .into_iter()
            .map(|(cw, stats)| {
                solver_stats.merge(&stats);
                cw
            })
            .collect();
        Self { all, solver_stats }
    }

    /// Workloads of one class.
    pub fn of_class(&self, class: WorkloadClass) -> Vec<&ClassifiedWorkload> {
        self.all.iter().filter(|w| w.class == class).collect()
    }

    /// Fraction of workloads in the CT-Thwarted class (paper: ~60 %).
    pub fn ct_thwarted_fraction(&self) -> f64 {
        self.of_class(WorkloadClass::CtThwarted).len() as f64 / self.all.len() as f64
    }

    /// The paper's representative evaluation sample: `n_ctf` CT-Favoured +
    /// `n_ctt` CT-Thwarted workloads (50 + 70 in §4.1), drawn
    /// deterministically. If a class has fewer members than requested, the
    /// deficit is filled from the other class.
    pub fn sample(&self, n_ctf: usize, n_ctt: usize) -> Vec<&ClassifiedWorkload> {
        let mut rng = ChaCha8Rng::seed_from_u64(SAMPLE_SEED);
        let mut ctf = self.of_class(WorkloadClass::CtFavoured);
        let mut ctt = self.of_class(WorkloadClass::CtThwarted);
        ctf.shuffle(&mut rng);
        ctt.shuffle(&mut rng);

        let take_ctf = n_ctf.min(ctf.len());
        let take_ctt = n_ctt.min(ctt.len());
        let mut out: Vec<&ClassifiedWorkload> = Vec::with_capacity(n_ctf + n_ctt);
        out.extend(ctf.iter().take(take_ctf));
        out.extend(ctt.iter().take(take_ctt));
        // Fill deficits from the other class's remainder.
        let deficit = (n_ctf - take_ctf) + (n_ctt - take_ctt);
        if deficit > 0 {
            out.extend(ctf.iter().skip(take_ctf).take(deficit));
            let still = (n_ctf + n_ctt).saturating_sub(out.len());
            out.extend(ctt.iter().skip(take_ctt).take(still));
        }
        out
    }

    /// The standard 120-workload evaluation sample (50 CT-F + 70 CT-T).
    pub fn sample_120(&self) -> Vec<&ClassifiedWorkload> {
        self.sample(50, 70)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_server::ServerConfig;

    /// A small catalog slice keeps the classification test fast.
    fn small_set() -> WorkloadSet {
        let catalog = Catalog::paper();
        let solo = SoloTable::build(&catalog, ServerConfig::table1());
        // Classify a sub-square by filtering pairs through a reduced catalog
        // is not expressible via the public API; classify the full catalog
        // but on a trimmed name list instead.
        let names = ["milc1", "gcc_base1", "omnetpp1", "lbm1", "namd1"];
        let pairs: Vec<ClassifiedWorkload> = names
            .iter()
            .flat_map(|hp| names.iter().map(move |be| (*hp, *be)))
            .map(|(hp, be)| {
                let h = catalog.get(hp).unwrap();
                let b = catalog.get(be).unwrap();
                let um = runner::run_colocation_with(&solo, h, b, 10, &PolicyKind::Unmanaged);
                let ct = runner::run_colocation_with(&solo, h, b, 10, &PolicyKind::CacheTakeover);
                let class = if ct.hp_slowdown < um.hp_slowdown * (1.0 - IMPROVEMENT_EPS) {
                    WorkloadClass::CtFavoured
                } else {
                    WorkloadClass::CtThwarted
                };
                ClassifiedWorkload {
                    hp: hp.to_string(),
                    be: be.to_string(),
                    um_slowdown: um.hp_slowdown,
                    ct_slowdown: ct.hp_slowdown,
                    um_efu: um.efu,
                    ct_efu: ct.efu,
                    class,
                }
            })
            .collect();
        WorkloadSet { all: pairs, solver_stats: SolverStats::default() }
    }

    #[test]
    fn both_classes_appear_in_small_square() {
        let set = small_set();
        assert_eq!(set.all.len(), 25);
        let f = set.ct_thwarted_fraction();
        assert!(f > 0.0 && f < 1.0, "both classes expected, CT-T fraction {f}");
    }

    #[test]
    fn milc_on_gcc_is_ct_thwarted() {
        let set = small_set();
        let w = set.all.iter().find(|w| w.hp == "milc1" && w.be == "gcc_base1").unwrap();
        assert_eq!(w.class, WorkloadClass::CtThwarted, "Fig. 3's example: {w:?}");
    }

    #[test]
    fn cache_sensitive_on_streaming_is_ct_favoured() {
        let set = small_set();
        let w = set.all.iter().find(|w| w.hp == "omnetpp1" && w.be == "lbm1").unwrap();
        assert_eq!(w.class, WorkloadClass::CtFavoured, "{w:?}");
    }

    #[test]
    fn sampling_is_deterministic_and_sized() {
        let set = small_set();
        let a: Vec<String> = set.sample(3, 4).iter().map(|w| format!("{}+{}", w.hp, w.be)).collect();
        let b: Vec<String> = set.sample(3, 4).iter().map(|w| format!("{}+{}", w.hp, w.be)).collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 7);
    }

    #[test]
    fn sample_fills_deficit_from_other_class() {
        let set = small_set();
        let total = set.all.len();
        let s = set.sample(total, 0);
        assert_eq!(s.len(), total, "deficit must be filled");
    }
}
