//! Experiment harness: reproduces every table and figure of the paper's
//! evaluation (§2 and §4).
//!
//! * [`runner`] — drives one co-location run (HP + BEs under a policy) on
//!   the simulated server and extracts the paper's metrics.
//! * [`solo_table`] — memoised solo profiles (`IPC_alone`, solo times,
//!   per-way solo IPC) for a whole catalog.
//! * [`workloads`] — the 59 × 59 multiprogrammed workload space, CT-F/CT-T
//!   classification, and the deterministic 120-workload evaluation sample
//!   (50 CT-F + 70 CT-T, mirroring §4.1).
//! * [`ablation`] — sweeps over DICER's design knobs (DESIGN.md §5).
//! * [`scenarios`] — scripted fault-injection scenarios with JSONL
//!   decision traces (DESIGN.md §8).
//! * [`session`] — the one period-loop runtime every run configures
//!   (DESIGN.md §10).
//! * [`sweep`] — deterministic parallel sweep execution (`--jobs`).
//! * [`trace`] — per-period run recording and timeline rendering.
//! * [`figures`] — one module per paper artefact (`fig1` … `fig8`,
//!   `table1`, `headline`), each returning a serialisable result struct and
//!   printing the same rows/series the paper reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod figures;
pub mod runner;
pub mod scenarios;
pub mod session;
pub mod solo_table;
pub mod sweep;
pub mod trace;
pub mod workloads;

pub use runner::{run_colocation, ColocationOutcome};
pub use scenarios::{run_scenario, DecisionRecord, FaultScenario, ScenarioResult};
pub use session::{Session, SessionEnd, SessionStep};
pub use solo_table::SoloTable;
pub use sweep::{Parallelism, SweepRunner};
pub use workloads::{WorkloadClass, WorkloadSet};
