//! The one period loop: a generic control-session runtime.
//!
//! Every consumer in this workspace used to hand-roll the same loop —
//! step the platform, dispatch the policy, actuate the plan/MBA/admission
//! deltas, check termination. [`Session`] owns that loop once, generic
//! over the platform ([`MonitoredPlatform`]: the clean [`Server`], a
//! [`FaultyPlatform`]-wrapped one, or a resctrl host) and the policy
//! ([`Policy`]: DICER, the baselines, a boxed `PolicyKind::build()`
//! product). The colocation runners, the scenario harness, the trace
//! recorder, the examples and the `dicerd` replay loop are all thin
//! configurations of it.
//!
//! The loop is **behaviour-preserving by construction** with respect to
//! the hand-rolled originals, and the committed goldens prove it:
//!
//! 1. run setup — the policy's initial plan lands through
//!    [`PartitionController::apply_plan_direct`], outside any fault
//!    injection (telemetry, if wired, is attached first, so the setup
//!    apply is on the bus exactly as before);
//! 2. per period — an optional *pre-period hook* runs against the mutable
//!    platform (fault-schedule switches, pre-step snapshots), then the
//!    platform steps via [`MonitoredPlatform::step_period_monitored`];
//! 3. the policy sees the delivered sample ([`Policy::on_period`]) or its
//!    absence ([`Policy::on_missing_period`]);
//! 4. the returned plan is applied only when it differs from the plan in
//!    force; MBA throttle and BE admission are synced the same
//!    delta-only way (no-ops for policies without those loops);
//! 5. an *observer* sees the step — sample, pre-period carry value,
//!    platform and policy state — and the loop terminates on workload
//!    completion or the period cap.
//!
//! [`Server`]: dicer_server::Server
//! [`FaultyPlatform`]: dicer_rdt::FaultyPlatform

use dicer_policy::Policy;
use dicer_rdt::{MonitoredPlatform, PartitionPlan, PeriodSample};
use dicer_telemetry::{trace::stage, Telemetry, Tracer};

/// One step of a running session, as handed to the observer.
#[derive(Debug)]
pub struct SessionStep<'a, S> {
    /// Period index, from 0.
    pub period: u32,
    /// The sample delivered to the policy this period; `None` when the
    /// monitoring path dropped it (the policy saw a missing period).
    pub delivered: Option<&'a PeriodSample>,
    /// Whatever the pre-period hook returned before the platform stepped
    /// (pre-step snapshots; `()` when unused).
    pub carry: S,
}

/// How a finished session ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionEnd {
    /// Periods actually simulated.
    pub periods: u32,
    /// Whether the platform reported workload completion (as opposed to
    /// running into the period cap).
    pub completed: bool,
}

/// A control session: one platform, one policy, one period loop.
#[derive(Debug)]
pub struct Session<P, C> {
    platform: P,
    policy: C,
    max_periods: u32,
    tracer: Tracer,
}

impl<P: MonitoredPlatform, C: Policy> Session<P, C> {
    /// Builds a session. `max_periods` caps the run (the loop also stops
    /// as soon as [`MonitoredPlatform::workload_complete`] reports done).
    pub fn new(platform: P, policy: C, max_periods: u32) -> Self {
        assert!(max_periods >= 1, "a run needs at least one period");
        Self { platform, policy, max_periods, tracer: Tracer::off() }
    }

    /// Wires one telemetry bus into the whole stack — platform (and
    /// anything it wraps) plus policy — before the run starts. Emission is
    /// observational only: decisions are bit-identical with or without
    /// attached sinks.
    pub fn with_telemetry(mut self, bus: &Telemetry) -> Self {
        self.platform.set_telemetry(bus.clone());
        self.policy.set_telemetry(bus.clone());
        self
    }

    /// Wires a span tracer into the loop and the platform stack. The loop
    /// then emits the session → period → {sensor_read, policy_step,
    /// partition_apply} hierarchy, and the platform nests its own stage
    /// spans (equilibrium solves, apply retries) inside them. Spans are
    /// observational only: decisions are bit-identical with or without a
    /// tracer, and with [`Tracer::new`]'s sim clock the span stream itself
    /// is deterministic.
    pub fn with_tracing(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self.platform.set_tracer(tracer.clone());
        self
    }

    /// The platform (final state inspection after a run).
    pub fn platform(&self) -> &P {
        &self.platform
    }

    /// Mutable platform access, for drivers that mutate the platform
    /// *between* periods — the fleet layer adds and removes BEs on its
    /// nodes as workloads arrive, depart and migrate. Mutating mid-period
    /// is impossible by construction (the loop holds the borrow).
    pub fn platform_mut(&mut self) -> &mut P {
        &mut self.platform
    }

    /// The policy (final state inspection after a run).
    pub fn policy(&self) -> &C {
        &self.policy
    }

    /// Mutable policy access (external drivers resetting controller state).
    pub fn policy_mut(&mut self) -> &mut C {
        &mut self.policy
    }

    /// Consumes the session, returning platform and policy.
    pub fn into_parts(self) -> (P, C) {
        (self.platform, self.policy)
    }

    /// Runs the loop to completion (or the cap) with no hooks.
    pub fn run(&mut self) -> SessionEnd {
        self.run_observed(|_, _| (), |_, _, _| ())
    }

    /// Run setup for externally-driven sessions: applies the policy's
    /// initial plan exactly as [`Session::run_observed`] does before its
    /// first period. Call once before the first [`Session::step_one`].
    pub fn begin(&mut self) {
        let n_ways = self.platform.n_ways();
        self.platform.apply_plan_direct(self.policy.initial_plan(n_ways));
    }

    /// Advances the session by exactly one period, refilling `sample` in
    /// place, and returns whether the sample was delivered (`false` = the
    /// monitoring path dropped it and the policy saw a missing period).
    ///
    /// This is the manual-stepping face of the same loop body
    /// [`Session::run_observed`] executes — platform step, policy
    /// dispatch, delta-only plan/MBA/admission actuation — for drivers
    /// that interleave many sessions (the fleet steps hundreds of node
    /// sessions round by round). It ignores `max_periods` and never
    /// checks workload completion; the external driver owns termination.
    pub fn step_one(&mut self, sample: &mut PeriodSample) -> bool {
        let n_ways = self.platform.n_ways();
        let delivered = self.platform.step_period_monitored_into(sample);
        let plan = if delivered {
            self.policy.on_period(sample, n_ways)
        } else {
            self.policy.on_missing_period(n_ways)
        };
        self.actuate(plan);
        delivered
    }

    /// Delta-only actuation shared by the period loop and `step_one`: the
    /// plan lands only when it differs from the plan in force, and the MBA
    /// throttle / BE admission sync the same way.
    fn actuate(&mut self, plan: PartitionPlan) {
        if plan != self.platform.current_plan() {
            let _apply = self.tracer.span(stage::PARTITION_APPLY);
            self.platform.apply_plan(plan);
        }
        if self.policy.mba_level() != self.platform.be_throttle() {
            self.platform.set_be_throttle(self.policy.mba_level());
        }
        if let Some(n) = self.policy.admitted_bes() {
            if self.platform.admitted_bes() != Some(n) {
                self.platform.set_admitted_bes(n);
            }
        }
    }

    /// Runs the loop with both hooks:
    ///
    /// * `pre_period(period, &mut platform) -> S` fires at the top of each
    ///   period, before the platform steps — the place for scripted fault
    ///   switches or snapshots of pre-step platform state (returned as the
    ///   step's [`SessionStep::carry`]);
    /// * `observe(step, &platform, &policy)` fires at the bottom, after
    ///   plan/MBA/admission actuation — the place to record decisions or
    ///   stream trace events.
    pub fn run_observed<S>(
        &mut self,
        pre_period: impl FnMut(u32, &mut P) -> S,
        observe: impl FnMut(SessionStep<'_, S>, &P, &C),
    ) -> SessionEnd {
        self.run_observed_until(pre_period, observe, || true)
    }

    /// [`Session::run_observed`] with an external continuation check:
    /// `keep_going()` is consulted at the top of every period, and the run
    /// stops cleanly (between periods, never mid-step) the first time it
    /// answers `false`. This is how interactive drivers — the `dicerd`
    /// daemon polling its shutdown flag and command mailbox — interrupt a
    /// long replay without waiting out the period cap. An interrupted run
    /// reports `completed: false`.
    pub fn run_observed_until<S>(
        &mut self,
        mut pre_period: impl FnMut(u32, &mut P) -> S,
        mut observe: impl FnMut(SessionStep<'_, S>, &P, &C),
        mut keep_going: impl FnMut() -> bool,
    ) -> SessionEnd {
        let n_ways = self.platform.n_ways();
        let mut session_span = self.tracer.span(stage::SESSION);
        // Run setup is not part of the monitored actuation path: the
        // initial plan bypasses fault injection.
        self.platform.apply_plan_direct(self.policy.initial_plan(n_ways));

        // One sample buffer for the whole run: platforms with an in-place
        // stepping fast path (the server simulator) refill it without
        // allocating, so long-horizon steady-state loops stay off the heap.
        let mut sample = PeriodSample::default();
        let mut periods = 0;
        while periods < self.max_periods {
            if !keep_going() {
                drop(session_span);
                return SessionEnd { periods, completed: false };
            }
            let mut period_span = self.tracer.span(stage::PERIOD);
            let carry = pre_period(periods, &mut self.platform);
            let delivered = {
                let _read = self.tracer.span(stage::SENSOR_READ);
                self.platform.step_period_monitored_into(&mut sample)
            };
            let delivered = delivered.then_some(&sample);
            if let Some(s) = delivered {
                period_span.note_time(s.time_s);
                session_span.note_time(s.time_s);
            }
            let plan = {
                let mut step_span = self.tracer.span(stage::POLICY_STEP);
                let plan = match delivered {
                    Some(s) => self.policy.on_period(s, n_ways),
                    None => self.policy.on_missing_period(n_ways),
                };
                // Stateful controllers label the step with where their
                // machine landed ("optimising", "sampling", ...), so traces
                // read causally; the closure keeps disabled tracers
                // allocation-free and static baselines leave no label.
                if let Some(state) = self.policy.state_label() {
                    step_span.note_label_with(|| state.to_string());
                }
                plan
            };
            self.actuate(plan);
            drop(period_span);
            observe(
                SessionStep { period: periods, delivered, carry },
                &self.platform,
                &self.policy,
            );
            periods += 1;
            if self.platform.workload_complete() {
                break;
            }
        }
        drop(session_span);
        SessionEnd { periods, completed: self.platform.workload_complete() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_policy::{PolicyKind, Unmanaged};
    use dicer_rdt::{
        FaultConfig, FaultyPlatform, MbaController, MbaLevel, PartitionController, PartitionPlan,
    };

    /// Minimal deterministic platform: completes after a fixed number of
    /// periods, counts actuations.
    #[derive(Debug)]
    struct FakePlatform {
        plan: PartitionPlan,
        throttle: MbaLevel,
        t: u32,
        done_after: u32,
        applies: u32,
    }

    impl FakePlatform {
        fn new(done_after: u32) -> Self {
            Self {
                plan: PartitionPlan::Unmanaged,
                throttle: MbaLevel::FULL,
                t: 0,
                done_after,
                applies: 0,
            }
        }
    }

    impl PartitionController for FakePlatform {
        fn n_ways(&self) -> u32 {
            20
        }
        fn apply_plan(&mut self, plan: PartitionPlan) {
            self.applies += 1;
            self.plan = plan;
        }
        fn current_plan(&self) -> PartitionPlan {
            self.plan
        }
    }

    impl MbaController for FakePlatform {
        fn set_be_throttle(&mut self, level: MbaLevel) {
            self.throttle = level;
        }
        fn be_throttle(&self) -> MbaLevel {
            self.throttle
        }
    }

    impl MonitoredPlatform for FakePlatform {
        fn step_period(&mut self) -> PeriodSample {
            self.t += 1;
            let app = dicer_rdt::PerAppSample {
                ipc: 1.0,
                llc_occupancy_bytes: 0,
                mem_bw_gbps: 1.0,
                miss_ratio: 0.1,
            };
            PeriodSample {
                time_s: self.t as f64,
                hp: app,
                bes: vec![app],
                total_bw_gbps: 2.0,
            }
        }
        fn workload_complete(&self) -> bool {
            self.t >= self.done_after
        }
    }

    #[test]
    fn stops_at_workload_completion() {
        let mut s = Session::new(FakePlatform::new(7), Unmanaged, 100);
        let end = s.run();
        assert_eq!(end, SessionEnd { periods: 7, completed: true });
    }

    #[test]
    fn stops_at_the_cap_when_incomplete() {
        let mut s = Session::new(FakePlatform::new(1000), Unmanaged, 5);
        let end = s.run();
        assert_eq!(end, SessionEnd { periods: 5, completed: false });
    }

    #[test]
    fn unchanged_plans_are_not_reapplied() {
        let mut s = Session::new(FakePlatform::new(10), Unmanaged, 100);
        s.run();
        // UM's initial plan is Unmanaged, already in force on the fake:
        // only the setup apply happens, never a per-period one.
        assert_eq!(s.platform().applies, 1);
    }

    #[test]
    fn observer_sees_every_period_in_order() {
        let mut s = Session::new(FakePlatform::new(6), Unmanaged, 100);
        let mut seen = Vec::new();
        s.run_observed(
            |_, _| (),
            |step, _, _| {
                assert!(step.delivered.is_some(), "clean platform always delivers");
                seen.push(step.period);
            },
        );
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn pre_period_carry_reaches_the_observer() {
        let mut s = Session::new(FakePlatform::new(3), Unmanaged, 100);
        s.run_observed(
            |period, plat| (period, plat.t),
            |step, _, _| {
                let (p, t_before) = step.carry;
                assert_eq!(p, step.period);
                assert_eq!(t_before, step.period, "snapshot taken before the step");
            },
        );
    }

    #[test]
    fn boxed_policies_drive_the_same_loop() {
        let mut s =
            Session::new(FakePlatform::new(4), PolicyKind::CacheTakeover.build(), 100);
        let end = s.run();
        assert!(end.completed);
        assert_eq!(s.platform().current_plan(), PartitionPlan::cache_takeover(20));
    }

    #[test]
    fn dropped_periods_reach_the_policy_as_missing() {
        let plat = FaultyPlatform::new(
            FakePlatform::new(u32::MAX),
            FaultConfig { drop_prob: 1.0, ..FaultConfig::none(3) },
        );
        let mut s = Session::new(plat, PolicyKind::Unmanaged.build(), 10);
        let mut dropped = 0;
        s.run_observed(
            |_, _| (),
            |step, _, _| {
                if step.delivered.is_none() {
                    dropped += 1;
                }
            },
        );
        assert_eq!(dropped, 10, "every period of a p=1 drop storm is missing");
    }

    #[test]
    #[should_panic]
    fn zero_period_cap_rejected() {
        Session::new(FakePlatform::new(1), Unmanaged, 0);
    }

    #[test]
    fn traced_run_emits_the_stage_hierarchy() {
        use dicer_telemetry::{CollectingSink, SpanEvent, TelemetryEvent, Tracer};
        use std::sync::Arc;

        let sink = Arc::new(CollectingSink::new());
        let tracer = Tracer::new(Telemetry::new(sink.clone()));
        let mut s = Session::new(FakePlatform::new(3), Unmanaged, 100).with_tracing(&tracer);
        let end = s.run();
        assert_eq!(end.periods, 3);

        let spans: Vec<SpanEvent> = sink
            .take()
            .into_iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span(sp) => Some(sp),
                _ => None,
            })
            .collect();
        let session: Vec<_> = spans.iter().filter(|s| s.name == "session").collect();
        let periods: Vec<_> = spans.iter().filter(|s| s.name == "period").collect();
        let reads: Vec<_> = spans.iter().filter(|s| s.name == "sensor_read").collect();
        let steps: Vec<_> = spans.iter().filter(|s| s.name == "policy_step").collect();
        assert_eq!(session.len(), 1);
        assert_eq!(periods.len(), 3);
        assert_eq!(reads.len(), 3);
        assert_eq!(steps.len(), 3);
        assert!(periods.iter().all(|p| p.parent == session[0].id));
        for (read, step) in reads.iter().zip(&steps) {
            assert_eq!(read.parent, step.parent, "read and step share a period parent");
            assert!(read.end < step.start, "sensor read precedes the policy step");
        }
        assert_eq!(
            session[0].time_s,
            Some(3.0),
            "the session span carries the last delivered sim time"
        );
        // UM never changes the plan after setup: no partition_apply spans.
        assert!(spans.iter().all(|s| s.name != "partition_apply"));
    }

    #[test]
    fn manual_stepping_matches_the_period_loop() {
        // begin() + N × step_one() must leave platform and policy in the
        // same state as run() over the same N periods.
        let mut looped = Session::new(FakePlatform::new(9), PolicyKind::CacheTakeover.build(), 9);
        let end = looped.run();
        assert_eq!(end.periods, 9);

        let mut manual = Session::new(FakePlatform::new(9), PolicyKind::CacheTakeover.build(), 9);
        manual.begin();
        let mut sample = PeriodSample::default();
        for _ in 0..9 {
            assert!(manual.step_one(&mut sample), "clean platform always delivers");
        }
        assert_eq!(manual.platform().t, looped.platform().t);
        assert_eq!(manual.platform().applies, looped.platform().applies);
        assert_eq!(manual.platform().current_plan(), looped.platform().current_plan());
        assert_eq!(manual.platform().be_throttle(), looped.platform().be_throttle());
        assert!((sample.time_s - 9.0).abs() < 1e-12, "the buffer holds the last period");
    }

    #[test]
    fn run_until_stops_cleanly_between_periods() {
        // keep_going flips false before period 4: exactly 4 periods run,
        // every observed step is whole, and the end reports interrupted.
        let mut s = Session::new(FakePlatform::new(u32::MAX), Unmanaged, 100);
        let mut budget = 4;
        let mut seen = Vec::new();
        let end = s.run_observed_until(
            |_, _| (),
            |step, _, _| {
                assert!(step.delivered.is_some());
                seen.push(step.period);
            },
            || {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                true
            },
        );
        assert_eq!(end, SessionEnd { periods: 4, completed: false });
        assert_eq!(seen, vec![0, 1, 2, 3]);
        assert_eq!(s.platform().t, 4, "no partial period was simulated");
    }

    #[test]
    fn run_until_interrupted_before_the_first_period_runs_none() {
        let mut s = Session::new(FakePlatform::new(u32::MAX), Unmanaged, 100);
        let end = s.run_observed_until(|_, _| (), |_, _, _| (), || false);
        assert_eq!(end, SessionEnd { periods: 0, completed: false });
        assert_eq!(s.platform().t, 0);
        // Run setup still happened (the initial plan is in force).
        assert_eq!(s.platform().applies, 1);
    }

    #[test]
    fn platform_mut_supports_between_period_mutation() {
        let mut s = Session::new(FakePlatform::new(u32::MAX), Unmanaged, 100);
        s.begin();
        let mut sample = PeriodSample::default();
        s.step_one(&mut sample);
        s.platform_mut().t += 10;
        s.step_one(&mut sample);
        assert!((sample.time_s - 12.0).abs() < 1e-12);
    }

    #[test]
    fn tracing_does_not_perturb_decisions() {
        use dicer_telemetry::Tracer;

        let run = |traced: bool| {
            let mut s = Session::new(FakePlatform::new(50), PolicyKind::CacheTakeover.build(), 100);
            if traced {
                let sink = std::sync::Arc::new(dicer_telemetry::CollectingSink::new());
                s = s.with_tracing(&Tracer::new(Telemetry::new(sink)));
            }
            let end = s.run();
            (end, s.platform().current_plan(), s.platform().applies)
        };
        assert_eq!(run(false), run(true), "spans are observational only");
    }
}
