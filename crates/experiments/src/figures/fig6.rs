//! Figure 6: geometric mean of effective utilisation vs employed cores, for
//! UM, CT and DICER.

use crate::figures::matrix::EvalMatrix;
use dicer_metrics::geomean;
use serde::{Deserialize, Serialize};

/// Fig. 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6 {
    /// Per policy: `(policy, Vec<(n_cores, geomean EFU)>)`.
    pub series: Vec<(String, Vec<(u32, f64)>)>,
}

/// Aggregates the evaluation matrix into the figure's series.
pub fn run(matrix: &EvalMatrix) -> Fig6 {
    let series = matrix
        .policies()
        .into_iter()
        .map(|p| {
            let pts = matrix
                .core_counts()
                .into_iter()
                .map(|c| {
                    let efus: Vec<f64> =
                        matrix.slice(&p, c).iter().map(|cell| cell.efu).collect();
                    (c, geomean(&efus))
                })
                .collect();
            (p, pts)
        })
        .collect();
    Fig6 { series }
}

impl Fig6 {
    /// Geomean EFU for one policy at one core count.
    pub fn at(&self, policy: &str, n_cores: u32) -> f64 {
        self.series
            .iter()
            .find(|(p, _)| p == policy)
            .and_then(|(_, pts)| pts.iter().find(|(c, _)| *c == n_cores))
            .map(|(_, v)| *v)
            .expect("policy/cores present in matrix")
    }

    /// Renders the series table.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 6: geomean effective utilisation vs employed cores\n");
        out.push_str("  cores");
        for (p, _) in &self.series {
            out.push_str(&format!("  {p:>6}"));
        }
        out.push('\n');
        if let Some((_, pts)) = self.series.first() {
            for (i, (c, _)) in pts.iter().enumerate() {
                out.push_str(&format!("  {c:>5}"));
                for (_, s) in &self.series {
                    out.push_str(&format!("  {:>6.3}", s[i].1));
                }
                out.push('\n');
            }
        }
        out
    }
}
