//! Figure 3: HP slowdown across all static LLC partitions for the paper's
//! motivating workload — milc (HP) with 9 gcc BEs.

use crate::{runner, solo_table::SoloTable, sweep::SweepRunner};
use dicer_appmodel::Catalog;
use dicer_policy::PolicyKind;
use serde::{Deserialize, Serialize};

/// Fig. 3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig3 {
    /// HP application name (milc1).
    pub hp: String,
    /// BE application name (gcc_base1).
    pub be: String,
    /// `(hp_ways, slowdown)` for every static split.
    pub static_sweep: Vec<(u32, f64)>,
    /// HP slowdown under UM, the paper's reference point.
    pub um_slowdown: f64,
}

/// Runs the static sweep. `hp`/`be` default to the paper's pair via
/// [`run_default`].
pub fn run(catalog: &Catalog, solo: &SoloTable, hp: &str, be: &str) -> Fig3 {
    run_with(catalog, solo, hp, be, &SweepRunner::auto())
}

/// [`run`] on an explicit [`SweepRunner`] (`--jobs`).
pub fn run_with(
    catalog: &Catalog,
    solo: &SoloTable,
    hp: &str,
    be: &str,
    sweep: &SweepRunner,
) -> Fig3 {
    let hp_app = catalog.get(hp).expect("hp in catalog");
    let be_app = catalog.get(be).expect("be in catalog");
    let n_cores = solo.config().n_cores;
    let ways = solo.config().cache.ways;
    let splits: Vec<u32> = (1..ways).collect();
    let static_sweep: Vec<(u32, f64)> = sweep.map(&splits, |w| {
        let out =
            runner::run_colocation_with(solo, hp_app, be_app, n_cores, &PolicyKind::Static(*w));
        (*w, out.hp_slowdown)
    });
    let um = runner::run_colocation_with(solo, hp_app, be_app, n_cores, &PolicyKind::Unmanaged);
    Fig3 { hp: hp.into(), be: be.into(), static_sweep, um_slowdown: um.hp_slowdown }
}

/// The paper's workload: milc (HP) and gcc (BEs).
pub fn run_default(catalog: &Catalog, solo: &SoloTable) -> Fig3 {
    run(catalog, solo, "milc1", "gcc_base1")
}

impl Fig3 {
    /// The best static allocation `(hp_ways, slowdown)`.
    pub fn best(&self) -> (u32, f64) {
        self.static_sweep
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("non-empty sweep")
    }

    /// Slowdown at the CT allocation (`n_ways - 1` HP ways).
    pub fn ct_slowdown(&self) -> f64 {
        self.static_sweep.last().expect("non-empty sweep").1
    }

    /// Renders the sweep rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Figure 3: HP slowdown vs static LLC split — {} (HP) + 9x {} (BEs)\n",
            self.hp, self.be
        );
        out.push_str("  HP ways  slowdown\n");
        for (w, s) in &self.static_sweep {
            out.push_str(&format!("  {w:>7}  {s:>7.3}x\n"));
        }
        out.push_str(&format!("  UM       {:>7.3}x\n", self.um_slowdown));
        let (bw, bs) = self.best();
        out.push_str(&format!("  best: {bw} ways at {bs:.3}x; CT: {:.3}x\n", self.ct_slowdown()));
        out
    }
}
