//! The paper's headline claims (§1 and §4.2), derived from the Fig. 6/7
//! aggregates:
//!
//! * DICER achieves an SLO of 80 % for more than 90 % of workloads;
//! * DICER achieves an SLO of 90 % for ~74 % of workloads;
//! * DICER keeps effective utilisation of a full server around 0.6.

use crate::figures::{fig6::Fig6, fig7::Fig7};
use serde::{Deserialize, Serialize};

/// Headline numbers at full occupancy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Headline {
    /// % of workloads meeting the 80 % SLO under DICER at 10 cores.
    pub dicer_slo80_pct: f64,
    /// % of workloads meeting the 90 % SLO under DICER at 10 cores.
    pub dicer_slo90_pct: f64,
    /// Geomean EFU under DICER at 10 cores.
    pub dicer_efu_full: f64,
    /// Geomean EFU under UM at 10 cores (upper reference).
    pub um_efu_full: f64,
    /// Geomean EFU under CT at 10 cores (lower reference).
    pub ct_efu_full: f64,
}

/// Extracts the headline numbers.
pub fn run(fig6: &Fig6, fig7: &Fig7, full_cores: u32) -> Headline {
    Headline {
        dicer_slo80_pct: fig7.at(0.80, "DICER", full_cores),
        dicer_slo90_pct: fig7.at(0.90, "DICER", full_cores),
        dicer_efu_full: fig6.at("DICER", full_cores),
        um_efu_full: fig6.at("UM", full_cores),
        ct_efu_full: fig6.at("CT", full_cores),
    }
}

impl Headline {
    /// Renders the claim-vs-measured block.
    pub fn render(&self) -> String {
        format!(
            "Headline (full server):\n\
             \x20 SLO 80% achieved under DICER: {:.1}% of workloads (paper: >90%)\n\
             \x20 SLO 90% achieved under DICER: {:.1}% of workloads (paper: ~74%)\n\
             \x20 geomean EFU: DICER {:.3} (paper ~0.6), UM {:.3}, CT {:.3}\n",
            self.dicer_slo80_pct,
            self.dicer_slo90_pct,
            self.dicer_efu_full,
            self.um_efu_full,
            self.ct_efu_full
        )
    }
}
