//! Table 1: system configuration.

use dicer_policy::DicerConfig;
use dicer_server::ServerConfig;
use serde::{Deserialize, Serialize};

/// The reproduced Table 1.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1 {
    /// Platform half of the table.
    pub server: ServerConfig,
    /// DICER half of the table.
    pub dicer: DicerConfig,
}

/// Assembles the configuration table.
pub fn run() -> Table1 {
    Table1 { server: ServerConfig::table1(), dicer: DicerConfig::default() }
}

impl Table1 {
    /// Renders the table in the paper's layout.
    pub fn render(&self) -> String {
        let s = &self.server;
        let d = &self.dicer;
        let mut out = String::new();
        out.push_str("Table 1: System configuration (simulated reproduction)\n");
        out.push_str(&format!(
            "  Processor               {} cores, {:.1} GHz, SMT disabled\n",
            s.n_cores,
            s.freq_hz / 1e9
        ));
        out.push_str(&format!(
            "  LLC                     {} MB, {}-way set associative\n",
            s.cache.size_bytes / (1024 * 1024),
            s.cache.ways
        ));
        out.push_str(&format!(
            "  Memory bandwidth        {:.1} Gbps\n",
            s.link.capacity_gbps
        ));
        out.push_str(&format!("  Monitoring period       T = {} sec\n", s.period_s));
        out.push_str(&format!(
            "  BW saturation threshold MemBW_threshold = {} Gbps\n",
            d.mem_bw_threshold_gbps
        ));
        out.push_str(&format!(
            "  Phase detection thresh. phase_threshold = {:.0}% (Eq. 2)\n",
            d.phase_threshold * 100.0
        ));
        out.push_str(&format!(
            "  IPC stability pct.      a = {:.0}% (Eq. 3)\n",
            d.stability_alpha * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_paper_values() {
        let t = run().render();
        assert!(t.contains("10 cores, 2.2 GHz"));
        assert!(t.contains("25 MB, 20-way"));
        assert!(t.contains("68.3 Gbps"));
        assert!(t.contains("T = 1 sec"));
        assert!(t.contains("50 Gbps"));
        assert!(t.contains("30%"));
        assert!(t.contains("a = 5%"));
    }
}
