//! Figure 8: geometric mean of SUCI (Eq. 4) vs employed cores, for UM, CT
//! and DICER, at SLO targets 80/85/90/95 % and λ ∈ {0.5, 1, 2}.
//!
//! SUCI is exactly 0 on an SLA violation, so the geometric mean is computed
//! with a small floor (`GEOMEAN_FLOOR`) — otherwise one violated workload
//! would zero an entire series.

use crate::figures::{matrix::EvalMatrix, LAMBDAS, SLOS};
use dicer_metrics::{stats::geomean_floored, suci};
use serde::{Deserialize, Serialize};

/// Per-policy series of `(n_cores, value)` points.
pub type PolicySeries = Vec<(String, Vec<(u32, f64)>)>;


/// Floor applied to per-workload SUCI values inside the geometric mean.
pub const GEOMEAN_FLOOR: f64 = 0.01;

/// Fig. 8 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8 {
    /// Per (λ, SLO): per policy: `Vec<(n_cores, geomean SUCI)>`.
    pub panels: Vec<(f64, f64, PolicySeries)>,
}

/// Aggregates the matrix into all (λ, SLO) panels.
pub fn run(matrix: &EvalMatrix) -> Fig8 {
    let mut panels = Vec::new();
    for lambda in LAMBDAS {
        for slo in SLOS {
            let per_policy: PolicySeries = matrix
                .policies()
                .into_iter()
                .map(|p| {
                    let pts = matrix
                        .core_counts()
                        .into_iter()
                        .map(|c| {
                            let vals: Vec<f64> = matrix
                                .slice(&p, c)
                                .iter()
                                .map(|cell| suci(cell.hp_norm_ipc, cell.efu, slo, lambda))
                                .collect();
                            (c, geomean_floored(&vals, GEOMEAN_FLOOR))
                        })
                        .collect();
                    (p, pts)
                })
                .collect();
            panels.push((lambda, slo, per_policy));
        }
    }
    Fig8 { panels }
}

impl Fig8 {
    /// Geomean SUCI for `(lambda, slo, policy, n_cores)`.
    pub fn at(&self, lambda: f64, slo: f64, policy: &str, n_cores: u32) -> f64 {
        self.panels
            .iter()
            .find(|(l, s, _)| (*l - lambda).abs() < 1e-9 && (*s - slo).abs() < 1e-9)
            .and_then(|(_, _, pp)| pp.iter().find(|(p, _)| p == policy))
            .and_then(|(_, pts)| pts.iter().find(|(c, _)| *c == n_cores))
            .map(|(_, v)| *v)
            .expect("panel present")
    }

    /// Renders every panel.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 8: geomean SUCI vs employed cores\n");
        for (lambda, slo, per_policy) in &self.panels {
            out.push_str(&format!("  lambda = {lambda}, SLO = {:.0}%\n  cores", slo * 100.0));
            for (p, _) in per_policy {
                out.push_str(&format!("  {p:>6}"));
            }
            out.push('\n');
            if let Some((_, pts)) = per_policy.first() {
                for (i, (c, _)) in pts.iter().enumerate() {
                    out.push_str(&format!("  {c:>5}"));
                    for (_, s) in per_policy {
                        out.push_str(&format!("  {:>6.3}", s[i].1));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}
