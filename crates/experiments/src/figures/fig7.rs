//! Figure 7: percentage of workloads achieving a given HP SLO vs employed
//! cores, for UM, CT and DICER, at SLO targets 80/85/90/95 %.

use crate::figures::{matrix::EvalMatrix, SLOS};
use dicer_metrics::slo_achieved;
use serde::{Deserialize, Serialize};

/// Per-policy series of `(n_cores, value)` points.
pub type PolicySeries = Vec<(String, Vec<(u32, f64)>)>;


/// Fig. 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7 {
    /// Per SLO target: per policy: `Vec<(n_cores, % achieved)>`.
    pub panels: Vec<(f64, PolicySeries)>,
}

/// Aggregates the matrix into the four SLO panels.
pub fn run(matrix: &EvalMatrix) -> Fig7 {
    let panels = SLOS
        .iter()
        .map(|slo| {
            let per_policy: PolicySeries = matrix
                .policies()
                .into_iter()
                .map(|p| {
                    let pts = matrix
                        .core_counts()
                        .into_iter()
                        .map(|c| {
                            let cells = matrix.slice(&p, c);
                            let ok = cells
                                .iter()
                                .filter(|cell| slo_achieved(cell.hp_norm_ipc, *slo))
                                .count();
                            (c, 100.0 * ok as f64 / cells.len() as f64)
                        })
                        .collect();
                    (p, pts)
                })
                .collect();
            (*slo, per_policy)
        })
        .collect();
    Fig7 { panels }
}

impl Fig7 {
    /// % of workloads achieving `slo` under `policy` at `n_cores`.
    pub fn at(&self, slo: f64, policy: &str, n_cores: u32) -> f64 {
        self.panels
            .iter()
            .find(|(s, _)| (*s - slo).abs() < 1e-9)
            .and_then(|(_, pp)| pp.iter().find(|(p, _)| p == policy))
            .and_then(|(_, pts)| pts.iter().find(|(c, _)| *c == n_cores))
            .map(|(_, v)| *v)
            .expect("panel present")
    }

    /// Renders all four panels.
    pub fn render(&self) -> String {
        let mut out = String::from("Figure 7: % of workloads achieving the HP SLO\n");
        for (slo, per_policy) in &self.panels {
            out.push_str(&format!("  SLO = {:.0}%\n  cores", slo * 100.0));
            for (p, _) in per_policy {
                out.push_str(&format!("  {p:>6}"));
            }
            out.push('\n');
            if let Some((_, pts)) = per_policy.first() {
                for (i, (c, _)) in pts.iter().enumerate() {
                    out.push_str(&format!("  {c:>5}"));
                    for (_, s) in per_policy {
                        out.push_str(&format!("  {:>5.1}%", s[i].1));
                    }
                    out.push('\n');
                }
            }
        }
        out
    }
}
