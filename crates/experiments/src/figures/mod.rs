//! One module per paper artefact. Every module exposes a `run(...)`
//! returning a serialisable result struct with a `render()` method printing
//! the same rows/series the paper's figure or table reports.

pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod headline;
pub mod matrix;
pub mod table1;

#[cfg(test)]
mod tests;

pub use matrix::{EvalMatrix, MatrixCell};

/// The three co-location policies every comparison figure sweeps.
pub fn policies3() -> Vec<dicer_policy::PolicyKind> {
    vec![
        dicer_policy::PolicyKind::Unmanaged,
        dicer_policy::PolicyKind::CacheTakeover,
        dicer_policy::PolicyKind::Dicer(dicer_policy::DicerConfig::default()),
    ]
}

/// SLO targets plotted in Figs. 7 and 8.
pub const SLOS: [f64; 4] = [0.80, 0.85, 0.90, 0.95];

/// λ values plotted in Fig. 8.
pub const LAMBDAS: [f64; 3] = [0.5, 1.0, 2.0];
