//! Unit tests for the figure aggregators, on hand-built inputs (no
//! simulation runs — those are covered by the integration tests).

use super::*;
use crate::workloads::{ClassifiedWorkload, WorkloadClass, WorkloadSet};
use matrix::{EvalMatrix, MatrixCell};

fn wl(hp: &str, be: &str, um: f64, ct: f64, um_efu: f64, ct_efu: f64) -> ClassifiedWorkload {
    let class = if ct < um * 0.95 { WorkloadClass::CtFavoured } else { WorkloadClass::CtThwarted };
    ClassifiedWorkload {
        hp: hp.into(),
        be: be.into(),
        um_slowdown: um,
        ct_slowdown: ct,
        um_efu,
        ct_efu,
        class,
    }
}

fn cell(
    hp: &str,
    policy: &str,
    cores: u32,
    hp_norm: f64,
    be_norm: f64,
    efu: f64,
    class: WorkloadClass,
) -> MatrixCell {
    MatrixCell {
        hp: hp.into(),
        be: "be".into(),
        class,
        policy: policy.into(),
        n_cores: cores,
        hp_norm_ipc: hp_norm,
        be_norm_ipc_mean: be_norm,
        efu,
        hp_slowdown: 1.0 / hp_norm,
    }
}

#[test]
fn fig1_cdf_fractions() {
    let set = WorkloadSet {
        all: vec![
            wl("a", "x", 1.05, 1.0, 0.9, 0.5),
            wl("b", "x", 1.5, 1.1, 0.8, 0.5),
            wl("c", "x", 2.5, 1.4, 0.7, 0.4),
            wl("d", "x", 1.05, 1.2, 0.9, 0.6),
        ],
        solver_stats: Default::default(),
    };
    let f = fig1::run(&set);
    // UM: 2 of 4 workloads at <= 1.1.
    let um_11 = f.um.iter().find(|(x, _)| (*x - 1.1).abs() < 1e-9).unwrap().1;
    assert!((um_11 - 0.5).abs() < 1e-12);
    // CT: 2 of 4 at <= 1.1 (1.0 and 1.1).
    let ct_11 = f.ct.iter().find(|(x, _)| (*x - 1.1).abs() < 1e-9).unwrap().1;
    assert!((ct_11 - 0.5).abs() < 1e-12);
    assert_eq!(f.n_workloads, 4);
    assert!(f.render().contains("Figure 1"));
}

#[test]
fn fig4_points_align_with_sample() {
    let a = wl("a", "x", 1.2, 1.05, 0.8, 0.5);
    let b = wl("b", "y", 1.4, 1.5, 0.85, 0.45);
    let f = fig4::build(&[&a, &b]);
    assert_eq!(f.um.len(), 2);
    assert_eq!(f.um[0].slowdown, 1.2);
    assert_eq!(f.ct[1].efu, 0.45);
    assert!(fig4::Fig4::mean_efu(&f.um) > fig4::Fig4::mean_efu(&f.ct));
    assert!(f.render().contains("a x"));
}

fn synthetic_matrix() -> EvalMatrix {
    let mut cells = Vec::new();
    for cores in [2u32, 10] {
        for (hp, class, um, ct, dicer) in [
            ("s1", WorkloadClass::CtFavoured, 0.6, 0.95, 0.92),
            ("s2", WorkloadClass::CtThwarted, 0.92, 0.85, 0.93),
        ] {
            cells.push(cell(hp, "UM", cores, um, 0.9, 0.85, class));
            cells.push(cell(hp, "CT", cores, ct, 0.4, 0.55, class));
            cells.push(cell(hp, "DICER", cores, dicer, 0.7, 0.75, class));
        }
    }
    EvalMatrix { cells, solver_stats: Default::default() }
}

#[test]
fn matrix_slicing_and_metadata() {
    let m = synthetic_matrix();
    assert_eq!(m.policies(), vec!["UM".to_string(), "CT".into(), "DICER".into()]);
    assert_eq!(m.core_counts(), vec![2, 10]);
    assert_eq!(m.slice("CT", 10).len(), 2);
    assert!(m.slice("CT", 5).is_empty());
}

#[test]
fn fig5_splits_classes_and_averages() {
    let m = synthetic_matrix();
    let f = fig5::run(&m, 10);
    assert_eq!(f.rows.len(), 2);
    // CT-F block first.
    assert_eq!(f.rows[0].class, WorkloadClass::CtFavoured);
    let hp_ct_f = f.geomean_hp("CT", WorkloadClass::CtFavoured);
    assert!((hp_ct_f - 0.95).abs() < 1e-9);
    let be_dicer_t = f.geomean_be("DICER", WorkloadClass::CtThwarted);
    assert!((be_dicer_t - 0.7).abs() < 1e-9);
    assert!(f.render().contains("CT-F"));
}

#[test]
fn fig6_geomeans_per_policy_and_cores() {
    let m = synthetic_matrix();
    let f = fig6::run(&m);
    // Both UM cells have EFU 0.85 -> geomean 0.85.
    assert!((f.at("UM", 10) - 0.85).abs() < 1e-9);
    assert!((f.at("CT", 2) - 0.55).abs() < 1e-9);
    assert!(f.render().contains("cores"));
}

#[test]
fn fig7_counts_slo_conformance() {
    let m = synthetic_matrix();
    let f = fig7::run(&m);
    // At SLO 90%: UM passes 1 of 2 (0.92), CT 1 of 2 (0.95), DICER 2 of 2.
    assert!((f.at(0.90, "UM", 10) - 50.0).abs() < 1e-9);
    assert!((f.at(0.90, "CT", 10) - 50.0).abs() < 1e-9);
    assert!((f.at(0.90, "DICER", 10) - 100.0).abs() < 1e-9);
    // At SLO 95%: only CT's 0.95 passes.
    assert!((f.at(0.95, "DICER", 10) - 0.0).abs() < 1e-9);
    assert!((f.at(0.95, "CT", 10) - 50.0).abs() < 1e-9);
}

#[test]
fn fig8_suci_gates_and_aggregates() {
    let m = synthetic_matrix();
    let f = fig8::run(&m);
    // DICER passes SLO 90% on both workloads with EFU 0.75 -> geomean 0.75.
    assert!((f.at(1.0, 0.90, "DICER", 10) - 0.75).abs() < 1e-9);
    // UM violates on one workload -> floored geomean sqrt(0.85 * 0.01).
    let expect = (0.85f64 * fig8::GEOMEAN_FLOOR).sqrt();
    assert!((f.at(1.0, 0.90, "UM", 10) - expect).abs() < 1e-9);
    // Lambda reweights: for EFU < 1, higher lambda lowers the index.
    assert!(f.at(2.0, 0.90, "DICER", 10) < f.at(0.5, 0.90, "DICER", 10));
}

#[test]
fn headline_pulls_full_occupancy_numbers() {
    let m = synthetic_matrix();
    let f6 = fig6::run(&m);
    let f7 = fig7::run(&m);
    let h = headline::run(&f6, &f7, 10);
    assert!((h.dicer_slo90_pct - 100.0).abs() < 1e-9);
    assert!((h.dicer_efu_full - 0.75).abs() < 1e-9);
    assert!(h.render().contains("SLO 80%"));
}

#[test]
fn policies3_is_um_ct_dicer() {
    let names: Vec<&str> = policies3().iter().map(|p| p.name()).collect();
    assert_eq!(names, vec!["UM", "CT", "DICER"]);
}
