//! Figure 4: scatter of effective utilisation vs HP slowdown for the
//! 120-workload sample under UM and CT.

use crate::workloads::{ClassifiedWorkload, WorkloadSet};
use serde::{Deserialize, Serialize};

/// One scatter point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Point {
    /// HP slowdown (x axis).
    pub slowdown: f64,
    /// Effective utilisation (y axis).
    pub efu: f64,
}

/// Fig. 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4 {
    /// UM points, one per sampled workload.
    pub um: Vec<Point>,
    /// CT points, aligned with `um`.
    pub ct: Vec<Point>,
    /// Workload labels aligned with the point vectors.
    pub labels: Vec<String>,
}

/// Builds the scatter from the classified sample (classification already
/// carries EFU and slowdown for both baselines).
pub fn run(set: &WorkloadSet) -> Fig4 {
    let sample = set.sample_120();
    build(&sample)
}

/// Builds the scatter from an arbitrary slice of classified workloads.
pub fn build(sample: &[&ClassifiedWorkload]) -> Fig4 {
    Fig4 {
        um: sample.iter().map(|w| Point { slowdown: w.um_slowdown, efu: w.um_efu }).collect(),
        ct: sample.iter().map(|w| Point { slowdown: w.ct_slowdown, efu: w.ct_efu }).collect(),
        labels: sample.iter().map(|w| format!("{} {}", w.hp, w.be)).collect(),
    }
}

impl Fig4 {
    /// Mean EFU of one series.
    pub fn mean_efu(points: &[Point]) -> f64 {
        points.iter().map(|p| p.efu).sum::<f64>() / points.len() as f64
    }

    /// Renders summary rows plus the scatter data.
    pub fn render(&self) -> String {
        let mut out =
            String::from("Figure 4: effective utilisation vs HP slowdown (UM and CT)\n");
        out.push_str(&format!(
            "  mean EFU: UM {:.3}  CT {:.3}\n",
            Self::mean_efu(&self.um),
            Self::mean_efu(&self.ct)
        ));
        out.push_str("  workload                         UM(slow,efu)      CT(slow,efu)\n");
        for (i, label) in self.labels.iter().enumerate() {
            out.push_str(&format!(
                "  {:<32} ({:>5.2}, {:>5.3})   ({:>5.2}, {:>5.3})\n",
                label, self.um[i].slowdown, self.um[i].efu, self.ct[i].slowdown, self.ct[i].efu
            ));
        }
        out
    }
}
