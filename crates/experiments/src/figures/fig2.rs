//! Figure 2: cumulative distribution over applications of the minimum LLC
//! allocation needed, running alone, to reach 90 %/95 %/99 % of the
//! performance achieved with all 20 ways.

use crate::solo_table::SoloTable;
use dicer_appmodel::Catalog;
use serde::{Deserialize, Serialize};

/// Performance targets plotted in the paper.
pub const TARGETS: [f64; 3] = [0.90, 0.95, 0.99];

/// Fig. 2 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2 {
    /// Per target: fraction of applications whose minimum allocation is
    /// `<= w` ways, indexed by `w - 1`.
    pub cdf_by_target: Vec<(f64, Vec<f64>)>,
    /// Per-application minimum ways at each target, for the JSON artifact.
    pub per_app: Vec<(String, Vec<u32>)>,
}

/// Computes the figure from solo profiles.
pub fn run(catalog: &Catalog, solo: &SoloTable) -> Fig2 {
    let ways = solo.config().cache.ways;
    let per_app: Vec<(String, Vec<u32>)> = catalog
        .names()
        .map(|name| {
            let p = solo.get(name);
            (name.to_string(), TARGETS.iter().map(|t| p.min_ways_for(*t)).collect())
        })
        .collect();
    let n = per_app.len() as f64;
    let cdf_by_target = TARGETS
        .iter()
        .enumerate()
        .map(|(ti, t)| {
            let cdf: Vec<f64> = (1..=ways)
                .map(|w| per_app.iter().filter(|(_, m)| m[ti] <= w).count() as f64 / n)
                .collect();
            (*t, cdf)
        })
        .collect();
    Fig2 { cdf_by_target, per_app }
}

impl Fig2 {
    /// Fraction of applications needing `<= w` ways at `target`.
    pub fn fraction_at(&self, target: f64, w: u32) -> f64 {
        self.cdf_by_target
            .iter()
            .find(|(t, _)| (*t - target).abs() < 1e-9)
            .map(|(_, cdf)| cdf[(w as usize).min(cdf.len()) - 1])
            .expect("unknown target")
    }

    /// Renders the CDF rows.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 2: CDF of minimum LLC ways for a fraction of solo performance\n  ways",
        );
        for (t, _) in &self.cdf_by_target {
            out.push_str(&format!("   {:>4.0}%", t * 100.0));
        }
        out.push('\n');
        let n_ways = self.cdf_by_target[0].1.len();
        for w in 1..=n_ways {
            out.push_str(&format!("  {w:>4}"));
            for (_, cdf) in &self.cdf_by_target {
                out.push_str(&format!("  {:>5.1}%", cdf[w - 1] * 100.0));
            }
            out.push('\n');
        }
        out
    }
}
