//! Figure 5: per-workload normalised HP and BE IPC under UM, CT and DICER,
//! split into the CT-F and CT-T classes, at full occupancy.

use crate::figures::matrix::EvalMatrix;
use crate::workloads::WorkloadClass;
use dicer_metrics::geomean;
use serde::{Deserialize, Serialize};

/// One workload row of the figure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Row {
    /// Workload label (`hp be`).
    pub label: String,
    /// Class of the workload.
    pub class: WorkloadClass,
    /// Per policy: `(policy, hp_norm_ipc, be_norm_ipc_mean)`.
    pub per_policy: Vec<(String, f64, f64)>,
}

/// Fig. 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5 {
    /// All rows, CT-F first (as in the paper's layout).
    pub rows: Vec<Row>,
}

/// Builds the figure from a matrix evaluated at one core count.
pub fn run(matrix: &EvalMatrix, n_cores: u32) -> Fig5 {
    let policies = matrix.policies();
    let mut labels: Vec<(String, WorkloadClass)> = Vec::new();
    for c in &matrix.cells {
        if c.n_cores == n_cores {
            let l = format!("{} {}", c.hp, c.be);
            if !labels.iter().any(|(x, _)| *x == l) {
                labels.push((l, c.class));
            }
        }
    }
    // CT-F block first, like the paper.
    labels.sort_by_key(|(_, class)| match class {
        WorkloadClass::CtFavoured => 0,
        WorkloadClass::CtThwarted => 1,
    });

    let rows = labels
        .into_iter()
        .map(|(label, class)| {
            let per_policy = policies
                .iter()
                .map(|p| {
                    let cell = matrix
                        .cells
                        .iter()
                        .find(|c| {
                            c.policy == *p
                                && c.n_cores == n_cores
                                && format!("{} {}", c.hp, c.be) == label
                        })
                        .expect("matrix covers every (workload, policy)");
                    (p.clone(), cell.hp_norm_ipc, cell.be_norm_ipc_mean)
                })
                .collect();
            Row { label, class, per_policy }
        })
        .collect();
    Fig5 { rows }
}

impl Fig5 {
    /// Geometric-mean HP normalised IPC for one policy within one class.
    pub fn geomean_hp(&self, policy: &str, class: WorkloadClass) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.per_policy.iter().find(|(p, _, _)| p == policy).unwrap().1)
            .collect();
        geomean(&v)
    }

    /// Geometric-mean BE normalised IPC for one policy within one class.
    pub fn geomean_be(&self, policy: &str, class: WorkloadClass) -> f64 {
        let v: Vec<f64> = self
            .rows
            .iter()
            .filter(|r| r.class == class)
            .map(|r| r.per_policy.iter().find(|(p, _, _)| p == policy).unwrap().2)
            .collect();
        geomean(&v)
    }

    /// Renders summary plus per-workload rows.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 5: normalised HP IPC (top) and BE IPC (bottom) per workload\n",
        );
        for class in [WorkloadClass::CtFavoured, WorkloadClass::CtThwarted] {
            let tag = match class {
                WorkloadClass::CtFavoured => "CT-F",
                WorkloadClass::CtThwarted => "CT-T",
            };
            out.push_str(&format!("  [{tag}] geomeans:"));
            if let Some(first) = self.rows.first() {
                for (p, _, _) in &first.per_policy {
                    out.push_str(&format!(
                        "  {p}: HP {:.3} BE {:.3}",
                        self.geomean_hp(p, class),
                        self.geomean_be(p, class)
                    ));
                }
            }
            out.push('\n');
        }
        out.push_str("  workload                          class  policy  HPnorm  BEnorm\n");
        for r in &self.rows {
            let tag = match r.class {
                WorkloadClass::CtFavoured => "CT-F",
                WorkloadClass::CtThwarted => "CT-T",
            };
            for (p, hp, be) in &r.per_policy {
                out.push_str(&format!(
                    "  {:<32}  {tag}   {:<6}  {hp:>5.3}  {be:>5.3}\n",
                    r.label, p
                ));
            }
        }
        out
    }
}
