//! The policy × cores × workload evaluation matrix shared by Figs. 5–8.

use crate::{
    runner::{self},
    solo_table::SoloTable,
    sweep::SweepRunner,
    workloads::{ClassifiedWorkload, WorkloadClass},
};
use dicer_appmodel::Catalog;
use dicer_policy::PolicyKind;
use dicer_server::SolverStats;
use serde::{Deserialize, Serialize};

/// One (workload, policy, cores) evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MatrixCell {
    /// HP application name.
    pub hp: String,
    /// BE application name.
    pub be: String,
    /// CT-F/CT-T class of the workload.
    pub class: WorkloadClass,
    /// Policy display name ("UM", "CT", "DICER").
    pub policy: String,
    /// Employed cores.
    pub n_cores: u32,
    /// HP IPC normalised to solo.
    pub hp_norm_ipc: f64,
    /// Mean BE IPC normalised to solo.
    pub be_norm_ipc_mean: f64,
    /// Effective Utilisation (Eq. 1).
    pub efu: f64,
    /// HP slowdown.
    pub hp_slowdown: f64,
}

/// All cells for a sample of workloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalMatrix {
    /// Every evaluated cell.
    pub cells: Vec<MatrixCell>,
    /// Aggregated equilibrium-solver counters across every evaluated cell.
    /// Diagnostic only; skipped during serialization so cached artifacts
    /// stay bit-identical across solver paths.
    #[serde(skip)]
    pub solver_stats: SolverStats,
}

impl EvalMatrix {
    /// Runs every (workload, policy, cores) combination on the default
    /// (all-cores) [`SweepRunner`].
    pub fn run(
        catalog: &Catalog,
        solo: &SoloTable,
        sample: &[&ClassifiedWorkload],
        cores: &[u32],
        policies: &[PolicyKind],
    ) -> Self {
        Self::run_with(catalog, solo, sample, cores, policies, &SweepRunner::auto())
    }

    /// [`EvalMatrix::run`] on an explicit runner (`--jobs`). Cell order is
    /// the (workload, cores, policy) cross product regardless of
    /// parallelism — the sweep collects index-ordered.
    pub fn run_with(
        catalog: &Catalog,
        solo: &SoloTable,
        sample: &[&ClassifiedWorkload],
        cores: &[u32],
        policies: &[PolicyKind],
        sweep: &SweepRunner,
    ) -> Self {
        let jobs: Vec<(&ClassifiedWorkload, u32, &PolicyKind)> = sample
            .iter()
            .flat_map(|w| {
                cores
                    .iter()
                    .flat_map(move |c| policies.iter().map(move |p| (*w, *c, p)))
            })
            .collect();
        let evaluated: Vec<(MatrixCell, SolverStats)> =
            sweep.map(&jobs, |(w, n_cores, policy)| {
                let hp = catalog.get(&w.hp).expect("catalog hp");
                let be = catalog.get(&w.be).expect("catalog be");
                let out = runner::run_colocation_with(solo, hp, be, *n_cores, policy);
                (
                    MatrixCell {
                        hp: w.hp.clone(),
                        be: w.be.clone(),
                        class: w.class,
                        policy: out.policy.clone(),
                        n_cores: *n_cores,
                        hp_norm_ipc: out.hp_norm_ipc,
                        be_norm_ipc_mean: out.be_norm_ipc_mean(),
                        efu: out.efu,
                        hp_slowdown: out.hp_slowdown,
                    },
                    out.solver_stats,
                )
            });
        let mut solver_stats = SolverStats::default();
        let cells = evaluated
            .into_iter()
            .map(|(cell, stats)| {
                solver_stats.merge(&stats);
                cell
            })
            .collect();
        Self { cells, solver_stats }
    }

    /// Cells for one policy at one core count.
    pub fn slice(&self, policy: &str, n_cores: u32) -> Vec<&MatrixCell> {
        self.cells
            .iter()
            .filter(|c| c.policy == policy && c.n_cores == n_cores)
            .collect()
    }

    /// Distinct policy names, in first-seen order.
    pub fn policies(&self) -> Vec<String> {
        let mut seen = Vec::new();
        for c in &self.cells {
            if !seen.contains(&c.policy) {
                seen.push(c.policy.clone());
            }
        }
        seen
    }

    /// Distinct core counts, ascending.
    pub fn core_counts(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.n_cores).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}
