//! Figure 1: cumulative distribution of HP slowdown under UM and CT with
//! 9 co-located BEs, over the full workload space.

use crate::workloads::WorkloadSet;
use dicer_metrics::Cdf;
use serde::{Deserialize, Serialize};

/// The paper's x-axis grid for Fig. 1.
pub const GRID: [f64; 10] = [1.0, 1.1, 1.2, 1.3, 1.5, 1.7, 2.0, 3.0, 4.0, 5.0];

/// Fig. 1 result: the two slowdown CDFs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig1 {
    /// `(slowdown, fraction of workloads ≤ slowdown)` for UM.
    pub um: Vec<(f64, f64)>,
    /// Same series for CT.
    pub ct: Vec<(f64, f64)>,
    /// Workloads evaluated.
    pub n_workloads: usize,
}

/// Builds Fig. 1 from a classified workload set (classification already ran
/// the required UM and CT experiments).
pub fn run(set: &WorkloadSet) -> Fig1 {
    let um = Cdf::new(set.all.iter().map(|w| w.um_slowdown).collect());
    let ct = Cdf::new(set.all.iter().map(|w| w.ct_slowdown).collect());
    Fig1 { um: um.series(&GRID), ct: ct.series(&GRID), n_workloads: set.all.len() }
}

impl Fig1 {
    /// Fraction of workloads with slowdown ≤ `x` for a series.
    fn at(series: &[(f64, f64)], x: f64) -> f64 {
        series.iter().find(|(g, _)| (*g - x).abs() < 1e-12).map(|(_, f)| *f).unwrap_or(f64::NAN)
    }

    /// Renders the CDF rows.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "Figure 1: CDF of HP slowdown with 9 BEs (% of workloads at or below)\n",
        );
        out.push_str("  slowdown     UM      CT\n");
        for (x, _) in &self.um {
            out.push_str(&format!(
                "  {:>7.1}x {:>6.1}% {:>6.1}%\n",
                x,
                Self::at(&self.um, *x) * 100.0,
                Self::at(&self.ct, *x) * 100.0
            ));
        }
        out.push_str(&format!("  ({} multiprogrammed workloads)\n", self.n_workloads));
        out
    }
}
