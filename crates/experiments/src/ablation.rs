//! Ablation harness for DICER's design choices (DESIGN.md §5).
//!
//! Each ablation sweeps one knob of [`DicerConfig`] (or of the server
//! configuration) across a fixed, class-balanced workload panel and reports
//! the metrics the paper optimises: HP QoS, BE progress, EFU and SLO
//! conformance.

use crate::{runner, solo_table::SoloTable, sweep::SweepRunner};
use dicer_appmodel::Catalog;
use dicer_metrics::{geomean, slo_achieved};
use dicer_policy::{DicerConfig, PolicyKind};
use dicer_server::ServerConfig;
use serde::{Deserialize, Serialize};

/// A fixed panel of workloads spanning the archetype matrix: streaming,
/// cache-sensitive, cache-friendly and compute-bound HPs against
/// contentious and quiet BEs. Balanced so that both CT-F and CT-T dynamics
/// are represented.
pub const PANEL: [(&str, &str); 12] = [
    ("milc1", "gcc_base1"),      // Fig. 3: CT-T, bandwidth saturation
    ("lbm1", "bzip21"),          // streaming HP, moderate BEs
    ("omnetpp1", "gcc_base1"),   // CT-F: sensitive HP, hungry BEs
    ("mcf1", "lbm1"),            // sensitive HP, saturating BEs
    ("Xalan1", "gobmk1"),        // sensitive HP (phased), quiet-ish BEs
    ("soplex1", "hmmer1"),       // sensitive HP, friendly BEs
    ("gcc_base1", "bzip21"),     // friendly vs friendly
    ("h264ref1", "libquantum1"), // friendly HP, streaming BEs
    ("perlbench1", "namd1"),     // friendly HP (phased), quiet BEs
    ("namd1", "gcc_base1"),      // compute HP, hungry BEs
    ("povray1", "lbm1"),         // compute HP, streaming BEs
    ("GemsFDTD1", "gobmk1"),     // phased streaming HP, quiet BEs
];

/// Aggregate metrics of one configuration over the panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AblationPoint {
    /// Human-readable knob setting, e.g. `"T=0.5s"` or `"alpha=1%"`.
    pub label: String,
    /// Geometric-mean HP normalised IPC over the panel.
    pub hp_norm_geomean: f64,
    /// Geometric-mean of per-workload mean BE normalised IPC.
    pub be_norm_geomean: f64,
    /// Geometric-mean EFU.
    pub efu_geomean: f64,
    /// Fraction of the panel meeting the 80 % SLO.
    pub slo80: f64,
    /// Fraction of the panel meeting the 90 % SLO.
    pub slo90: f64,
}

/// A completed ablation sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Knob being swept.
    pub knob: String,
    /// One point per setting, in sweep order.
    pub points: Vec<AblationPoint>,
}

/// Runs the panel under one policy on one platform configuration (default
/// all-cores runner).
pub fn run_panel(
    catalog: &Catalog,
    solo: &SoloTable,
    policy: &PolicyKind,
    label: &str,
) -> AblationPoint {
    run_panel_with(catalog, solo, policy, label, &SweepRunner::auto())
}

/// [`run_panel`] on an explicit [`SweepRunner`] (`--jobs`).
pub fn run_panel_with(
    catalog: &Catalog,
    solo: &SoloTable,
    policy: &PolicyKind,
    label: &str,
    sweep: &SweepRunner,
) -> AblationPoint {
    let outcomes: Vec<_> = sweep.map(&PANEL, |(hp, be)| {
        let hp = catalog.get(hp).expect("panel app in catalog");
        let be = catalog.get(be).expect("panel app in catalog");
        runner::run_colocation_with(solo, hp, be, solo.config().n_cores, policy)
    });
    let hp_norms: Vec<f64> = outcomes.iter().map(|o| o.hp_norm_ipc).collect();
    let be_norms: Vec<f64> = outcomes.iter().map(|o| o.be_norm_ipc_mean()).collect();
    let efus: Vec<f64> = outcomes.iter().map(|o| o.efu).collect();
    let frac = |slo: f64| {
        outcomes.iter().filter(|o| slo_achieved(o.hp_norm_ipc, slo)).count() as f64
            / outcomes.len() as f64
    };
    AblationPoint {
        label: label.to_string(),
        hp_norm_geomean: geomean(&hp_norms),
        be_norm_geomean: geomean(&be_norms),
        efu_geomean: geomean(&efus),
        slo80: frac(0.80),
        slo90: frac(0.90),
    }
}

/// Sweeps a set of [`DicerConfig`] variants on the standard platform.
pub fn sweep_dicer_configs(
    catalog: &Catalog,
    solo: &SoloTable,
    knob: &str,
    variants: Vec<(String, DicerConfig)>,
) -> Ablation {
    sweep_dicer_configs_with(catalog, solo, knob, variants, &SweepRunner::auto())
}

/// [`sweep_dicer_configs`] on an explicit [`SweepRunner`]: the panel runs
/// of every variant fan out on the same bounded pool, one variant at a
/// time (points stay in sweep order).
pub fn sweep_dicer_configs_with(
    catalog: &Catalog,
    solo: &SoloTable,
    knob: &str,
    variants: Vec<(String, DicerConfig)>,
    sweep: &SweepRunner,
) -> Ablation {
    let points = variants
        .into_iter()
        .map(|(label, cfg)| {
            run_panel_with(catalog, solo, &PolicyKind::Dicer(cfg), &label, sweep)
        })
        .collect();
    Ablation { knob: knob.to_string(), points }
}

/// Sweeps the monitoring-period length `T` (which lives in the *server*
/// configuration, so each point gets its own solo table).
pub fn sweep_period(catalog: &Catalog, periods_s: &[f64]) -> Ablation {
    sweep_period_with(catalog, periods_s, &SweepRunner::auto())
}

/// [`sweep_period`] on an explicit [`SweepRunner`].
pub fn sweep_period_with(
    catalog: &Catalog,
    periods_s: &[f64],
    sweep: &SweepRunner,
) -> Ablation {
    let points = periods_s
        .iter()
        .map(|t| {
            let cfg = ServerConfig { period_s: *t, ..ServerConfig::table1() };
            let solo = SoloTable::build(catalog, cfg);
            run_panel_with(
                catalog,
                &solo,
                &PolicyKind::Dicer(DicerConfig::default()),
                &format!("T={t}s"),
                sweep,
            )
        })
        .collect();
    Ablation { knob: "monitoring period T".into(), points }
}

impl Ablation {
    /// Renders the sweep as an aligned table.
    pub fn render(&self) -> String {
        let mut out = format!("Ablation: {} ({} panel workloads)\n", self.knob, PANEL.len());
        out.push_str(&format!(
            "  {:<14} {:>8} {:>8} {:>7} {:>7} {:>7}\n",
            "setting", "HPnorm", "BEnorm", "EFU", "SLO80", "SLO90"
        ));
        for p in &self.points {
            out.push_str(&format!(
                "  {:<14} {:>8.3} {:>8.3} {:>7.3} {:>6.0}% {:>6.0}%\n",
                p.label,
                p.hp_norm_geomean,
                p.be_norm_geomean,
                p.efu_geomean,
                p.slo80 * 100.0,
                p.slo90 * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panel_names_exist_in_catalog() {
        let catalog = Catalog::paper();
        for (hp, be) in PANEL {
            assert!(catalog.get(hp).is_some(), "missing {hp}");
            assert!(catalog.get(be).is_some(), "missing {be}");
        }
    }

    #[test]
    fn panel_run_produces_sane_point() {
        let catalog = Catalog::paper();
        let solo = SoloTable::build(&catalog, ServerConfig::table1());
        let p = run_panel(&catalog, &solo, &PolicyKind::CacheTakeover, "ct");
        assert!(p.hp_norm_geomean > 0.3 && p.hp_norm_geomean <= 1.01);
        assert!(p.be_norm_geomean > 0.01 && p.be_norm_geomean <= 1.01);
        assert!(p.slo80 >= p.slo90, "SLO80 can only be easier than SLO90");
    }
}
