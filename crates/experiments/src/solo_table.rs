//! Memoised solo profiles for a catalog of applications.

use crate::sweep::SweepRunner;
use dicer_appmodel::Catalog;
use dicer_server::{solo, ServerConfig, SoloProfile};
use std::collections::HashMap;
use std::sync::Arc;

/// Solo characterisation (`IPC_alone`, solo time, per-way IPC) for every
/// catalog entry, computed once and shared across experiment runs.
#[derive(Debug, Clone)]
pub struct SoloTable {
    profiles: Arc<HashMap<String, SoloProfile>>,
    cfg: ServerConfig,
}

impl SoloTable {
    /// Profiles every catalog entry on the default (all-cores) runner.
    pub fn build(catalog: &Catalog, cfg: ServerConfig) -> Self {
        Self::build_with(catalog, cfg, &SweepRunner::auto())
    }

    /// [`SoloTable::build`] on an explicit [`SweepRunner`] (`--jobs`). The
    /// result is a map, so profiling order never matters.
    pub fn build_with(catalog: &Catalog, cfg: ServerConfig, sweep: &SweepRunner) -> Self {
        let apps: Vec<_> = catalog.profiles().collect();
        let profiles: HashMap<String, SoloProfile> = sweep
            .map(&apps, |app| (app.name.clone(), solo::profile(app, &cfg)))
            .into_iter()
            .collect();
        Self { profiles: Arc::new(profiles), cfg }
    }

    /// Assembles a table from already-computed profiles.
    pub fn from_parts(profiles: HashMap<String, SoloProfile>, cfg: ServerConfig) -> Self {
        Self { profiles: Arc::new(profiles), cfg }
    }

    /// Server configuration the profiles were measured on.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Solo profile of a named app; panics if the app is unknown (the table
    /// is always built from the same catalog the experiment iterates).
    pub fn get(&self, name: &str) -> &SoloProfile {
        self.profiles
            .get(name)
            .unwrap_or_else(|| panic!("no solo profile for {name}"))
    }

    /// Number of profiled applications.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_for_full_catalog() {
        let cat = Catalog::paper();
        let t = SoloTable::build(&cat, ServerConfig::table1());
        assert_eq!(t.len(), 59);
        let milc = t.get("milc1");
        assert!(milc.ipc_alone > 0.1 && milc.ipc_alone < 3.0);
        assert!(milc.time_alone_s > 20.0);
    }

    #[test]
    #[should_panic]
    fn unknown_app_panics() {
        let cat = Catalog::paper();
        let t = SoloTable::build(&cat, ServerConfig::table1());
        t.get("nonexistent");
    }
}
