//! Deterministic parallel execution of experiment sweeps.
//!
//! The workload matrix, the figure sweeps and the ablation grids are all
//! embarrassingly parallel: a list of independent, deterministic
//! simulations whose outputs are committed as byte-stable artifacts.
//! [`SweepRunner`] runs such a list on a bounded rayon thread pool with
//! **index-ordered collection** — `map` returns results in input order no
//! matter how the items were scheduled — so the parallel output is
//! byte-identical to the serial one (`tests/sweep_determinism.rs` pins
//! this).
//!
//! `--jobs 1` (or [`SweepRunner::serial`]) bypasses rayon entirely and
//! runs on the calling thread; the default ([`SweepRunner::auto`]) uses
//! the machine's available parallelism.

use serde::{Deserialize, Serialize};

/// A bounded worker pool for experiment sweeps.
#[derive(Debug)]
pub struct SweepRunner {
    jobs: usize,
    /// `None` on the serial path; a dedicated pool otherwise, so `--jobs`
    /// bounds sweep concurrency without reconfiguring rayon's global pool.
    pool: Option<rayon::ThreadPool>,
}

/// Degree of parallelism for a sweep, as selected on a command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every available core.
    Auto,
    /// Exactly this many workers (1 = serial).
    Fixed(u32),
}

impl Parallelism {
    /// Builds the runner this selection describes.
    pub fn runner(self) -> SweepRunner {
        match self {
            Parallelism::Auto => SweepRunner::auto(),
            Parallelism::Fixed(n) => SweepRunner::with_jobs(n as usize),
        }
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::auto()
    }
}

impl SweepRunner {
    /// One worker per available core (the `--jobs` default).
    pub fn auto() -> Self {
        Self::with_jobs(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Exactly `jobs` workers; `1` forces the serial path.
    pub fn with_jobs(jobs: usize) -> Self {
        assert!(jobs >= 1, "a sweep needs at least one worker");
        let pool = (jobs > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(jobs)
                .build()
                .expect("sweep thread pool")
        });
        Self { jobs, pool }
    }

    /// The serial runner (no rayon involvement at all).
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether `map` will actually fan out.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// This is the determinism contract of every sweep in the workspace:
    /// scheduling order is irrelevant because each item is independent and
    /// collection is index-ordered, so serial and parallel runs of a
    /// deterministic `f` produce identical vectors.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync + Send,
    {
        match &self.pool {
            None => items.iter().map(f).collect(),
            Some(pool) => {
                use rayon::prelude::*;
                pool.install(|| items.par_iter().map(|i| f(i)).collect())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let f = |x: &u64| x * x;
        let serial = SweepRunner::serial().map(&items, f);
        let parallel = SweepRunner::with_jobs(8).map(&items, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<u32> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let out = SweepRunner::with_jobs(4).map(&items, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn serial_runner_reports_itself() {
        let r = SweepRunner::serial();
        assert_eq!(r.jobs(), 1);
        assert!(!r.is_parallel());
        assert!(SweepRunner::auto().jobs() >= 1);
    }

    #[test]
    fn parallelism_selector_builds_the_right_runner() {
        assert!(!Parallelism::Fixed(1).runner().is_parallel());
        assert_eq!(Parallelism::Fixed(6).runner().jobs(), 6);
        assert_eq!(Parallelism::Auto.runner().jobs(), SweepRunner::auto().jobs());
    }

    #[test]
    #[should_panic]
    fn zero_jobs_rejected() {
        SweepRunner::with_jobs(0);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let none: Vec<u8> = Vec::new();
        assert!(SweepRunner::with_jobs(4).map(&none, |x| *x).is_empty());
    }
}
