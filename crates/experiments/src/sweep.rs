//! Deterministic parallel execution of experiment sweeps.
//!
//! The workload matrix, the figure sweeps and the ablation grids are all
//! embarrassingly parallel: a list of independent, deterministic
//! simulations whose outputs are committed as byte-stable artifacts.
//! [`SweepRunner`] runs such a list on a bounded rayon thread pool with
//! **index-ordered collection** — `map` returns results in input order no
//! matter how the items were scheduled — so the parallel output is
//! byte-identical to the serial one (`tests/sweep_determinism.rs` pins
//! this).
//!
//! `--jobs 1` (or [`SweepRunner::serial`]) bypasses rayon entirely and
//! runs on the calling thread; the default ([`SweepRunner::auto`]) uses
//! the machine's available parallelism.

use dicer_telemetry::{trace::stage, Tracer};
use serde::{Deserialize, Serialize};

/// A bounded worker pool for experiment sweeps.
#[derive(Debug)]
pub struct SweepRunner {
    jobs: usize,
    /// `None` on the serial path; a dedicated pool otherwise, so `--jobs`
    /// bounds sweep concurrency without reconfiguring rayon's global pool.
    pool: Option<rayon::ThreadPool>,
    /// Attached tracer ([`SweepRunner::with_tracer`]); disabled by default.
    tracer: Tracer,
}

/// Degree of parallelism for a sweep, as selected on a command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Parallelism {
    /// Use every available core.
    Auto,
    /// Exactly this many workers (1 = serial).
    Fixed(u32),
}

impl Parallelism {
    /// Builds the runner this selection describes.
    pub fn runner(self) -> SweepRunner {
        match self {
            Parallelism::Auto => SweepRunner::auto(),
            Parallelism::Fixed(n) => SweepRunner::with_jobs(n as usize),
        }
    }
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::auto()
    }
}

impl SweepRunner {
    /// One worker per available core (the `--jobs` default).
    pub fn auto() -> Self {
        Self::with_jobs(std::thread::available_parallelism().map_or(1, |n| n.get()))
    }

    /// Exactly `jobs` workers; `1` forces the serial path.
    pub fn with_jobs(jobs: usize) -> Self {
        assert!(jobs >= 1, "a sweep needs at least one worker");
        let pool = (jobs > 1).then(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(jobs)
                .build()
                .expect("sweep thread pool")
        });
        Self { jobs, pool, tracer: Tracer::off() }
    }

    /// Attaches a tracer: every subsequent [`SweepRunner::map`] item runs
    /// under a `sweep_job` span (lane = the worker that picked it up), so
    /// whole pipelines built on this runner — solo-table profiling,
    /// classification, the evaluation matrix — self-profile without any
    /// signature change. Span *content* per job stays deterministic;
    /// which worker lane a job lands on does not, so attach a tracer only
    /// on paths that do not feed byte-pinned artifacts.
    pub fn with_tracer(mut self, tracer: &Tracer) -> Self {
        self.tracer = tracer.clone();
        self
    }

    /// The serial runner (no rayon involvement at all).
    pub fn serial() -> Self {
        Self::with_jobs(1)
    }

    /// Configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Whether `map` will actually fan out.
    pub fn is_parallel(&self) -> bool {
        self.pool.is_some()
    }

    /// Applies `f` to every item, returning results in input order.
    ///
    /// This is the determinism contract of every sweep in the workspace:
    /// scheduling order is irrelevant because each item is independent and
    /// collection is index-ordered, so serial and parallel runs of a
    /// deterministic `f` produce identical vectors.
    pub fn map<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I) -> T + Sync + Send,
    {
        if self.tracer.enabled() {
            return self.run_items(items, |idx, item| {
                traced_job(&self.tracer, idx, item, &|i, _| f(i))
            });
        }
        self.run_items(items, |_, item| f(item))
    }

    /// [`SweepRunner::map`] with per-job span tracing: each item runs under
    /// a `sweep_job` span on a forked per-job tracer ([`Tracer::job`]) that
    /// `f` receives for nesting its own spans. The fork's lane is the rayon
    /// worker index that picked the job up (`0` on the serial path), so a
    /// Chrome export shows one row per worker; the span label is the item
    /// index. Results are index-ordered exactly like `map` — tracing never
    /// affects scheduling or output order. With a disabled tracer this *is*
    /// `map`.
    pub fn map_traced<I, T, F>(&self, items: &[I], tracer: &Tracer, f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(&I, &Tracer) -> T + Sync + Send,
    {
        if !tracer.enabled() {
            let off = Tracer::off();
            return self.run_items(items, |_, item| f(item, &off));
        }
        self.run_items(items, |idx, item| traced_job(tracer, idx, item, &f))
    }

    /// In-place variant of [`SweepRunner::map`]: applies `f` to every item
    /// through a mutable reference, returning the per-item results in input
    /// order. This is the fan-out the fleet layer steps its node sessions
    /// on — each item owns independent mutable state, so index-ordered
    /// collection keeps parallel runs byte-identical to serial ones exactly
    /// as with `map`.
    pub fn map_mut<I, T, F>(&self, items: &mut [I], f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(&mut I) -> T + Sync + Send,
    {
        // Churn-dependent batches are routinely empty: return without
        // touching the rayon pool.
        if items.is_empty() {
            return Vec::new();
        }
        match &self.pool {
            None => items.iter_mut().map(&f).collect(),
            Some(pool) => {
                use rayon::prelude::*;
                pool.install(|| items.par_iter_mut().map(&f).collect())
            }
        }
    }

    /// The one executor both borrowing entry points share: applies
    /// `f(index, item)` to every item, collecting in input order.
    fn run_items<I, T, F>(&self, items: &[I], f: F) -> Vec<T>
    where
        I: Sync,
        T: Send,
        F: Fn(usize, &I) -> T + Sync + Send,
    {
        // An empty sweep short-circuits to an empty, correctly-typed result
        // without entering the pool: the fleet layer maps churn-dependent
        // batches that are frequently empty, and dispatching a zero-item
        // parallel job would pay pool latency for nothing.
        if items.is_empty() {
            return Vec::new();
        }
        match &self.pool {
            None => items.iter().enumerate().map(|(i, item)| f(i, item)).collect(),
            Some(pool) => {
                use rayon::prelude::*;
                pool.install(|| {
                    items.par_iter().enumerate().map(|(i, item)| f(i, item)).collect()
                })
            }
        }
    }
}

/// Runs one sweep item under a `sweep_job` span on a per-job tracer fork;
/// the lane is the rayon worker index (0 on the serial path).
fn traced_job<I, T>(
    tracer: &Tracer,
    idx: usize,
    item: &I,
    f: &(impl Fn(&I, &Tracer) -> T + Sync + Send),
) -> T {
    let lane = rayon::current_thread_index().unwrap_or(0) as u32;
    let jt = tracer.job(lane);
    let _job = jt.span_labelled_with(stage::SWEEP_JOB, || format!("job{idx}"));
    f(item, &jt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let items: Vec<u64> = (0..200).collect();
        let f = |x: &u64| x * x;
        let serial = SweepRunner::serial().map(&items, f);
        let parallel = SweepRunner::with_jobs(8).map(&items, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[7], 49);
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let items: Vec<u32> = (0..100).collect();
        let calls = AtomicUsize::new(0);
        let out = SweepRunner::with_jobs(4).map(&items, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            *x
        });
        assert_eq!(out.len(), 100);
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn serial_runner_reports_itself() {
        let r = SweepRunner::serial();
        assert_eq!(r.jobs(), 1);
        assert!(!r.is_parallel());
        assert!(SweepRunner::auto().jobs() >= 1);
    }

    #[test]
    fn parallelism_selector_builds_the_right_runner() {
        assert!(!Parallelism::Fixed(1).runner().is_parallel());
        assert_eq!(Parallelism::Fixed(6).runner().jobs(), 6);
        assert_eq!(Parallelism::Auto.runner().jobs(), SweepRunner::auto().jobs());
    }

    #[test]
    #[should_panic]
    fn zero_jobs_rejected() {
        SweepRunner::with_jobs(0);
    }

    #[test]
    fn traced_map_matches_plain_and_emits_one_span_per_job() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent};
        use std::sync::Arc;
        let items: Vec<u64> = (0..24).collect();
        let plain = SweepRunner::with_jobs(4).map(&items, |x| x * 3);

        let sink = Arc::new(CollectingSink::new());
        let tracer = Tracer::new(Telemetry::new(sink.clone()));
        let traced = SweepRunner::with_jobs(4).map_traced(&items, &tracer, |x, jt| {
            let _inner = jt.span(stage::POLICY_STEP);
            x * 3
        });
        assert_eq!(plain, traced);

        let spans: Vec<_> = sink
            .take()
            .into_iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span(s) => Some(s),
                _ => None,
            })
            .collect();
        let jobs: Vec<_> = spans.iter().filter(|s| s.name == stage::SWEEP_JOB).collect();
        assert_eq!(jobs.len(), items.len(), "one sweep_job span per item");
        let mut labels: Vec<_> = jobs.iter().map(|s| s.label.clone()).collect();
        labels.sort();
        assert!(labels.contains(&"job0".to_string()) && labels.contains(&"job23".to_string()));
        // Every inner span nests under its job's span on the same fork.
        let inner = spans.iter().filter(|s| s.name == stage::POLICY_STEP).count();
        assert_eq!(inner, items.len());
        // A disabled tracer stays silent and still computes the same result.
        let off = Tracer::off();
        let quiet = SweepRunner::serial().map_traced(&items, &off, |x, _| x * 3);
        assert_eq!(quiet, plain);
        assert!(sink.take().is_empty());
    }

    #[test]
    fn attached_tracer_makes_plain_map_emit_job_spans() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent};
        use std::sync::Arc;
        let sink = Arc::new(CollectingSink::new());
        let tracer = Tracer::new(Telemetry::new(sink.clone()));
        let runner = SweepRunner::serial().with_tracer(&tracer);
        let out = runner.map(&[10u64, 20, 30], |x| x + 1);
        assert_eq!(out, vec![11, 21, 31]);
        let jobs = sink
            .take()
            .into_iter()
            .filter(|e| matches!(e, TelemetryEvent::Span(s) if s.name == stage::SWEEP_JOB))
            .count();
        assert_eq!(jobs, 3);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let none: Vec<u8> = Vec::new();
        assert!(SweepRunner::with_jobs(4).map(&none, |x| *x).is_empty());
    }

    #[test]
    fn empty_input_short_circuits_without_entering_the_pool() {
        // The closure must never run, on either path and in every entry
        // point, including the pre-pool short-circuit on the parallel
        // runner and the mutable fan-out.
        let calls = AtomicUsize::new(0);
        let none: Vec<u8> = Vec::new();
        let mut none_mut: Vec<u8> = Vec::new();
        for runner in [SweepRunner::serial(), SweepRunner::with_jobs(8)] {
            let out = runner.map(&none, |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                *x
            });
            assert!(out.is_empty());
            let out = runner.map_mut(&mut none_mut, |x| {
                calls.fetch_add(1, Ordering::Relaxed);
                *x
            });
            assert!(out.is_empty());
            let tracer = Tracer::off();
            let out = runner.map_traced(&none, &tracer, |x, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                *x
            });
            assert!(out.is_empty());
        }
        assert_eq!(calls.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn map_mut_mutates_in_place_and_matches_serial_order() {
        let mut serial: Vec<u64> = (0..128).collect();
        let mut parallel = serial.clone();
        let bump = |x: &mut u64| {
            *x += 1;
            *x * 2
        };
        let a = SweepRunner::serial().map_mut(&mut serial, bump);
        let b = SweepRunner::with_jobs(8).map_mut(&mut parallel, bump);
        assert_eq!(a, b, "results are index-ordered on both paths");
        assert_eq!(serial, parallel, "in-place mutations agree");
        assert_eq!(serial[0], 1);
        assert_eq!(a[3], 8);
    }
}
