//! Per-period run traces: record what the controller did and render a
//! human-readable timeline (used by the CLI and the quickstart example).

use crate::session::Session;
use crate::solo_table::SoloTable;
use dicer_appmodel::AppProfile;
use dicer_policy::PolicyKind;
use dicer_rdt::{MbaController, PartitionController};
use dicer_server::Server;
use serde::{Deserialize, Serialize};

/// One monitoring period's record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeriodRecord {
    /// Simulation time at period end, seconds.
    pub time_s: f64,
    /// Ways available to HP under the plan in force during the period.
    pub hp_ways: u32,
    /// HP IPC over the period.
    pub hp_ipc: f64,
    /// HP memory traffic, Gbps.
    pub hp_bw_gbps: f64,
    /// Total link traffic, Gbps.
    pub total_bw_gbps: f64,
    /// MBA throttle programmed on the BEs during the period, percent.
    pub be_mba_percent: u8,
    /// BEs admitted (scheduled) during the period.
    pub admitted_bes: u32,
}

/// A complete recorded run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunTrace {
    /// Workload label.
    pub label: String,
    /// Policy name.
    pub policy: String,
    /// Per-period records, in order.
    pub periods: Vec<PeriodRecord>,
}

/// Runs `hp` + `(n_cores - 1) × be` under `policy`, recording every period,
/// until all applications complete (or `max_periods`). A [`Session`] whose
/// pre-period hook snapshots the plan/MBA/admission *in force during* the
/// period (the post-step platform state already reflects the next one).
pub fn run_traced(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
    max_periods: u32,
) -> RunTrace {
    let cfg = *solo.config();
    let n_bes = (n_cores - 1) as usize;
    let server = Server::new(cfg, hp.clone(), vec![be.clone(); n_bes]);
    let mut session = Session::new(server, policy.build(), max_periods);

    let mut periods = Vec::new();
    session.run_observed(
        |_, server| (server.current_plan(), server.be_throttle(), server.admitted_bes()),
        |step, _, _| {
            let (in_force, mba, admitted) = step.carry;
            let sample = step.delivered.expect("clean platform always delivers");
            periods.push(PeriodRecord {
                time_s: sample.time_s,
                hp_ways: in_force.hp_ways(cfg.cache.ways),
                hp_ipc: sample.hp.ipc,
                hp_bw_gbps: sample.hp.mem_bw_gbps,
                total_bw_gbps: sample.total_bw_gbps,
                be_mba_percent: mba.percent(),
                admitted_bes: admitted,
            });
        },
    );
    RunTrace {
        label: format!("{} + {}x {}", hp.name, n_bes, be.name),
        policy: policy.name().to_string(),
        periods,
    }
}

/// Glyph ramp for the sparklines.
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

fn sparkline(values: &[f64], max: f64) -> String {
    values
        .iter()
        .map(|v| {
            let idx = ((v / max.max(1e-12)) * (RAMP.len() as f64 - 1.0)).round() as usize;
            RAMP[idx.min(RAMP.len() - 1)]
        })
        .collect()
}

impl RunTrace {
    /// Downsamples the trace to at most `n` points (mean within buckets).
    fn downsample(&self, n: usize, f: impl Fn(&PeriodRecord) -> f64) -> Vec<f64> {
        let len = self.periods.len();
        if len == 0 {
            return Vec::new();
        }
        let buckets = n.min(len);
        (0..buckets)
            .map(|b| {
                let lo = b * len / buckets;
                let hi = ((b + 1) * len / buckets).max(lo + 1);
                self.periods[lo..hi].iter().map(&f).sum::<f64>() / (hi - lo) as f64
            })
            .collect()
    }

    /// Renders a compact timeline: HP-ways, HP-IPC and total-bandwidth
    /// sparklines over the whole run.
    pub fn render(&self, width: usize) -> String {
        let ways = self.downsample(width, |p| p.hp_ways as f64);
        let ipc = self.downsample(width, |p| p.hp_ipc);
        let bw = self.downsample(width, |p| p.total_bw_gbps);
        let max_ipc = ipc.iter().cloned().fold(0.0, f64::max);
        let max_bw = bw.iter().cloned().fold(0.0, f64::max);
        let mut out = format!(
            "{} under {} — {} periods\n",
            self.label,
            self.policy,
            self.periods.len()
        );
        out.push_str(&format!("  HP ways (max 20) {}\n", sparkline(&ways, 20.0)));
        out.push_str(&format!("  HP IPC (max {max_ipc:.2}) {}\n", sparkline(&ipc, max_ipc)));
        out.push_str(&format!("  link Gbps (max {max_bw:.0}) {}\n", sparkline(&bw, max_bw)));
        if self.periods.iter().any(|p| p.be_mba_percent < 100) {
            let mba = self.downsample(width, |p| p.be_mba_percent as f64);
            out.push_str(&format!("  BE MBA %  (max 100) {}\n", sparkline(&mba, 100.0)));
        }
        let max_adm = self.periods.iter().map(|p| p.admitted_bes).max().unwrap_or(0);
        if self.periods.iter().any(|p| p.admitted_bes < max_adm) {
            let adm = self.downsample(width, |p| p.admitted_bes as f64);
            out.push_str(&format!(
                "  BEs admitted (max {max_adm}) {}\n",
                sparkline(&adm, max_adm as f64)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::Catalog;
    use dicer_policy::DicerConfig;
    use dicer_server::ServerConfig;

    #[test]
    fn traced_run_records_every_period() {
        let catalog = Catalog::paper();
        let solo = SoloTable::build(&catalog, ServerConfig::table1());
        let hp = catalog.get("gobmk1").unwrap();
        let be = catalog.get("hmmer1").unwrap();
        let trace =
            run_traced(&solo, hp, be, 4, &PolicyKind::Dicer(DicerConfig::default()), 50);
        assert!(!trace.periods.is_empty());
        assert!(trace.periods.len() <= 50);
        // Time is strictly increasing by one period.
        for w in trace.periods.windows(2) {
            assert!(w[1].time_s > w[0].time_s);
        }
        // DICER starts at CT: the first period runs with 19 HP ways.
        assert_eq!(trace.periods[0].hp_ways, 19);
        let rendered = trace.render(40);
        assert!(rendered.contains("HP ways"));
    }

    #[test]
    fn sparkline_is_width_bounded() {
        let v: Vec<f64> = (0..500).map(|i| i as f64).collect();
        let s = sparkline(&v, 500.0);
        assert_eq!(s.chars().count(), 500);
    }
}
