//! One co-location run: HP + n BEs under a policy, to completion.
//!
//! The `run_colocation*` entrypoints are thin configurations of the
//! [`Session`] runtime — they build the server and policy, let the
//! session drive the period loop, and extract the paper's metrics from
//! the final state. Each layer delegates to the next: plain → capped →
//! instrumented (telemetry bus) → traced (telemetry + span tracer).

use crate::session::Session;
use crate::solo_table::SoloTable;
use dicer_appmodel::{AppProfile, Catalog};
use dicer_metrics as metrics;
use dicer_policy::PolicyKind;
use dicer_server::{Server, ServerConfig, SolverStats};
use serde::{Deserialize, Serialize};

/// Safety cap on run length (periods). At `T = 1 s` this is over half an
/// hour of simulated time — any workload still incomplete is pathological.
pub const MAX_PERIODS: u32 = 6000;

/// Metrics extracted from one co-location run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColocationOutcome {
    /// HP application name.
    pub hp_name: String,
    /// BE application name (all BEs are instances of it, per §4.1).
    pub be_name: String,
    /// Employed cores (1 HP + n−1 BEs).
    pub n_cores: u32,
    /// Policy display name.
    pub policy: String,
    /// HP slowdown vs. running alone (≥ ~1).
    pub hp_slowdown: f64,
    /// HP IPC normalised to solo (QoS level, ≤ ~1).
    pub hp_norm_ipc: f64,
    /// Per-BE IPC normalised to solo.
    pub be_norm_ipc: Vec<f64>,
    /// Effective Utilisation (Eq. 1) over the whole run.
    pub efu: f64,
    /// Periods simulated.
    pub periods: u32,
    /// Whether every application completed at least once before the cap.
    pub completed: bool,
    /// Mean total link traffic over the run, Gbps.
    pub mean_total_bw_gbps: f64,
    /// Equilibrium-solver counters for this run. Diagnostic only — skipped
    /// during serialization so figure artifacts stay bit-identical across
    /// solver paths (cold vs accelerated).
    #[serde(skip)]
    pub solver_stats: SolverStats,
}

impl ColocationOutcome {
    /// Mean normalised BE IPC (0 when the run had no BEs — impossible here).
    pub fn be_norm_ipc_mean(&self) -> f64 {
        if self.be_norm_ipc.is_empty() {
            return 0.0;
        }
        self.be_norm_ipc.iter().sum::<f64>() / self.be_norm_ipc.len() as f64
    }
}

/// Runs `hp` against `n_cores − 1` instances of `be` under `policy`,
/// using pre-computed solo references. Runs to completion or
/// [`MAX_PERIODS`], whichever comes first. Thin wrapper: delegates down
/// to [`run_colocation_instrumented`], which configures a [`Session`].
pub fn run_colocation_with(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
) -> ColocationOutcome {
    run_colocation_capped(solo, hp, be, n_cores, policy, MAX_PERIODS)
}

/// [`run_colocation_with`] with an explicit period cap. A run cut short by
/// the cap reports `completed == false` with metrics over the simulated
/// prefix; tests use small caps to exercise the truncation path cheaply.
pub fn run_colocation_capped(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
    max_periods: u32,
) -> ColocationOutcome {
    run_colocation_instrumented(
        solo,
        hp,
        be,
        n_cores,
        policy,
        max_periods,
        &dicer_telemetry::Telemetry::off(),
    )
}

/// [`run_colocation_capped`] with a telemetry bus wired into both the
/// server (period samples, partition applies) and the policy (controller
/// state transitions). Emission is observational only: outcomes are
/// bit-identical with or without an attached sink. This is the loop the
/// `dicerd` daemon runs continuously — one [`Session`] over a clean
/// [`Server`], observed only to accumulate mean link traffic.
pub fn run_colocation_instrumented(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
    max_periods: u32,
    telemetry: &dicer_telemetry::Telemetry,
) -> ColocationOutcome {
    run_colocation_traced(
        solo,
        hp,
        be,
        n_cores,
        policy,
        max_periods,
        telemetry,
        &dicer_telemetry::Tracer::off(),
    )
}

/// [`run_colocation_instrumented`] with a span tracer on top: the session
/// emits its session → period → stage span hierarchy (and the server its
/// equilibrium-solve spans) into the tracer's own bus. Spans, like
/// telemetry, are observational only.
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_traced(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
    max_periods: u32,
    telemetry: &dicer_telemetry::Telemetry,
    tracer: &dicer_telemetry::Tracer,
) -> ColocationOutcome {
    run_colocation_traced_until(
        solo,
        hp,
        be,
        n_cores,
        policy,
        max_periods,
        telemetry,
        tracer,
        || true,
    )
}

/// [`run_colocation_traced`] with an external continuation check:
/// `keep_going()` is consulted between periods and the run stops cleanly
/// the first time it answers `false` (reporting `completed == false` with
/// metrics over the simulated prefix). The `dicerd` daemon runs its
/// replay loop through this so `/quit` and `POST /control` interrupt a
/// run in bounded time instead of waiting out the period cap. A run
/// interrupted before its first period reports zeroed rates rather than
/// dividing by zero elapsed time.
#[allow(clippy::too_many_arguments)]
pub fn run_colocation_traced_until(
    solo: &SoloTable,
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: &PolicyKind,
    max_periods: u32,
    telemetry: &dicer_telemetry::Telemetry,
    tracer: &dicer_telemetry::Tracer,
    keep_going: impl FnMut() -> bool,
) -> ColocationOutcome {
    let cfg = *solo.config();
    assert!(
        (2..=cfg.n_cores).contains(&n_cores),
        "employed cores {n_cores} out of range 2..={}",
        cfg.n_cores
    );
    let n_bes = (n_cores - 1) as usize;
    let server = Server::new(cfg, hp.clone(), vec![be.clone(); n_bes]);
    let mut session = Session::new(server, policy.build(), max_periods)
        .with_telemetry(telemetry)
        .with_tracing(tracer);

    let mut bw_acc = 0.0;
    let end = session.run_observed_until(
        |_, _| (),
        |step, _, _| {
            if let Some(s) = step.delivered {
                bw_acc += s.total_bw_gbps;
            }
        },
        keep_going,
    );
    let (server, _) = session.into_parts();

    // A run interrupted before period 1 has zero elapsed time; every rate
    // below would be 0/0. Report well-defined zeros instead of NaN.
    if end.periods == 0 {
        return ColocationOutcome {
            hp_name: hp.name.clone(),
            be_name: be.name.clone(),
            n_cores,
            policy: policy.name().to_string(),
            hp_slowdown: 0.0,
            hp_norm_ipc: 0.0,
            be_norm_ipc: vec![0.0; (n_cores - 1) as usize],
            efu: 0.0,
            periods: 0,
            completed: false,
            mean_total_bw_gbps: 0.0,
            solver_stats: server.solver_stats(),
        };
    }

    let elapsed = server.time_s();
    let cycles = cfg.freq_hz * elapsed;
    let hp_solo = solo.get(&hp.name);
    let be_solo = solo.get(&be.name);

    let hp_ipc = server.hp().retired_insns / cycles;
    let hp_norm_ipc = metrics::normalised_ipc(hp_ipc, hp_solo.ipc_alone);
    let be_norm_ipc: Vec<f64> = server
        .bes()
        .iter()
        .map(|b| metrics::normalised_ipc(b.retired_insns / cycles, be_solo.ipc_alone))
        .collect();

    let mut normalised = vec![hp_norm_ipc];
    normalised.extend(be_norm_ipc.iter().copied());

    ColocationOutcome {
        hp_name: hp.name.clone(),
        be_name: be.name.clone(),
        n_cores,
        policy: policy.name().to_string(),
        // HP executes continuously, so its sustained time-per-instruction
        // inflation equals the inverse of its normalised IPC.
        hp_slowdown: 1.0 / hp_norm_ipc,
        hp_norm_ipc,
        be_norm_ipc,
        efu: metrics::efu(&normalised),
        periods: end.periods,
        completed: end.completed,
        mean_total_bw_gbps: bw_acc / end.periods as f64,
        solver_stats: server.solver_stats(),
    }
}

/// Convenience wrapper building a single-use solo table. Prefer
/// [`run_colocation_with`] (with a shared [`SoloTable`]) inside sweeps.
pub fn run_colocation(
    hp: &AppProfile,
    be: &AppProfile,
    n_cores: u32,
    policy: PolicyKind,
) -> ColocationOutcome {
    let mut catalog_like = std::collections::BTreeMap::new();
    catalog_like.insert(hp.name.clone(), hp.clone());
    catalog_like.insert(be.name.clone(), be.clone());
    // Build a tiny ad-hoc catalog via the public Catalog of the two apps is
    // not constructible; profile directly instead.
    let cfg = ServerConfig::table1();
    let solo = SoloTable::build_from_profiles(catalog_like.values(), cfg);
    run_colocation_with(&solo, hp, be, n_cores, &policy)
}

impl SoloTable {
    /// Builds a table from an explicit profile iterator (used by
    /// [`run_colocation`] and tests that don't need the full catalog).
    pub fn build_from_profiles<'a, I: IntoIterator<Item = &'a AppProfile>>(
        apps: I,
        cfg: ServerConfig,
    ) -> Self {
        let mut map = std::collections::HashMap::new();
        for app in apps {
            map.insert(app.name.clone(), dicer_server::solo::profile(app, &cfg));
        }
        Self::from_parts(map, cfg)
    }
}

/// Builds the standard catalog + solo table pair used by every figure.
pub fn standard_setup() -> (Catalog, SoloTable) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    (catalog, solo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, SoloTable) {
        standard_setup()
    }

    #[test]
    fn um_run_completes_and_reports_sane_metrics() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gobmk1").unwrap();
        let out = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        assert!(out.completed, "run hit the period cap");
        assert!(out.hp_slowdown >= 0.99, "slowdown {}", out.hp_slowdown);
        assert!(out.hp_slowdown < 5.0);
        assert!(out.hp_norm_ipc <= 1.01);
        assert_eq!(out.be_norm_ipc.len(), 9);
        assert!(out.efu > 0.0 && out.efu <= 1.01);
    }

    #[test]
    fn ct_protects_cache_sensitive_hp_better_than_um() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("lbm1").unwrap(); // streaming BEs trash the cache
        let um = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        let ct = run_colocation_with(&solo, hp, be, 10, &PolicyKind::CacheTakeover);
        assert!(
            ct.hp_slowdown < um.hp_slowdown,
            "CT {} should beat UM {}",
            ct.hp_slowdown,
            um.hp_slowdown
        );
    }

    #[test]
    fn ct_starves_bes() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gcc_base1").unwrap();
        let um = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        let ct = run_colocation_with(&solo, hp, be, 10, &PolicyKind::CacheTakeover);
        assert!(ct.be_norm_ipc_mean() < um.be_norm_ipc_mean());
        assert!(ct.efu < um.efu, "CT must waste utilisation: {} vs {}", ct.efu, um.efu);
    }

    #[test]
    fn dicer_runs_to_completion() {
        let (cat, solo) = setup();
        let hp = cat.get("milc1").unwrap();
        let be = cat.get("gcc_base1").unwrap();
        let out = run_colocation_with(
            &solo,
            hp,
            be,
            10,
            &PolicyKind::Dicer(dicer_policy::DicerConfig::default()),
        );
        assert!(out.completed);
        assert!(out.hp_norm_ipc > 0.3);
    }

    #[test]
    fn fewer_cores_fewer_bes() {
        let (cat, solo) = setup();
        let hp = cat.get("namd1").unwrap();
        let be = cat.get("povray1").unwrap();
        let out = run_colocation_with(&solo, hp, be, 4, &PolicyKind::Unmanaged);
        assert_eq!(out.be_norm_ipc.len(), 3);
    }

    #[test]
    fn be_norm_ipc_mean_guards_empty() {
        let out = ColocationOutcome {
            hp_name: "hp".into(),
            be_name: "be".into(),
            n_cores: 2,
            policy: "UM".into(),
            hp_slowdown: 1.0,
            hp_norm_ipc: 1.0,
            be_norm_ipc: Vec::new(),
            efu: 1.0,
            periods: 1,
            completed: true,
            mean_total_bw_gbps: 0.0,
            solver_stats: SolverStats::default(),
        };
        assert_eq!(out.be_norm_ipc_mean(), 0.0, "empty BE set must not yield NaN");
    }

    #[test]
    fn capped_run_reports_incomplete() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gobmk1").unwrap();
        let out = run_colocation_capped(&solo, hp, be, 10, &PolicyKind::Unmanaged, 5);
        assert_eq!(out.periods, 5, "must stop exactly at the cap");
        assert!(!out.completed, "a 5-period prefix cannot have finished");
        // Prefix metrics must still be well-defined (no NaN/zero-division).
        assert!(out.hp_norm_ipc.is_finite() && out.hp_norm_ipc > 0.0);
        assert!(out.mean_total_bw_gbps.is_finite() && out.mean_total_bw_gbps > 0.0);
        assert!(out.efu.is_finite());
    }

    #[test]
    fn cap_equal_to_full_run_matches_uncapped() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gobmk1").unwrap();
        let full = run_colocation_with(&solo, hp, be, 10, &PolicyKind::Unmanaged);
        let capped =
            run_colocation_capped(&solo, hp, be, 10, &PolicyKind::Unmanaged, MAX_PERIODS);
        assert_eq!(full, capped, "delegation must not change results");
    }

    #[test]
    fn instrumented_run_matches_plain_and_feeds_the_bus() {
        use dicer_telemetry::{CollectingSink, Telemetry};
        use std::sync::Arc;
        let (cat, solo) = setup();
        let hp = cat.get("milc1").unwrap();
        let be = cat.get("gcc_base1").unwrap();
        let policy = PolicyKind::Dicer(dicer_policy::DicerConfig::default());
        let plain = run_colocation_capped(&solo, hp, be, 10, &policy, 30);
        let bus = Arc::new(CollectingSink::new());
        let wired = run_colocation_instrumented(
            &solo,
            hp,
            be,
            10,
            &policy,
            30,
            &Telemetry::new(bus.clone()),
        );
        assert_eq!(plain, wired, "telemetry must not change outcomes");
        let events = bus.take();
        let periods = events.iter().filter(|e| e.kind() == "period").count();
        assert_eq!(periods as u32, wired.periods, "one period event per period");
        assert!(events.iter().any(|e| e.kind() == "partition_applied"));
        assert!(events.iter().any(|e| e.kind() == "controller"));
    }

    #[test]
    fn traced_run_matches_plain_and_emits_spans() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent, Tracer};
        use std::sync::Arc;
        let (cat, solo) = setup();
        let hp = cat.get("milc1").unwrap();
        let be = cat.get("gcc_base1").unwrap();
        let policy = PolicyKind::Dicer(dicer_policy::DicerConfig::default());
        let plain = run_colocation_capped(&solo, hp, be, 10, &policy, 20);
        let spans = Arc::new(CollectingSink::new());
        let traced = run_colocation_traced(
            &solo,
            hp,
            be,
            10,
            &policy,
            20,
            &Telemetry::off(),
            &Tracer::new(Telemetry::new(spans.clone())),
        );
        assert_eq!(plain, traced, "tracing must not change outcomes");
        let names: Vec<&str> = spans
            .take()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span(s) => Some(s.name),
                _ => None,
            })
            .collect();
        assert_eq!(names.iter().filter(|n| **n == "period").count() as u32, traced.periods);
        assert!(names.contains(&"equilibrium_solve"), "server stages are traced too");
        assert!(names.contains(&"partition_apply"), "DICER changes plans mid-run");
        assert_eq!(names.last(), Some(&"session"), "the session span closes last");
    }

    #[test]
    fn interruptible_run_stops_between_periods_with_finite_metrics() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gobmk1").unwrap();
        let mut budget = 7;
        let out = run_colocation_traced_until(
            &solo,
            hp,
            be,
            10,
            &PolicyKind::Unmanaged,
            MAX_PERIODS,
            &dicer_telemetry::Telemetry::off(),
            &dicer_telemetry::Tracer::off(),
            || {
                if budget == 0 {
                    return false;
                }
                budget -= 1;
                true
            },
        );
        assert_eq!(out.periods, 7);
        assert!(!out.completed);
        assert!(out.hp_norm_ipc.is_finite() && out.hp_norm_ipc > 0.0);
        assert!(out.mean_total_bw_gbps.is_finite() && out.mean_total_bw_gbps > 0.0);
    }

    #[test]
    fn run_interrupted_before_first_period_reports_zeros_not_nan() {
        let (cat, solo) = setup();
        let hp = cat.get("omnetpp1").unwrap();
        let be = cat.get("gobmk1").unwrap();
        let out = run_colocation_traced_until(
            &solo,
            hp,
            be,
            10,
            &PolicyKind::Unmanaged,
            MAX_PERIODS,
            &dicer_telemetry::Telemetry::off(),
            &dicer_telemetry::Tracer::off(),
            || false,
        );
        assert_eq!((out.periods, out.completed), (0, false));
        assert_eq!(out.hp_norm_ipc, 0.0);
        assert_eq!(out.mean_total_bw_gbps, 0.0);
        assert!(out.efu.is_finite());
        assert_eq!(out.be_norm_ipc.len(), 9);
        assert!(out.be_norm_ipc.iter().all(|v| *v == 0.0));
    }

    #[test]
    #[should_panic]
    fn zero_period_cap_rejected() {
        let (cat, solo) = setup();
        let hp = cat.get("namd1").unwrap();
        run_colocation_capped(&solo, hp, hp, 2, &PolicyKind::Unmanaged, 0);
    }

    #[test]
    #[should_panic]
    fn one_core_rejected() {
        let (cat, solo) = setup();
        let hp = cat.get("namd1").unwrap();
        run_colocation_with(&solo, hp, hp, 1, &PolicyKind::Unmanaged);
    }
}
