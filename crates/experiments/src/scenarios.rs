//! Scripted fault-injection scenarios against the DICER controller.
//!
//! A [`FaultScenario`] replays a perturbation schedule — sensor noise,
//! dropped/stale samples, flaky partition applies — against [`Dicer`]
//! driving a [`FaultyPlatform`]-wrapped server, and records every
//! per-period decision as a [`DecisionRecord`]. Records serialise to JSONL
//! for golden-file comparison: the whole pipeline is seeded, so the same
//! scenario with the same seed produces a byte-identical trace.
//!
//! Trace rendering is delegated to `dicer-telemetry`: each record maps to a
//! [`dicer_telemetry::DecisionEvent`] and the run summary to a
//! [`dicer_telemetry::ScenarioSummaryEvent`], emitted through a
//! [`dicer_telemetry::TelemetrySink`]. The JSONL a golden file holds and
//! the JSONL a live sink (or the `dicerd` daemon) sees are the same bytes
//! from the same renderer.

use crate::session::Session;
use crate::solo_table::SoloTable;
use dicer_appmodel::Catalog;
use dicer_membw::Ewma;
use dicer_policy::{Dicer, DicerConfig, DicerStats};
use dicer_rdt::{
    FaultConfig, FaultStats, FaultyPlatform, PartitionController,
};
use dicer_server::Server;
use dicer_telemetry::{
    DecisionEvent, JsonlSink, ScenarioSummaryEvent, Telemetry, TelemetryEvent,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Smoothing factor for the total-link-bandwidth EWMA recorded in traces
/// (diagnostic channel; holds over dropped samples).
const TRACE_BW_ALPHA: f64 = 0.3;

/// One scripted robustness scenario: a co-location, a controller
/// configuration and a fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// Scenario label (also the golden-trace file stem).
    pub name: String,
    /// HP application name (from the paper catalog).
    pub hp: String,
    /// BE application name; `n_cores − 1` instances run.
    pub be: String,
    /// Employed cores (1 HP + n−1 BEs).
    pub n_cores: u32,
    /// Controller configuration under test.
    pub dicer: DicerConfig,
    /// Fault regime in force from period 0.
    pub faults: FaultConfig,
    /// Scripted regime switches: at the start of period `p`, switch the
    /// injector to the given configuration (ascending by period).
    pub schedule: Vec<(u32, FaultConfig)>,
    /// Periods to simulate (the run also stops when all apps complete).
    pub periods: u32,
}

/// One period's controller decision under (possibly faulted) monitoring.
///
/// Sample-derived fields are `None` on a dropped period — the controller
/// saw nothing, and the trace says so rather than inventing a value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// Period index, from 0.
    pub period: u32,
    /// Simulation time at period end, seconds (ground truth).
    pub time_s: f64,
    /// Controller state after the decision ([`dicer_policy::DicerState`] label).
    pub state: String,
    /// Whether the workload is still classified CT-Favoured.
    pub ct_favoured: bool,
    /// HP ways the controller intends to be in force.
    pub target_hp_ways: u32,
    /// HP ways actually in force on the platform (differs from the target
    /// while an apply is pending or was abandoned).
    pub applied_hp_ways: u32,
    /// HP IPC as delivered to the controller (post-injection).
    pub hp_ipc: Option<f64>,
    /// HP bandwidth as delivered, Gbps.
    pub hp_bw_gbps: Option<f64>,
    /// Total link traffic as delivered, Gbps.
    pub total_bw_gbps: Option<f64>,
    /// EWMA of delivered total traffic (holds over dropped periods).
    pub total_bw_ewma_gbps: Option<f64>,
    /// Whether this period's sample was dropped.
    pub dropped: bool,
    /// Fault events observed this period ([`dicer_rdt::FaultEvent`] labels).
    pub events: Vec<String>,
    /// Cumulative controller decision counters after this period.
    pub stats: DicerStats,
}

/// A completed scenario run: the decision trace plus final counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// Scenario label.
    pub scenario: String,
    /// Per-period decisions, in order.
    pub records: Vec<DecisionRecord>,
    /// Final controller counters.
    pub dicer_stats: DicerStats,
    /// Final injector counters.
    pub fault_stats: FaultStats,
}

impl DecisionRecord {
    /// The telemetry-bus view of this record. Field-for-field; the event is
    /// what actually renders to JSON.
    pub fn to_event(&self) -> DecisionEvent {
        DecisionEvent {
            period: self.period,
            time_s: self.time_s,
            state: self.state.clone(),
            ct_favoured: self.ct_favoured,
            target_hp_ways: self.target_hp_ways,
            applied_hp_ways: self.applied_hp_ways,
            hp_ipc: self.hp_ipc,
            hp_bw_gbps: self.hp_bw_gbps,
            total_bw_gbps: self.total_bw_gbps,
            total_bw_ewma_gbps: self.total_bw_ewma_gbps,
            dropped: self.dropped,
            events: self.events.clone(),
            stats: self.stats.into(),
        }
    }

    /// One JSON object, fixed field order, rendered by the telemetry crate's
    /// hand-rolled emitter so the byte-identity contract depends only on
    /// that crate and the stability of `f64`'s `Display`.
    pub fn to_json(&self) -> String {
        self.to_event().to_json()
    }
}

impl ScenarioResult {
    /// The telemetry-bus view of the run summary.
    pub fn summary_event(&self) -> ScenarioSummaryEvent {
        ScenarioSummaryEvent {
            scenario: self.scenario.clone(),
            periods: self.records.len(),
            dicer_stats: self.dicer_stats.into(),
            fault_stats: self.fault_stats.into(),
        }
    }

    /// Re-emits the decision trace — one [`TelemetryEvent::Decision`] per
    /// record, then one [`TelemetryEvent::ScenarioSummary`] — into `trace`.
    /// Short-circuits on a detached channel: every `Decision` event clones
    /// the record's state string and event list, so none of them is built
    /// unless a sink will actually see it.
    pub fn emit_trace(&self, trace: &Telemetry) {
        if !trace.enabled() {
            return;
        }
        for r in &self.records {
            trace.emit(&TelemetryEvent::Decision(r.to_event()));
        }
        trace.emit(&TelemetryEvent::ScenarioSummary(self.summary_event()));
    }

    /// Serialises the run as JSONL: one line per period, then one summary
    /// line. Byte-stable for a fixed scenario and seed. Runs through a
    /// [`JsonlSink`] — the golden files exercise the same sink code path a
    /// live consumer attaches.
    pub fn to_jsonl(&self) -> String {
        let sink = Arc::new(JsonlSink::new());
        self.emit_trace(&Telemetry::new(sink.clone()));
        sink.take()
    }
}

/// Replays one scenario to completion (or its period budget), recording
/// every controller decision.
///
/// The control loop **is** [`Session`] — the same runtime behind
/// [`crate::runner::run_colocation_with`] — configured with the fault
/// layer in between: samples arrive through
/// [`FaultyPlatform::step_period_faulted`] (dropped periods reach the
/// controller as [`Dicer::on_missing_period`]), and plan applies go back
/// through the faulted [`PartitionController`] path. The scripted fault
/// schedule runs as the session's pre-period hook; the decision trace is
/// recorded by its observer.
pub fn run_scenario(catalog: &Catalog, solo: &SoloTable, sc: &FaultScenario) -> ScenarioResult {
    run_scenario_with(catalog, solo, sc, &Telemetry::off(), &Telemetry::off())
}

/// [`run_scenario`] with live telemetry.
///
/// Two channels, because they serve different consumers:
/// - `trace` receives the byte-stable decision trace — one
///   [`TelemetryEvent::Decision`] per period and a final
///   [`TelemetryEvent::ScenarioSummary`] — exactly the lines
///   [`ScenarioResult::to_jsonl`] renders. Attach a [`JsonlSink`] here and
///   the stream is the golden-file format, produced as the run happens.
/// - `bus` is wired into the controller, the fault layer and the server, so
///   it sees the full-fidelity event stream (state transitions, fault
///   injections, period samples, partition applies). The `dicerd` daemon
///   feeds its ring buffer and metrics from this channel.
///
/// Both channels are observational: decisions are bit-identical whether or
/// not sinks are attached.
pub fn run_scenario_with(
    catalog: &Catalog,
    solo: &SoloTable,
    sc: &FaultScenario,
    trace: &Telemetry,
    bus: &Telemetry,
) -> ScenarioResult {
    run_scenario_traced(catalog, solo, sc, trace, bus, &dicer_telemetry::Tracer::off())
}

/// [`run_scenario_with`] with a span tracer on top: the session emits its
/// span hierarchy (including the fault layer's `apply_retry` and the
/// server's `equilibrium_solve` stages) into the tracer's bus. Spans are
/// observational only — the decision trace stays byte-identical.
pub fn run_scenario_traced(
    catalog: &Catalog,
    solo: &SoloTable,
    sc: &FaultScenario,
    trace: &Telemetry,
    bus: &Telemetry,
    tracer: &dicer_telemetry::Tracer,
) -> ScenarioResult {
    let cfg = *solo.config();
    let n_ways = cfg.cache.ways;
    sc.dicer.validate_for(n_ways).expect("scenario DicerConfig invalid");
    sc.faults.validate().expect("scenario FaultConfig invalid");
    let hp = catalog.get(&sc.hp).expect("unknown HP app in scenario");
    let be = catalog.get(&sc.be).expect("unknown BE app in scenario");
    assert!(
        (2..=cfg.n_cores).contains(&sc.n_cores),
        "employed cores {} out of range 2..={}",
        sc.n_cores,
        cfg.n_cores
    );
    debug_assert!(
        sc.schedule.windows(2).all(|w| w[0].0 < w[1].0),
        "fault schedule must be ascending by period"
    );

    let n_bes = (sc.n_cores - 1) as usize;
    let server = Server::new(cfg, hp.clone(), vec![be.clone(); n_bes]);
    let plat = FaultyPlatform::new(server, sc.faults.clone());
    // The session wires `bus` through the whole stack (fault layer, server,
    // controller) and lands the initial plan outside the monitored path,
    // exactly as the clean runner does.
    let mut session = Session::new(plat, Dicer::new(sc.dicer.clone()), sc.periods)
        .with_telemetry(bus)
        .with_tracing(tracer);

    let mut bw_ewma = Ewma::new(TRACE_BW_ALPHA);
    let mut schedule = sc.schedule.iter();
    let mut next_switch = schedule.next();
    let mut records = Vec::with_capacity(sc.periods as usize);

    session.run_observed(
        |period, plat| {
            if let Some((p, faults)) = next_switch {
                if *p == period {
                    plat.set_faults(faults.clone());
                    next_switch = schedule.next();
                }
            }
        },
        |step, plat, dicer| {
            let delivered = step.delivered;
            let ewma = bw_ewma.update_missing(delivered.map(|s| s.total_bw_gbps));
            let record = DecisionRecord {
                period: step.period,
                time_s: plat.inner().time_s(),
                state: dicer.state().as_str().to_string(),
                ct_favoured: dicer.ct_favoured(),
                target_hp_ways: dicer.hp_ways(),
                applied_hp_ways: plat.current_plan().hp_ways(n_ways),
                hp_ipc: delivered.map(|s| s.hp.ipc),
                hp_bw_gbps: delivered.map(|s| s.hp.mem_bw_gbps),
                total_bw_gbps: delivered.map(|s| s.total_bw_gbps),
                total_bw_ewma_gbps: ewma,
                dropped: delivered.is_none(),
                events: plat.events().iter().map(|e| e.as_str().to_string()).collect(),
                stats: dicer.stats,
            };
            trace.emit_with(|| TelemetryEvent::Decision(record.to_event()));
            records.push(record);
        },
    );

    let (plat, dicer) = session.into_parts();
    let result = ScenarioResult {
        scenario: sc.name.clone(),
        records,
        dicer_stats: dicer.stats,
        fault_stats: plat.fault_stats(),
    };
    trace.emit_with(|| TelemetryEvent::ScenarioSummary(result.summary_event()));
    result
}

/// The standard robustness suite: one clean control per workload class
/// plus one scenario per fault family, all derived from `seed`.
///
/// Workloads follow the repo's canonical pairs: `milc1 + gcc_base1`
/// saturates the link (CT-Thwarted — exercises sampling), while
/// `omnetpp1 + gobmk1` stays CT-Favoured (exercises shrink/reset).
pub fn standard_suite(seed: u64) -> Vec<FaultScenario> {
    const PERIODS: u32 = 60;
    const CORES: u32 = 10;
    let scenario = |name: &str, hp: &str, be: &str, faults: FaultConfig| FaultScenario {
        name: name.to_string(),
        hp: hp.to_string(),
        be: be.to_string(),
        n_cores: CORES,
        dicer: DicerConfig::default(),
        faults,
        schedule: Vec::new(),
        periods: PERIODS,
    };

    let sensor_noise = FaultConfig {
        ipc_noise: dicer_rdt::NoiseSpec::multiplicative(0.05),
        bw_noise: dicer_rdt::NoiseSpec::multiplicative(0.10),
        ..FaultConfig::none(seed)
    };
    let drop_storm = FaultConfig { drop_prob: 0.5, ..FaultConfig::none(seed) };
    let stale = FaultConfig { stale_prob: 0.3, ..FaultConfig::none(seed) };
    let flaky_actuator = FaultConfig {
        apply_fail_prob: 0.3,
        apply_delay_prob: 0.2,
        max_apply_retries: 3,
        ..FaultConfig::none(seed)
    };
    let quantised = FaultConfig {
        occupancy_quantum_bytes: 64 * 1024,
        ..FaultConfig::none(seed)
    };
    let kitchen_sink = FaultConfig {
        ipc_noise: dicer_rdt::NoiseSpec::multiplicative(0.05),
        bw_noise: dicer_rdt::NoiseSpec::multiplicative(0.10),
        drop_prob: 0.1,
        stale_prob: 0.1,
        occupancy_quantum_bytes: 64 * 1024,
        apply_fail_prob: 0.1,
        apply_delay_prob: 0.1,
        max_apply_retries: 2,
        ..FaultConfig::none(seed)
    };

    let mut suite = vec![
        scenario("clean_ctf", "omnetpp1", "gobmk1", FaultConfig::none(seed)),
        scenario("clean_ctt", "milc1", "gcc_base1", FaultConfig::none(seed)),
        scenario("sensor_noise", "milc1", "gcc_base1", sensor_noise),
        scenario("stale_counters", "milc1", "gcc_base1", stale),
        scenario("flaky_actuator", "omnetpp1", "gobmk1", flaky_actuator),
        scenario("quantised_cmt", "milc1", "gcc_base1", quantised),
        scenario("kitchen_sink", "omnetpp1", "gobmk1", kitchen_sink.clone()),
    ];
    // A bounded outage: clean warm-up, a 20-period drop storm, recovery.
    let mut storm = scenario("drop_storm", "omnetpp1", "gobmk1", FaultConfig::none(seed));
    storm.schedule = vec![(15, drop_storm), (35, FaultConfig::none(seed))];
    suite.push(storm);
    // The kitchen sink again with the faults lifted mid-run, checking the
    // controller settles back into clean-stream behaviour.
    let mut recovery = scenario("fault_recovery", "milc1", "gcc_base1", kitchen_sink);
    recovery.schedule = vec![(30, FaultConfig::none(seed))];
    suite.push(recovery);
    suite
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::standard_setup;

    fn scenario_by_name(seed: u64, name: &str) -> FaultScenario {
        standard_suite(seed)
            .into_iter()
            .find(|s| s.name == name)
            .expect("scenario in suite")
    }

    #[test]
    fn same_seed_reruns_are_byte_identical() {
        let (cat, solo) = standard_setup();
        let sc = scenario_by_name(7, "kitchen_sink");
        let a = run_scenario(&cat, &solo, &sc).to_jsonl();
        let b = run_scenario(&cat, &solo, &sc).to_jsonl();
        assert_eq!(a, b, "same seed must reproduce the exact trace");
    }

    #[test]
    fn different_seeds_diverge_under_noise() {
        let (cat, solo) = standard_setup();
        let a = run_scenario(&cat, &solo, &scenario_by_name(1, "sensor_noise"));
        let b = run_scenario(&cat, &solo, &scenario_by_name(2, "sensor_noise"));
        assert_ne!(a.to_jsonl(), b.to_jsonl(), "noise must depend on the seed");
    }

    #[test]
    fn clean_scenario_reports_no_faults() {
        let (cat, solo) = standard_setup();
        let out = run_scenario(&cat, &solo, &scenario_by_name(7, "clean_ctf"));
        assert_eq!(out.fault_stats, dicer_rdt::FaultStats::default());
        assert_eq!(out.dicer_stats.missing_periods, 0);
        assert!(out.records.iter().all(|r| !r.dropped && r.events.is_empty()));
        assert!(out.records.iter().all(|r| r.target_hp_ways == r.applied_hp_ways));
    }

    #[test]
    fn dropped_periods_match_missing_period_count() {
        let (cat, solo) = standard_setup();
        let out = run_scenario(&cat, &solo, &scenario_by_name(7, "drop_storm"));
        let dropped = out.records.iter().filter(|r| r.dropped).count() as u64;
        assert!(dropped > 0, "a 50% drop storm over 20 periods must drop something");
        assert_eq!(out.dicer_stats.missing_periods, dropped);
        assert_eq!(out.fault_stats.dropped_samples, dropped);
    }

    #[test]
    fn schedule_confines_faults_to_their_window() {
        let (cat, solo) = standard_setup();
        let out = run_scenario(&cat, &solo, &scenario_by_name(7, "drop_storm"));
        for r in &out.records {
            if r.period < 15 || r.period >= 35 {
                assert!(!r.dropped, "period {} outside the storm was dropped", r.period);
            }
        }
    }

    #[test]
    fn ewma_holds_over_dropped_periods() {
        let (cat, solo) = standard_setup();
        let out = run_scenario(&cat, &solo, &scenario_by_name(7, "drop_storm"));
        let mut prev = None;
        for r in &out.records {
            if r.dropped {
                assert_eq!(r.total_bw_ewma_gbps, prev, "EWMA must hold on a drop");
            }
            prev = r.total_bw_ewma_gbps;
        }
    }

    #[test]
    fn live_trace_sink_matches_post_hoc_jsonl() {
        let (cat, solo) = standard_setup();
        let sc = scenario_by_name(7, "kitchen_sink");
        let sink = Arc::new(JsonlSink::new());
        let out =
            run_scenario_with(&cat, &solo, &sc, &Telemetry::new(sink.clone()), &Telemetry::off());
        assert_eq!(sink.take(), out.to_jsonl(), "live stream and post-hoc render must agree");
    }

    #[test]
    fn bus_channel_carries_full_fidelity_events() {
        let (cat, solo) = standard_setup();
        let sc = scenario_by_name(7, "kitchen_sink");
        let bus = Arc::new(dicer_telemetry::CollectingSink::new());
        run_scenario_with(&cat, &solo, &sc, &Telemetry::off(), &Telemetry::new(bus.clone()));
        let events = bus.take();
        let kinds: std::collections::BTreeSet<&str> = events.iter().map(|e| e.kind()).collect();
        for k in ["period", "controller", "fault", "partition_applied"] {
            assert!(kinds.contains(k), "bus missing {k} events, saw {kinds:?}");
        }
    }

    #[test]
    fn attached_sinks_leave_the_trace_byte_identical() {
        let (cat, solo) = standard_setup();
        let sc = scenario_by_name(7, "kitchen_sink");
        let plain = run_scenario(&cat, &solo, &sc);
        let wired = run_scenario_with(
            &cat,
            &solo,
            &sc,
            &Telemetry::new(Arc::new(JsonlSink::new())),
            &Telemetry::new(Arc::new(dicer_telemetry::CollectingSink::new())),
        );
        assert_eq!(plain.to_jsonl(), wired.to_jsonl(), "telemetry must be observational only");
    }

    #[test]
    fn traced_scenario_keeps_the_trace_byte_identical() {
        use dicer_telemetry::{CollectingSink, TelemetryEvent, Tracer};
        let (cat, solo) = standard_setup();
        let sc = scenario_by_name(7, "flaky_actuator");
        let plain = run_scenario(&cat, &solo, &sc);
        let spans = Arc::new(CollectingSink::new());
        let traced = run_scenario_traced(
            &cat,
            &solo,
            &sc,
            &Telemetry::off(),
            &Telemetry::off(),
            &Tracer::new(Telemetry::new(spans.clone())),
        );
        assert_eq!(plain.to_jsonl(), traced.to_jsonl(), "spans must be observational only");
        let names: Vec<&str> = spans
            .take()
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Span(s) => Some(s.name),
                _ => None,
            })
            .collect();
        assert!(
            names.contains(&"apply_retry"),
            "a flaky actuator must exercise the retry loop: {names:?}"
        );
        assert!(names.contains(&"equilibrium_solve"), "server stages trace through the wrapper");
    }

    #[test]
    fn jsonl_has_one_line_per_period_plus_summary() {
        let (cat, solo) = standard_setup();
        let out = run_scenario(&cat, &solo, &scenario_by_name(7, "clean_ctt"));
        let jsonl = out.to_jsonl();
        assert_eq!(jsonl.lines().count(), out.records.len() + 1);
        assert!(jsonl.lines().last().unwrap().contains("clean_ctt"));
    }
}
