//! Per-period monitoring samples (what CMT/MBM + perf counters expose).

use serde::{Deserialize, Serialize};

/// Counters for a single application over one monitoring period.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PerAppSample {
    /// Instructions per cycle over the period.
    pub ipc: f64,
    /// LLC occupancy at period end, in bytes (CMT).
    pub llc_occupancy_bytes: u64,
    /// Memory traffic over the period, in Gbps (MBM).
    pub mem_bw_gbps: f64,
    /// LLC miss ratio over the period (perf counters).
    pub miss_ratio: f64,
}

/// The full monitoring snapshot DICER consumes at the end of each period
/// (Listing 1: `measure_IPC_HP`, `measure_MemBW_HP`, `measure_MemBW`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PeriodSample {
    /// Simulation (or wall-clock) time at period end, seconds.
    pub time_s: f64,
    /// HP's counters.
    pub hp: PerAppSample,
    /// Each BE's counters, in core order.
    pub bes: Vec<PerAppSample>,
    /// Total traffic on the memory link, Gbps (`MemBW` in Listing 1).
    pub total_bw_gbps: f64,
}

impl PeriodSample {
    /// Aggregate BE traffic in Gbps.
    pub fn be_bw_gbps(&self) -> f64 {
        self.bes.iter().map(|b| b.mem_bw_gbps).sum()
    }

    /// Mean BE IPC (0 when there are no BEs).
    pub fn be_mean_ipc(&self) -> f64 {
        if self.bes.is_empty() {
            0.0
        } else {
            self.bes.iter().map(|b| b.ipc).sum::<f64>() / self.bes.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app(ipc: f64, bw: f64) -> PerAppSample {
        PerAppSample { ipc, llc_occupancy_bytes: 0, mem_bw_gbps: bw, miss_ratio: 0.1 }
    }

    #[test]
    fn be_aggregates() {
        let s = PeriodSample {
            time_s: 1.0,
            hp: app(1.0, 5.0),
            bes: vec![app(0.5, 2.0), app(1.5, 4.0)],
            total_bw_gbps: 11.0,
        };
        assert!((s.be_bw_gbps() - 6.0).abs() < 1e-12);
        assert!((s.be_mean_ipc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bes() {
        let s = PeriodSample { time_s: 0.0, hp: app(1.0, 1.0), bes: vec![], total_bw_gbps: 1.0 };
        assert_eq!(s.be_bw_gbps(), 0.0);
        assert_eq!(s.be_mean_ipc(), 0.0);
    }
}
