//! Seeded, deterministic fault injection for the monitoring/actuation path.
//!
//! The DICER listings assume clean per-period CMT/MBM samples and instant
//! CAT writes. Real RDT counters are noisy, lag the events they measure,
//! and `resctrl` schemata writes can fail (EBUSY, EINVAL on contended
//! hosts) or land a period late. This module models exactly those
//! perturbations as **composable injectors** sitting between a platform
//! ([`MonitoredPlatform`]) and a controller:
//!
//! * multiplicative/additive Gaussian **sensor noise** on IPC and bandwidth
//!   channels ([`NoiseSpec`]);
//! * **dropped** samples (a missed counter read — the controller sees
//!   nothing this period) and **stale** samples (the previous period's
//!   counters are re-delivered);
//! * **quantised** CMT occupancy (real CMT reports in coarse granules);
//! * **failed** and **delayed** partition-plan applies with a bounded
//!   retry budget ([`FaultyPlatform`]).
//!
//! Every injector draws from one seeded [`FaultRng`] ([`FaultConfig::seed`]),
//! and the draw order is fixed (drop → stale → noise → quantise per sample;
//! one roll per apply), so a given seed + configuration + input stream
//! yields a bit-identical fault sequence on every run. With all injectors
//! disabled ([`FaultConfig::none`]) the layer is an exact passthrough: no
//! RNG draws happen and samples are delivered verbatim.

use crate::{MbaController, MbaLevel, MonitoredPlatform, PartitionController, PartitionPlan, PeriodSample};
use dicer_telemetry::{trace::stage, FaultCounters, Telemetry, TelemetryEvent, Tracer};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The RNG every injector draws from. `ChaCha8Rng` is the workspace's
/// deterministic generator (DESIGN.md §7): unlike `rand::rngs::StdRng`,
/// its stream is guaranteed stable across `rand` releases, so seeded fault
/// sequences stay bit-reproducible forever.
pub type FaultRng = ChaCha8Rng;

/// Gaussian perturbation of one sensor channel: the observed value is
/// `x · (1 + N(0, mult_sigma)) + N(0, add_sigma)`, clamped at zero
/// (counters never go negative).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseSpec {
    /// Standard deviation of the multiplicative factor's deviation from 1.
    pub mult_sigma: f64,
    /// Standard deviation of the additive term, in the channel's unit.
    pub add_sigma: f64,
}

impl NoiseSpec {
    /// No noise at all (the passthrough spec).
    pub const NONE: NoiseSpec = NoiseSpec { mult_sigma: 0.0, add_sigma: 0.0 };

    /// Purely multiplicative noise of the given sigma.
    pub fn multiplicative(sigma: f64) -> Self {
        Self { mult_sigma: sigma, add_sigma: 0.0 }
    }

    /// Whether this spec perturbs anything.
    pub fn is_none(&self) -> bool {
        self.mult_sigma == 0.0 && self.add_sigma == 0.0
    }

    fn validate(&self) -> Result<(), String> {
        for (name, s) in [("mult_sigma", self.mult_sigma), ("add_sigma", self.add_sigma)] {
            if !s.is_finite() || s < 0.0 {
                return Err(format!("noise {name} must be finite and >= 0, got {s}"));
            }
        }
        Ok(())
    }

    /// Applies the noise. Draws exactly two Gaussians when enabled, none
    /// otherwise, so the RNG stream is a pure function of the configuration.
    fn apply(&self, rng: &mut FaultRng, x: f64) -> f64 {
        if self.is_none() {
            return x;
        }
        let m = 1.0 + self.mult_sigma * gaussian(rng);
        let a = self.add_sigma * gaussian(rng);
        (x * m + a).max(0.0)
    }
}

/// One standard Gaussian via Box–Muller (exactly two uniform draws).
fn gaussian(rng: &mut FaultRng) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-12);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Full fault-model configuration. [`FaultConfig::none`] disables every
/// injector; individual fields compose freely.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for the injector's [`FaultRng`]. Identical seeds (with identical
    /// configurations and input streams) reproduce identical faults.
    pub seed: u64,
    /// Sensor noise on every IPC channel (HP and BEs).
    pub ipc_noise: NoiseSpec,
    /// Sensor noise on every bandwidth channel (HP, BEs, total link).
    pub bw_noise: NoiseSpec,
    /// Probability that a period's sample is lost entirely.
    pub drop_prob: f64,
    /// Probability that the previous period's sample is re-delivered
    /// instead of the current one (counters lagging the period boundary).
    pub stale_prob: f64,
    /// CMT occupancy reporting granule in bytes (0 disables quantisation).
    /// Real CMT reports in multiples of a platform factor (tens of KiB).
    pub occupancy_quantum_bytes: u64,
    /// Probability that a partition-plan apply fails (the write is lost
    /// until retried).
    pub apply_fail_prob: f64,
    /// Probability that an apply lands one period late instead of
    /// immediately.
    pub apply_delay_prob: f64,
    /// Retry budget for failed applies: a pending plan is re-attempted at
    /// up to this many subsequent period boundaries before being abandoned.
    pub max_apply_retries: u32,
}

impl FaultConfig {
    /// All injectors disabled; the layer is an exact passthrough.
    pub fn none(seed: u64) -> Self {
        Self {
            seed,
            ipc_noise: NoiseSpec::NONE,
            bw_noise: NoiseSpec::NONE,
            drop_prob: 0.0,
            stale_prob: 0.0,
            occupancy_quantum_bytes: 0,
            apply_fail_prob: 0.0,
            apply_delay_prob: 0.0,
            max_apply_retries: 0,
        }
    }

    /// Whether every injector is disabled.
    pub fn is_none(&self) -> bool {
        self.ipc_noise.is_none()
            && self.bw_noise.is_none()
            && self.drop_prob == 0.0
            && self.stale_prob == 0.0
            && self.occupancy_quantum_bytes == 0
            && self.apply_fail_prob == 0.0
            && self.apply_delay_prob == 0.0
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        self.ipc_noise.validate()?;
        self.bw_noise.validate()?;
        for (name, p) in [
            ("drop_prob", self.drop_prob),
            ("stale_prob", self.stale_prob),
            ("apply_fail_prob", self.apply_fail_prob),
            ("apply_delay_prob", self.apply_delay_prob),
        ] {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be in [0, 1], got {p}"));
            }
        }
        if self.apply_fail_prob + self.apply_delay_prob > 1.0 {
            return Err("apply_fail_prob + apply_delay_prob must not exceed 1".into());
        }
        Ok(())
    }
}

/// One observable fault occurrence (recorded per period for traces).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The period's sample was lost.
    SampleDropped,
    /// The previous period's sample was re-delivered.
    SampleStale,
    /// Sensor noise perturbed the sample.
    SampleNoised,
    /// CMT occupancies were rounded down to the reporting granule.
    OccupancyQuantised,
    /// A plan apply failed and was queued for retry.
    ApplyFailed,
    /// A plan apply was postponed to the next period boundary.
    ApplyDelayed,
    /// A previously failed apply was re-attempted (and failed again).
    ApplyRetried,
    /// A failed apply exhausted its retry budget and was discarded.
    ApplyAbandoned,
}

impl FaultEvent {
    /// Stable, compact label (used in JSONL decision traces).
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultEvent::SampleDropped => "sample_dropped",
            FaultEvent::SampleStale => "sample_stale",
            FaultEvent::SampleNoised => "sample_noised",
            FaultEvent::OccupancyQuantised => "occupancy_quantised",
            FaultEvent::ApplyFailed => "apply_failed",
            FaultEvent::ApplyDelayed => "apply_delayed",
            FaultEvent::ApplyRetried => "apply_retried",
            FaultEvent::ApplyAbandoned => "apply_abandoned",
        }
    }
}

/// Cumulative fault counters (across fault-config switches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Samples perturbed (counted once per sample that saw any perturbation).
    pub perturbed_samples: u64,
    /// Samples dropped outright.
    pub dropped_samples: u64,
    /// Samples replaced by the previous period's counters.
    pub stale_samples: u64,
    /// Plan applies that failed on first attempt.
    pub failed_applies: u64,
    /// Plan applies postponed by one period.
    pub delayed_applies: u64,
    /// Retry attempts for previously failed applies.
    pub retried_applies: u64,
    /// Plans discarded after the retry budget ran out.
    pub abandoned_applies: u64,
}

impl From<FaultStats> for FaultCounters {
    fn from(s: FaultStats) -> Self {
        FaultCounters {
            perturbed_samples: s.perturbed_samples,
            dropped_samples: s.dropped_samples,
            stale_samples: s.stale_samples,
            failed_applies: s.failed_applies,
            delayed_applies: s.delayed_applies,
            retried_applies: s.retried_applies,
            abandoned_applies: s.abandoned_applies,
        }
    }
}

/// How a plan apply rolled.
enum ApplyRoll {
    Ok,
    Fail,
    Delay,
}

/// The seeded sensor-side injector: perturbs [`PeriodSample`]s.
///
/// The actuator side lives in [`FaultyPlatform`], which owns one of these
/// and shares its RNG so a whole run's fault sequence derives from a single
/// seed.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    rng: FaultRng,
    /// The previous period's *true* sample (replayed on a stale fault).
    prev: Option<PeriodSample>,
    /// Cumulative counters (preserved across [`FaultInjector::reconfigure`]).
    pub stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector; panics on invalid configuration (matching the
    /// constructor convention of the rest of the workspace).
    pub fn new(cfg: FaultConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid FaultConfig: {e}");
        }
        let rng = FaultRng::seed_from_u64(cfg.seed);
        Self { cfg, rng, prev: None, stats: FaultStats::default() }
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether the injector is an exact passthrough.
    pub fn is_passthrough(&self) -> bool {
        self.cfg.is_none()
    }

    /// Swaps in a new configuration (reseeding the RNG from its seed) while
    /// keeping cumulative stats and the stale-replay history. This is how
    /// scripted perturbation schedules switch fault regimes mid-run.
    pub fn reconfigure(&mut self, cfg: FaultConfig) {
        if let Err(e) = cfg.validate() {
            panic!("invalid FaultConfig: {e}");
        }
        self.rng = FaultRng::seed_from_u64(cfg.seed);
        self.cfg = cfg;
    }

    /// Perturbs one sample. Returns `None` when the sample is dropped;
    /// otherwise the (possibly noised/stale/quantised) sample to deliver.
    /// Emitted [`FaultEvent`]s are appended to `events`.
    pub fn perturb(
        &mut self,
        sample: &PeriodSample,
        events: &mut Vec<FaultEvent>,
    ) -> Option<PeriodSample> {
        if self.is_passthrough() {
            self.prev = Some(sample.clone());
            return Some(sample.clone());
        }
        // Fixed roll order: drop, then stale, then noise, then quantise.
        if self.cfg.drop_prob > 0.0 && self.rng.gen::<f64>() < self.cfg.drop_prob {
            self.stats.dropped_samples += 1;
            events.push(FaultEvent::SampleDropped);
            self.prev = Some(sample.clone());
            return None;
        }
        let mut out = sample.clone();
        if self.cfg.stale_prob > 0.0 && self.rng.gen::<f64>() < self.cfg.stale_prob {
            if let Some(prev) = &self.prev {
                out = prev.clone();
                self.stats.stale_samples += 1;
                events.push(FaultEvent::SampleStale);
            }
        }
        let mut perturbed = false;
        if !self.cfg.ipc_noise.is_none() || !self.cfg.bw_noise.is_none() {
            out.hp.ipc = self.cfg.ipc_noise.apply(&mut self.rng, out.hp.ipc);
            out.hp.mem_bw_gbps = self.cfg.bw_noise.apply(&mut self.rng, out.hp.mem_bw_gbps);
            for be in &mut out.bes {
                be.ipc = self.cfg.ipc_noise.apply(&mut self.rng, be.ipc);
                be.mem_bw_gbps = self.cfg.bw_noise.apply(&mut self.rng, be.mem_bw_gbps);
            }
            out.total_bw_gbps = self.cfg.bw_noise.apply(&mut self.rng, out.total_bw_gbps);
            events.push(FaultEvent::SampleNoised);
            perturbed = true;
        }
        if self.cfg.occupancy_quantum_bytes > 0 {
            let q = self.cfg.occupancy_quantum_bytes;
            out.hp.llc_occupancy_bytes = (out.hp.llc_occupancy_bytes / q) * q;
            for be in &mut out.bes {
                be.llc_occupancy_bytes = (be.llc_occupancy_bytes / q) * q;
            }
            events.push(FaultEvent::OccupancyQuantised);
            perturbed = true;
        }
        if perturbed {
            self.stats.perturbed_samples += 1;
        }
        self.prev = Some(sample.clone());
        Some(out)
    }

    /// Rolls the outcome of a fresh plan apply.
    fn roll_apply(&mut self) -> ApplyRoll {
        if self.cfg.apply_fail_prob == 0.0 && self.cfg.apply_delay_prob == 0.0 {
            return ApplyRoll::Ok;
        }
        let r: f64 = self.rng.gen();
        if r < self.cfg.apply_fail_prob {
            ApplyRoll::Fail
        } else if r < self.cfg.apply_fail_prob + self.cfg.apply_delay_prob {
            ApplyRoll::Delay
        } else {
            ApplyRoll::Ok
        }
    }

    /// Rolls whether a *retried* apply fails again.
    fn roll_retry_fails(&mut self) -> bool {
        self.cfg.apply_fail_prob > 0.0 && self.rng.gen::<f64>() < self.cfg.apply_fail_prob
    }
}

/// A [`MonitoredPlatform`] wrapper that injects sensor and actuator faults
/// between the platform and whatever controller drives it.
///
/// * Sensor side: every [`FaultyPlatform::step_period_faulted`] perturbs
///   the platform's true sample through the [`FaultInjector`]; `None`
///   means the controller sees nothing this period.
/// * Actuator side: [`PartitionController::apply_plan`] may fail (the plan
///   is queued and retried at up to `max_apply_retries` subsequent period
///   boundaries, then abandoned) or land one period late. A newer apply
///   always supersedes a pending older one — latest plan wins, matching
///   resctrl semantics where the file holds only the last write attempted.
///
/// The trait impls ([`PartitionController`], [`MbaController`],
/// [`MonitoredPlatform`]) present the same control surface as the wrapped
/// platform, so controllers and harnesses run unchanged on top of it.
/// [`MonitoredPlatform::step_period`] applies *holdover* semantics on a
/// dropped sample: the last successfully delivered sample is returned
/// again, which is what a monitoring agent reading unrefreshed counters
/// would observe. Harnesses that want the drop made explicit use
/// [`FaultyPlatform::step_period_faulted`].
#[derive(Debug, Clone)]
pub struct FaultyPlatform<P> {
    inner: P,
    injector: FaultInjector,
    /// A plan whose apply failed or was delayed, with retries remaining.
    pending: Option<(PartitionPlan, u32)>,
    /// Events emitted during the current period (cleared at each step).
    events: Vec<FaultEvent>,
    /// Last sample actually delivered to the controller (holdover source).
    last_delivered: Option<PeriodSample>,
    /// Telemetry handle; every recorded [`FaultEvent`] is mirrored to it.
    telemetry: Telemetry,
    /// Span tracer; the pending-apply retry loop times itself with it.
    tracer: Tracer,
}

impl<P> FaultyPlatform<P> {
    /// Wraps `inner` with the given fault configuration.
    pub fn new(inner: P, cfg: FaultConfig) -> Self {
        Self {
            inner,
            injector: FaultInjector::new(cfg),
            pending: None,
            events: Vec::new(),
            last_delivered: None,
            telemetry: Telemetry::off(),
            tracer: Tracer::off(),
        }
    }

    /// Attach a telemetry handle to the fault layer only: every fault
    /// recorded from here on is also emitted as a
    /// [`TelemetryEvent::Fault`]. The wrapped platform keeps whatever
    /// handle it already has; use the [`MonitoredPlatform::set_telemetry`]
    /// trait method to wire the whole stack at once.
    pub fn set_fault_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Record one fault event (period trace + telemetry bus).
    fn record(&mut self, ev: FaultEvent) {
        self.telemetry.emit(&TelemetryEvent::Fault { label: ev.as_str() });
        self.events.push(ev);
    }

    /// Mirror to telemetry the events the sensor-side injector appended
    /// (it pushes into `events` directly and has no bus handle).
    fn mirror_from(&self, from: usize) {
        if self.telemetry.enabled() {
            for ev in &self.events[from..] {
                self.telemetry.emit(&TelemetryEvent::Fault { label: ev.as_str() });
            }
        }
    }

    /// The wrapped platform (read-only).
    pub fn inner(&self) -> &P {
        &self.inner
    }

    /// The wrapped platform (mutable — bypasses all fault injection; meant
    /// for run setup such as the initial plan apply).
    pub fn inner_mut(&mut self) -> &mut P {
        &mut self.inner
    }

    /// Unwraps the platform.
    pub fn into_inner(self) -> P {
        self.inner
    }

    /// Cumulative fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats
    }

    /// The sensor-side injector.
    pub fn injector(&self) -> &FaultInjector {
        &self.injector
    }

    /// Events emitted during the most recent period.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Switches the fault regime (scripted schedules); cumulative stats and
    /// the pending-apply state carry over.
    pub fn set_faults(&mut self, cfg: FaultConfig) {
        self.injector.reconfigure(cfg);
    }

    /// Whether an apply is still pending (failed or delayed).
    pub fn apply_pending(&self) -> bool {
        self.pending.is_some()
    }
}

impl<P: MonitoredPlatform> FaultyPlatform<P> {
    /// Settles any pending apply at a period boundary: delayed plans land
    /// now; failed plans are retried against the failure roll until their
    /// budget runs out.
    fn tick_pending(&mut self) {
        if let Some((plan, retries)) = self.pending.take() {
            let _span = self.tracer.span(stage::APPLY_RETRY);
            if self.injector.roll_retry_fails() {
                if retries > 0 {
                    self.injector.stats.retried_applies += 1;
                    self.record(FaultEvent::ApplyRetried);
                    self.pending = Some((plan, retries - 1));
                } else {
                    self.injector.stats.abandoned_applies += 1;
                    self.record(FaultEvent::ApplyAbandoned);
                }
            } else {
                self.inner.apply_plan(plan);
            }
        }
    }

    /// Advances one period, returning the sample the controller gets to
    /// see — `None` when it was dropped. Pending applies settle first, so a
    /// delayed plan takes effect for the period being stepped.
    pub fn step_period_faulted(&mut self) -> Option<PeriodSample> {
        self.events.clear();
        self.tick_pending();
        let s = self.inner.step_period();
        let before = self.events.len();
        let delivered = self.injector.perturb(&s, &mut self.events);
        self.mirror_from(before);
        if let Some(d) = &delivered {
            self.last_delivered = Some(d.clone());
        }
        delivered
    }
}

impl<P: MonitoredPlatform> MonitoredPlatform for FaultyPlatform<P> {
    /// Total-function stepping with holdover: a dropped sample re-delivers
    /// the last successful one (unrefreshed counters), or the true sample
    /// if nothing was ever delivered.
    fn step_period(&mut self) -> PeriodSample {
        self.events.clear();
        self.tick_pending();
        let s = self.inner.step_period();
        let before = self.events.len();
        let delivered = self.injector.perturb(&s, &mut self.events);
        self.mirror_from(before);
        match delivered {
            Some(d) => {
                self.last_delivered = Some(d.clone());
                d
            }
            None => match &self.last_delivered {
                Some(d) => d.clone(),
                None => {
                    // Nothing was ever delivered: the true sample stands in
                    // (and becomes the holdover source for later drops).
                    self.last_delivered = Some(s.clone());
                    s
                }
            },
        }
    }

    /// Drops stay explicit: a lost sample reaches the controller as `None`
    /// rather than a holdover replay.
    fn step_period_monitored(&mut self) -> Option<PeriodSample> {
        self.step_period_faulted()
    }

    fn workload_complete(&self) -> bool {
        self.inner.workload_complete()
    }

    fn admitted_bes(&self) -> Option<u32> {
        self.inner.admitted_bes()
    }

    fn set_admitted_bes(&mut self, n: u32) {
        self.inner.set_admitted_bes(n);
    }

    /// Wires the whole stack: the fault layer mirrors its events to the
    /// bus, and the wrapped platform gets the same handle.
    fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry.clone();
        self.inner.set_telemetry(telemetry);
    }

    /// Wires the whole stack: the retry loop times itself, and the wrapped
    /// platform gets the same tracer (its solver spans nest correctly).
    fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer.clone();
        self.inner.set_tracer(tracer);
    }
}

impl<P: MonitoredPlatform> PartitionController for FaultyPlatform<P> {
    fn n_ways(&self) -> u32 {
        self.inner.n_ways()
    }

    fn apply_plan(&mut self, plan: PartitionPlan) {
        match self.injector.roll_apply() {
            ApplyRoll::Ok => self.inner.apply_plan(plan),
            ApplyRoll::Fail => {
                self.injector.stats.failed_applies += 1;
                self.record(FaultEvent::ApplyFailed);
                self.pending = Some((plan, self.injector.cfg.max_apply_retries));
            }
            ApplyRoll::Delay => {
                self.injector.stats.delayed_applies += 1;
                self.record(FaultEvent::ApplyDelayed);
                self.pending = Some((plan, self.injector.cfg.max_apply_retries));
            }
        }
    }

    /// Bypasses the injector entirely (run setup — the initial plan is not
    /// part of the monitored actuation path).
    fn apply_plan_direct(&mut self, plan: PartitionPlan) {
        self.inner.apply_plan(plan);
    }

    /// The plan actually in force on the platform (ground truth — the
    /// controller's intended plan may differ while an apply is pending).
    fn current_plan(&self) -> PartitionPlan {
        self.inner.current_plan()
    }
}

impl<P: MonitoredPlatform> MbaController for FaultyPlatform<P> {
    fn set_be_throttle(&mut self, level: MbaLevel) {
        self.inner.set_be_throttle(level);
    }

    fn be_throttle(&self) -> MbaLevel {
        self.inner.be_throttle()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PerAppSample;

    fn sample(t: f64, hp_ipc: f64, hp_bw: f64) -> PeriodSample {
        let hp = PerAppSample {
            ipc: hp_ipc,
            llc_occupancy_bytes: 1_234_567,
            mem_bw_gbps: hp_bw,
            miss_ratio: 0.1,
        };
        let be = PerAppSample {
            ipc: 0.5,
            llc_occupancy_bytes: 777_777,
            mem_bw_gbps: 2.0,
            miss_ratio: 0.3,
        };
        PeriodSample { time_s: t, hp, bes: vec![be; 3], total_bw_gbps: hp_bw + 6.0 }
    }

    /// A trivial in-memory platform for actuator-fault tests.
    #[derive(Debug)]
    struct FakePlatform {
        plan: PartitionPlan,
        throttle: MbaLevel,
        t: f64,
    }

    impl FakePlatform {
        fn new() -> Self {
            Self { plan: PartitionPlan::Unmanaged, throttle: MbaLevel::FULL, t: 0.0 }
        }
    }

    impl PartitionController for FakePlatform {
        fn n_ways(&self) -> u32 {
            20
        }
        fn apply_plan(&mut self, plan: PartitionPlan) {
            self.plan = plan;
        }
        fn current_plan(&self) -> PartitionPlan {
            self.plan
        }
    }

    impl MbaController for FakePlatform {
        fn set_be_throttle(&mut self, level: MbaLevel) {
            self.throttle = level;
        }
        fn be_throttle(&self) -> MbaLevel {
            self.throttle
        }
    }

    impl MonitoredPlatform for FakePlatform {
        fn step_period(&mut self) -> PeriodSample {
            self.t += 1.0;
            sample(self.t, 1.0, 5.0)
        }
    }

    #[test]
    fn passthrough_delivers_samples_verbatim() {
        let mut inj = FaultInjector::new(FaultConfig::none(42));
        assert!(inj.is_passthrough());
        let s = sample(1.0, 1.0, 5.0);
        let mut ev = Vec::new();
        assert_eq!(inj.perturb(&s, &mut ev), Some(s));
        assert!(ev.is_empty());
        assert_eq!(inj.stats, FaultStats::default());
    }

    #[test]
    fn same_seed_same_fault_sequence() {
        let cfg = FaultConfig {
            ipc_noise: NoiseSpec::multiplicative(0.05),
            bw_noise: NoiseSpec::multiplicative(0.05),
            drop_prob: 0.2,
            stale_prob: 0.2,
            ..FaultConfig::none(7)
        };
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        for i in 0..200 {
            let s = sample(i as f64, 1.0 + i as f64 * 0.01, 5.0);
            let mut ea = Vec::new();
            let mut eb = Vec::new();
            assert_eq!(a.perturb(&s, &mut ea), b.perturb(&s, &mut eb), "period {i}");
            assert_eq!(ea, eb);
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn different_seeds_diverge() {
        let mk = |seed| {
            FaultInjector::new(FaultConfig {
                ipc_noise: NoiseSpec::multiplicative(0.05),
                ..FaultConfig::none(seed)
            })
        };
        let (mut a, mut b) = (mk(1), mk(2));
        let s = sample(0.0, 1.0, 5.0);
        let mut ev = Vec::new();
        let sa = a.perturb(&s, &mut ev).unwrap();
        let sb = b.perturb(&s, &mut ev).unwrap();
        assert_ne!(sa.hp.ipc, sb.hp.ipc);
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let mut inj =
            FaultInjector::new(FaultConfig { drop_prob: 0.3, ..FaultConfig::none(11) });
        let mut ev = Vec::new();
        let mut dropped = 0;
        for i in 0..1000 {
            if inj.perturb(&sample(i as f64, 1.0, 5.0), &mut ev).is_none() {
                dropped += 1;
            }
        }
        assert_eq!(dropped, inj.stats.dropped_samples);
        assert!((200..400).contains(&dropped), "observed {dropped}/1000 at p=0.3");
    }

    #[test]
    fn stale_replays_previous_true_sample() {
        let mut inj =
            FaultInjector::new(FaultConfig { stale_prob: 1.0, ..FaultConfig::none(3) });
        let mut ev = Vec::new();
        let s1 = sample(1.0, 1.0, 5.0);
        let s2 = sample(2.0, 2.0, 9.0);
        // First period: nothing to replay yet, the current sample passes.
        assert_eq!(inj.perturb(&s1, &mut ev), Some(s1.clone()));
        // Second period: the previous period's counters come back.
        assert_eq!(inj.perturb(&s2, &mut ev), Some(s1));
        assert_eq!(inj.stats.stale_samples, 1);
        assert!(ev.contains(&FaultEvent::SampleStale));
    }

    #[test]
    fn noise_is_zero_clamped_and_counted() {
        let mut inj = FaultInjector::new(FaultConfig {
            ipc_noise: NoiseSpec { mult_sigma: 0.0, add_sigma: 100.0 },
            ..FaultConfig::none(5)
        });
        let mut ev = Vec::new();
        for i in 0..100 {
            let out = inj.perturb(&sample(i as f64, 0.01, 5.0), &mut ev).unwrap();
            assert!(out.hp.ipc >= 0.0, "ipc went negative");
            // Bandwidth channels are untouched by an IPC-only spec.
            assert_eq!(out.hp.mem_bw_gbps, 5.0);
        }
        assert_eq!(inj.stats.perturbed_samples, 100);
    }

    #[test]
    fn occupancy_quantises_down_to_granule() {
        let q = 512 * 1024;
        let mut inj = FaultInjector::new(FaultConfig {
            occupancy_quantum_bytes: q,
            ..FaultConfig::none(9)
        });
        let mut ev = Vec::new();
        let out = inj.perturb(&sample(0.0, 1.0, 5.0), &mut ev).unwrap();
        assert_eq!(out.hp.llc_occupancy_bytes % q, 0);
        assert!(out.hp.llc_occupancy_bytes <= 1_234_567);
        for be in &out.bes {
            assert_eq!(be.llc_occupancy_bytes % q, 0);
        }
        assert!(ev.contains(&FaultEvent::OccupancyQuantised));
    }

    #[test]
    fn failed_apply_is_retried_and_lands() {
        // Fail the first attempt deterministically, then succeed: with
        // fail_prob = 1.0 every retry also fails, so use a seeded partial
        // probability and scan for the pattern instead — simpler: fail_prob
        // 1.0 and budget 2 shows retry + abandonment; landing is covered by
        // the delay test below.
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { apply_fail_prob: 1.0, max_apply_retries: 2, ..FaultConfig::none(1) },
        );
        p.apply_plan(PartitionPlan::Split { hp_ways: 7 });
        assert_eq!(p.current_plan(), PartitionPlan::Unmanaged, "apply must have failed");
        assert!(p.apply_pending());
        p.step_period_faulted(); // retry 1 fails
        assert_eq!(p.events().first(), Some(&FaultEvent::ApplyRetried));
        p.step_period_faulted(); // retry 2 fails
        p.step_period_faulted(); // budget exhausted: abandoned
        assert!(!p.apply_pending());
        assert_eq!(p.fault_stats().abandoned_applies, 1);
        assert_eq!(p.fault_stats().retried_applies, 2);
        assert_eq!(p.current_plan(), PartitionPlan::Unmanaged);
    }

    #[test]
    fn delayed_apply_lands_one_period_late() {
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { apply_delay_prob: 1.0, ..FaultConfig::none(1) },
        );
        p.apply_plan(PartitionPlan::Split { hp_ways: 5 });
        assert_eq!(p.current_plan(), PartitionPlan::Unmanaged, "not yet in force");
        assert_eq!(p.fault_stats().delayed_applies, 1);
        p.step_period_faulted();
        assert_eq!(p.current_plan(), PartitionPlan::Split { hp_ways: 5 }, "landed at boundary");
        assert!(!p.apply_pending());
    }

    #[test]
    fn newer_apply_supersedes_pending_plan() {
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { apply_delay_prob: 1.0, ..FaultConfig::none(1) },
        );
        p.apply_plan(PartitionPlan::Split { hp_ways: 5 });
        p.apply_plan(PartitionPlan::Split { hp_ways: 9 });
        p.step_period_faulted();
        assert_eq!(p.current_plan(), PartitionPlan::Split { hp_ways: 9 }, "latest plan wins");
    }

    #[test]
    fn holdover_redelivers_last_sample_on_drop() {
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { drop_prob: 1.0, ..FaultConfig::none(2) },
        );
        // First period drops with no history: the true sample passes through.
        let s1 = p.step_period();
        assert!((s1.time_s - 1.0).abs() < 1e-12);
        // Subsequent drops re-deliver that sample (unrefreshed counters).
        let s2 = p.step_period();
        assert_eq!(s2, s1, "holdover must replay the last delivered sample");
        assert_eq!(p.fault_stats().dropped_samples, 2);
    }

    #[test]
    fn passthrough_platform_is_transparent() {
        let mut faulty = FaultyPlatform::new(FakePlatform::new(), FaultConfig::none(0));
        let mut bare = FakePlatform::new();
        for _ in 0..10 {
            assert_eq!(faulty.step_period_faulted(), Some(bare.step_period()));
        }
        faulty.apply_plan(PartitionPlan::Split { hp_ways: 3 });
        bare.apply_plan(PartitionPlan::Split { hp_ways: 3 });
        assert_eq!(faulty.current_plan(), bare.current_plan());
        assert_eq!(faulty.fault_stats(), FaultStats::default());
    }

    #[test]
    fn reconfigure_keeps_cumulative_stats() {
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { drop_prob: 1.0, ..FaultConfig::none(4) },
        );
        p.step_period_faulted();
        assert_eq!(p.fault_stats().dropped_samples, 1);
        p.set_faults(FaultConfig::none(4));
        assert!(p.step_period_faulted().is_some(), "faults now off");
        assert_eq!(p.fault_stats().dropped_samples, 1, "stats carried over");
    }

    #[test]
    fn telemetry_mirrors_every_fault_event() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent};
        use std::sync::Arc;

        let sink = Arc::new(CollectingSink::new());
        let mut p = FaultyPlatform::new(
            FakePlatform::new(),
            FaultConfig { drop_prob: 1.0, apply_delay_prob: 1.0, ..FaultConfig::none(6) },
        );
        p.set_telemetry(Telemetry::new(sink.clone()));
        p.apply_plan(PartitionPlan::Split { hp_ways: 5 }); // delayed
        p.step_period_faulted(); // delayed plan lands; sample dropped
        let labels: Vec<&str> = sink
            .events()
            .iter()
            .map(|e| match e {
                TelemetryEvent::Fault { label } => *label,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(labels, vec!["apply_delayed", "sample_dropped"]);
        // The bus mirrors the per-period trace exactly.
        let traced: Vec<&str> = p.events().iter().map(|e| e.as_str()).collect();
        assert_eq!(traced, vec!["sample_dropped"], "trace cleared per step");
    }

    #[test]
    #[should_panic]
    fn invalid_probability_rejected() {
        FaultInjector::new(FaultConfig { drop_prob: 1.5, ..FaultConfig::none(0) });
    }

    #[test]
    #[should_panic]
    fn fail_plus_delay_over_one_rejected() {
        FaultInjector::new(FaultConfig {
            apply_fail_prob: 0.7,
            apply_delay_prob: 0.7,
            ..FaultConfig::none(0)
        });
    }
}
