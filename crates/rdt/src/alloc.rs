//! CLOS allocation table with isolation checking.

use crate::{mask::WayMask, ClosId};
use std::collections::BTreeMap;

/// The CLOS → capacity-mask table a CAT-capable cache maintains.
///
/// DICER uses *isolated* partitioning (paper §3.3): no two classes may share
/// a way. The table enforces that mode when `isolated` is set; overlapping
/// masks are permitted otherwise (real CAT allows overlap, e.g. for the
/// default CLOS0).
#[derive(Debug, Clone)]
pub struct AllocationTable {
    n_ways: u32,
    isolated: bool,
    masks: BTreeMap<ClosId, WayMask>,
}

/// Errors from table updates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Mask does not fit the cache's way count.
    MaskTooWide {
        /// The rejected mask.
        mask: WayMask,
        /// The cache's way count.
        ways: u32,
    },
    /// Isolation violated: the mask overlaps another class's allocation.
    Overlap {
        /// The class whose existing allocation overlaps.
        with: ClosId,
    },
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::MaskTooWide { mask, ways } => {
                write!(f, "mask {mask} too wide for {ways} ways")
            }
            AllocError::Overlap { with } => write!(f, "mask overlaps CLOS {}", with.0),
        }
    }
}

impl std::error::Error for AllocError {}

impl AllocationTable {
    /// Creates an empty table for an `n_ways` cache.
    pub fn new(n_ways: u32, isolated: bool) -> Self {
        assert!((1..=32).contains(&n_ways));
        Self { n_ways, isolated, masks: BTreeMap::new() }
    }

    /// Sets (or replaces) the mask of a class.
    pub fn set(&mut self, clos: ClosId, mask: WayMask) -> Result<(), AllocError> {
        if !mask.fits(self.n_ways) {
            return Err(AllocError::MaskTooWide { mask, ways: self.n_ways });
        }
        if self.isolated {
            for (c, m) in &self.masks {
                if *c != clos && m.overlaps(mask) {
                    return Err(AllocError::Overlap { with: *c });
                }
            }
        }
        self.masks.insert(clos, mask);
        Ok(())
    }

    /// Mask of a class, if assigned.
    pub fn get(&self, clos: ClosId) -> Option<WayMask> {
        self.masks.get(&clos).copied()
    }

    /// Removes a class's allocation.
    pub fn remove(&mut self, clos: ClosId) -> Option<WayMask> {
        self.masks.remove(&clos)
    }

    /// Number of classes with an allocation.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True when no class is allocated.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Ways not granted to any class.
    pub fn unallocated_ways(&self) -> u32 {
        let used: u32 = self.masks.values().fold(0, |acc, m| acc | m.bits());
        self.n_ways - used.count_ones()
    }

    /// Iterates allocations in CLOS order.
    pub fn iter(&self) -> impl Iterator<Item = (ClosId, WayMask)> + '_ {
        self.masks.iter().map(|(c, m)| (*c, *m))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = AllocationTable::new(20, true);
        let m = WayMask::from_range(10, 5).unwrap();
        t.set(ClosId(1), m).unwrap();
        assert_eq!(t.get(ClosId(1)), Some(m));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn isolated_mode_rejects_overlap() {
        let mut t = AllocationTable::new(20, true);
        t.set(ClosId(1), WayMask::from_range(0, 10).unwrap()).unwrap();
        let err = t.set(ClosId(2), WayMask::from_range(9, 5).unwrap()).unwrap_err();
        assert_eq!(err, AllocError::Overlap { with: ClosId(1) });
    }

    #[test]
    fn shared_mode_allows_overlap() {
        let mut t = AllocationTable::new(20, false);
        t.set(ClosId(1), WayMask::low(20).unwrap()).unwrap();
        t.set(ClosId(2), WayMask::low(20).unwrap()).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn replacing_own_mask_is_not_overlap() {
        let mut t = AllocationTable::new(20, true);
        t.set(ClosId(1), WayMask::from_range(0, 10).unwrap()).unwrap();
        t.set(ClosId(1), WayMask::from_range(5, 10).unwrap()).unwrap();
        assert_eq!(t.get(ClosId(1)).unwrap().first_way(), 5);
    }

    #[test]
    fn too_wide_mask_rejected() {
        let mut t = AllocationTable::new(8, true);
        let m = WayMask::from_range(4, 8).unwrap();
        assert!(matches!(t.set(ClosId(0), m), Err(AllocError::MaskTooWide { .. })));
    }

    #[test]
    fn unallocated_ways_accounts_for_grants() {
        let mut t = AllocationTable::new(20, true);
        assert_eq!(t.unallocated_ways(), 20);
        t.set(ClosId(0), WayMask::from_range(19, 1).unwrap()).unwrap();
        t.set(ClosId(1), WayMask::from_range(0, 4).unwrap()).unwrap();
        assert_eq!(t.unallocated_ways(), 15);
    }

    #[test]
    fn remove_frees_ways() {
        let mut t = AllocationTable::new(20, true);
        t.set(ClosId(0), WayMask::low(20).unwrap()).unwrap();
        assert_eq!(t.unallocated_ways(), 0);
        t.remove(ClosId(0));
        assert!(t.is_empty());
        assert_eq!(t.unallocated_ways(), 20);
    }
}
