//! HP/BE partition plans.

use crate::mask::WayMask;
use serde::{Deserialize, Serialize};

/// The cache-allocation decision DICER (or a baseline policy) enforces.
///
/// The paper's schemes only ever need two shapes:
///
/// * [`PartitionPlan::Unmanaged`] — no CAT control at all (the UM baseline);
/// * [`PartitionPlan::Split`] — HP owns the **top** `hp_ways` ways
///   exclusively and every BE shares the remaining low ways (CT is
///   `Split { hp_ways: n_ways - 1 }`; DICER moves `hp_ways` around).
///
/// Partitions are isolated — HP and BE masks never overlap (paper §3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PartitionPlan {
    /// Every application may use the whole LLC.
    Unmanaged,
    /// HP gets `hp_ways` exclusive ways; BEs share the rest.
    Split {
        /// Ways granted exclusively to the HP application.
        hp_ways: u32,
    },
    /// HP gets `hp_exclusive` private top ways plus a `shared` middle region
    /// it contests with the BEs; BEs additionally own the remaining low
    /// ways. The paper's §6 asks "whether assigning overlapping cache
    /// partitions to the HP and the BEs can benefit some workloads" — this
    /// variant (CAT permits overlapping masks) lets the question be tested.
    Overlapping {
        /// Ways private to the HP application (≥ 1).
        hp_exclusive: u32,
        /// Ways accessible to both classes (≥ 1).
        shared: u32,
    },
}

impl PartitionPlan {
    /// The Cache-Takeover plan for an `n_ways` cache: all but one way to HP.
    pub fn cache_takeover(n_ways: u32) -> Self {
        assert!(n_ways >= 2, "CT needs at least two ways");
        PartitionPlan::Split { hp_ways: n_ways - 1 }
    }

    /// Validates the plan against a cache with `n_ways` ways: a split must
    /// leave at least one way on each side.
    pub fn validate(&self, n_ways: u32) -> Result<(), String> {
        match self {
            PartitionPlan::Unmanaged => Ok(()),
            PartitionPlan::Split { hp_ways } => {
                if *hp_ways == 0 {
                    Err("HP must keep at least one way".into())
                } else if *hp_ways >= n_ways {
                    Err(format!("HP ways {hp_ways} leaves no way for BEs (cache has {n_ways})"))
                } else {
                    Ok(())
                }
            }
            PartitionPlan::Overlapping { hp_exclusive, shared } => {
                if *hp_exclusive == 0 {
                    Err("HP must keep at least one private way".into())
                } else if *shared == 0 {
                    Err("overlapping plan needs a shared region; use Split".into())
                } else if hp_exclusive + shared > n_ways {
                    Err(format!(
                        "exclusive {hp_exclusive} + shared {shared} exceed {n_ways} ways"
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// CAT mask for the HP application (`None` when unmanaged: full access).
    pub fn hp_mask(&self, n_ways: u32) -> WayMask {
        match self {
            PartitionPlan::Unmanaged => WayMask::low(n_ways).expect("n_ways >= 1"),
            PartitionPlan::Split { hp_ways } => {
                WayMask::from_range(n_ways - hp_ways, *hp_ways).expect("validated split")
            }
            PartitionPlan::Overlapping { hp_exclusive, shared } => {
                WayMask::from_range(n_ways - hp_exclusive - shared, hp_exclusive + shared)
                    .expect("validated overlap")
            }
        }
    }

    /// CAT mask shared by all BE applications.
    pub fn be_mask(&self, n_ways: u32) -> WayMask {
        match self {
            PartitionPlan::Unmanaged => WayMask::low(n_ways).expect("n_ways >= 1"),
            PartitionPlan::Split { hp_ways } => {
                WayMask::from_range(0, n_ways - hp_ways).expect("validated split")
            }
            PartitionPlan::Overlapping { hp_exclusive, .. } => {
                WayMask::from_range(0, n_ways - hp_exclusive).expect("validated overlap")
            }
        }
    }

    /// Ways available to HP under this plan.
    pub fn hp_ways(&self, n_ways: u32) -> u32 {
        match self {
            PartitionPlan::Unmanaged => n_ways,
            PartitionPlan::Split { hp_ways } => *hp_ways,
            PartitionPlan::Overlapping { hp_exclusive, shared } => hp_exclusive + shared,
        }
    }

    /// Ways shared by the BEs under this plan.
    pub fn be_ways(&self, n_ways: u32) -> u32 {
        match self {
            PartitionPlan::Unmanaged => n_ways,
            PartitionPlan::Split { hp_ways } => n_ways - hp_ways,
            PartitionPlan::Overlapping { hp_exclusive, .. } => n_ways - hp_exclusive,
        }
    }

    /// Shrinks HP's share by one way (the DICER optimisation step), pinned
    /// at one way.
    pub fn shrink_hp(&self, n_ways: u32) -> Self {
        match self {
            PartitionPlan::Unmanaged => PartitionPlan::Unmanaged,
            PartitionPlan::Split { hp_ways } => {
                PartitionPlan::Split { hp_ways: (*hp_ways).saturating_sub(1).max(1) }
            }
            PartitionPlan::Overlapping { hp_exclusive, shared } => PartitionPlan::Overlapping {
                hp_exclusive: (*hp_exclusive).saturating_sub(1).max(1),
                shared: *shared,
            },
        }
        .tap_validate(n_ways)
    }

    fn tap_validate(self, n_ways: u32) -> Self {
        debug_assert!(self.validate(n_ways).is_ok());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_is_all_but_one() {
        let p = PartitionPlan::cache_takeover(20);
        assert_eq!(p, PartitionPlan::Split { hp_ways: 19 });
        assert_eq!(p.hp_ways(20), 19);
        assert_eq!(p.be_ways(20), 1);
    }

    #[test]
    fn split_masks_are_disjoint_and_cover() {
        for hp in 1..20 {
            let p = PartitionPlan::Split { hp_ways: hp };
            p.validate(20).unwrap();
            let h = p.hp_mask(20);
            let b = p.be_mask(20);
            assert!(!h.overlaps(b), "hp={hp}");
            assert_eq!(h.count() + b.count(), 20);
            assert!(h.fits(20) && b.fits(20));
        }
    }

    #[test]
    fn hp_owns_top_ways() {
        let p = PartitionPlan::Split { hp_ways: 3 };
        assert_eq!(p.hp_mask(20).first_way(), 17);
        assert_eq!(p.be_mask(20).first_way(), 0);
    }

    #[test]
    fn unmanaged_masks_are_full() {
        let p = PartitionPlan::Unmanaged;
        assert_eq!(p.hp_mask(20).count(), 20);
        assert_eq!(p.be_mask(20).count(), 20);
        assert_eq!(p.hp_ways(20), 20);
    }

    #[test]
    fn validate_rejects_degenerate_splits() {
        assert!(PartitionPlan::Split { hp_ways: 0 }.validate(20).is_err());
        assert!(PartitionPlan::Split { hp_ways: 20 }.validate(20).is_err());
        assert!(PartitionPlan::Split { hp_ways: 19 }.validate(20).is_ok());
    }

    #[test]
    fn shrink_stops_at_one_way() {
        let mut p = PartitionPlan::Split { hp_ways: 3 };
        p = p.shrink_hp(20);
        assert_eq!(p.hp_ways(20), 2);
        p = p.shrink_hp(20);
        p = p.shrink_hp(20);
        assert_eq!(p.hp_ways(20), 1, "never shrinks to zero");
    }

    #[test]
    fn shrink_unmanaged_is_identity() {
        assert_eq!(PartitionPlan::Unmanaged.shrink_hp(20), PartitionPlan::Unmanaged);
    }

    #[test]
    #[should_panic]
    fn ct_needs_two_ways() {
        PartitionPlan::cache_takeover(1);
    }

    #[test]
    fn overlapping_masks_share_the_middle() {
        let p = PartitionPlan::Overlapping { hp_exclusive: 4, shared: 6 };
        p.validate(20).unwrap();
        let h = p.hp_mask(20);
        let b = p.be_mask(20);
        assert!(h.overlaps(b), "overlap region must be shared");
        assert_eq!(h.count(), 10);
        assert_eq!(b.count(), 16);
        assert_eq!(h.bits() & b.bits(), 0b1111_1100_0000_0000, "middle six ways");
        assert_eq!(p.hp_ways(20), 10);
        assert_eq!(p.be_ways(20), 16);
    }

    #[test]
    fn overlapping_validation() {
        assert!(PartitionPlan::Overlapping { hp_exclusive: 0, shared: 5 }.validate(20).is_err());
        assert!(PartitionPlan::Overlapping { hp_exclusive: 5, shared: 0 }.validate(20).is_err());
        assert!(PartitionPlan::Overlapping { hp_exclusive: 15, shared: 6 }.validate(20).is_err());
        assert!(PartitionPlan::Overlapping { hp_exclusive: 14, shared: 6 }.validate(20).is_ok());
    }

    #[test]
    fn overlapping_shrink_reduces_exclusive_region() {
        let p = PartitionPlan::Overlapping { hp_exclusive: 3, shared: 4 };
        let q = p.shrink_hp(20);
        assert_eq!(q, PartitionPlan::Overlapping { hp_exclusive: 2, shared: 4 });
    }
}
