//! Linux `resctrl` filesystem formatting and IO.
//!
//! On a real RDT-capable host, cache partitions are enforced by writing
//! `schemata` files under `/sys/fs/resctrl/<group>/`. This module renders
//! and parses those lines and can materialise a [`PartitionPlan`] as a
//! directory tree under an arbitrary root — the unit tests drive a temp
//! directory, and pointing [`ResctrlFs::new`] at `/sys/fs/resctrl` on a
//! Xeon with CAT would drive the real kernel interface.

use crate::{mask::WayMask, plan::PartitionPlan};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Renders one `L3` schemata line, e.g. `L3:0=fffff` or
/// `L3:0=c0000;1=3ffff` for multi-socket masks.
pub fn format_l3_schemata(masks_by_cache_id: &[(u32, WayMask)]) -> String {
    let body: Vec<String> =
        masks_by_cache_id.iter().map(|(id, m)| format!("{id}={m}")).collect();
    format!("L3:{}", body.join(";"))
}

/// Parses an `L3` schemata line produced by [`format_l3_schemata`] (or read
/// back from the kernel). Returns `(cache_id, mask)` pairs.
pub fn parse_l3_schemata(line: &str) -> Result<Vec<(u32, WayMask)>, String> {
    let rest = line
        .trim()
        .strip_prefix("L3:")
        .ok_or_else(|| format!("missing L3 prefix in {line:?}"))?;
    rest.split(';')
        .map(|part| {
            let (id, mask) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed schemata fragment {part:?}"))?;
            let id: u32 = id.trim().parse().map_err(|e| format!("bad cache id {id:?}: {e}"))?;
            let bits = u32::from_str_radix(mask.trim(), 16)
                .map_err(|e| format!("bad mask {mask:?}: {e}"))?;
            let mask = WayMask::from_bits(bits).map_err(|e| e.to_string())?;
            Ok((id, mask))
        })
        .collect()
}

/// A resctrl-style filesystem rooted at an arbitrary directory.
#[derive(Debug, Clone)]
pub struct ResctrlFs {
    root: PathBuf,
}

/// Group names used for the HP/BE split.
pub const HP_GROUP: &str = "dicer_hp";
/// BE control-group name.
pub const BE_GROUP: &str = "dicer_be";

impl ResctrlFs {
    /// Opens (without touching) a resctrl root.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Self { root: root.into() }
    }

    /// The root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn group_dir(&self, group: &str) -> PathBuf {
        self.root.join(group)
    }

    /// Creates a control group (idempotent).
    pub fn create_group(&self, group: &str) -> io::Result<PathBuf> {
        let dir = self.group_dir(group);
        fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// Writes a group's schemata line.
    pub fn write_schemata(&self, group: &str, cache_id: u32, mask: WayMask) -> io::Result<()> {
        let dir = self.create_group(group)?;
        fs::write(dir.join("schemata"), format_l3_schemata(&[(cache_id, mask)]) + "\n")
    }

    /// Reads a group's schemata back.
    pub fn read_schemata(&self, group: &str) -> io::Result<Vec<(u32, WayMask)>> {
        let text = fs::read_to_string(self.group_dir(group).join("schemata"))?;
        parse_l3_schemata(text.lines().next().unwrap_or_default())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Assigns a task (by pid) to a group by appending to its `tasks` file.
    pub fn assign_task(&self, group: &str, pid: u32) -> io::Result<()> {
        use std::io::Write;
        let dir = self.create_group(group)?;
        let mut f = fs::OpenOptions::new().create(true).append(true).open(dir.join("tasks"))?;
        writeln!(f, "{pid}")
    }

    /// Materialises a [`PartitionPlan`] as the HP/BE group pair on cache
    /// `cache_id` of an `n_ways` LLC.
    pub fn apply_plan(&self, plan: PartitionPlan, n_ways: u32, cache_id: u32) -> io::Result<()> {
        plan.validate(n_ways).map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        self.write_schemata(HP_GROUP, cache_id, plan.hp_mask(n_ways))?;
        self.write_schemata(BE_GROUP, cache_id, plan.be_mask(n_ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dicer_resctrl_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn format_single_socket() {
        let m = WayMask::low(20).unwrap();
        assert_eq!(format_l3_schemata(&[(0, m)]), "L3:0=fffff");
    }

    #[test]
    fn format_multi_socket() {
        let a = WayMask::from_range(18, 2).unwrap();
        let b = WayMask::low(18).unwrap();
        assert_eq!(format_l3_schemata(&[(0, a), (1, b)]), "L3:0=c0000;1=3ffff");
    }

    #[test]
    fn parse_roundtrip() {
        let masks = vec![(0, WayMask::from_range(16, 4).unwrap()), (1, WayMask::low(16).unwrap())];
        let line = format_l3_schemata(&masks);
        assert_eq!(parse_l3_schemata(&line).unwrap(), masks);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_l3_schemata("MB:0=100").is_err());
        assert!(parse_l3_schemata("L3:0").is_err());
        assert!(parse_l3_schemata("L3:x=fffff").is_err());
        assert!(parse_l3_schemata("L3:0=zz").is_err());
        assert!(parse_l3_schemata("L3:0=0").is_err(), "empty mask");
    }

    #[test]
    fn fs_write_and_read_schemata() {
        let fs_ = ResctrlFs::new(tmp_root("rw"));
        let m = WayMask::from_range(10, 10).unwrap();
        fs_.write_schemata("grp", 0, m).unwrap();
        assert_eq!(fs_.read_schemata("grp").unwrap(), vec![(0, m)]);
        fs::remove_dir_all(fs_.root()).unwrap();
    }

    #[test]
    fn fs_apply_plan_creates_disjoint_groups() {
        let fs_ = ResctrlFs::new(tmp_root("plan"));
        fs_.apply_plan(PartitionPlan::Split { hp_ways: 5 }, 20, 0).unwrap();
        let hp = fs_.read_schemata(HP_GROUP).unwrap()[0].1;
        let be = fs_.read_schemata(BE_GROUP).unwrap()[0].1;
        assert!(!hp.overlaps(be));
        assert_eq!(hp.count(), 5);
        assert_eq!(be.count(), 15);
        fs::remove_dir_all(fs_.root()).unwrap();
    }

    #[test]
    fn fs_apply_invalid_plan_errors() {
        let fs_ = ResctrlFs::new(tmp_root("bad"));
        let err = fs_.apply_plan(PartitionPlan::Split { hp_ways: 20 }, 20, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        fs::remove_dir_all(fs_.root()).unwrap();
    }

    #[test]
    fn fs_assign_tasks_appends() {
        let fs_ = ResctrlFs::new(tmp_root("tasks"));
        fs_.assign_task("grp", 100).unwrap();
        fs_.assign_task("grp", 200).unwrap();
        let text = fs::read_to_string(fs_.root().join("grp/tasks")).unwrap();
        assert_eq!(text, "100\n200\n");
        fs::remove_dir_all(fs_.root()).unwrap();
    }
}
