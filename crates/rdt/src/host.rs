//! A resctrl-backed host platform: the same [`PartitionController`] /
//! [`MbaController`] surface the simulator exposes, implemented by writing
//! Linux `resctrl` schemata files.
//!
//! Point [`HostPlatform::new`] at `/sys/fs/resctrl` on a CAT-capable Xeon
//! (mounted with `mount -t resctrl resctrl /sys/fs/resctrl`) and every
//! policy in `dicer-policy` can drive real hardware; point it at a temp
//! directory and the full write path is unit-testable, which is what this
//! repository's tests do (no RDT hardware in CI).
//!
//! Monitoring is *not* implemented here: reading CMT/MBM counters and IPC
//! requires perf/resctrl `mon_data` plumbing that cannot be exercised
//! without the hardware. A production deployment would fill a
//! [`crate::PeriodSample`] from `mon_data/*/llc_occupancy`,
//! `mbm_total_bytes` and `perf` IPC, then feed the policy exactly like the
//! simulator does.

use crate::{
    mba::{MbaController, MbaLevel},
    plan::PartitionPlan,
    resctrl::{ResctrlFs, BE_GROUP, HP_GROUP},
    PartitionController,
};
use std::io;
use std::path::PathBuf;

/// Renders an MBA schemata line, e.g. `MB:0=50`.
pub fn format_mb_schemata(cache_id: u32, level: MbaLevel) -> String {
    format!("MB:{cache_id}={}", level.percent())
}

/// Parses an `MB:` schemata line back into a level.
pub fn parse_mb_schemata(line: &str) -> Result<(u32, MbaLevel), String> {
    let rest = line
        .trim()
        .strip_prefix("MB:")
        .ok_or_else(|| format!("missing MB prefix in {line:?}"))?;
    let (id, pct) = rest
        .split_once('=')
        .ok_or_else(|| format!("malformed MB fragment {rest:?}"))?;
    let id: u32 = id.trim().parse().map_err(|e| format!("bad cache id: {e}"))?;
    let pct: u8 = pct.trim().parse().map_err(|e| format!("bad percentage: {e}"))?;
    Ok((id, MbaLevel::new(pct)?))
}

/// A CAT/MBA actuator over a resctrl filesystem root.
#[derive(Debug)]
pub struct HostPlatform {
    fs: ResctrlFs,
    n_ways: u32,
    cache_id: u32,
    plan: PartitionPlan,
    throttle: MbaLevel,
}

impl HostPlatform {
    /// Opens a platform over `root` for a cache with `n_ways` ways. Creates
    /// the HP/BE control groups and programs an unmanaged initial state.
    pub fn new(root: impl Into<PathBuf>, n_ways: u32, cache_id: u32) -> io::Result<Self> {
        assert!((2..=32).contains(&n_ways));
        let fs = ResctrlFs::new(root);
        let mut p = Self {
            fs,
            n_ways,
            cache_id,
            plan: PartitionPlan::Unmanaged,
            throttle: MbaLevel::FULL,
        };
        p.write_plan()?;
        p.write_throttle()?;
        Ok(p)
    }

    /// The backing filesystem wrapper.
    pub fn fs(&self) -> &ResctrlFs {
        &self.fs
    }

    fn write_plan(&mut self) -> io::Result<()> {
        self.fs.apply_plan(self.plan, self.n_ways, self.cache_id)
    }

    fn write_throttle(&mut self) -> io::Result<()> {
        use std::fs;
        let dir = self.fs.create_group(BE_GROUP)?;
        fs::write(dir.join("schemata_mb"), format_mb_schemata(self.cache_id, self.throttle) + "\n")
    }

    /// Pins the HP task and the BE tasks into their control groups.
    pub fn assign_tasks(&self, hp_pid: u32, be_pids: &[u32]) -> io::Result<()> {
        self.fs.assign_task(HP_GROUP, hp_pid)?;
        for pid in be_pids {
            self.fs.assign_task(BE_GROUP, *pid)?;
        }
        Ok(())
    }
}

impl PartitionController for HostPlatform {
    fn n_ways(&self) -> u32 {
        self.n_ways
    }

    fn apply_plan(&mut self, plan: PartitionPlan) {
        plan.validate(self.n_ways).expect("invalid partition plan");
        self.plan = plan;
        self.write_plan().expect("resctrl schemata write failed");
    }

    fn current_plan(&self) -> PartitionPlan {
        self.plan
    }
}

impl MbaController for HostPlatform {
    fn set_be_throttle(&mut self, level: MbaLevel) {
        self.throttle = level;
        self.write_throttle().expect("resctrl MB schemata write failed");
    }

    fn be_throttle(&self) -> MbaLevel {
        self.throttle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dicer_host_test_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn mb_schemata_roundtrip() {
        let line = format_mb_schemata(0, MbaLevel::new(50).unwrap());
        assert_eq!(line, "MB:0=50");
        let (id, level) = parse_mb_schemata(&line).unwrap();
        assert_eq!(id, 0);
        assert_eq!(level.percent(), 50);
    }

    /// `parse_mb_schemata ∘ format_mb_schemata == id` for one pair.
    fn check_mb_roundtrip(cache_id: u32, level: MbaLevel) {
        let line = format_mb_schemata(cache_id, level);
        let (id, parsed) = parse_mb_schemata(&line).expect("formatted line must parse");
        assert_eq!(id, cache_id, "cache id mangled through {line:?}");
        assert_eq!(parsed, level, "level mangled through {line:?}");
    }

    #[test]
    fn mb_roundtrip_exhaustive_over_levels() {
        // Every valid MBA level against cache ids spanning the u32 range
        // (multi-socket ids are small, but the codec must not care).
        for cache_id in [0, 1, 7, 63, 255, 1024, u32::MAX] {
            for pct in (10..=100).step_by(10) {
                check_mb_roundtrip(cache_id, MbaLevel::new(pct as u8).unwrap());
            }
        }
    }

    proptest::proptest! {
        /// Same law across the whole (cache id × level) space.
        #[test]
        fn mb_roundtrip_prop(cache_id in proptest::prelude::any::<u32>(), step in 1u8..=10) {
            check_mb_roundtrip(cache_id, MbaLevel::new(step * 10).unwrap());
        }
    }

    #[test]
    fn mb_parse_rejects_garbage() {
        assert!(parse_mb_schemata("L3:0=fffff").is_err());
        assert!(parse_mb_schemata("MB:0=55").is_err(), "55 is not a valid MBA step");
        assert!(parse_mb_schemata("MB:x=50").is_err());
    }

    #[test]
    fn mb_parse_rejects_malformed_structure() {
        assert!(parse_mb_schemata("").is_err(), "empty line");
        assert!(parse_mb_schemata("MB:").is_err(), "no id=pct fragment");
        assert!(parse_mb_schemata("MB:0").is_err(), "missing '='");
        assert!(parse_mb_schemata("MB:=50").is_err(), "empty cache id");
        assert!(parse_mb_schemata("MB:0=").is_err(), "empty percentage");
        assert!(parse_mb_schemata("MB:0=0").is_err(), "0 below the MBA floor");
        assert!(parse_mb_schemata("MB:0=110").is_err(), "110 above the MBA ceiling");
        assert!(parse_mb_schemata("MB:0=-10").is_err(), "negative percentage");
        assert!(parse_mb_schemata("MB:-1=50").is_err(), "negative cache id");
        assert!(parse_mb_schemata("MB:4294967296=50").is_err(), "cache id > u32::MAX");
        assert!(parse_mb_schemata("mb:0=50").is_err(), "prefix is case-sensitive");
        assert!(parse_mb_schemata("MB:0=50=60").is_err(), "trailing '=' garbage");
    }

    #[test]
    fn mb_parse_tolerates_surrounding_whitespace() {
        // resctrl schemata reads come with trailing newlines and padding.
        let (id, level) = parse_mb_schemata("  MB:3=70\n").unwrap();
        assert_eq!(id, 3);
        assert_eq!(level.percent(), 70);
        let (id, level) = parse_mb_schemata("MB: 3 = 70").unwrap();
        assert_eq!(id, 3);
        assert_eq!(level.percent(), 70);
    }

    #[test]
    fn platform_writes_groups_on_creation() {
        let root = tmp_root("create");
        let p = HostPlatform::new(&root, 20, 0).unwrap();
        assert!(root.join(HP_GROUP).join("schemata").exists());
        assert!(root.join(BE_GROUP).join("schemata").exists());
        assert_eq!(p.current_plan(), PartitionPlan::Unmanaged);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn apply_plan_updates_schemata_files() {
        let root = tmp_root("plan");
        let mut p = HostPlatform::new(&root, 20, 0).unwrap();
        p.apply_plan(PartitionPlan::Split { hp_ways: 5 });
        let hp = p.fs().read_schemata(HP_GROUP).unwrap()[0].1;
        let be = p.fs().read_schemata(BE_GROUP).unwrap()[0].1;
        assert_eq!(hp.count(), 5);
        assert_eq!(be.count(), 15);
        assert!(!hp.overlaps(be));
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn overlapping_plan_writes_overlapping_masks() {
        let root = tmp_root("overlap");
        let mut p = HostPlatform::new(&root, 20, 0).unwrap();
        p.apply_plan(PartitionPlan::Overlapping { hp_exclusive: 4, shared: 6 });
        let hp = p.fs().read_schemata(HP_GROUP).unwrap()[0].1;
        let be = p.fs().read_schemata(BE_GROUP).unwrap()[0].1;
        assert!(hp.overlaps(be));
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn throttle_writes_mb_line() {
        let root = tmp_root("mba");
        let mut p = HostPlatform::new(&root, 20, 0).unwrap();
        p.set_be_throttle(MbaLevel::new(30).unwrap());
        let text = fs::read_to_string(root.join(BE_GROUP).join("schemata_mb")).unwrap();
        assert_eq!(text.trim(), "MB:0=30");
        assert_eq!(p.be_throttle().percent(), 30);
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    fn tasks_are_pinned_to_groups() {
        let root = tmp_root("tasks");
        let p = HostPlatform::new(&root, 20, 0).unwrap();
        p.assign_tasks(100, &[200, 201]).unwrap();
        let hp = fs::read_to_string(root.join(HP_GROUP).join("tasks")).unwrap();
        let be = fs::read_to_string(root.join(BE_GROUP).join("tasks")).unwrap();
        assert_eq!(hp.trim(), "100");
        assert_eq!(be, "200\n201\n");
        fs::remove_dir_all(root).unwrap();
    }

    #[test]
    #[should_panic]
    fn invalid_plan_still_rejected() {
        let root = tmp_root("invalid");
        let mut p = HostPlatform::new(&root, 20, 0).unwrap();
        p.apply_plan(PartitionPlan::Split { hp_ways: 20 });
    }
}
