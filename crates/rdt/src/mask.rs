//! CAT capacity bitmasks.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A CAT way bitmask.
///
/// Real CAT implementations require capacity masks to be **non-empty and
/// contiguous**; both invariants are enforced at construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(u32);

/// Errors from mask construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MaskError {
    /// The mask had no bits set.
    Empty,
    /// The set bits were not contiguous.
    NotContiguous(u32),
    /// The mask used bits beyond the cache's way count.
    OutOfRange {
        /// Offending raw bits.
        bits: u32,
        /// Way count of the cache.
        ways: u32,
    },
}

impl fmt::Display for MaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MaskError::Empty => write!(f, "CAT mask must have at least one way"),
            MaskError::NotContiguous(b) => write!(f, "CAT mask {b:#x} is not contiguous"),
            MaskError::OutOfRange { bits, ways } => {
                write!(f, "CAT mask {bits:#x} exceeds {ways} ways")
            }
        }
    }
}

impl std::error::Error for MaskError {}

impl WayMask {
    /// Builds a mask from raw bits, enforcing non-emptiness and contiguity.
    pub fn from_bits(bits: u32) -> Result<Self, MaskError> {
        if bits == 0 {
            return Err(MaskError::Empty);
        }
        // Contiguous iff after shifting out trailing zeros the value is of
        // the form 2^k - 1.
        let shifted = bits >> bits.trailing_zeros();
        if shifted & shifted.wrapping_add(1) != 0 {
            return Err(MaskError::NotContiguous(bits));
        }
        Ok(Self(bits))
    }

    /// Mask covering `count` ways starting at `start` (bit `start` .. bit
    /// `start + count - 1`).
    pub fn from_range(start: u32, count: u32) -> Result<Self, MaskError> {
        if count == 0 {
            return Err(MaskError::Empty);
        }
        if start + count > 32 {
            return Err(MaskError::OutOfRange { bits: 0, ways: 32 });
        }
        let bits = if count == 32 { u32::MAX } else { ((1u32 << count) - 1) << start };
        Ok(Self(bits))
    }

    /// Mask covering the lowest `ways` ways.
    pub fn low(ways: u32) -> Result<Self, MaskError> {
        Self::from_range(0, ways)
    }

    /// Raw bits.
    pub fn bits(&self) -> u32 {
        self.0
    }

    /// Number of ways granted.
    pub fn count(&self) -> u32 {
        self.0.count_ones()
    }

    /// Whether this mask shares any way with `other`.
    pub fn overlaps(&self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether the mask fits a cache with `ways` ways.
    pub fn fits(&self, ways: u32) -> bool {
        u64::from(self.0) < (1u64 << ways)
    }

    /// Index of the lowest way granted.
    pub fn first_way(&self) -> u32 {
        self.0.trailing_zeros()
    }
}

impl fmt::Display for WayMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_masks_accepted() {
        assert_eq!(WayMask::from_bits(0b1).unwrap().count(), 1);
        assert_eq!(WayMask::from_bits(0b1110).unwrap().count(), 3);
        assert_eq!(WayMask::from_bits(u32::MAX).unwrap().count(), 32);
    }

    #[test]
    fn empty_mask_rejected() {
        assert_eq!(WayMask::from_bits(0), Err(MaskError::Empty));
    }

    #[test]
    fn gappy_mask_rejected() {
        assert!(matches!(WayMask::from_bits(0b101), Err(MaskError::NotContiguous(_))));
        assert!(matches!(WayMask::from_bits(0b11011), Err(MaskError::NotContiguous(_))));
    }

    #[test]
    fn from_range_places_bits() {
        let m = WayMask::from_range(4, 3).unwrap();
        assert_eq!(m.bits(), 0b111_0000);
        assert_eq!(m.first_way(), 4);
    }

    #[test]
    fn from_range_full_width() {
        assert_eq!(WayMask::from_range(0, 32).unwrap().bits(), u32::MAX);
        assert!(WayMask::from_range(1, 32).is_err());
    }

    #[test]
    fn low_builds_lsb_mask() {
        assert_eq!(WayMask::low(5).unwrap().bits(), 0b11111);
    }

    #[test]
    fn overlap_detection() {
        let a = WayMask::from_range(0, 4).unwrap();
        let b = WayMask::from_range(4, 4).unwrap();
        let c = WayMask::from_range(3, 2).unwrap();
        assert!(!a.overlaps(b));
        assert!(a.overlaps(c));
        assert!(b.overlaps(c));
    }

    #[test]
    fn fits_respects_way_count() {
        let m = WayMask::from_range(18, 2).unwrap();
        assert!(m.fits(20));
        assert!(!m.fits(19));
    }

    #[test]
    fn display_is_hex_like_resctrl() {
        assert_eq!(WayMask::low(20).unwrap().to_string(), "fffff");
    }
}
