//! Memory Bandwidth Allocation (MBA) levels.
//!
//! Intel MBA exposes a per-CLOS *delay value*: a percentage throttle on the
//! request rate a class may present to the memory controller, programmable
//! in steps of 10 % from 10 % to 100 % (unthrottled). The paper names MBA
//! as the mechanism its future-work extension would use to "explicitly,
//! dynamically control the memory bandwidth".

use serde::{Deserialize, Serialize};

/// An MBA throttle level in percent (10–100, multiples of 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MbaLevel(u8);

impl MbaLevel {
    /// Unthrottled (100 %).
    pub const FULL: MbaLevel = MbaLevel(100);
    /// Maximum throttling the hardware supports (10 %).
    pub const MIN: MbaLevel = MbaLevel(10);

    /// Builds a level, validating the hardware constraints.
    pub fn new(percent: u8) -> Result<Self, String> {
        if !(10..=100).contains(&percent) || !percent.is_multiple_of(10) {
            return Err(format!("MBA level must be 10..=100 in steps of 10, got {percent}"));
        }
        Ok(Self(percent))
    }

    /// The raw percentage.
    pub fn percent(&self) -> u8 {
        self.0
    }

    /// Fraction of the unthrottled request rate this level permits.
    pub fn fraction(&self) -> f64 {
        self.0 as f64 / 100.0
    }

    /// One step more aggressive (clamped at [`MbaLevel::MIN`]).
    pub fn tighten(&self) -> MbaLevel {
        MbaLevel((self.0 - 10).max(10))
    }

    /// One step less aggressive (clamped at [`MbaLevel::FULL`]).
    pub fn relax(&self) -> MbaLevel {
        MbaLevel((self.0 + 10).min(100))
    }

    /// Whether this level throttles at all.
    pub fn is_throttled(&self) -> bool {
        self.0 < 100
    }
}

impl Default for MbaLevel {
    fn default() -> Self {
        Self::FULL
    }
}

impl std::fmt::Display for MbaLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}%", self.0)
    }
}

/// A platform that can throttle the BE class's memory request rate.
pub trait MbaController {
    /// Sets the throttle applied to every BE, effective next period.
    fn set_be_throttle(&mut self, level: MbaLevel);
    /// Currently programmed throttle.
    fn be_throttle(&self) -> MbaLevel;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_levels() {
        assert!(MbaLevel::new(10).is_ok());
        assert!(MbaLevel::new(100).is_ok());
        assert_eq!(MbaLevel::new(50).unwrap().fraction(), 0.5);
    }

    #[test]
    fn invalid_levels_rejected() {
        assert!(MbaLevel::new(0).is_err());
        assert!(MbaLevel::new(105).is_err());
        assert!(MbaLevel::new(55).is_err());
    }

    #[test]
    fn tighten_and_relax_clamp() {
        assert_eq!(MbaLevel::MIN.tighten(), MbaLevel::MIN);
        assert_eq!(MbaLevel::FULL.relax(), MbaLevel::FULL);
        assert_eq!(MbaLevel::new(50).unwrap().tighten().percent(), 40);
        assert_eq!(MbaLevel::new(50).unwrap().relax().percent(), 60);
    }

    #[test]
    fn throttled_predicate() {
        assert!(!MbaLevel::FULL.is_throttled());
        assert!(MbaLevel::new(90).unwrap().is_throttled());
    }

    #[test]
    fn display() {
        assert_eq!(MbaLevel::FULL.to_string(), "100%");
    }
}
