//! Intel-RDT-style control and monitoring abstraction.
//!
//! The paper implements DICER on top of the Intel RDT Software Package
//! (`intel-cmt-cat`), using three mechanisms: **CAT** (way-granular LLC
//! allocation per class of service), **CMT** (per-RMID LLC occupancy) and
//! **MBM** (per-RMID memory bandwidth). This crate reproduces that control
//! surface:
//!
//! * [`WayMask`] — validated, contiguous CAT capacity bitmasks;
//! * [`ClosId`] / [`Rmid`] — class-of-service and monitoring IDs;
//! * [`AllocationTable`] — the CLOS→mask table with overlap checking for
//!   the isolated partitioning mode DICER uses (paper §3.3);
//! * [`PartitionPlan`] — the HP/BE split DICER actuates each period;
//! * [`PeriodSample`] — the per-period counters DICER consumes;
//! * [`PartitionController`] — the trait a platform (the simulator in this
//!   repository, or a real resctrl host) implements;
//! * [`MbaLevel`] / [`MbaController`] — Memory Bandwidth Allocation levels
//!   for the paper's future-work MBA extension;
//! * [`resctrl`] — Linux `resctrl` filesystem formatting/IO against an
//!   arbitrary root, so the exact same plan can drive real hardware;
//! * [`HostPlatform`] — a resctrl-backed actuator implementing the same
//!   controller traits as the simulator;
//! * [`faults`] — seeded, deterministic fault injection on the whole
//!   monitoring/actuation path ([`FaultInjector`], [`FaultyPlatform`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod faults;
pub mod host;
pub mod mask;
pub mod mba;
pub mod plan;
pub mod resctrl;
pub mod sample;

pub use alloc::AllocationTable;
pub use faults::{FaultConfig, FaultEvent, FaultInjector, FaultStats, FaultyPlatform, NoiseSpec};
pub use host::HostPlatform;
pub use mask::WayMask;
pub use mba::{MbaController, MbaLevel};
pub use plan::PartitionPlan;
pub use sample::{PerAppSample, PeriodSample};

/// Class-of-service identifier (CAT allocation class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct ClosId(pub u8);

/// Resource monitoring identifier (CMT/MBM counter tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize)]
pub struct Rmid(pub u16);

/// A platform that can enforce HP/BE cache partitions and expose per-period
/// monitoring. Implemented by the server simulator; a resctrl-backed
/// implementation would drive real hardware through the same interface.
pub trait PartitionController {
    /// Number of ways in the managed LLC.
    fn n_ways(&self) -> u32;
    /// Enforce a partition plan, effective from the next period. Contents of
    /// the LLC are not flushed (CAT semantics).
    fn apply_plan(&mut self, plan: PartitionPlan);
    /// Enforce a plan outside the monitored actuation path (run setup — the
    /// initial plan lands before monitoring starts). Fault-wrapping
    /// platforms bypass their injector here; everything else actuates
    /// normally.
    fn apply_plan_direct(&mut self, plan: PartitionPlan) {
        self.apply_plan(plan);
    }
    /// The plan currently in force.
    fn current_plan(&self) -> PartitionPlan;
}

/// A platform that, on top of partition and MBA control, advances in
/// monitoring periods and exposes each period's counters. The server
/// simulator implements this; [`FaultyPlatform`] wraps any implementation
/// to perturb the monitoring/actuation path.
///
/// Beyond raw stepping, the trait carries the full control surface a
/// generic period-loop runtime (`dicer_experiments::session::Session`)
/// needs: fallible delivery ([`step_period_monitored`]), run termination
/// ([`workload_complete`]), BE admission control and telemetry wiring.
/// Every extension has a conservative default so simple platforms (and the
/// test fakes) implement only [`step_period`].
///
/// [`step_period_monitored`]: MonitoredPlatform::step_period_monitored
/// [`workload_complete`]: MonitoredPlatform::workload_complete
pub trait MonitoredPlatform: PartitionController + MbaController {
    /// Advances one monitoring period and returns its counters.
    fn step_period(&mut self) -> PeriodSample;

    /// Advances one monitoring period, reporting whether the counters were
    /// actually delivered. A clean platform always delivers; fault-wrapping
    /// platforms return `None` for a dropped CMT/MBM read so the controller
    /// can apply its missing-period holdover.
    fn step_period_monitored(&mut self) -> Option<PeriodSample> {
        Some(self.step_period())
    }

    /// Advances one monitoring period, writing the counters into `out`
    /// (reusing its heap buffers) and reporting whether they were
    /// delivered; `out` is unspecified after a non-delivery. Long-horizon
    /// drivers call this in a loop with one persistent sample so
    /// steady-state stepping allocates nothing. The default delegates to
    /// [`step_period_monitored`] and moves the result; platforms with an
    /// in-place fast path (the server simulator) override it.
    ///
    /// [`step_period_monitored`]: MonitoredPlatform::step_period_monitored
    fn step_period_monitored_into(&mut self, out: &mut PeriodSample) -> bool {
        match self.step_period_monitored() {
            Some(sample) => {
                *out = sample;
                true
            }
            None => false,
        }
    }

    /// Whether every workload hosted on the platform has completed at least
    /// once (the paper's stopping rule). Platforms with no notion of
    /// completion — a live resctrl host serves traffic forever — report
    /// `false` and run until an external cap.
    fn workload_complete(&self) -> bool {
        false
    }

    /// Number of BEs currently scheduled, or `None` when the platform has
    /// no admission control.
    fn admitted_bes(&self) -> Option<u32> {
        None
    }

    /// Limits the number of concurrently scheduled BEs. Platforms without
    /// admission control ignore the request.
    fn set_admitted_bes(&mut self, _n: u32) {}

    /// Attaches a telemetry bus to the platform (and anything it wraps).
    /// Emission is observational only; platforms without instrumentation
    /// ignore the handle.
    fn set_telemetry(&mut self, _telemetry: dicer_telemetry::Telemetry) {}

    /// Attaches a span tracer to the platform (and anything it wraps), so
    /// platform-internal stages (equilibrium solves, apply retries) emit
    /// spans under the caller's period span. Observational only; platforms
    /// without instrumentation ignore the handle.
    fn set_tracer(&mut self, _tracer: dicer_telemetry::Tracer) {}
}
