//! Incremental HTTP/1.1 request parsing and response rendering.
//!
//! [`parse_request`] looks at the *front* of a connection's read buffer
//! and returns one of three things: a complete request (with the number
//! of bytes it consumed, so pipelined requests behind it stay in the
//! buffer), "need more bytes", or a strict protocol error that maps to
//! one specific status code. Nothing is ever silently ignored: a typo in
//! a request is a client error, not a guess.

use std::fmt;

/// Maximum size of the request line + headers, in bytes. A head that has
/// not terminated within this budget is answered `431` and the
/// connection closed — an unbounded header buffer is a memory DoS.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Maximum request body size. The only body-bearing route is the small
/// `POST /control` form, so this is deliberately tight.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// Request methods the runtime understands. Everything else parses but
/// is answered `405 Method Not Allowed` (the request *line* was valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

impl fmt::Display for Method {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Method::Get => "GET",
            Method::Post => "POST",
        })
    }
}

/// One parsed request. Header names are lower-cased at parse time;
/// values keep their bytes (trimmed of optional whitespace).
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    pub method: Method,
    /// Path component of the target, up to the first `?`.
    pub path: String,
    /// Raw query string after the first `?` (empty when absent).
    pub query: String,
    /// `(lower-cased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty when absent).
    pub body: Vec<u8>,
    /// Whether the client asked to close after this response
    /// (`Connection: close`, or HTTP/1.0 without `keep-alive`).
    pub close: bool,
}

impl Request {
    /// First value of a header, by lower-cased name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(n, _)| n == name).map(|(_, v)| v.as_str())
    }
}

/// Strict protocol errors, each tied to the one status line it is
/// answered with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParseError {
    /// Anything structurally wrong: bad request line, bad header line,
    /// bad `Content-Length`, non-UTF-8 head, chunked request body.
    Malformed(&'static str),
    /// Valid request line, but a method this runtime does not serve.
    MethodNotAllowed,
    /// Head exceeded [`MAX_HEAD_BYTES`] without terminating.
    HeadersTooLarge,
    /// Declared `Content-Length` exceeds [`MAX_BODY_BYTES`].
    BodyTooLarge,
    /// An HTTP version other than 1.0/1.1.
    UnsupportedVersion,
}

impl ParseError {
    /// The status line this error is answered with.
    pub fn status(&self) -> &'static str {
        match self {
            ParseError::Malformed(_) => "400 Bad Request",
            ParseError::MethodNotAllowed => "405 Method Not Allowed",
            ParseError::HeadersTooLarge => "431 Request Header Fields Too Large",
            ParseError::BodyTooLarge => "413 Content Too Large",
            ParseError::UnsupportedVersion => "505 HTTP Version Not Supported",
        }
    }

    /// Human-readable body text for the error response.
    pub fn message(&self) -> &'static str {
        match self {
            ParseError::Malformed(why) => why,
            ParseError::MethodNotAllowed => "method not allowed",
            ParseError::HeadersTooLarge => "request head exceeds 8 KiB",
            ParseError::BodyTooLarge => "request body exceeds 64 KiB",
            ParseError::UnsupportedVersion => "only HTTP/1.0 and HTTP/1.1 are supported",
        }
    }
}

/// Outcome of one incremental parse attempt at the front of a buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum Parsed {
    /// The buffer holds a prefix of a request; read more bytes.
    Partial,
    /// One complete request occupying `buf[..consumed]`.
    Complete { request: Request, consumed: usize },
    /// Protocol error; answer with [`ParseError::status`] and close.
    Error(ParseError),
}

/// Parses one request from the front of `buf`. Pure and restartable:
/// callers re-invoke it with the same (grown) buffer after every read
/// until it stops returning [`Parsed::Partial`].
pub fn parse_request(buf: &[u8]) -> Parsed {
    let head_end = match find_head_end(buf) {
        Some(i) if i + 4 <= MAX_HEAD_BYTES => i,
        Some(_) => return Parsed::Error(ParseError::HeadersTooLarge),
        None if buf.len() >= MAX_HEAD_BYTES => {
            return Parsed::Error(ParseError::HeadersTooLarge)
        }
        None => return Parsed::Partial,
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Parsed::Error(ParseError::Malformed("non-UTF-8 request head")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();

    // Request line: exactly `METHOD SP target SP HTTP/x.y`.
    let mut parts = request_line.split(' ');
    let (method_tok, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if !m.is_empty() && parts.next().is_none() => (m, t, v),
        _ => {
            return Parsed::Error(ParseError::Malformed(
                "request line must be `METHOD PATH HTTP/1.1`",
            ))
        }
    };
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Parsed::Error(ParseError::UnsupportedVersion),
    };
    if !method_tok.bytes().all(|b| b.is_ascii_uppercase()) {
        return Parsed::Error(ParseError::Malformed("method must be an uppercase token"));
    }
    let method = match method_tok {
        "GET" => Method::Get,
        "POST" => Method::Post,
        _ => return Parsed::Error(ParseError::MethodNotAllowed),
    };
    if !target.starts_with('/') {
        return Parsed::Error(ParseError::Malformed("target must be an absolute path"));
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));

    // Headers: `Name: value`, no whitespace before the colon.
    let mut headers = Vec::new();
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            return Parsed::Error(ParseError::Malformed("header line is missing a colon"));
        };
        if name.is_empty() || name.ends_with(|c: char| c.is_ascii_whitespace()) {
            return Parsed::Error(ParseError::Malformed("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let mut content_length = 0usize;
    for (name, value) in &headers {
        match name.as_str() {
            "content-length" => {
                content_length = match value.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        return Parsed::Error(ParseError::Malformed("bad Content-Length"))
                    }
                };
            }
            "transfer-encoding" => {
                return Parsed::Error(ParseError::Malformed(
                    "chunked request bodies are not supported",
                ))
            }
            _ => {}
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Parsed::Error(ParseError::BodyTooLarge);
    }
    let total = head_end + 4 + content_length;
    if buf.len() < total {
        return Parsed::Partial;
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => http10,
    };

    Parsed::Complete {
        request: Request {
            method,
            path: path.to_string(),
            query: query.to_string(),
            headers,
            body: buf[head_end + 4..total].to_vec(),
            close,
        },
        consumed: total,
    }
}

/// Index of the `\r\n\r\n` head terminator, if present.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Renders a full (non-streaming) response into `out`.
pub fn render_response(
    status: &str,
    content_type: &str,
    body: &[u8],
    close: bool,
    out: &mut Vec<u8>,
) {
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    out.extend_from_slice(body.len().to_string().as_bytes());
    out.extend_from_slice(if close {
        b"\r\nConnection: close".as_slice()
    } else {
        b"\r\nConnection: keep-alive".as_slice()
    });
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body);
}

/// Renders the head of a chunked streaming response. Streams always end
/// with [`render_final_chunk`] followed by connection close.
pub fn render_stream_head(status: &str, content_type: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(b"HTTP/1.1 ");
    out.extend_from_slice(status.as_bytes());
    out.extend_from_slice(b"\r\nContent-Type: ");
    out.extend_from_slice(content_type.as_bytes());
    out.extend_from_slice(b"\r\nTransfer-Encoding: chunked\r\nConnection: close\r\n\r\n");
}

/// Renders one non-empty chunk. Empty payloads are skipped — a zero
/// chunk would terminate the stream.
pub fn render_chunk(payload: &[u8], out: &mut Vec<u8>) {
    if payload.is_empty() {
        return;
    }
    out.extend_from_slice(format!("{:x}\r\n", payload.len()).as_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
}

/// Renders the stream-terminating zero chunk.
pub fn render_final_chunk(out: &mut Vec<u8>) {
    out.extend_from_slice(b"0\r\n\r\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parsed::Complete { request, consumed } => (request, consumed),
            other => panic!("expected complete request, got {other:?}"),
        }
    }

    fn error(buf: &[u8]) -> ParseError {
        match parse_request(buf) {
            Parsed::Error(e) => e,
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn minimal_get_parses() {
        let (req, consumed) = complete(b"GET /metrics HTTP/1.1\r\n\r\n");
        assert_eq!(req.method, Method::Get);
        assert_eq!(req.path, "/metrics");
        assert_eq!(req.query, "");
        assert!(req.headers.is_empty());
        assert!(req.body.is_empty());
        assert!(!req.close, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(consumed, b"GET /metrics HTTP/1.1\r\n\r\n".len());
    }

    #[test]
    fn query_splits_off_the_path() {
        let (req, _) = complete(b"GET /events?n=5&follow=1 HTTP/1.1\r\n\r\n");
        assert_eq!(req.path, "/events");
        assert_eq!(req.query, "n=5&follow=1");
    }

    #[test]
    fn headers_lowercase_names_and_trim_values() {
        let (req, _) =
            complete(b"GET / HTTP/1.1\r\nHost: localhost\r\nX-Thing:  padded  \r\n\r\n");
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.header("x-thing"), Some("padded"));
        assert_eq!(req.header("absent"), None);
    }

    #[test]
    fn post_body_respects_content_length() {
        let (req, consumed) =
            complete(b"POST /control HTTP/1.1\r\nContent-Length: 9\r\n\r\npolicy=umEXTRA");
        assert_eq!(req.method, Method::Post);
        assert_eq!(req.body, b"policy=um");
        // The pipelined "EXTRA" bytes stay in the buffer.
        assert_eq!(consumed, b"POST /control HTTP/1.1\r\nContent-Length: 9\r\n\r\npolicy=um".len());
    }

    #[test]
    fn partial_requests_ask_for_more_bytes() {
        // Every strict prefix of a valid request must be Partial, never an
        // error — this is the "request split across reads" contract.
        let full = b"POST /control HTTP/1.1\r\nContent-Length: 7\r\n\r\npause=1";
        for cut in 0..full.len() {
            assert_eq!(
                parse_request(&full[..cut]),
                Parsed::Partial,
                "prefix of {cut} bytes must be partial"
            );
        }
        let (req, consumed) = complete(full);
        assert_eq!(req.body, b"pause=1");
        assert_eq!(consumed, full.len());
    }

    #[test]
    fn pipelined_requests_parse_back_to_back() {
        let two = b"GET /healthz HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n".to_vec();
        let (first, consumed) = complete(&two);
        assert_eq!(first.path, "/healthz");
        let (second, consumed2) = complete(&two[consumed..]);
        assert_eq!(second.path, "/metrics");
        assert_eq!(consumed + consumed2, two.len());
    }

    #[test]
    fn unknown_method_is_405() {
        assert_eq!(error(b"DELETE /metrics HTTP/1.1\r\n\r\n"), ParseError::MethodNotAllowed);
        assert_eq!(error(b"PATCH / HTTP/1.1\r\n\r\n"), ParseError::MethodNotAllowed);
        assert_eq!(ParseError::MethodNotAllowed.status(), "405 Method Not Allowed");
    }

    #[test]
    fn garbage_method_is_400_not_405() {
        // A lowercase or non-token "method" is a malformed request line,
        // not a real method we decline to serve.
        assert!(matches!(error(b"get / HTTP/1.1\r\n\r\n"), ParseError::Malformed(_)));
        assert!(matches!(error(b"<<>> / HTTP/1.1\r\n\r\n"), ParseError::Malformed(_)));
    }

    #[test]
    fn missing_request_line_parts_are_400() {
        for bad in [
            b"GET\r\n\r\n".as_slice(),
            b"GET /x\r\n\r\n",
            b"GET /x HTTP/1.1 extra\r\n\r\n",
            b" / HTTP/1.1\r\n\r\n",
        ] {
            assert!(matches!(error(bad), ParseError::Malformed(_)), "{bad:?}");
        }
    }

    #[test]
    fn relative_target_is_400() {
        assert!(matches!(error(b"GET metrics HTTP/1.1\r\n\r\n"), ParseError::Malformed(_)));
    }

    #[test]
    fn bad_version_is_505() {
        assert_eq!(error(b"GET / HTTP/2\r\n\r\n"), ParseError::UnsupportedVersion);
        assert_eq!(error(b"GET / FTP/1.1\r\n\r\n"), ParseError::UnsupportedVersion);
    }

    #[test]
    fn header_without_colon_is_400() {
        assert!(matches!(
            error(b"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n"),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn header_name_with_trailing_space_is_400() {
        assert!(matches!(
            error(b"GET / HTTP/1.1\r\nBad Name : x\r\n\r\n"),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn missing_crlf_terminator_is_partial_until_the_cap() {
        // A head that never terminates is Partial while small...
        assert_eq!(parse_request(b"GET / HTTP/1.1\r\nHost: x"), Parsed::Partial);
        // ...and 431 once it exceeds the head budget.
        let mut huge = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        huge.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        assert_eq!(error(&huge), ParseError::HeadersTooLarge);
    }

    #[test]
    fn oversized_but_terminated_head_is_431() {
        let mut req = b"GET / HTTP/1.1\r\nX-Pad: ".to_vec();
        req.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES));
        req.extend_from_slice(b"\r\n\r\n");
        assert_eq!(error(&req), ParseError::HeadersTooLarge);
    }

    #[test]
    fn bad_content_length_is_400_and_huge_is_413() {
        assert!(matches!(
            error(b"POST /control HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            ParseError::Malformed(_)
        ));
        assert!(matches!(
            error(b"POST /control HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
            ParseError::Malformed(_)
        ));
        let huge = format!("POST /c HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert_eq!(error(huge.as_bytes()), ParseError::BodyTooLarge);
    }

    #[test]
    fn chunked_request_bodies_are_rejected() {
        assert!(matches!(
            error(b"POST /control HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            ParseError::Malformed(_)
        ));
    }

    #[test]
    fn connection_close_and_http10_semantics() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(req.close);
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: Keep-Alive\r\n\r\n");
        assert!(!req.close);
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(req.close, "HTTP/1.0 defaults to close");
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(!req.close);
    }

    #[test]
    fn non_utf8_head_is_400() {
        assert!(matches!(error(b"GET /\xff HTTP/1.1\r\n\r\n"), ParseError::Malformed(_)));
    }

    #[test]
    fn response_rendering_round_trips() {
        let mut out = Vec::new();
        render_response("200 OK", "text/plain", b"hi\n", false, &mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 3\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\nhi\n"));
    }

    #[test]
    fn chunk_rendering_is_wire_exact() {
        let mut out = Vec::new();
        render_stream_head("200 OK", "application/x-ndjson", &mut out);
        render_chunk(b"{\"a\":1}\n", &mut out);
        render_chunk(b"", &mut out); // skipped: empty chunk would end the stream
        render_final_chunk(&mut out);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"));
        assert!(text.ends_with("8\r\n{\"a\":1}\n\r\n0\r\n\r\n"));
    }
}
