//! `dicer-netd` — the network runtime under the `dicerd` control plane.
//!
//! A small, dependency-free (std-only) HTTP/1.1 server built around a
//! readiness-driven, non-blocking event loop. One thread drives every
//! connection; handlers run inline on that thread and must be fast
//! (render a metrics page, read a ring buffer, push a command into a
//! mailbox — never simulate). The pieces:
//!
//! * [`http`] — an incremental request parser with owned buffers:
//!   handles pipelined back-to-back requests, requests split across
//!   arbitrarily many reads, strict errors (unknown method → 405,
//!   oversized header block → 431, malformed anything → 400), and
//!   response/chunk rendering helpers.
//! * [`reactor`] — the [`Reactor`] trait: register/deregister interest
//!   by token, poll for readiness with a timeout. The default
//!   [`StdReactor`] is the portable fallback (no OS readiness facility
//!   in std): it reports every registered token ready after sleeping
//!   out the poll timeout, and the non-blocking sockets turn the false
//!   positives into cheap `WouldBlock`s. An epoll/mio/kqueue backend
//!   slots behind the same trait without touching the loop.
//! * [`conn`] — the per-connection state machine: owned read/write
//!   buffers, incremental parse → dispatch → flush, keep-alive and
//!   pipelining, chunked streaming responses fed by a [`Streamer`],
//!   idle timeout on deterministic loop ticks.
//! * [`server`] — the [`EventLoop`]: accept (with a bounded connection
//!   count checked at accept — no TOCTOU window, the loop thread owns
//!   the count), drive every connection, sweep idle ones, and on
//!   shutdown stop accepting, finish in-flight responses, terminate
//!   streams with a final chunk, and drain before returning.
//! * [`mailbox`] — a lock-free multi-producer [`Mailbox`] (Treiber
//!   stack with a FIFO drain) for handing control commands from the
//!   event-loop thread to a simulation thread without ever blocking
//!   either side.
//!
//! The concurrency checklist this crate is written against (per the
//! pelikan cache-architecture notes): per-connection buffers, no lock
//! cycling on hot paths, limit checks where the owner of the resource
//! makes the decision, and `Relaxed`/`Acquire`-`Release` atomics instead
//! of blanket `SeqCst`.

pub mod conn;
pub mod http;
pub mod mailbox;
pub mod reactor;
pub mod server;

pub use http::{Method, ParseError, Parsed, Request};
pub use mailbox::Mailbox;
pub use reactor::{Readiness, Reactor, StdReactor, Token};
pub use server::{
    EventLoop, Handler, NetConfig, NoMetrics, Reply, ReplyKind, ServerMetrics, StreamStatus,
    Streamer,
};
