//! Per-connection state machine.
//!
//! A [`Conn`] owns its socket and both buffers. Each event-loop pass
//! calls [`Conn::drive`], which makes as much progress as the socket
//! allows without ever blocking: read what's there, parse and dispatch
//! every complete pipelined request, pump the streamer (if one is
//! installed), flush what the kernel will take. All limit decisions
//! (head size, body size, buffered-bytes cap) are made here, on the one
//! thread that owns the connection — there is no check-then-act window.

use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::http::{
    parse_request, render_chunk, render_final_chunk, render_response, render_stream_head,
    Parsed, MAX_BODY_BYTES, MAX_HEAD_BYTES,
};
use crate::server::{Handler, ReplyKind, ServerMetrics, StreamStatus, Streamer};

/// Stop pulling new stream payload while more than this many bytes are
/// already waiting in the write buffer. A slow reader therefore stops
/// *consuming* events rather than growing the buffer without bound —
/// and because stream sources are drop-oldest rings, what it misses is
/// the oldest data, never the bus's liveness.
const STREAM_HIGH_WATER: usize = 256 * 1024;

/// Hard cap on buffered-but-unparsed request bytes. `parse_request`'s own
/// head/body limits keep well-formed traffic far below this; the cap only
/// exists so a client that pipelines garbage during a stream cannot grow
/// the buffer unboundedly.
const READ_BUF_CAP: usize = MAX_HEAD_BYTES + MAX_BODY_BYTES + 1024;

/// What one `drive` pass did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct DriveOutcome {
    /// Whether any bytes moved or any request was dispatched (feeds the
    /// event loop's adaptive poll timeout and the idle clock).
    pub progressed: bool,
    /// Whether the connection is finished and should be dropped.
    pub done: bool,
}

pub(crate) struct Conn {
    stream: TcpStream,
    rbuf: Vec<u8>,
    wbuf: Vec<u8>,
    /// Bytes of `wbuf` already written to the socket.
    wpos: usize,
    streamer: Option<Box<dyn Streamer>>,
    close_after_write: bool,
    peer_closed: bool,
    /// Event-loop tick of the last observed progress (idle clock).
    pub last_active_tick: u64,
}

impl Conn {
    pub fn new(stream: TcpStream, tick: u64) -> Self {
        Conn {
            stream,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            wpos: 0,
            streamer: None,
            close_after_write: false,
            peer_closed: false,
            last_active_tick: tick,
        }
    }

    /// Whether a chunked stream is in progress.
    pub fn is_streaming(&self) -> bool {
        self.streamer.is_some()
    }

    /// Whether every rendered byte has reached the kernel.
    pub fn fully_flushed(&self) -> bool {
        self.wpos == self.wbuf.len()
    }

    /// One non-blocking pass: read, parse/dispatch, pump stream, flush.
    pub fn drive<H: Handler>(
        &mut self,
        handler: &mut H,
        metrics: &dyn ServerMetrics,
        tick: u64,
        shutting_down: bool,
    ) -> DriveOutcome {
        let mut progressed = false;

        // Read whatever is available. Streaming connections read too —
        // it is how a vanished client is detected — but bytes arriving
        // during a stream are only buffered up to the cap.
        let mut chunk = [0u8; 4096];
        while !self.peer_closed && self.rbuf.len() < READ_BUF_CAP {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.peer_closed = true;
                }
                Ok(n) => {
                    self.rbuf.extend_from_slice(&chunk[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return DriveOutcome { progressed, done: true },
            }
        }

        // Dispatch every complete pipelined request, stopping if a reply
        // turns the connection into a stream (streams own the connection
        // until they finish, and they finish by closing it).
        while self.streamer.is_none() && !self.close_after_write {
            match parse_request(&self.rbuf) {
                Parsed::Partial => break,
                Parsed::Complete { request, consumed } => {
                    self.rbuf.drain(..consumed);
                    let t0 = Instant::now();
                    let reply = handler.handle(&request);
                    metrics.request_served(reply.endpoint, t0.elapsed().as_secs_f64());
                    progressed = true;
                    match reply.kind {
                        ReplyKind::Full { status, content_type, body } => {
                            render_response(
                                status,
                                content_type,
                                &body,
                                request.close,
                                &mut self.wbuf,
                            );
                            if request.close {
                                self.close_after_write = true;
                            }
                        }
                        ReplyKind::Stream { status, content_type, streamer } => {
                            metrics.stream_started(reply.endpoint);
                            render_stream_head(status, content_type, &mut self.wbuf);
                            self.streamer = Some(streamer);
                        }
                    }
                }
                Parsed::Error(e) => {
                    metrics.parse_error();
                    let mut body = e.message().to_string();
                    body.push('\n');
                    render_response(e.status(), "text/plain", body.as_bytes(), true, &mut self.wbuf);
                    self.close_after_write = true;
                    progressed = true;
                }
            }
        }

        // Pump the stream: pull new payload only while the write buffer
        // is below the high-water mark (backpressure by not consuming).
        if let Some(streamer) = &mut self.streamer {
            if self.peer_closed {
                // The client is gone; there is nobody to stream to.
                return DriveOutcome { progressed, done: true };
            }
            if self.wbuf.len() - self.wpos < STREAM_HIGH_WATER {
                let mut payload = Vec::new();
                let status = streamer.poll(&mut payload, shutting_down);
                if !payload.is_empty() {
                    render_chunk(&payload, &mut self.wbuf);
                    progressed = true;
                }
                if status == StreamStatus::Done {
                    render_final_chunk(&mut self.wbuf);
                    self.streamer = None;
                    self.close_after_write = true;
                    progressed = true;
                }
            }
            // A stream waiting for its source is idle by choice, not
            // abandoned: keep its idle clock fresh while fully flushed.
            if self.fully_flushed() {
                self.last_active_tick = tick;
            }
        }

        // Flush what the kernel will take.
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => return DriveOutcome { progressed, done: true },
                Ok(n) => {
                    self.wpos += n;
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return DriveOutcome { progressed, done: true },
            }
        }
        if self.fully_flushed() && self.wpos > 0 {
            self.wbuf.clear();
            self.wpos = 0;
        }

        if progressed {
            self.last_active_tick = tick;
        }
        let done = (self.close_after_write && self.fully_flushed())
            || (self.peer_closed && self.fully_flushed() && self.streamer.is_none());
        DriveOutcome { progressed, done }
    }
}
