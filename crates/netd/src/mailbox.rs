//! A lock-free command mailbox.
//!
//! [`Mailbox`] hands control commands from the event-loop thread (HTTP
//! handlers) to the simulation thread without ever blocking either side:
//! `push` is a CAS loop on a Treiber stack (multi-producer safe), and
//! `drain` swaps the whole stack out with one atomic exchange, then
//! reverses it so commands come back in FIFO order. There are no locks
//! to cycle and no `SeqCst` — `Release` on publish, `Acquire` on take is
//! exactly the ordering the hand-off needs.

use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

struct Node<T> {
    value: T,
    next: *mut Node<T>,
}

/// Lock-free multi-producer, single-drainer mailbox. `drain` is safe to
/// call from any one thread at a time per call site; concurrent drains
/// are also safe (each message is delivered to exactly one drainer).
pub struct Mailbox<T> {
    head: AtomicPtr<Node<T>>,
}

impl<T> Default for Mailbox<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox { head: AtomicPtr::new(ptr::null_mut()) }
    }

    /// Publishes one message. Never blocks; allocation is the only
    /// non-constant cost.
    pub fn push(&self, value: T) {
        let node = Box::into_raw(Box::new(Node { value, next: ptr::null_mut() }));
        let mut head = self.head.load(Ordering::Relaxed);
        loop {
            // Safety: `node` is uniquely owned until the CAS succeeds.
            unsafe { (*node).next = head };
            match self.head.compare_exchange_weak(
                head,
                node,
                Ordering::Release,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(current) => head = current,
            }
        }
    }

    /// Takes every queued message, oldest first. One atomic exchange;
    /// the reversal happens on the drainer's thread, off the push path.
    pub fn drain(&self) -> Vec<T> {
        let mut node = self.head.swap(ptr::null_mut(), Ordering::Acquire);
        let mut out = Vec::new();
        while !node.is_null() {
            // Safety: the swap made this chain exclusively ours.
            let boxed = unsafe { Box::from_raw(node) };
            node = boxed.next;
            out.push(boxed.value);
        }
        out.reverse(); // stack order -> arrival order
        out
    }

    /// Whether anything is queued (a racy hint — precise enough for
    /// "should the sim loop interrupt its run and go look").
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed).is_null()
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        self.drain();
    }
}

// Safety: messages move whole-sale between threads; no shared interior
// references escape.
unsafe impl<T: Send> Send for Mailbox<T> {}
unsafe impl<T: Send> Sync for Mailbox<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn drain_returns_fifo_order() {
        let mb = Mailbox::new();
        assert!(mb.is_empty());
        for i in 0..5 {
            mb.push(i);
        }
        assert!(!mb.is_empty());
        assert_eq!(mb.drain(), vec![0, 1, 2, 3, 4]);
        assert!(mb.is_empty());
        assert!(mb.drain().is_empty());
    }

    #[test]
    fn interleaved_push_drain_loses_nothing() {
        let mb = Mailbox::new();
        mb.push(1);
        assert_eq!(mb.drain(), vec![1]);
        mb.push(2);
        mb.push(3);
        assert_eq!(mb.drain(), vec![2, 3]);
    }

    #[test]
    fn concurrent_producers_deliver_every_message_exactly_once() {
        const PRODUCERS: usize = 4;
        const PER_PRODUCER: usize = 2_000;
        let mb = Arc::new(Mailbox::new());
        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let mb = mb.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_PRODUCER {
                    mb.push(p * PER_PRODUCER + i);
                }
            }));
        }
        // Drain concurrently with the producers, then once more after.
        let mut got = Vec::new();
        while handles.iter().any(|h| !h.is_finished()) {
            got.extend(mb.drain());
        }
        for h in handles {
            h.join().unwrap();
        }
        got.extend(mb.drain());
        assert_eq!(got.len(), PRODUCERS * PER_PRODUCER);
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), PRODUCERS * PER_PRODUCER, "no duplicates, no losses");
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: a single producer's messages always drain in
        // the order they were pushed, even across multiple drains.
        let mb = Mailbox::new();
        let mut seen = Vec::new();
        for chunk in 0..10 {
            for i in 0..10 {
                mb.push(chunk * 10 + i);
            }
            seen.extend(mb.drain());
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drop_frees_queued_messages() {
        // Miri-style sanity: dropping a non-empty mailbox must not leak.
        let mb = Mailbox::new();
        for i in 0..100 {
            mb.push(vec![i; 10]);
        }
        drop(mb);
    }
}
