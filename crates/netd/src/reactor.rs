//! The readiness abstraction under the event loop.
//!
//! [`Reactor`] is the seam where an OS readiness facility (epoll, kqueue,
//! mio's portable wrapper, io_uring's poll mode) would plug in. The event
//! loop only ever asks three things: track this token, stop tracking it,
//! and "which tokens are ready right now (waiting at most this long)?".
//!
//! The default [`StdReactor`] is the zero-dependency fallback: std has no
//! readiness API, so it *assumes* every registered token is ready after
//! sleeping out the poll timeout. Combined with non-blocking sockets this
//! is a correct (level-triggered, conservative) approximation — a
//! not-actually-ready socket costs one `WouldBlock` syscall per tick, and
//! the event loop's adaptive timeout (zero while work is flowing, one
//! tick when idle) keeps both latency and idle CPU acceptable. A real
//! backend would return only genuinely ready tokens and could block far
//! longer when idle.

use std::collections::BTreeSet;
use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// Opaque registration identifier chosen by the event loop.
pub type Token = usize;

/// One poll result: a token and the directions it is (assumed) ready in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    pub token: Token,
    pub readable: bool,
    pub writable: bool,
}

/// A pluggable readiness backend. Implementations may ignore `fd` (the
/// portable fallback does) or hand it to the OS (an epoll backend would).
pub trait Reactor {
    /// Starts tracking `token`. Re-registering an existing token is a
    /// no-op refresh.
    fn register(&mut self, fd: RawFd, token: Token) -> io::Result<()>;

    /// Stops tracking `token`. Unknown tokens are ignored.
    fn deregister(&mut self, token: Token);

    /// Waits up to `timeout` and appends ready registrations to `events`
    /// (which the caller has cleared). A zero timeout must not sleep.
    fn poll(&mut self, timeout: Duration, events: &mut Vec<Readiness>) -> io::Result<()>;
}

/// Portable std-only backend: sleep out the timeout, then report every
/// registered token ready in both directions. Deterministic iteration
/// order (tokens ascend) so the event loop services connections fairly
/// and reproducibly.
#[derive(Debug, Default)]
pub struct StdReactor {
    tokens: BTreeSet<Token>,
}

impl StdReactor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tracked registrations.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

impl Reactor for StdReactor {
    fn register(&mut self, _fd: RawFd, token: Token) -> io::Result<()> {
        self.tokens.insert(token);
        Ok(())
    }

    fn deregister(&mut self, token: Token) {
        self.tokens.remove(&token);
    }

    fn poll(&mut self, timeout: Duration, events: &mut Vec<Readiness>) -> io::Result<()> {
        if !timeout.is_zero() {
            std::thread::sleep(timeout);
        }
        events.extend(
            self.tokens
                .iter()
                .map(|&token| Readiness { token, readable: true, writable: true }),
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registered_tokens_report_ready_in_ascending_order() {
        let mut r = StdReactor::new();
        for t in [7usize, 3, 5] {
            r.register(-1, t).unwrap();
        }
        let mut events = Vec::new();
        r.poll(Duration::ZERO, &mut events).unwrap();
        let tokens: Vec<usize> = events.iter().map(|e| e.token).collect();
        assert_eq!(tokens, vec![3, 5, 7]);
        assert!(events.iter().all(|e| e.readable && e.writable));
    }

    #[test]
    fn deregister_removes_and_reregister_is_idempotent() {
        let mut r = StdReactor::new();
        r.register(-1, 1).unwrap();
        r.register(-1, 1).unwrap();
        assert_eq!(r.len(), 1);
        r.deregister(1);
        r.deregister(1); // unknown token: ignored
        assert!(r.is_empty());
        let mut events = Vec::new();
        r.poll(Duration::ZERO, &mut events).unwrap();
        assert!(events.is_empty());
    }

    #[test]
    fn zero_timeout_does_not_sleep() {
        let mut r = StdReactor::new();
        r.register(-1, 1).unwrap();
        let t0 = std::time::Instant::now();
        let mut events = Vec::new();
        for _ in 0..100 {
            events.clear();
            r.poll(Duration::ZERO, &mut events).unwrap();
        }
        assert!(t0.elapsed() < Duration::from_millis(100), "zero-timeout polls must be cheap");
    }
}
