//! The event loop: one thread, every connection.
//!
//! [`EventLoop`] accepts on a non-blocking listener, drives each
//! [`Conn`](crate::conn::Conn) through its state machine, sweeps idle
//! connections on deterministic loop ticks, and on shutdown drains
//! in-flight work before returning: accepting stops, pending responses
//! flush, chunked streams get their terminating zero chunk. Handlers run
//! inline on the loop thread and must not block.

use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::conn::Conn;
use crate::http::{render_response, Request};
use crate::reactor::{Reactor, Readiness, StdReactor, Token};

/// A streaming response body. The event loop polls it whenever the
/// connection's write buffer has room; it appends raw payload bytes
/// (chunk framing is the loop's job) and says whether the stream is done.
/// `shutting_down` is true once the server is draining — a polite
/// streamer finishes promptly so the loop can close the connection.
pub trait Streamer: Send {
    fn poll(&mut self, out: &mut Vec<u8>, shutting_down: bool) -> StreamStatus;
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStatus {
    /// More payload may come later; poll again next pass.
    Pending,
    /// The stream is complete; terminate the chunked body.
    Done,
}

/// What a handler answers a request with.
pub struct Reply {
    /// Bounded-cardinality route label for per-endpoint metrics
    /// (`"/metrics"`, `"/events"`, ..., `"other"` — never the raw path).
    pub endpoint: &'static str,
    pub kind: ReplyKind,
}

pub enum ReplyKind {
    Full { status: &'static str, content_type: &'static str, body: Vec<u8> },
    Stream { status: &'static str, content_type: &'static str, streamer: Box<dyn Streamer> },
}

impl Reply {
    pub fn full(
        endpoint: &'static str,
        status: &'static str,
        content_type: &'static str,
        body: impl Into<Vec<u8>>,
    ) -> Self {
        Reply { endpoint, kind: ReplyKind::Full { status, content_type, body: body.into() } }
    }

    pub fn stream(
        endpoint: &'static str,
        status: &'static str,
        content_type: &'static str,
        streamer: Box<dyn Streamer>,
    ) -> Self {
        Reply { endpoint, kind: ReplyKind::Stream { status, content_type, streamer } }
    }
}

/// Request dispatch. Runs inline on the event-loop thread.
pub trait Handler {
    fn handle(&mut self, req: &Request) -> Reply;
}

/// Observability hooks the loop fires as connections come and go. The
/// daemon maps these onto its metrics registry; everything defaults to
/// a no-op so tests can ignore them.
pub trait ServerMetrics: Send + Sync {
    fn conn_accepted(&self) {}
    fn conn_closed(&self) {}
    fn conn_rejected_at_limit(&self) {}
    fn parse_error(&self) {}
    fn request_served(&self, _endpoint: &str, _seconds: f64) {}
    fn stream_started(&self, _endpoint: &str) {}
    fn conns_active(&self, _n: usize) {}
}

/// The default no-op metrics sink.
pub struct NoMetrics;
impl ServerMetrics for NoMetrics {}

/// Event-loop tuning. The defaults suit an interactive control plane.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Concurrent-connection bound, checked at accept (connection number
    /// `max_conns + 1` is answered `503` and closed immediately).
    pub max_conns: usize,
    /// Poll timeout while idle; also the duration of one logical tick.
    pub tick: Duration,
    /// Close a connection after this many ticks without progress.
    pub idle_ticks: u64,
    /// Shutdown drain budget, in ticks; connections still alive after it
    /// are closed forcibly.
    pub drain_ticks: u64,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            max_conns: 1024,
            tick: Duration::from_millis(1),
            idle_ticks: 10_000, // ~10 s at the default tick
            drain_ticks: 2_000, // ~2 s
        }
    }
}

const LISTENER_TOKEN: Token = 0;

/// One thread, one listener, many connections.
pub struct EventLoop<H: Handler, R: Reactor = StdReactor> {
    listener: TcpListener,
    reactor: R,
    conns: BTreeMap<Token, Conn>,
    next_token: Token,
    handler: H,
    metrics: Arc<dyn ServerMetrics>,
    cfg: NetConfig,
    shutdown: Arc<AtomicBool>,
    /// Logical clock: one increment per *slept* poll (busy passes do not
    /// age connections, so the idle timeout tracks real quiet time).
    tick: u64,
}

impl<H: Handler> EventLoop<H, StdReactor> {
    /// An event loop on the portable std reactor.
    pub fn new(
        listener: TcpListener,
        handler: H,
        shutdown: Arc<AtomicBool>,
        metrics: Arc<dyn ServerMetrics>,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        Self::with_reactor(listener, StdReactor::new(), handler, shutdown, metrics, cfg)
    }
}

impl<H: Handler, R: Reactor> EventLoop<H, R> {
    /// An event loop on an explicit reactor backend.
    pub fn with_reactor(
        listener: TcpListener,
        mut reactor: R,
        handler: H,
        shutdown: Arc<AtomicBool>,
        metrics: Arc<dyn ServerMetrics>,
        cfg: NetConfig,
    ) -> io::Result<Self> {
        listener.set_nonblocking(true)?;
        reactor.register(listener.as_raw_fd(), LISTENER_TOKEN)?;
        Ok(EventLoop {
            listener,
            reactor,
            conns: BTreeMap::new(),
            next_token: LISTENER_TOKEN + 1,
            handler,
            metrics,
            cfg,
            shutdown,
            tick: 0,
        })
    }

    /// The bound address (port 0 resolves here).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Access to the handler (final-state inspection in tests).
    pub fn handler(&self) -> &H {
        &self.handler
    }

    /// Runs until the shutdown flag is set and the drain completes.
    pub fn run(&mut self) -> io::Result<()> {
        let mut events: Vec<Readiness> = Vec::new();
        let mut last_pass_progressed = true;
        let mut drain_started: Option<u64> = None;
        loop {
            let shutting_down = self.shutdown.load(Ordering::Relaxed);
            // Adaptive timeout: busy passes re-poll immediately, idle
            // passes sleep one tick. Only slept passes advance the
            // logical clock.
            let timeout = if last_pass_progressed { Duration::ZERO } else { self.cfg.tick };
            events.clear();
            self.reactor.poll(timeout, &mut events)?;
            if !timeout.is_zero() {
                self.tick += 1;
            }

            let mut progressed = false;
            if !shutting_down && events.iter().any(|e| e.token == LISTENER_TOKEN) {
                progressed |= self.accept_burst()?;
            }

            // Drive every connection the reactor reported ready. The
            // portable reactor reports all of them; a real backend
            // narrows this to genuine readiness.
            let mut closed: Vec<Token> = Vec::new();
            for ev in events.iter().filter(|e| e.token != LISTENER_TOKEN) {
                let Some(conn) = self.conns.get_mut(&ev.token) else { continue };
                let out = conn.drive(&mut self.handler, &*self.metrics, self.tick, shutting_down);
                progressed |= out.progressed;
                if out.done {
                    closed.push(ev.token);
                }
            }

            // Idle sweep, once per logical tick.
            if !timeout.is_zero() {
                let (tick, idle_ticks) = (self.tick, self.cfg.idle_ticks);
                for (&token, conn) in &self.conns {
                    // A streaming connection is legitimately quiet while
                    // its source has nothing new; only request/response
                    // conns age out.
                    if tick.saturating_sub(conn.last_active_tick) > idle_ticks
                        && !conn.is_streaming()
                        && !closed.contains(&token)
                    {
                        closed.push(token);
                    }
                }
            }
            for token in closed {
                // Count the close before dropping the socket: a client
                // observing our FIN must already see the metric.
                if let Some(conn) = self.conns.remove(&token) {
                    self.reactor.deregister(token);
                    self.metrics.conn_closed();
                    drop(conn);
                }
            }
            self.metrics.conns_active(self.conns.len());

            if shutting_down {
                let started = *drain_started.get_or_insert(self.tick);
                let budget_spent = self.tick.saturating_sub(started) > self.cfg.drain_ticks;
                if self.conns.is_empty() || budget_spent {
                    for &token in self.conns.keys() {
                        self.reactor.deregister(token);
                        self.metrics.conn_closed();
                    }
                    self.conns.clear();
                    self.metrics.conns_active(0);
                    return Ok(());
                }
            }
            last_pass_progressed = progressed;
        }
    }

    /// Accepts every queued connection, enforcing the bound at the one
    /// place the count can change (this thread owns `conns`, so the
    /// check and the insert are a single atomic step by construction).
    fn accept_burst(&mut self) -> io::Result<bool> {
        let mut progressed = false;
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    progressed = true;
                    if self.conns.len() >= self.cfg.max_conns {
                        self.metrics.conn_rejected_at_limit();
                        reject_over_limit(stream);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = self.next_token;
                    self.next_token += 1;
                    if self.reactor.register(stream.as_raw_fd(), token).is_err() {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, self.tick));
                    self.metrics.conn_accepted();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(progressed)
    }
}

/// Best-effort `503` to a connection over the limit. One non-blocking
/// write; if the kernel won't take it the close alone tells the story.
fn reject_over_limit(stream: TcpStream) {
    let mut out = Vec::new();
    render_response(
        "503 Service Unavailable",
        "text/plain",
        b"connection limit reached\n",
        true,
        &mut out,
    );
    let _ = stream.set_nonblocking(true);
    let mut s = stream;
    let _ = s.write(&out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader, Read};
    use std::sync::atomic::AtomicUsize;

    /// Echo-ish test handler: GET /ping -> pong; GET /big -> 64 KiB body;
    /// GET /stream?k=N -> N chunked lines; everything else 404.
    struct TestHandler;

    struct CountingStreamer {
        remaining: usize,
    }
    impl Streamer for CountingStreamer {
        fn poll(&mut self, out: &mut Vec<u8>, shutting_down: bool) -> StreamStatus {
            if shutting_down || self.remaining == 0 {
                return StreamStatus::Done;
            }
            self.remaining -= 1;
            out.extend_from_slice(format!("line-{}\n", self.remaining).as_bytes());
            if self.remaining == 0 {
                StreamStatus::Done
            } else {
                StreamStatus::Pending
            }
        }
    }

    impl Handler for TestHandler {
        fn handle(&mut self, req: &Request) -> Reply {
            match req.path.as_str() {
                "/ping" => Reply::full("/ping", "200 OK", "text/plain", "pong\n"),
                "/big" => {
                    Reply::full("/big", "200 OK", "text/plain", vec![b'x'; 64 * 1024])
                }
                "/stream" => {
                    let k = req
                        .query
                        .strip_prefix("k=")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(3usize);
                    Reply::stream(
                        "/stream",
                        "200 OK",
                        "text/plain",
                        Box::new(CountingStreamer { remaining: k }),
                    )
                }
                _ => Reply::full("other", "404 Not Found", "text/plain", "not found\n"),
            }
        }
    }

    #[derive(Default)]
    struct CountingMetrics {
        accepted: AtomicUsize,
        closed: AtomicUsize,
        rejected: AtomicUsize,
        parse_errors: AtomicUsize,
        requests: AtomicUsize,
    }
    impl ServerMetrics for CountingMetrics {
        fn conn_accepted(&self) {
            self.accepted.fetch_add(1, Ordering::Relaxed);
        }
        fn conn_closed(&self) {
            self.closed.fetch_add(1, Ordering::Relaxed);
        }
        fn conn_rejected_at_limit(&self) {
            self.rejected.fetch_add(1, Ordering::Relaxed);
        }
        fn parse_error(&self) {
            self.parse_errors.fetch_add(1, Ordering::Relaxed);
        }
        fn request_served(&self, _endpoint: &str, _seconds: f64) {
            self.requests.fetch_add(1, Ordering::Relaxed);
        }
    }

    struct Harness {
        addr: SocketAddr,
        shutdown: Arc<AtomicBool>,
        metrics: Arc<CountingMetrics>,
        thread: Option<std::thread::JoinHandle<io::Result<()>>>,
    }

    impl Harness {
        fn start(cfg: NetConfig) -> Self {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let shutdown = Arc::new(AtomicBool::new(false));
            let metrics = Arc::new(CountingMetrics::default());
            let mut el = EventLoop::new(
                listener,
                TestHandler,
                shutdown.clone(),
                metrics.clone() as Arc<dyn ServerMetrics>,
                cfg,
            )
            .unwrap();
            let addr = el.local_addr().unwrap();
            let thread = std::thread::spawn(move || el.run());
            Harness { addr, shutdown, metrics, thread: Some(thread) }
        }

        fn connect(&self) -> TcpStream {
            let s = TcpStream::connect(self.addr).unwrap();
            s.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            s
        }

        fn stop(mut self) {
            self.shutdown.store(true, Ordering::Relaxed);
            self.thread.take().unwrap().join().unwrap().unwrap();
        }
    }

    impl Drop for Harness {
        fn drop(&mut self) {
            self.shutdown.store(true, Ordering::Relaxed);
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    /// Reads one full response off `r`, returning (status line, body).
    fn read_response(r: &mut BufReader<TcpStream>) -> (String, Vec<u8>) {
        let mut status = String::new();
        r.read_line(&mut status).unwrap();
        let mut content_length = None;
        let mut chunked = false;
        loop {
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            let lower = line.to_ascii_lowercase();
            if let Some(v) = lower.strip_prefix("content-length:") {
                content_length = Some(v.trim().parse::<usize>().unwrap());
            }
            if lower == "transfer-encoding: chunked" {
                chunked = true;
            }
        }
        let mut body = Vec::new();
        if chunked {
            loop {
                let mut size_line = String::new();
                r.read_line(&mut size_line).unwrap();
                let size = usize::from_str_radix(size_line.trim_end(), 16).unwrap();
                let mut chunk = vec![0u8; size + 2];
                r.read_exact(&mut chunk).unwrap();
                if size == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..size]);
            }
        } else {
            let n = content_length.expect("response needs Content-Length or chunked");
            body = vec![0u8; n];
            r.read_exact(&mut body).unwrap();
        }
        (status.trim_end().to_string(), body)
    }

    #[test]
    fn keep_alive_serves_sequential_requests_on_one_connection() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        for _ in 0..3 {
            r.get_mut().write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            let (status, body) = read_response(&mut r);
            assert_eq!(status, "HTTP/1.1 200 OK");
            assert_eq!(body, b"pong\n");
        }
        assert_eq!(h.metrics.requests.load(Ordering::Relaxed), 3);
        assert_eq!(h.metrics.accepted.load(Ordering::Relaxed), 1);
        h.stop();
    }

    #[test]
    fn pipelined_requests_get_every_response_in_order() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        r.get_mut()
            .write_all(b"GET /ping HTTP/1.1\r\n\r\nGET /missing HTTP/1.1\r\n\r\nGET /ping HTTP/1.1\r\n\r\n")
            .unwrap();
        let (s1, b1) = read_response(&mut r);
        let (s2, _) = read_response(&mut r);
        let (s3, b3) = read_response(&mut r);
        assert_eq!((s1.as_str(), b1.as_slice()), ("HTTP/1.1 200 OK", b"pong\n".as_slice()));
        assert_eq!(s2, "HTTP/1.1 404 Not Found");
        assert_eq!((s3.as_str(), b3.as_slice()), ("HTTP/1.1 200 OK", b"pong\n".as_slice()));
        h.stop();
    }

    #[test]
    fn request_split_across_many_writes_still_parses() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        for byte in b"GET /ping HTTP/1.1\r\n\r\n" {
            r.get_mut().write_all(&[*byte]).unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        let (status, body) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body, b"pong\n");
        h.stop();
    }

    #[test]
    fn malformed_request_gets_400_and_close() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        r.get_mut().write_all(b"this is not http\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 400 Bad Request");
        // Connection closes after the error response.
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(h.metrics.parse_errors.load(Ordering::Relaxed), 1);
        h.stop();
    }

    #[test]
    fn unknown_method_gets_405() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        r.get_mut().write_all(b"BREW /coffee HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 405 Method Not Allowed");
        h.stop();
    }

    #[test]
    fn connection_limit_rejects_with_503_at_accept() {
        let h = Harness::start(NetConfig { max_conns: 2, ..NetConfig::default() });
        let mut a = BufReader::new(h.connect());
        let mut b = BufReader::new(h.connect());
        // Poke both so the loop surely accepted them before the third.
        for r in [&mut a, &mut b] {
            r.get_mut().write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
            read_response(r);
        }
        let mut c = BufReader::new(h.connect());
        c.get_mut().write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut c);
        assert_eq!(status, "HTTP/1.1 503 Service Unavailable");
        assert_eq!(h.metrics.rejected.load(Ordering::Relaxed), 1);
        // The bounded connections still work.
        a.get_mut().write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        let (status, _) = read_response(&mut a);
        assert_eq!(status, "HTTP/1.1 200 OK");
        h.stop();
    }

    #[test]
    fn chunked_stream_delivers_every_line_then_closes() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        r.get_mut().write_all(b"GET /stream?k=5 HTTP/1.1\r\n\r\n").unwrap();
        let (status, body) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 200 OK");
        let text = String::from_utf8(body).unwrap();
        assert_eq!(text.lines().count(), 5);
        assert!(text.starts_with("line-4\n"));
        let mut rest = Vec::new();
        r.get_mut().read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty(), "stream responses close the connection");
        h.stop();
    }

    #[test]
    fn idle_connections_are_swept_on_ticks() {
        let h = Harness::start(NetConfig {
            tick: Duration::from_millis(1),
            idle_ticks: 20,
            ..NetConfig::default()
        });
        let mut r = BufReader::new(h.connect());
        r.get_mut().write_all(b"GET /ping HTTP/1.1\r\n\r\n").unwrap();
        read_response(&mut r);
        // Go quiet: the sweep should close us well inside 10 s.
        let mut rest = Vec::new();
        r.get_mut().read_to_end(&mut rest).unwrap();
        assert!(rest.is_empty());
        assert_eq!(h.metrics.closed.load(Ordering::Relaxed), 1);
        h.stop();
    }

    #[test]
    fn shutdown_drains_big_in_flight_responses() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        r.get_mut().write_all(b"GET /big HTTP/1.1\r\n\r\n").unwrap();
        // Trigger shutdown immediately; the 64 KiB body must still arrive
        // in full before the loop exits.
        h.shutdown.store(true, Ordering::Relaxed);
        let (status, body) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 200 OK");
        assert_eq!(body.len(), 64 * 1024);
        h.stop();
    }

    #[test]
    fn shutdown_terminates_streams_with_a_final_chunk() {
        let h = Harness::start(NetConfig::default());
        let mut r = BufReader::new(h.connect());
        // A very long stream: shutdown must end it promptly and cleanly.
        r.get_mut().write_all(b"GET /stream?k=1000000 HTTP/1.1\r\n\r\n").unwrap();
        std::thread::sleep(Duration::from_millis(20));
        h.shutdown.store(true, Ordering::Relaxed);
        // read_response only returns once the zero chunk arrives.
        let (status, _) = read_response(&mut r);
        assert_eq!(status, "HTTP/1.1 200 OK");
        h.stop();
    }
}
