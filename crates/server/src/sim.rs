//! The server: instances, periods, monitoring, partition enforcement.

use crate::{config::ServerConfig, contention, equilibrium};
use dicer_appmodel::{AppProfile, Phase};
use dicer_membw::LinkModel;
use dicer_rdt::{MbaController, MbaLevel, PartitionController, PartitionPlan, PerAppSample, PeriodSample};

/// A running (and restarting) application pinned to one core.
#[derive(Debug, Clone)]
pub struct AppInstance {
    /// The behaviour model this instance executes.
    pub profile: AppProfile,
    phase_idx: usize,
    insns_into_phase: f64,
    /// Completed full executions so far.
    pub completions: u32,
    /// Simulation time of the first completion, if any.
    pub first_completion_s: Option<f64>,
    /// Instructions retired since the run began.
    pub retired_insns: f64,
    /// Whether the instance is currently descheduled by admission control.
    pub paused: bool,
}

impl AppInstance {
    fn new(profile: AppProfile) -> Self {
        Self {
            profile,
            phase_idx: 0,
            insns_into_phase: 0.0,
            completions: 0,
            first_completion_s: None,
            retired_insns: 0.0,
            paused: false,
        }
    }

    /// Phase currently executing.
    pub fn current_phase(&self) -> &Phase {
        &self.profile.phases[self.phase_idx]
    }

    fn insns_left_in_phase(&self) -> f64 {
        self.current_phase().insns as f64 - self.insns_into_phase
    }

    /// Advances by `insns`, handling phase transitions and restart. `now_s`
    /// stamps a completion if one occurs.
    fn retire(&mut self, mut insns: f64, now_s: f64) {
        self.retired_insns += insns;
        // A single `retire` call never spans more than one boundary because
        // the caller clamps dt to the nearest boundary, but loop defensively.
        loop {
            let left = self.insns_left_in_phase();
            if insns < left - 0.5 {
                self.insns_into_phase += insns;
                return;
            }
            insns -= left;
            self.insns_into_phase = 0.0;
            self.phase_idx += 1;
            if self.phase_idx >= self.profile.phases.len() {
                self.phase_idx = 0;
                self.completions += 1;
                if self.first_completion_s.is_none() {
                    self.first_completion_s = Some(now_s);
                }
            }
        }
    }
}

/// Aggregate progress of a co-location run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Whether the HP application has completed at least once.
    pub hp_done: bool,
    /// Whether every BE has completed at least once.
    pub all_bes_done: bool,
}

impl RunProgress {
    /// The paper's stopping rule: every application executed at least once.
    pub fn all_done(&self) -> bool {
        self.hp_done && self.all_bes_done
    }
}

/// Cap on the latency scale an MBA throttle can impose. Real MBA delay
/// values reduce effective bandwidth sub-linearly and bottom out well above
/// the nominal 10 % request rate (the mapping is documented as approximate
/// and platform-dependent); a 3x ceiling keeps the modelled actuator
/// conservatively weak.
pub const MAX_MBA_LATENCY_SCALE: f64 = 3.0;

/// The simulated server: one HP instance, `n` BE instances, a partition
/// plan, and a clock advancing in monitoring periods.
#[derive(Debug, Clone)]
pub struct Server {
    cfg: ServerConfig,
    link: LinkModel,
    plan: PartitionPlan,
    be_throttle: MbaLevel,
    time_s: f64,
    hp: AppInstance,
    bes: Vec<AppInstance>,
    /// BEs allowed to run concurrently (admission control).
    admitted_target: usize,
    /// Rotation offset so descheduled BEs take turns (round-robin).
    admit_offset: usize,
}

impl Server {
    /// Builds a server with the HP on core 0 and one BE instance per
    /// remaining employed core. Panics if the workload over-subscribes the
    /// core count or any configuration is invalid.
    pub fn new(cfg: ServerConfig, hp: AppProfile, bes: Vec<AppProfile>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ServerConfig: {e}");
        }
        assert!(
            (bes.len() as u32) < cfg.n_cores,
            "{} BEs + 1 HP exceed {} cores",
            bes.len(),
            cfg.n_cores
        );
        assert!(!bes.is_empty(), "consolidation needs at least one BE");
        Self {
            link: LinkModel::new(cfg.link),
            cfg,
            plan: PartitionPlan::Unmanaged,
            be_throttle: MbaLevel::FULL,
            time_s: 0.0,
            admitted_target: bes.len(),
            admit_offset: 0,
            hp: AppInstance::new(hp),
            bes: bes.into_iter().map(AppInstance::new).collect(),
        }
    }

    /// Server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The HP instance.
    pub fn hp(&self) -> &AppInstance {
        &self.hp
    }

    /// The BE instances.
    pub fn bes(&self) -> &[AppInstance] {
        &self.bes
    }

    /// Limits the number of concurrently scheduled BEs (admission control —
    /// the paper's §6 future work of "dynamically managing the number of
    /// co-located BEs"). Descheduled BEs hold their progress; the paused
    /// set rotates round-robin every period so every BE keeps making
    /// progress at a `n / total` duty cycle.
    pub fn set_admitted_bes(&mut self, n: u32) {
        self.admitted_target = (n as usize).clamp(1, self.bes.len());
        self.apply_admission();
    }

    fn apply_admission(&mut self) {
        let total = self.bes.len();
        let n = self.admitted_target;
        for (i, be) in self.bes.iter_mut().enumerate() {
            // Admitted window [offset, offset + n), modulo total.
            let rel = (i + total - self.admit_offset % total) % total;
            be.paused = rel >= n;
        }
    }

    fn rotate_admission(&mut self) {
        if self.admitted_target < self.bes.len() {
            self.admit_offset = (self.admit_offset + 1) % self.bes.len();
            self.apply_admission();
        }
    }

    /// Number of currently admitted (running) BEs.
    pub fn admitted_bes(&self) -> u32 {
        self.bes.iter().filter(|b| !b.paused).count() as u32
    }

    /// Run progress against the paper's stopping rule.
    pub fn progress(&self) -> RunProgress {
        RunProgress {
            hp_done: self.hp.completions > 0,
            all_bes_done: self.bes.iter().all(|b| b.completions > 0),
        }
    }

    /// Effective ways per app (HP first, then BEs) under the current plan.
    /// Paused BEs take no part in cache contention and get a 0.0
    /// placeholder (they retire nothing, so the value is never read).
    fn effective_ways(&self) -> Vec<f64> {
        let w = self.cfg.cache.ways;
        let active_bes: Vec<&AppInstance> = self.bes.iter().filter(|b| !b.paused).collect();
        let scatter = |hp_share: f64, be_shares: Vec<f64>| -> Vec<f64> {
            let mut out = vec![0.0; 1 + self.bes.len()];
            out[0] = hp_share;
            let mut it = be_shares.into_iter();
            for (slot, be) in out[1..].iter_mut().zip(self.bes.iter()) {
                if !be.paused {
                    *slot = it.next().expect("one share per active BE");
                }
            }
            out
        };
        match self.plan {
            PartitionPlan::Unmanaged => {
                let apps: Vec<(f64, &dicer_appmodel::MissCurve)> =
                    std::iter::once(&self.hp)
                        .chain(active_bes.iter().copied())
                        .map(|a| {
                            let p = a.current_phase();
                            (p.apki, &p.curve)
                        })
                        .collect();
                let mut shares = contention::shared_effective_ways(&apps, w as f64);
                let hp_share = shares.remove(0);
                scatter(hp_share, shares)
            }
            PartitionPlan::Split { hp_ways } => {
                let be_group = (w - hp_ways) as f64;
                let be_apps: Vec<(f64, &dicer_appmodel::MissCurve)> = active_bes
                    .iter()
                    .map(|a| {
                        let p = a.current_phase();
                        (p.apki, &p.curve)
                    })
                    .collect();
                scatter(hp_ways as f64, contention::shared_effective_ways(&be_apps, be_group))
            }
            PartitionPlan::Overlapping { hp_exclusive, shared } => {
                // BE-only region split among the active BEs first; then the
                // shared middle region is contested by HP (floored by its
                // private ways) and the BEs (floored by their shares).
                let be_only = (w - hp_exclusive - shared) as f64;
                let be_apps: Vec<(f64, &dicer_appmodel::MissCurve)> = active_bes
                    .iter()
                    .map(|a| {
                        let p = a.current_phase();
                        (p.apki, &p.curve)
                    })
                    .collect();
                let be_floors = if be_only > 0.0 && !be_apps.is_empty() {
                    contention::shared_effective_ways(&be_apps, be_only)
                } else {
                    vec![0.0; be_apps.len()]
                };
                let hp_phase = self.hp.current_phase();
                let mut participants: Vec<(f64, &dicer_appmodel::MissCurve, f64)> =
                    vec![(hp_phase.apki, &hp_phase.curve, hp_exclusive as f64)];
                participants.extend(
                    be_apps.iter().zip(&be_floors).map(|((apki, curve), &f)| (*apki, *curve, f)),
                );
                let ovl = contention::overlap_shares(&participants, shared as f64);
                let be_shares: Vec<f64> =
                    be_floors.iter().zip(ovl.iter().skip(1)).map(|(&f, &o)| f + o).collect();
                scatter(hp_exclusive as f64 + ovl[0], be_shares)
            }
        }
    }

    /// Advances one monitoring period and returns its counters.
    ///
    /// Within the period the simulator re-solves the equilibrium whenever an
    /// application crosses a phase boundary (or completes and restarts), so
    /// period counters are exact time-weighted averages.
    pub fn step_period(&mut self) -> PeriodSample {
        self.rotate_admission();
        let n = 1 + self.bes.len();
        let mut remaining = self.cfg.period_s;
        let mut insns_acc = vec![0.0f64; n];
        let mut bw_acc = vec![0.0f64; n];
        let mut miss_acc = vec![0.0f64; n];
        let mut occupancy = vec![0u64; n];
        let mut total_bw_acc = 0.0f64;
        let mut guard = 0;

        while remaining > 1e-12 {
            guard += 1;
            assert!(guard < 10_000, "period subdivided too finely — model bug");

            let ways = self.effective_ways();
            // Active instances only take part in the equilibrium; paused
            // BEs retire nothing and generate no traffic.
            let active: Vec<usize> = std::iter::once(0usize)
                .chain(self.bes.iter().enumerate().filter(|(_, b)| !b.paused).map(|(i, _)| i + 1))
                .collect();
            // MBA: the BE class's requests are delayed by the programmed
            // level, modelled as a latency scale of 100 / level, capped at
            // the hardware's real effectiveness ceiling.
            let be_scale = (1.0 / self.be_throttle.fraction()).min(MAX_MBA_LATENCY_SCALE);
            let instance = |i: usize| -> &AppInstance {
                if i == 0 { &self.hp } else { &self.bes[i - 1] }
            };
            let phases: Vec<(&Phase, f64, f64)> = active
                .iter()
                .map(|&i| {
                    let scale = if i == 0 { 1.0 } else { be_scale };
                    (instance(i).current_phase(), ways[i], scale)
                })
                .collect();
            let eq = equilibrium::solve_throttled(
                &phases,
                &self.link,
                self.cfg.base_latency_cycles(),
                self.cfg.freq_hz,
                self.cfg.cache.line_bytes,
            );
            let miss_now: Vec<f64> = phases
                .iter()
                .map(|(p, w, _)| p.curve.miss_ratio(*w))
                .collect();
            drop(phases);

            // Time until the nearest phase boundary among running apps.
            let mut dt = remaining;
            for (k, &i) in active.iter().enumerate() {
                let rate = eq.ipc[k] * self.cfg.freq_hz; // insns per second
                if rate > 0.0 {
                    let t = instance(i).insns_left_in_phase() / rate;
                    if t < dt {
                        dt = t;
                    }
                }
            }
            // Ensure forward progress even when a boundary is (numerically)
            // exactly at the current instant.
            dt = dt.max(remaining * 1e-9).min(remaining);

            let now = self.time_s + (self.cfg.period_s - remaining) + dt;
            for (k, &i) in active.iter().enumerate() {
                let insns = eq.ipc[k] * self.cfg.freq_hz * dt;
                let inst =
                    if i == 0 { &mut self.hp } else { &mut self.bes[i - 1] };
                inst.retire(insns, now);
                insns_acc[i] += insns;
                bw_acc[i] += eq.achieved_gbps[k] * dt;
                miss_acc[i] += miss_now[k] * dt;
                occupancy[i] = (ways[i] * self.cfg.cache.way_bytes() as f64) as u64;
            }
            total_bw_acc += eq.total_gbps * dt;
            remaining -= dt;
        }

        self.time_s += self.cfg.period_s;
        let t = self.cfg.period_s;
        let cycles = self.cfg.freq_hz * t;
        let mk = |i: usize| PerAppSample {
            ipc: insns_acc[i] / cycles,
            llc_occupancy_bytes: occupancy[i],
            mem_bw_gbps: bw_acc[i] / t,
            miss_ratio: miss_acc[i] / t,
        };
        PeriodSample {
            time_s: self.time_s,
            hp: mk(0),
            bes: (1..n).map(mk).collect(),
            total_bw_gbps: total_bw_acc / t,
        }
    }

    /// Runs periods until every application has completed at least once (the
    /// paper's rule) or `max_periods` elapses. Returns all period samples.
    pub fn run_to_completion(&mut self, max_periods: u32) -> Vec<PeriodSample> {
        let mut out = Vec::new();
        for _ in 0..max_periods {
            out.push(self.step_period());
            if self.progress().all_done() {
                break;
            }
        }
        out
    }
}

impl MbaController for Server {
    fn set_be_throttle(&mut self, level: MbaLevel) {
        self.be_throttle = level;
    }

    fn be_throttle(&self) -> MbaLevel {
        self.be_throttle
    }
}

impl PartitionController for Server {
    fn n_ways(&self) -> u32 {
        self.cfg.cache.ways
    }

    fn apply_plan(&mut self, plan: PartitionPlan) {
        plan.validate(self.n_ways()).expect("invalid partition plan");
        self.plan = plan;
    }

    fn current_plan(&self) -> PartitionPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::{Archetype, MissCurve};

    fn profile(name: &str, insns: u64, base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> AppProfile {
        AppProfile::new(
            name,
            Archetype::CacheFriendly,
            vec![Phase { insns, base_cpi, apki, mlp, curve }],
        )
    }

    fn quiet(insns: u64) -> AppProfile {
        profile("quiet", insns, 0.5, 1.0, 1.5, MissCurve::flat(0.05))
    }

    fn cfg() -> ServerConfig {
        ServerConfig::table1()
    }

    #[test]
    fn period_advances_clock() {
        let mut s = Server::new(cfg(), quiet(10_000_000_000), vec![quiet(10_000_000_000)]);
        let sample = s.step_period();
        assert!((s.time_s() - 1.0).abs() < 1e-12);
        assert!((sample.time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quiet_apps_run_at_base_ipc() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2)]);
        let sample = s.step_period();
        // CPI = 0.5 + 0.001*0.05*198/1.5 = 0.5066 -> IPC ~1.974
        assert!((sample.hp.ipc - 1.974).abs() < 0.01, "ipc {}", sample.hp.ipc);
    }

    #[test]
    fn completion_and_restart() {
        // 2.2e9 insns at IPC ~1.97 completes in ~0.51 s.
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(u64::MAX / 2)]);
        s.step_period();
        assert_eq!(s.hp().completions, 1);
        let t1 = s.hp().first_completion_s.unwrap();
        assert!((0.4..0.7).contains(&t1), "completion at {t1}");
        s.step_period();
        assert!(s.hp().completions >= 2, "restarted and completed again");
        assert!((s.hp().first_completion_s.unwrap() - t1).abs() < 1e-12, "first stamp fixed");
    }

    #[test]
    fn progress_tracks_all_apps() {
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(200_000_000_000)]);
        s.step_period();
        let p = s.progress();
        assert!(p.hp_done && !p.all_bes_done && !p.all_done());
    }

    #[test]
    fn run_to_completion_stops_when_done() {
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(4_400_000_000)]);
        let samples = s.run_to_completion(100);
        assert!(s.progress().all_done());
        assert!(samples.len() < 10, "should finish quickly, took {}", samples.len());
    }

    #[test]
    fn partition_plan_is_enforced_next_period() {
        let streamy = profile("hog", u64::MAX / 2, 0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let sensitive = profile(
            "sens",
            u64::MAX / 2,
            0.8,
            16.0,
            1.2,
            MissCurve::parametric(0.06, 0.7, 8.0, 2.0),
        );
        let mut s = Server::new(cfg(), sensitive, vec![streamy; 9]);
        s.apply_plan(PartitionPlan::cache_takeover(20));
        let sample = s.step_period();
        // HP owns 19 ways: occupancy reflects it.
        assert!(sample.hp.llc_occupancy_bytes > 18 * s.config().cache.way_bytes());
        // BEs squeezed into one shared way.
        for be in &sample.bes {
            assert!(be.llc_occupancy_bytes <= s.config().cache.way_bytes());
        }
    }

    #[test]
    fn ct_improves_cache_sensitive_hp_vs_unmanaged() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 20.0, 3.0, MissCurve::flat(0.55));
        let sensitive = profile(
            "sens",
            u64::MAX / 2,
            0.8,
            16.0,
            1.2,
            MissCurve::parametric(0.06, 0.7, 8.0, 2.0),
        );
        let mut um = Server::new(cfg(), sensitive.clone(), vec![hog.clone(); 9]);
        let um_ipc = um.step_period().hp.ipc;
        let mut ct = Server::new(cfg(), sensitive, vec![hog; 9]);
        ct.apply_plan(PartitionPlan::cache_takeover(20));
        let ct_ipc = ct.step_period().hp.ipc;
        assert!(ct_ipc > um_ipc * 1.1, "CT should shield the HP: {ct_ipc} vs {um_ipc}");
    }

    #[test]
    fn ct_hurts_bandwidth_sensitive_hp_with_hungry_bes() {
        // Fig. 3: milc-like HP + gcc-like BEs.
        let milc = profile(
            "milc",
            u64::MAX / 2,
            0.70,
            28.0,
            4.0,
            MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
        );
        let gcc = profile(
            "gcc",
            u64::MAX / 2,
            0.65,
            24.0,
            2.4,
            MissCurve::parametric(0.07, 0.62, 1.2, 3.0),
        );
        let ipc_at = |hp_ways: u32| {
            let mut s = Server::new(cfg(), milc.clone(), vec![gcc.clone(); 9]);
            s.apply_plan(PartitionPlan::Split { hp_ways });
            s.step_period().hp.ipc
        };
        let ct = ipc_at(19);
        let small = ipc_at(2);
        assert!(small > ct * 1.1, "small HP allocation should win: 2-way {small} vs CT {ct}");
    }

    #[test]
    fn total_bw_respects_link_capacity() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 40.0, 4.2, MissCurve::flat(0.85));
        let mut s = Server::new(cfg(), hog.clone(), vec![hog; 9]);
        let sample = s.step_period();
        assert!(sample.total_bw_gbps <= 68.3 + 1e-9);
        assert!(sample.total_bw_gbps > 40.0, "hogs should load the link");
    }

    #[test]
    fn phase_boundary_mid_period_blends_counters() {
        // Phase 1: memory-quiet; phase 2: memory-heavy. One period spans both.
        let two_phase = AppProfile::new(
            "twophase",
            Archetype::Streaming,
            vec![
                Phase { insns: 1_100_000_000, base_cpi: 0.5, apki: 0.5, mlp: 1.5, curve: MissCurve::flat(0.05) },
                Phase { insns: 50_000_000_000, base_cpi: 0.5, apki: 30.0, mlp: 4.0, curve: MissCurve::flat(0.8) },
            ],
        );
        let mut s = Server::new(cfg(), two_phase, vec![quiet(u64::MAX / 2)]);
        let s1 = s.step_period();
        // Quiet phase lasts ~0.25 s; blended bandwidth sits between the two.
        let mut s2 = s.step_period();
        for _ in 0..3 {
            s2 = s.step_period();
        }
        assert!(s1.hp.mem_bw_gbps > 1.0, "period 1 already includes heavy phase");
        assert!(s2.hp.mem_bw_gbps > s1.hp.mem_bw_gbps * 1.1, "steady heavy phase is hotter");
    }

    #[test]
    fn admission_limits_concurrency_each_period() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog; 9]);
        s.set_admitted_bes(3);
        assert_eq!(s.admitted_bes(), 3);
        let sample = s.step_period();
        let ran = sample.bes.iter().filter(|b| b.ipc > 0.0).count();
        let idle = sample.bes.iter().filter(|b| b.ipc == 0.0 && b.mem_bw_gbps == 0.0).count();
        assert_eq!(ran, 3, "exactly the admitted count runs");
        assert_eq!(idle, 6);
    }

    #[test]
    fn admission_rotates_so_every_be_progresses() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 9]);
        s.set_admitted_bes(3);
        for _ in 0..9 {
            s.step_period();
        }
        for (i, be) in s.bes().iter().enumerate() {
            assert!(be.retired_insns > 0.0, "BE {i} never got a turn");
        }
        // Duty cycle ~3/9: each BE retired roughly a third of what the HP did.
        let hp = s.hp().retired_insns;
        for be in s.bes() {
            let duty = be.retired_insns / hp;
            assert!((0.15..0.55).contains(&duty), "duty cycle off: {duty}");
        }
    }

    #[test]
    fn pausing_bes_relieves_link_pressure() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 35.0, 4.0, MissCurve::flat(0.85));
        let mut all = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog.clone(); 9]);
        let bw_all = all.step_period().total_bw_gbps;
        let mut few = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog; 9]);
        few.set_admitted_bes(2);
        let bw_few = few.step_period().total_bw_gbps;
        assert!(bw_few < bw_all * 0.6, "2 admitted hogs should load far less: {bw_few} vs {bw_all}");
    }

    #[test]
    fn descheduled_bes_hold_progress_until_their_turn() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 3]);
        s.step_period();
        s.set_admitted_bes(1);
        // Over any single period, exactly one BE advances.
        let before: Vec<f64> = s.bes().iter().map(|b| b.retired_insns).collect();
        s.step_period();
        let advanced = s
            .bes()
            .iter()
            .zip(&before)
            .filter(|(b, &x)| b.retired_insns > x)
            .count();
        assert_eq!(advanced, 1, "one admitted slot");
        // Full re-admission resumes everyone.
        s.set_admitted_bes(3);
        let before: Vec<f64> = s.bes().iter().map(|b| b.retired_insns).collect();
        s.step_period();
        assert!(s.bes().iter().zip(&before).all(|(b, &x)| b.retired_insns > x));
    }

    #[test]
    fn admission_clamps_to_at_least_one_be() {
        let mut s = Server::new(cfg(), quiet(1000), vec![quiet(1000); 4]);
        s.set_admitted_bes(0);
        assert_eq!(s.admitted_bes(), 1);
        s.set_admitted_bes(99);
        assert_eq!(s.admitted_bes(), 4);
    }

    #[test]
    #[should_panic]
    fn oversubscription_rejected() {
        Server::new(cfg(), quiet(1_000), vec![quiet(1_000); 10]);
    }

    #[test]
    #[should_panic]
    fn invalid_plan_rejected() {
        let mut s = Server::new(cfg(), quiet(1_000), vec![quiet(1_000)]);
        s.apply_plan(PartitionPlan::Split { hp_ways: 20 });
    }
}
