//! The server: instances, periods, monitoring, partition enforcement.

use crate::{
    config::ServerConfig,
    contention,
    equilibrium::{Equilibrium, EquilibriumSolver},
    SolverStats,
};
use dicer_appmodel::{AppProfile, MissCurve, Phase};
use dicer_membw::LinkModel;
use dicer_rdt::{MbaController, MbaLevel, PartitionController, PartitionPlan, PerAppSample, PeriodSample};
use dicer_telemetry::{trace::stage, PeriodEvent, Telemetry, TelemetryEvent, Tracer};
use std::collections::HashMap;

/// A running (and restarting) application pinned to one core.
#[derive(Debug, Clone)]
pub struct AppInstance {
    /// The behaviour model this instance executes.
    pub profile: AppProfile,
    phase_idx: usize,
    insns_into_phase: f64,
    /// Completed full executions so far.
    pub completions: u32,
    /// Simulation time of the first completion, if any.
    pub first_completion_s: Option<f64>,
    /// Instructions retired since the run began.
    pub retired_insns: f64,
    /// Whether the instance is currently descheduled by admission control.
    pub paused: bool,
}

impl AppInstance {
    fn new(profile: AppProfile) -> Self {
        Self {
            profile,
            phase_idx: 0,
            insns_into_phase: 0.0,
            completions: 0,
            first_completion_s: None,
            retired_insns: 0.0,
            paused: false,
        }
    }

    /// Phase currently executing.
    pub fn current_phase(&self) -> &Phase {
        &self.profile.phases[self.phase_idx]
    }

    fn insns_left_in_phase(&self) -> f64 {
        self.current_phase().insns as f64 - self.insns_into_phase
    }

    /// Advances by `insns`, handling phase transitions and restart. `now_s`
    /// stamps a completion if one occurs.
    fn retire(&mut self, mut insns: f64, now_s: f64) {
        self.retired_insns += insns;
        // A single `retire` call never spans more than one boundary because
        // the caller clamps dt to the nearest boundary, but loop defensively.
        loop {
            let left = self.insns_left_in_phase();
            if insns < left - 0.5 {
                self.insns_into_phase += insns;
                return;
            }
            insns -= left;
            self.insns_into_phase = 0.0;
            self.phase_idx += 1;
            if self.phase_idx >= self.profile.phases.len() {
                self.phase_idx = 0;
                self.completions += 1;
                if self.first_completion_s.is_none() {
                    self.first_completion_s = Some(now_s);
                }
            }
        }
    }
}

/// Aggregate progress of a co-location run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunProgress {
    /// Whether the HP application has completed at least once.
    pub hp_done: bool,
    /// Whether every BE has completed at least once.
    pub all_bes_done: bool,
}

impl RunProgress {
    /// The paper's stopping rule: every application executed at least once.
    pub fn all_done(&self) -> bool {
        self.hp_done && self.all_bes_done
    }
}

/// Cap on the latency scale an MBA throttle can impose. Real MBA delay
/// values reduce effective bandwidth sub-linearly and bottom out well above
/// the nominal 10 % request rate (the mapping is documented as approximate
/// and platform-dependent); a 3x ceiling keeps the modelled actuator
/// conservatively weak.
pub const MAX_MBA_LATENCY_SCALE: f64 = 3.0;

/// Cached effective-ways computations kept before the cache is cleared.
const WAYS_MEMO_CAP: usize = 4096;

/// Everything that determines the effective-ways vector: the plan, which
/// instances are running, and which phase each one is in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct WaysKey {
    plan: PartitionPlan,
    active_mask: u64,
    phase_idx: Vec<usize>,
}

/// Memoized result of one effective-ways computation: the per-app way
/// vector and the miss ratio of each active app's phase at those ways.
#[derive(Debug, Clone)]
struct WaysEntry {
    ways: Vec<f64>,
    miss: Vec<f64>,
}

/// Everything that determines a sub-period's staged equilibrium inputs:
/// the plan and throttle fix each app's way share and latency scale, the
/// active mask fixes who participates, and the phase vector fixes every
/// participant's operating point on its miss curve. Compared field-wise
/// in place — never hashed, never allocated on the steady path. When the
/// current sub-period matches, the root finder would provably stage the
/// exact same inputs as the previous one, so its equilibrium (and the
/// ways/miss scratch it left behind) is reused verbatim.
#[derive(Debug, Clone)]
struct StepFingerprint {
    /// False until the first computed solve (and after acceleration
    /// toggles, which discard all reuse state).
    valid: bool,
    plan: PartitionPlan,
    throttle: MbaLevel,
    active_mask: u64,
    phase_idx: Vec<usize>,
}

impl StepFingerprint {
    fn invalid() -> Self {
        Self {
            valid: false,
            plan: PartitionPlan::Unmanaged,
            throttle: MbaLevel::FULL,
            active_mask: 0,
            phase_idx: Vec::new(),
        }
    }
}

/// Reusable per-period buffers so steady-state stepping allocates nothing.
#[derive(Debug, Clone, Default)]
struct StepScratch {
    insns_acc: Vec<f64>,
    bw_acc: Vec<f64>,
    miss_acc: Vec<f64>,
    occupancy: Vec<u64>,
    /// App indices (0 = HP) taking part in this sub-period.
    active: Vec<usize>,
    /// Effective ways per app (0.0 placeholder for paused BEs).
    ways: Vec<f64>,
    /// Miss ratio per app at its effective ways (0.0 for paused BEs).
    miss: Vec<f64>,
    /// Contention-loop buffers, reused across sub-periods.
    shares: Vec<f64>,
    pressures: Vec<f64>,
    floors: Vec<f64>,
    ovl: Vec<f64>,
}

impl StepScratch {
    fn reset_period(&mut self, n: usize) {
        self.insns_acc.clear();
        self.insns_acc.resize(n, 0.0);
        self.bw_acc.clear();
        self.bw_acc.resize(n, 0.0);
        self.miss_acc.clear();
        self.miss_acc.resize(n, 0.0);
        self.occupancy.clear();
        self.occupancy.resize(n, 0);
    }
}

/// The simulated server: one HP instance, `n` BE instances, a partition
/// plan, and a clock advancing in monitoring periods.
///
/// Stepping is built around a persistent [`EquilibriumSolver`] plus an
/// effective-ways memo, so steady-state periods (same plan, phases and
/// admission set) re-use both the cache-contention result and the
/// bandwidth equilibrium without recomputing either. Acceleration is
/// bit-transparent — see [`Server::set_acceleration`].
#[derive(Debug, Clone)]
pub struct Server {
    cfg: ServerConfig,
    solver: EquilibriumSolver,
    plan: PartitionPlan,
    be_throttle: MbaLevel,
    time_s: f64,
    hp: AppInstance,
    bes: Vec<AppInstance>,
    /// BEs allowed to run concurrently (admission control).
    admitted_target: usize,
    /// Rotation offset so descheduled BEs take turns (round-robin).
    admit_offset: usize,
    scratch: StepScratch,
    ways_memo: HashMap<WaysKey, WaysEntry>,
    /// Persistent key buffer, mutated in place for alloc-free lookups.
    ways_key: WaysKey,
    /// Inputs of the last computed equilibrium; a field-wise match lets
    /// the next sub-period skip the solver (and ways refresh) entirely.
    fp: StepFingerprint,
    /// The equilibrium `fp` stands for, copied out of the solver with
    /// buffer reuse so the skip path touches no allocator.
    last_eq: Equilibrium,
    telemetry: Telemetry,
    tracer: Tracer,
}

impl Server {
    /// Builds a server with the HP on core 0 and one BE instance per
    /// remaining employed core. Panics if the workload over-subscribes the
    /// core count or any configuration is invalid.
    pub fn new(cfg: ServerConfig, hp: AppProfile, bes: Vec<AppProfile>) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid ServerConfig: {e}");
        }
        assert!(
            (bes.len() as u32) < cfg.n_cores,
            "{} BEs + 1 HP exceed {} cores",
            bes.len(),
            cfg.n_cores
        );
        assert!(!bes.is_empty(), "consolidation needs at least one BE");
        assert!(bes.len() <= 63, "active-set bitmask supports at most 63 BEs");
        Self {
            solver: EquilibriumSolver::new(
                LinkModel::new(cfg.link),
                cfg.base_latency_cycles(),
                cfg.freq_hz,
                cfg.cache.line_bytes,
            ),
            cfg,
            plan: PartitionPlan::Unmanaged,
            be_throttle: MbaLevel::FULL,
            time_s: 0.0,
            admitted_target: bes.len(),
            admit_offset: 0,
            hp: AppInstance::new(hp),
            bes: bes.into_iter().map(AppInstance::new).collect(),
            scratch: StepScratch::default(),
            ways_memo: HashMap::new(),
            ways_key: WaysKey {
                plan: PartitionPlan::Unmanaged,
                active_mask: 0,
                phase_idx: Vec::new(),
            },
            fp: StepFingerprint::invalid(),
            last_eq: Equilibrium::empty(),
            telemetry: Telemetry::off(),
            tracer: Tracer::off(),
        }
    }

    /// Attaches a telemetry sink. The server emits a [`TelemetryEvent::Period`]
    /// per monitoring period and a [`TelemetryEvent::PartitionApplied`] per
    /// plan change; emission is observational only and never alters stepping.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Attaches a span tracer: each equilibrium-solver call inside
    /// [`Server::step_period`]'s sub-period loop becomes an
    /// `equilibrium_solve` span (nested under whatever span the caller has
    /// open). Observational only.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Current simulation time in seconds.
    pub fn time_s(&self) -> f64 {
        self.time_s
    }

    /// The HP instance.
    pub fn hp(&self) -> &AppInstance {
        &self.hp
    }

    /// The BE instances.
    pub fn bes(&self) -> &[AppInstance] {
        &self.bes
    }

    /// Enables or disables solve acceleration (equilibrium memoization,
    /// warm starts, and the effective-ways memo). On by default. Period
    /// samples are bit-identical either way; disabling yields the cold
    /// reference path used by determinism checks and benchmarks.
    pub fn set_acceleration(&mut self, on: bool) {
        self.solver.set_accelerated(on);
        self.ways_memo.clear();
        self.fp.valid = false;
    }

    /// Whether solve acceleration is enabled.
    pub fn acceleration(&self) -> bool {
        self.solver.accelerated()
    }

    /// Equilibrium-solver counters accumulated over this server's lifetime.
    pub fn solver_stats(&self) -> SolverStats {
        self.solver.stats()
    }

    /// Limits the number of concurrently scheduled BEs (admission control —
    /// the paper's §6 future work of "dynamically managing the number of
    /// co-located BEs"). Descheduled BEs hold their progress; the paused
    /// set rotates round-robin every period so every BE keeps making
    /// progress at a `n / total` duty cycle.
    pub fn set_admitted_bes(&mut self, n: u32) {
        self.admitted_target = (n as usize).clamp(1, self.bes.len());
        self.apply_admission();
    }

    fn apply_admission(&mut self) {
        let total = self.bes.len();
        let n = self.admitted_target;
        for (i, be) in self.bes.iter_mut().enumerate() {
            // Admitted window [offset, offset + n), modulo total.
            let rel = (i + total - self.admit_offset % total) % total;
            be.paused = rel >= n;
        }
    }

    fn rotate_admission(&mut self) {
        if self.admitted_target < self.bes.len() {
            self.admit_offset = (self.admit_offset + 1) % self.bes.len();
            self.apply_admission();
        }
    }

    /// Number of currently admitted (running) BEs.
    pub fn admitted_bes(&self) -> u32 {
        self.bes.iter().filter(|b| !b.paused).count() as u32
    }

    /// Adds a BE instance at run time (fleet arrivals / migrations) and
    /// returns its index. Panics on the same capacity limits as
    /// [`Server::new`]. The effective-ways memo and the step fingerprint
    /// are invalidated: their keys index per-BE state positionally and do
    /// not capture the profile set, so entries from the old population
    /// could falsely collide with the new one.
    pub fn add_be(&mut self, profile: AppProfile) -> usize {
        assert!(
            (self.bes.len() as u32 + 1) < self.cfg.n_cores,
            "{} BEs + 1 HP exceed {} cores",
            self.bes.len() + 1,
            self.cfg.n_cores
        );
        assert!(self.bes.len() < 63, "active-set bitmask supports at most 63 BEs");
        self.bes.push(AppInstance::new(profile));
        self.population_changed();
        self.bes.len() - 1
    }

    /// Removes the BE at `idx` (fleet departures / migrations), returning
    /// the instance so callers can bank its retired work or reschedule it
    /// elsewhere. Panics if this would leave the server BE-less — the
    /// consolidation model needs at least one BE — or if `idx` is out of
    /// range.
    pub fn remove_be(&mut self, idx: usize) -> AppInstance {
        assert!(self.bes.len() > 1, "cannot remove the last BE");
        let gone = self.bes.remove(idx);
        self.population_changed();
        gone
    }

    /// Re-establishes the stepping invariants after the BE population
    /// changed: clamp the admission target and rotation offset to the new
    /// population, re-derive the paused set, and drop memoized state keyed
    /// on the old population.
    fn population_changed(&mut self) {
        self.admitted_target = self.admitted_target.clamp(1, self.bes.len());
        self.admit_offset %= self.bes.len();
        self.apply_admission();
        self.ways_memo.clear();
        self.fp.valid = false;
    }

    /// Run progress against the paper's stopping rule.
    pub fn progress(&self) -> RunProgress {
        RunProgress {
            hp_done: self.hp.completions > 0,
            all_bes_done: self.bes.iter().all(|b| b.completions > 0),
        }
    }

    /// Fills `scratch.active` with the indices (0 = HP) of running apps.
    fn refresh_active(&mut self) {
        self.scratch.active.clear();
        self.scratch.active.push(0);
        for (i, be) in self.bes.iter().enumerate() {
            if !be.paused {
                self.scratch.active.push(i + 1);
            }
        }
    }

    /// Fills `scratch.ways`/`scratch.miss` for the current plan, admission
    /// set and phases — from the memo when acceleration is on and the
    /// configuration repeats, computed (and cached) otherwise.
    fn refresh_effective_ways(&mut self) {
        if !self.solver.accelerated() {
            self.compute_effective_ways();
            return;
        }
        self.ways_key.plan = self.plan;
        let mut mask = 1u64;
        for (i, be) in self.bes.iter().enumerate() {
            if !be.paused {
                mask |= 1u64 << (i + 1);
            }
        }
        self.ways_key.active_mask = mask;
        self.ways_key.phase_idx.clear();
        self.ways_key.phase_idx.push(self.hp.phase_idx);
        self.ways_key.phase_idx.extend(self.bes.iter().map(|b| b.phase_idx));
        if let Some(entry) = self.ways_memo.get(&self.ways_key) {
            self.scratch.ways.clear();
            self.scratch.ways.extend_from_slice(&entry.ways);
            self.scratch.miss.clear();
            self.scratch.miss.extend_from_slice(&entry.miss);
            return;
        }
        self.compute_effective_ways();
        let len = self.ways_memo.len();
        if len >= WAYS_MEMO_CAP {
            self.solver.note_evictions(len as u64);
            self.ways_memo.clear();
        }
        self.ways_memo.insert(
            self.ways_key.clone(),
            WaysEntry { ways: self.scratch.ways.clone(), miss: self.scratch.miss.clone() },
        );
    }

    /// Effective ways per app (HP first, then BEs) under the current plan,
    /// written to `scratch.ways`, plus each app's phase miss ratio at that
    /// allocation in `scratch.miss`. Paused BEs take no part in cache
    /// contention and get a 0.0 placeholder (they retire nothing, so the
    /// value is never read).
    fn compute_effective_ways(&mut self) {
        let w = self.cfg.cache.ways;
        let n = 1 + self.bes.len();
        let scratch = &mut self.scratch;
        scratch.ways.clear();
        scratch.ways.resize(n, 0.0);
        let active_bes: Vec<&AppInstance> = self.bes.iter().filter(|b| !b.paused).collect();
        // Copies shares for the HP and the active BEs into `scratch.ways`.
        let scatter = |ways: &mut [f64], hp_share: f64, be_shares: &[f64]| {
            ways[0] = hp_share;
            let mut it = be_shares.iter();
            for (slot, be) in ways[1..].iter_mut().zip(self.bes.iter()) {
                if !be.paused {
                    *slot = *it.next().expect("one share per active BE");
                }
            }
        };
        match self.plan {
            PartitionPlan::Unmanaged => {
                let apps: Vec<(f64, &MissCurve)> = std::iter::once(&self.hp)
                    .chain(active_bes.iter().copied())
                    .map(|a| {
                        let p = a.current_phase();
                        (p.apki, &p.curve)
                    })
                    .collect();
                contention::shared_effective_ways_into(
                    &apps,
                    w as f64,
                    &mut scratch.pressures,
                    &mut scratch.shares,
                );
                let (hp_share, be_shares) =
                    scratch.shares.split_first().map(|(h, t)| (*h, t)).unwrap_or((0.0, &[]));
                scatter(&mut scratch.ways, hp_share, be_shares);
            }
            PartitionPlan::Split { hp_ways } => {
                let be_group = (w - hp_ways) as f64;
                let be_apps: Vec<(f64, &MissCurve)> = active_bes
                    .iter()
                    .map(|a| {
                        let p = a.current_phase();
                        (p.apki, &p.curve)
                    })
                    .collect();
                contention::shared_effective_ways_into(
                    &be_apps,
                    be_group,
                    &mut scratch.pressures,
                    &mut scratch.shares,
                );
                scatter(&mut scratch.ways, hp_ways as f64, &scratch.shares);
            }
            PartitionPlan::Overlapping { hp_exclusive, shared } => {
                // BE-only region split among the active BEs first; then the
                // shared middle region is contested by HP (floored by its
                // private ways) and the BEs (floored by their shares).
                let be_only = (w - hp_exclusive - shared) as f64;
                let be_apps: Vec<(f64, &MissCurve)> = active_bes
                    .iter()
                    .map(|a| {
                        let p = a.current_phase();
                        (p.apki, &p.curve)
                    })
                    .collect();
                if be_only > 0.0 && !be_apps.is_empty() {
                    contention::shared_effective_ways_into(
                        &be_apps,
                        be_only,
                        &mut scratch.pressures,
                        &mut scratch.floors,
                    );
                } else {
                    scratch.floors.clear();
                    scratch.floors.resize(be_apps.len(), 0.0);
                }
                let hp_phase = self.hp.current_phase();
                let mut participants: Vec<(f64, &MissCurve, f64)> =
                    vec![(hp_phase.apki, &hp_phase.curve, hp_exclusive as f64)];
                participants.extend(
                    be_apps
                        .iter()
                        .zip(scratch.floors.iter())
                        .map(|((apki, curve), &f)| (*apki, *curve, f)),
                );
                contention::overlap_shares_into(
                    &participants,
                    shared as f64,
                    &mut scratch.pressures,
                    &mut scratch.ovl,
                );
                scratch.shares.clear();
                scratch.shares.extend(
                    scratch.floors.iter().zip(scratch.ovl.iter().skip(1)).map(|(&f, &o)| f + o),
                );
                let hp_share = hp_exclusive as f64 + scratch.ovl[0];
                scatter(&mut scratch.ways, hp_share, &scratch.shares);
            }
        }
        // Miss ratio of each running app's phase at its allocation.
        scratch.miss.clear();
        scratch.miss.resize(n, 0.0);
        scratch.miss[0] = self.hp.current_phase().curve.miss_ratio(scratch.ways[0]);
        for (i, be) in self.bes.iter().enumerate() {
            if !be.paused {
                scratch.miss[i + 1] = be.current_phase().curve.miss_ratio(scratch.ways[i + 1]);
            }
        }
    }

    /// Advances one monitoring period and returns its counters.
    ///
    /// Within the period the simulator re-solves the equilibrium whenever an
    /// application crosses a phase boundary (or completes and restarts), so
    /// period counters are exact time-weighted averages. Steady-state
    /// sub-periods are served entirely from the effective-ways and
    /// equilibrium memos without heap allocation.
    pub fn step_period(&mut self) -> PeriodSample {
        let mut out = PeriodSample::default();
        self.step_period_into(&mut out);
        out
    }

    /// In-place variant of [`Server::step_period`]: writes the period's
    /// counters into `out`, reusing its buffers. Long-horizon drivers call
    /// this in a loop with one persistent sample so steady-state stepping
    /// performs zero heap allocation per period.
    pub fn step_period_into(&mut self, out: &mut PeriodSample) {
        self.rotate_admission();
        let n = 1 + self.bes.len();
        let mut remaining = self.cfg.period_s;
        self.scratch.reset_period(n);
        let mut total_bw_acc = 0.0f64;
        let mut guard = 0;

        while remaining > 1e-12 {
            guard += 1;
            assert!(guard < 10_000, "period subdivided too finely — model bug");

            // Active instances only take part in the equilibrium; paused
            // BEs retire nothing and generate no traffic.
            self.refresh_active();
            // MBA: the BE class's requests are delayed by the programmed
            // level, modelled as a latency scale of 100 / level, capped at
            // the hardware's real effectiveness ceiling.
            let be_scale = (1.0 / self.be_throttle.fraction()).min(MAX_MBA_LATENCY_SCALE);
            let period_start = self.time_s;
            let period_s = self.cfg.period_s;
            let freq_hz = self.cfg.freq_hz;
            let way_bytes = self.cfg.cache.way_bytes() as f64;

            let mut mask = 1u64;
            for (i, be) in self.bes.iter().enumerate() {
                if !be.paused {
                    mask |= 1u64 << (i + 1);
                }
            }
            // Incremental re-solve: if the plan, throttle, active set and
            // every phase index match the last computed solve, the solver
            // would stage bit-identical inputs and the memo would return
            // the same equilibrium — so skip the ways refresh and the
            // solver entirely, reusing `last_eq` and the ways/miss scratch
            // the matching sub-period left behind.
            let fp_hit = self.solver.accelerated()
                && self.fp.valid
                && self.fp.plan == self.plan
                && self.fp.throttle == self.be_throttle
                && self.fp.active_mask == mask
                && self.fp.phase_idx.len() == n
                && self.fp.phase_idx[0] == self.hp.phase_idx
                && self.fp.phase_idx[1..]
                    .iter()
                    .zip(self.bes.iter())
                    .all(|(&p, b)| p == b.phase_idx);
            if fp_hit {
                self.solver.note_fingerprint_skip();
            } else {
                self.refresh_effective_ways();
                // Split the borrow: the solver is staged and queried while
                // the instances and scratch buffers are updated through
                // disjoint fields.
                let Server {
                    solver, scratch, hp, bes, tracer, last_eq, fp, plan, be_throttle, ..
                } = self;
                solver.begin();
                for &i in &scratch.active {
                    let (phase, scale) = if i == 0 {
                        (hp.current_phase(), 1.0)
                    } else {
                        (bes[i - 1].current_phase(), be_scale)
                    };
                    solver.push(phase, scratch.miss[i], scale);
                }
                let eq = {
                    let mut span = tracer.span(stage::EQUILIBRIUM_SOLVE);
                    span.note_time(period_start + (period_s - remaining));
                    solver.solve()
                };
                last_eq.copy_from(eq);
                fp.valid = true;
                fp.plan = *plan;
                fp.throttle = *be_throttle;
                fp.active_mask = mask;
                fp.phase_idx.clear();
                fp.phase_idx.push(hp.phase_idx);
                fp.phase_idx.extend(bes.iter().map(|b| b.phase_idx));
            }
            let Server { scratch, hp, bes, last_eq, .. } = self;
            let eq = &*last_eq;

            // Time until the nearest phase boundary among running apps.
            let mut dt = remaining;
            for (k, &i) in scratch.active.iter().enumerate() {
                let rate = eq.ipc[k] * freq_hz; // insns per second
                if rate > 0.0 {
                    let inst = if i == 0 { &*hp } else { &bes[i - 1] };
                    let t = inst.insns_left_in_phase() / rate;
                    if t < dt {
                        dt = t;
                    }
                }
            }
            // Ensure forward progress even when a boundary is (numerically)
            // exactly at the current instant.
            dt = dt.max(remaining * 1e-9).min(remaining);

            let now = period_start + (period_s - remaining) + dt;
            for (k, &i) in scratch.active.iter().enumerate() {
                let insns = eq.ipc[k] * freq_hz * dt;
                let inst = if i == 0 { &mut *hp } else { &mut bes[i - 1] };
                inst.retire(insns, now);
                scratch.insns_acc[i] += insns;
                scratch.bw_acc[i] += eq.achieved_gbps[k] * dt;
                scratch.miss_acc[i] += scratch.miss[i] * dt;
                scratch.occupancy[i] = (scratch.ways[i] * way_bytes) as u64;
            }
            total_bw_acc += eq.total_gbps * dt;
            remaining -= dt;
        }

        self.time_s += self.cfg.period_s;
        let t = self.cfg.period_s;
        let cycles = self.cfg.freq_hz * t;
        let scratch = &self.scratch;
        let mk = |i: usize| PerAppSample {
            ipc: scratch.insns_acc[i] / cycles,
            llc_occupancy_bytes: scratch.occupancy[i],
            mem_bw_gbps: scratch.bw_acc[i] / t,
            miss_ratio: scratch.miss_acc[i] / t,
        };
        out.time_s = self.time_s;
        out.hp = mk(0);
        out.bes.clear();
        out.bes.extend((1..n).map(mk));
        out.total_bw_gbps = total_bw_acc / t;
        self.telemetry.emit_with(|| {
            TelemetryEvent::Period(PeriodEvent {
                time_s: out.time_s,
                hp_ipc: out.hp.ipc,
                hp_bw_gbps: out.hp.mem_bw_gbps,
                total_bw_gbps: out.total_bw_gbps,
                hp_ways: self.plan.hp_ways(self.cfg.cache.ways),
                n_bes: self.bes.len() as u32,
            })
        });
    }

    /// Runs periods until every application has completed at least once (the
    /// paper's rule) or `max_periods` elapses. Returns all period samples.
    pub fn run_to_completion(&mut self, max_periods: u32) -> Vec<PeriodSample> {
        let mut out = Vec::new();
        for _ in 0..max_periods {
            out.push(self.step_period());
            if self.progress().all_done() {
                break;
            }
        }
        out
    }
}

impl MbaController for Server {
    fn set_be_throttle(&mut self, level: MbaLevel) {
        self.be_throttle = level;
    }

    fn be_throttle(&self) -> MbaLevel {
        self.be_throttle
    }
}

impl dicer_rdt::MonitoredPlatform for Server {
    fn step_period(&mut self) -> PeriodSample {
        Server::step_period(self)
    }

    fn step_period_monitored_into(&mut self, out: &mut PeriodSample) -> bool {
        Server::step_period_into(self, out);
        true
    }

    fn workload_complete(&self) -> bool {
        self.progress().all_done()
    }

    fn admitted_bes(&self) -> Option<u32> {
        Some(Server::admitted_bes(self))
    }

    fn set_admitted_bes(&mut self, n: u32) {
        Server::set_admitted_bes(self, n);
    }

    fn set_telemetry(&mut self, telemetry: Telemetry) {
        Server::set_telemetry(self, telemetry);
    }

    fn set_tracer(&mut self, tracer: Tracer) {
        Server::set_tracer(self, tracer);
    }
}

impl PartitionController for Server {
    fn n_ways(&self) -> u32 {
        self.cfg.cache.ways
    }

    fn apply_plan(&mut self, plan: PartitionPlan) {
        plan.validate(self.n_ways()).expect("invalid partition plan");
        self.plan = plan;
        self.telemetry.emit_with(|| TelemetryEvent::PartitionApplied {
            time_s: self.time_s,
            hp_ways: plan.hp_ways(self.cfg.cache.ways),
            n_ways: self.cfg.cache.ways,
        });
    }

    fn current_plan(&self) -> PartitionPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::{Archetype, MissCurve};

    fn profile(name: &str, insns: u64, base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> AppProfile {
        AppProfile::new(
            name,
            Archetype::CacheFriendly,
            vec![Phase { insns, base_cpi, apki, mlp, curve }],
        )
    }

    fn quiet(insns: u64) -> AppProfile {
        profile("quiet", insns, 0.5, 1.0, 1.5, MissCurve::flat(0.05))
    }

    fn cfg() -> ServerConfig {
        ServerConfig::table1()
    }

    #[test]
    fn period_advances_clock() {
        let mut s = Server::new(cfg(), quiet(10_000_000_000), vec![quiet(10_000_000_000)]);
        let sample = s.step_period();
        assert!((s.time_s() - 1.0).abs() < 1e-12);
        assert!((sample.time_s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quiet_apps_run_at_base_ipc() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2)]);
        let sample = s.step_period();
        // CPI = 0.5 + 0.001*0.05*198/1.5 = 0.5066 -> IPC ~1.974
        assert!((sample.hp.ipc - 1.974).abs() < 0.01, "ipc {}", sample.hp.ipc);
    }

    #[test]
    fn completion_and_restart() {
        // 2.2e9 insns at IPC ~1.97 completes in ~0.51 s.
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(u64::MAX / 2)]);
        s.step_period();
        assert_eq!(s.hp().completions, 1);
        let t1 = s.hp().first_completion_s.unwrap();
        assert!((0.4..0.7).contains(&t1), "completion at {t1}");
        s.step_period();
        assert!(s.hp().completions >= 2, "restarted and completed again");
        assert!((s.hp().first_completion_s.unwrap() - t1).abs() < 1e-12, "first stamp fixed");
    }

    #[test]
    fn progress_tracks_all_apps() {
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(200_000_000_000)]);
        s.step_period();
        let p = s.progress();
        assert!(p.hp_done && !p.all_bes_done && !p.all_done());
    }

    #[test]
    fn run_to_completion_stops_when_done() {
        let mut s = Server::new(cfg(), quiet(2_200_000_000), vec![quiet(4_400_000_000)]);
        let samples = s.run_to_completion(100);
        assert!(s.progress().all_done());
        assert!(samples.len() < 10, "should finish quickly, took {}", samples.len());
    }

    #[test]
    fn partition_plan_is_enforced_next_period() {
        let streamy = profile("hog", u64::MAX / 2, 0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let sensitive = profile(
            "sens",
            u64::MAX / 2,
            0.8,
            16.0,
            1.2,
            MissCurve::parametric(0.06, 0.7, 8.0, 2.0),
        );
        let mut s = Server::new(cfg(), sensitive, vec![streamy; 9]);
        s.apply_plan(PartitionPlan::cache_takeover(20));
        let sample = s.step_period();
        // HP owns 19 ways: occupancy reflects it.
        assert!(sample.hp.llc_occupancy_bytes > 18 * s.config().cache.way_bytes());
        // BEs squeezed into one shared way.
        for be in &sample.bes {
            assert!(be.llc_occupancy_bytes <= s.config().cache.way_bytes());
        }
    }

    #[test]
    fn ct_improves_cache_sensitive_hp_vs_unmanaged() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 20.0, 3.0, MissCurve::flat(0.55));
        let sensitive = profile(
            "sens",
            u64::MAX / 2,
            0.8,
            16.0,
            1.2,
            MissCurve::parametric(0.06, 0.7, 8.0, 2.0),
        );
        let mut um = Server::new(cfg(), sensitive.clone(), vec![hog.clone(); 9]);
        let um_ipc = um.step_period().hp.ipc;
        let mut ct = Server::new(cfg(), sensitive, vec![hog; 9]);
        ct.apply_plan(PartitionPlan::cache_takeover(20));
        let ct_ipc = ct.step_period().hp.ipc;
        assert!(ct_ipc > um_ipc * 1.1, "CT should shield the HP: {ct_ipc} vs {um_ipc}");
    }

    #[test]
    fn ct_hurts_bandwidth_sensitive_hp_with_hungry_bes() {
        // Fig. 3: milc-like HP + gcc-like BEs.
        let milc = profile(
            "milc",
            u64::MAX / 2,
            0.70,
            28.0,
            4.0,
            MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
        );
        let gcc = profile(
            "gcc",
            u64::MAX / 2,
            0.65,
            24.0,
            2.4,
            MissCurve::parametric(0.07, 0.62, 1.2, 3.0),
        );
        let ipc_at = |hp_ways: u32| {
            let mut s = Server::new(cfg(), milc.clone(), vec![gcc.clone(); 9]);
            s.apply_plan(PartitionPlan::Split { hp_ways });
            s.step_period().hp.ipc
        };
        let ct = ipc_at(19);
        let small = ipc_at(2);
        assert!(small > ct * 1.1, "small HP allocation should win: 2-way {small} vs CT {ct}");
    }

    #[test]
    fn total_bw_respects_link_capacity() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 40.0, 4.2, MissCurve::flat(0.85));
        let mut s = Server::new(cfg(), hog.clone(), vec![hog; 9]);
        let sample = s.step_period();
        assert!(sample.total_bw_gbps <= 68.3 + 1e-9);
        assert!(sample.total_bw_gbps > 40.0, "hogs should load the link");
    }

    #[test]
    fn phase_boundary_mid_period_blends_counters() {
        // Phase 1: memory-quiet; phase 2: memory-heavy. One period spans both.
        let two_phase = AppProfile::new(
            "twophase",
            Archetype::Streaming,
            vec![
                Phase { insns: 1_100_000_000, base_cpi: 0.5, apki: 0.5, mlp: 1.5, curve: MissCurve::flat(0.05) },
                Phase { insns: 50_000_000_000, base_cpi: 0.5, apki: 30.0, mlp: 4.0, curve: MissCurve::flat(0.8) },
            ],
        );
        let mut s = Server::new(cfg(), two_phase, vec![quiet(u64::MAX / 2)]);
        let s1 = s.step_period();
        // Quiet phase lasts ~0.25 s; blended bandwidth sits between the two.
        let mut s2 = s.step_period();
        for _ in 0..3 {
            s2 = s.step_period();
        }
        assert!(s1.hp.mem_bw_gbps > 1.0, "period 1 already includes heavy phase");
        assert!(s2.hp.mem_bw_gbps > s1.hp.mem_bw_gbps * 1.1, "steady heavy phase is hotter");
    }

    #[test]
    fn admission_limits_concurrency_each_period() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog; 9]);
        s.set_admitted_bes(3);
        assert_eq!(s.admitted_bes(), 3);
        let sample = s.step_period();
        let ran = sample.bes.iter().filter(|b| b.ipc > 0.0).count();
        let idle = sample.bes.iter().filter(|b| b.ipc == 0.0 && b.mem_bw_gbps == 0.0).count();
        assert_eq!(ran, 3, "exactly the admitted count runs");
        assert_eq!(idle, 6);
    }

    #[test]
    fn admission_rotates_so_every_be_progresses() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 9]);
        s.set_admitted_bes(3);
        for _ in 0..9 {
            s.step_period();
        }
        for (i, be) in s.bes().iter().enumerate() {
            assert!(be.retired_insns > 0.0, "BE {i} never got a turn");
        }
        // Duty cycle ~3/9: each BE retired roughly a third of what the HP did.
        let hp = s.hp().retired_insns;
        for be in s.bes() {
            let duty = be.retired_insns / hp;
            assert!((0.15..0.55).contains(&duty), "duty cycle off: {duty}");
        }
    }

    #[test]
    fn pausing_bes_relieves_link_pressure() {
        let hog = profile("hog", u64::MAX / 2, 0.6, 35.0, 4.0, MissCurve::flat(0.85));
        let mut all = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog.clone(); 9]);
        let bw_all = all.step_period().total_bw_gbps;
        let mut few = Server::new(cfg(), quiet(u64::MAX / 2), vec![hog; 9]);
        few.set_admitted_bes(2);
        let bw_few = few.step_period().total_bw_gbps;
        assert!(bw_few < bw_all * 0.6, "2 admitted hogs should load far less: {bw_few} vs {bw_all}");
    }

    #[test]
    fn descheduled_bes_hold_progress_until_their_turn() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 3]);
        s.step_period();
        s.set_admitted_bes(1);
        // Over any single period, exactly one BE advances.
        let before: Vec<f64> = s.bes().iter().map(|b| b.retired_insns).collect();
        s.step_period();
        let advanced = s
            .bes()
            .iter()
            .zip(&before)
            .filter(|(b, &x)| b.retired_insns > x)
            .count();
        assert_eq!(advanced, 1, "one admitted slot");
        // Full re-admission resumes everyone.
        s.set_admitted_bes(3);
        let before: Vec<f64> = s.bes().iter().map(|b| b.retired_insns).collect();
        s.step_period();
        assert!(s.bes().iter().zip(&before).all(|(b, &x)| b.retired_insns > x));
    }

    #[test]
    fn admission_clamps_to_at_least_one_be() {
        let mut s = Server::new(cfg(), quiet(1000), vec![quiet(1000); 4]);
        s.set_admitted_bes(0);
        assert_eq!(s.admitted_bes(), 1);
        s.set_admitted_bes(99);
        assert_eq!(s.admitted_bes(), 4);
    }

    #[test]
    #[should_panic]
    fn oversubscription_rejected() {
        Server::new(cfg(), quiet(1_000), vec![quiet(1_000); 10]);
    }

    #[test]
    #[should_panic]
    fn invalid_plan_rejected() {
        let mut s = Server::new(cfg(), quiet(1_000), vec![quiet(1_000)]);
        s.apply_plan(PartitionPlan::Split { hp_ways: 20 });
    }

    #[test]
    fn acceleration_does_not_change_period_samples() {
        // The determinism guarantee, end to end: a server with memoization
        // and warm starts produces bit-identical period samples to a cold
        // one, across plan changes, throttle changes, admission changes and
        // phase boundaries.
        let milc = profile(
            "milc",
            3_000_000_000,
            0.70,
            28.0,
            4.0,
            MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
        );
        let gcc = profile(
            "gcc",
            2_000_000_000,
            0.65,
            24.0,
            2.4,
            MissCurve::parametric(0.07, 0.62, 1.2, 3.0),
        );
        let mut fast = Server::new(cfg(), milc.clone(), vec![gcc.clone(); 9]);
        let mut cold = Server::new(cfg(), milc, vec![gcc; 9]);
        cold.set_acceleration(false);
        assert!(fast.acceleration() && !cold.acceleration());
        let plans = [
            PartitionPlan::Unmanaged,
            PartitionPlan::Unmanaged,
            PartitionPlan::cache_takeover(20),
            PartitionPlan::cache_takeover(20),
            PartitionPlan::Split { hp_ways: 4 },
            PartitionPlan::Overlapping { hp_exclusive: 4, shared: 6 },
            PartitionPlan::Unmanaged,
            PartitionPlan::Unmanaged,
        ];
        for (step, plan) in plans.iter().enumerate() {
            for s in [&mut fast, &mut cold] {
                s.apply_plan(*plan);
                s.set_be_throttle(if step % 3 == 0 { MbaLevel::FULL } else { MbaLevel::new(40).unwrap() });
                if step == 5 {
                    s.set_admitted_bes(4);
                }
            }
            let a = fast.step_period();
            let b = cold.step_period();
            assert_eq!(a, b, "samples diverged at period {step}");
        }
        let stats = fast.solver_stats();
        assert!(
            stats.cache_hits + stats.fingerprint_skips > 0,
            "steady stretches should ride the fast path: {stats:?}"
        );
    }

    #[test]
    fn telemetry_reports_periods_and_partition_applies() {
        use dicer_telemetry::{CollectingSink, Telemetry, TelemetryEvent};
        use std::sync::Arc;
        let sink = Arc::new(CollectingSink::new());
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 3]);
        s.set_telemetry(Telemetry::new(sink.clone()));
        s.apply_plan(PartitionPlan::Split { hp_ways: 6 });
        s.step_period();
        s.step_period();
        let events = sink.take();
        assert_eq!(
            events.iter().map(|e| e.kind()).collect::<Vec<_>>(),
            ["partition_applied", "period", "period"]
        );
        match &events[0] {
            TelemetryEvent::PartitionApplied { time_s, hp_ways, n_ways } => {
                assert_eq!(*time_s, 0.0);
                assert_eq!(*hp_ways, 6);
                assert_eq!(*n_ways, 20);
            }
            other => panic!("expected partition_applied, got {other:?}"),
        }
        match &events[2] {
            TelemetryEvent::Period(p) => {
                assert!((p.time_s - 2.0).abs() < 1e-12);
                assert!(p.hp_ipc > 0.0);
                assert_eq!(p.hp_ways, 6);
                assert_eq!(p.n_bes, 3);
            }
            other => panic!("expected period, got {other:?}"),
        }
    }

    #[test]
    fn detached_telemetry_leaves_samples_bit_identical() {
        use dicer_telemetry::{CollectingSink, Telemetry};
        use std::sync::Arc;
        let hog = profile("hog", 4_000_000_000, 0.6, 24.0, 2.4, MissCurve::flat(0.55));
        let mut plain = Server::new(cfg(), quiet(6_000_000_000), vec![hog.clone(); 9]);
        let mut instr = Server::new(cfg(), quiet(6_000_000_000), vec![hog; 9]);
        instr.set_telemetry(Telemetry::new(Arc::new(CollectingSink::new())));
        for _ in 0..5 {
            assert_eq!(plain.step_period(), instr.step_period());
        }
    }

    #[test]
    fn solver_stats_report_the_fast_path() {
        // A static unmanaged run repeats its configuration every sub-period,
        // so after the first computed solve the input fingerprint should
        // serve nearly every request and keep mean rounds low — the
        // observability the perf claims rest on.
        let hog = profile("hog", 4_000_000_000, 0.6, 24.0, 2.4, MissCurve::flat(0.55));
        let mut s = Server::new(cfg(), quiet(6_000_000_000), vec![hog; 9]);
        for _ in 0..20 {
            s.step_period();
        }
        let stats = s.solver_stats();
        assert!(stats.solves >= 20, "at least one solve request per period: {stats:?}");
        assert!(stats.fingerprint_skips > 0, "steady stretches should skip: {stats:?}");
        assert!(stats.fast_path_rate() > 0.5, "fast-path rate {}", stats.fast_path_rate());
        assert!(
            stats.mean_evals_per_solve() <= 10.0,
            "mean rounds {}",
            stats.mean_evals_per_solve()
        );
    }

    #[test]
    fn fingerprint_skip_returns_the_identical_equilibrium() {
        // Skip-vs-solve equivalence: a fingerprint-accelerated server and a
        // cold one (every sub-period fully re-solved) must produce
        // bit-identical samples over a long steady run with phase changes,
        // completions/restarts, and admission rotation in the mix.
        let milc = AppProfile::new(
            "milc2",
            Archetype::CacheFriendly,
            vec![
                Phase {
                    insns: 1_500_000_000,
                    base_cpi: 0.70,
                    apki: 28.0,
                    mlp: 4.0,
                    curve: MissCurve::parametric(0.45, 0.62, 1.3, 2.0),
                },
                Phase {
                    insns: 900_000_000,
                    base_cpi: 0.55,
                    apki: 9.0,
                    mlp: 2.0,
                    curve: MissCurve::parametric(0.12, 0.5, 1.1, 2.5),
                },
            ],
        );
        let gcc = profile("gcc", 2_000_000_000, 0.65, 24.0, 2.4, MissCurve::flat(0.35));
        let mut fast = Server::new(cfg(), milc.clone(), vec![gcc.clone(); 7]);
        let mut cold = Server::new(cfg(), milc, vec![gcc; 7]);
        cold.set_acceleration(false);
        fast.set_admitted_bes(5);
        cold.set_admitted_bes(5);
        for period in 0..120 {
            let a = fast.step_period();
            let b = cold.step_period();
            assert_eq!(a, b, "samples diverged at period {period}");
        }
        let stats = fast.solver_stats();
        assert!(stats.fingerprint_skips > 0, "the skip path must actually run: {stats:?}");
        assert!(
            stats.warm_solves + stats.cold_solves < cold.solver_stats().solves,
            "the fast server must compute fewer solves than the cold one"
        );
    }

    #[test]
    fn add_be_grows_the_population_and_returns_its_index() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2)]);
        let idx = s.add_be(profile("late", u64::MAX / 2, 0.6, 8.0, 2.0, MissCurve::flat(0.3)));
        assert_eq!(idx, 1);
        assert_eq!(s.bes().len(), 2);
        let sample = s.step_period();
        assert_eq!(sample.bes.len(), 2, "the arrival is simulated immediately");
        assert!(s.bes()[idx].retired_insns > 0.0);
    }

    #[test]
    fn remove_be_returns_the_instance_with_its_progress() {
        let mut s =
            Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2), quiet(2_200_000_000)]);
        s.step_period();
        let gone = s.remove_be(1);
        assert_eq!(gone.profile.name, "quiet");
        assert!(gone.retired_insns > 0.0, "departures keep their banked work");
        assert_eq!(s.bes().len(), 1);
        s.step_period();
    }

    #[test]
    #[should_panic(expected = "cannot remove the last BE")]
    fn removing_the_last_be_is_rejected() {
        let mut s = Server::new(cfg(), quiet(1), vec![quiet(1)]);
        s.remove_be(0);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn add_be_respects_the_core_budget() {
        let mut s = Server::new(cfg(), quiet(1), vec![quiet(1); 9]);
        // table1 has 10 cores: 9 BEs + 1 HP is full.
        s.add_be(quiet(1));
    }

    #[test]
    fn churn_reclamps_admission_state() {
        let mut s = Server::new(cfg(), quiet(u64::MAX / 2), vec![quiet(u64::MAX / 2); 5]);
        s.set_admitted_bes(3);
        // Rotate the admission window off zero so the offset re-clamp matters.
        for _ in 0..4 {
            s.step_period();
        }
        s.remove_be(4);
        s.remove_be(3);
        s.remove_be(2);
        assert_eq!(s.bes().len(), 2);
        assert!(s.admitted_bes() >= 1 && s.admitted_bes() <= 2);
        s.step_period();
        s.add_be(quiet(u64::MAX / 2));
        assert_eq!(s.bes().len(), 3);
        s.step_period();
    }

    #[test]
    fn churn_under_acceleration_matches_the_cold_path() {
        // The memo/fingerprint invalidation contract: a server whose BE
        // population changes mid-run must stay bit-identical to the cold
        // reference path through the same churn script.
        let hog = profile("hog", u64::MAX / 2, 0.6, 20.0, 3.0, MissCurve::flat(0.55));
        let sens = profile(
            "sens",
            u64::MAX / 2,
            0.8,
            16.0,
            1.2,
            MissCurve::parametric(0.06, 0.7, 8.0, 2.0),
        );
        let mut fast = Server::new(cfg(), sens.clone(), vec![hog.clone(); 3]);
        let mut cold = Server::new(cfg(), sens, vec![hog.clone(); 3]);
        cold.set_acceleration(false);
        for step in 0..3 {
            for period in 0..5 {
                assert_eq!(
                    fast.step_period(),
                    cold.step_period(),
                    "diverged at step {step} period {period}"
                );
            }
            let arrival = profile("late", u64::MAX / 2, 0.55, 6.0 + step as f64, 2.0, MissCurve::flat(0.2));
            fast.add_be(arrival.clone());
            cold.add_be(arrival);
            for period in 0..5 {
                assert_eq!(fast.step_period(), cold.step_period(), "post-add {step}/{period}");
            }
            assert_eq!(fast.remove_be(0).profile.name, cold.remove_be(0).profile.name);
        }
        for period in 0..5 {
            assert_eq!(fast.step_period(), cold.step_period(), "final {period}");
        }
    }
}
