//! Shared-cache contention model.
//!
//! When several applications share a group of ways without CAT isolation
//! (all ten under UM, or the BEs inside their common partition), each ends
//! up with an *effective* fraction of the group proportional to the rate at
//! which it inserts lines — i.e. its miss pressure. This is the standard
//! demand-driven occupancy model behind UCP-style partitioning analyses
//! (Qureshi & Patt, reference 37 of the paper): insertion pressure
//! `p_i = APKI_i · miss_ratio_i(e_i)` and occupancy `e_i ∝ p_i`, solved as
//! a fixed point because the miss ratio itself depends on the share.
//!
//! The `_into` variants write into caller-owned buffers so the simulator's
//! period loop can run allocation-free; the by-value functions are thin
//! wrappers and the two always produce bit-identical shares.

use dicer_appmodel::MissCurve;

/// Minimum effective share (in ways) any running application retains; even
/// a fully thrashed app keeps transient lines in flight.
pub const MIN_EFFECTIVE_WAYS: f64 = 0.05;

/// Damped fixed-point iterations used by [`shared_effective_ways`].
const ITERATIONS: usize = 40;
const DAMPING: f64 = 0.5;

/// Solves the effective per-app way shares inside a shared group of
/// `group_ways` ways. `apps` supplies `(apki, curve)` per application.
///
/// Invariants: the shares are positive, sum to `group_ways` (when at least
/// one app has positive pressure), and an app with higher insertion
/// pressure never receives a smaller share than a lower-pressure peer.
pub fn shared_effective_ways(apps: &[(f64, &MissCurve)], group_ways: f64) -> Vec<f64> {
    let mut pressures = Vec::new();
    let mut shares = Vec::new();
    shared_effective_ways_into(apps, group_ways, &mut pressures, &mut shares);
    shares
}

/// [`shared_effective_ways`] into caller-owned buffers: `shares` receives
/// the result and `pressures` is scratch. Both are cleared first, so stale
/// contents are harmless.
pub fn shared_effective_ways_into(
    apps: &[(f64, &MissCurve)],
    group_ways: f64,
    pressures: &mut Vec<f64>,
    shares: &mut Vec<f64>,
) {
    assert!(group_ways > 0.0, "group must have positive capacity");
    let n = apps.len();
    shares.clear();
    if n == 0 {
        return;
    }
    if n == 1 {
        shares.push(group_ways);
        return;
    }
    shares.resize(n, group_ways / n as f64);
    for _ in 0..ITERATIONS {
        pressures.clear();
        pressures.extend(
            apps.iter()
                .zip(shares.iter())
                .map(|((apki, curve), &e)| (apki * curve.miss_ratio(e)).max(1e-6)),
        );
        let total: f64 = pressures.iter().sum();
        for i in 0..n {
            let target = (group_ways * pressures[i] / total).max(MIN_EFFECTIVE_WAYS);
            shares[i] = DAMPING * shares[i] + (1.0 - DAMPING) * target;
        }
        // Renormalise to the group capacity after clamping.
        let sum: f64 = shares.iter().sum();
        for s in shares.iter_mut() {
            *s *= group_ways / sum;
        }
    }
}

/// Solves the contested shares of an *overlap* region: each participant
/// already owns `floor` exclusive ways and additionally competes for
/// `overlap` shared ways. Pressure is evaluated at the participant's total
/// effective allocation (`floor + share`), so an app whose working set is
/// already satisfied by its private region exerts little pressure on the
/// overlap — the behaviour the paper's §6 overlap question hinges on.
pub fn overlap_shares(participants: &[(f64, &MissCurve, f64)], overlap: f64) -> Vec<f64> {
    let mut pressures = Vec::new();
    let mut shares = Vec::new();
    overlap_shares_into(participants, overlap, &mut pressures, &mut shares);
    shares
}

/// [`overlap_shares`] into caller-owned buffers: `shares` receives the
/// result and `pressures` is scratch. Both are cleared first.
pub fn overlap_shares_into(
    participants: &[(f64, &MissCurve, f64)],
    overlap: f64,
    pressures: &mut Vec<f64>,
    shares: &mut Vec<f64>,
) {
    assert!(overlap > 0.0, "overlap region must have positive capacity");
    let n = participants.len();
    shares.clear();
    if n == 0 {
        return;
    }
    if n == 1 {
        shares.push(overlap);
        return;
    }
    shares.resize(n, overlap / n as f64);
    for _ in 0..ITERATIONS {
        pressures.clear();
        pressures.extend(
            participants
                .iter()
                .zip(shares.iter())
                .map(|((apki, curve, floor), &s)| (apki * curve.miss_ratio(floor + s)).max(1e-6)),
        );
        let total: f64 = pressures.iter().sum();
        for i in 0..n {
            let target = (overlap * pressures[i] / total).max(0.0);
            shares[i] = DAMPING * shares[i] + (1.0 - DAMPING) * target;
        }
        let sum: f64 = shares.iter().sum();
        for s in shares.iter_mut() {
            *s *= overlap / sum;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve(floor: f64, ceil: f64, w_half: f64) -> MissCurve {
        MissCurve::parametric(floor, ceil, w_half, 2.0)
    }

    #[test]
    fn single_app_takes_everything() {
        let c = curve(0.05, 0.8, 4.0);
        assert_eq!(shared_effective_ways(&[(10.0, &c)], 20.0), vec![20.0]);
    }

    #[test]
    fn shares_sum_to_group_capacity() {
        let a = curve(0.05, 0.8, 4.0);
        let b = curve(0.1, 0.9, 8.0);
        let c = curve(0.02, 0.3, 1.0);
        let shares = shared_effective_ways(&[(10.0, &a), (25.0, &b), (3.0, &c)], 20.0);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 20.0).abs() < 1e-6, "sum {sum}");
        assert!(shares.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn identical_apps_split_evenly() {
        let c = curve(0.05, 0.7, 3.0);
        let apps = vec![(12.0, &c); 4];
        let shares = shared_effective_ways(&apps, 20.0);
        for s in &shares {
            assert!((s - 5.0).abs() < 1e-6, "uneven split: {shares:?}");
        }
    }

    #[test]
    fn hungrier_app_gets_more() {
        let stream = curve(0.7, 0.8, 1.0); // high persistent pressure
        let quiet = curve(0.02, 0.2, 1.0); // low pressure
        let shares = shared_effective_ways(&[(30.0, &stream), (2.0, &quiet)], 20.0);
        assert!(shares[0] > shares[1] * 3.0, "streaming app should dominate: {shares:?}");
    }

    #[test]
    fn milc_like_hp_claims_about_a_quarter_under_um() {
        // The paper observes milc grabbing ~26% of the LLC under UM when
        // co-located with 9 gcc instances (§2.3.2 item iv).
        let milc = curve(0.45, 0.62, 1.3);
        let gcc = MissCurve::parametric(0.07, 0.62, 1.2, 3.0);
        let mut apps: Vec<(f64, &MissCurve)> = vec![(28.0, &milc)];
        for _ in 0..9 {
            apps.push((24.0, &gcc));
        }
        let shares = shared_effective_ways(&apps, 20.0);
        let milc_frac = shares[0] / 20.0;
        assert!((0.10..0.45).contains(&milc_frac), "milc UM share: {milc_frac}");
    }

    #[test]
    fn empty_group_is_empty() {
        assert!(shared_effective_ways(&[], 20.0).is_empty());
    }

    #[test]
    fn min_share_respected_under_extreme_skew() {
        let hog = curve(0.9, 0.95, 1.0);
        let tiny = curve(0.0, 0.01, 1.0);
        let shares = shared_effective_ways(&[(50.0, &hog), (0.01, &tiny)], 20.0);
        assert!(shares[1] > 0.0);
    }

    #[test]
    #[should_panic]
    fn zero_capacity_rejected() {
        let c = curve(0.1, 0.5, 2.0);
        shared_effective_ways(&[(1.0, &c)], 0.0);
    }

    #[test]
    fn overlap_shares_sum_to_region() {
        let a = curve(0.05, 0.8, 4.0);
        let b = curve(0.1, 0.9, 8.0);
        let shares = overlap_shares(&[(10.0, &a, 5.0), (20.0, &b, 1.0)], 6.0);
        let sum: f64 = shares.iter().sum();
        assert!((sum - 6.0).abs() < 1e-6);
    }

    #[test]
    fn satisfied_participant_cedes_the_overlap() {
        // A participant whose private floor already covers its working set
        // exerts almost no pressure; the hungry one takes the overlap.
        let satisfied = curve(0.02, 0.8, 2.0); // floor 10 ways -> miss ~0.02
        let hungry = curve(0.1, 0.9, 8.0); // floor 0.5 -> miss ~0.9
        let shares = overlap_shares(&[(15.0, &satisfied, 10.0), (15.0, &hungry, 0.5)], 8.0);
        assert!(shares[1] > shares[0] * 2.0, "hungry should dominate: {shares:?}");
    }

    #[test]
    fn single_overlap_participant_takes_all() {
        let c = curve(0.1, 0.5, 2.0);
        assert_eq!(overlap_shares(&[(1.0, &c, 3.0)], 4.0), vec![4.0]);
    }

    #[test]
    fn into_variants_match_and_tolerate_dirty_buffers() {
        let a = curve(0.05, 0.8, 4.0);
        let b = curve(0.1, 0.9, 8.0);
        let apps: Vec<(f64, &MissCurve)> = vec![(10.0, &a), (25.0, &b)];
        let fresh = shared_effective_ways(&apps, 20.0);
        // Reused buffers pre-polluted with junk of the wrong length.
        let mut pressures = vec![99.0; 7];
        let mut shares = vec![-3.0; 2];
        shared_effective_ways_into(&apps, 20.0, &mut pressures, &mut shares);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&fresh), bits(&shares));

        let parts: Vec<(f64, &MissCurve, f64)> = vec![(10.0, &a, 5.0), (20.0, &b, 1.0)];
        let fresh_ovl = overlap_shares(&parts, 6.0);
        let mut ovl = vec![123.0; 9];
        overlap_shares_into(&parts, 6.0, &mut pressures, &mut ovl);
        assert_eq!(bits(&fresh_ovl), bits(&ovl));
    }
}
