//! Solo (isolated) profiling of applications.
//!
//! The paper's metrics are all normalised to each application's behaviour
//! when *running alone on the system occupying the entire cache*
//! (`IPC_alone`, solo execution time). Fig. 2 additionally needs, per
//! application, the minimum LLC allocation at which solo performance reaches
//! a fraction of its full-cache maximum.

use crate::{config::ServerConfig, equilibrium::EquilibriumSolver};
use dicer_appmodel::AppProfile;
use dicer_membw::LinkModel;

/// Solo characterisation of one application on a given server.
#[derive(Debug, Clone, PartialEq)]
pub struct SoloProfile {
    /// Instruction-weighted IPC with the full cache, accounting for the
    /// app's own link load.
    pub ipc_alone: f64,
    /// Solo execution time in seconds with the full cache.
    pub time_alone_s: f64,
    /// Instruction-weighted solo IPC at each way allocation
    /// (`ipc_by_ways[w-1]` = IPC with `w` ways).
    pub ipc_by_ways: Vec<f64>,
}

/// Profiles `app` alone on `cfg`'s server. One persistent solver serves the
/// whole way sweep, so repeated phases at the same allocation are memoized.
pub fn profile(app: &AppProfile, cfg: &ServerConfig) -> SoloProfile {
    let mut solver = EquilibriumSolver::new(
        LinkModel::new(cfg.link),
        cfg.base_latency_cycles(),
        cfg.freq_hz,
        cfg.cache.line_bytes,
    );
    let ways_max = cfg.cache.ways;
    let ipc_by_ways: Vec<f64> =
        (1..=ways_max).map(|w| solo_ipc_with(&mut solver, app, w as f64)).collect();
    let ipc_alone = ipc_by_ways[ways_max as usize - 1];
    let total: f64 = app.phases.iter().map(|p| p.insns as f64).sum();
    let time_alone_s = total / (ipc_alone * cfg.freq_hz);
    SoloProfile { ipc_alone, time_alone_s, ipc_by_ways }
}

/// Instruction-weighted solo IPC at a given allocation, including the app's
/// own bandwidth feedback (a lone streaming app can load the link).
pub fn solo_ipc_at(app: &AppProfile, ways: f64, cfg: &ServerConfig, link: &LinkModel) -> f64 {
    let mut solver = EquilibriumSolver::new(
        *link,
        cfg.base_latency_cycles(),
        cfg.freq_hz,
        cfg.cache.line_bytes,
    );
    solo_ipc_with(&mut solver, app, ways)
}

/// [`solo_ipc_at`] against a caller-owned solver (engine geometry must
/// match the server configuration). Equilibrium solves are bit-identical to
/// [`crate::equilibrium::solve`] on the same phase, so results do not
/// depend on how the solver is shared across calls.
pub fn solo_ipc_with(solver: &mut EquilibriumSolver, app: &AppProfile, ways: f64) -> f64 {
    let total: f64 = app.phases.iter().map(|p| p.insns as f64).sum();
    let cycles: f64 = app
        .phases
        .iter()
        .map(|p| {
            solver.begin();
            solver.push(p, p.curve.miss_ratio(ways), 1.0);
            p.insns as f64 / solver.solve().ipc[0]
        })
        .sum();
    total / cycles
}

impl SoloProfile {
    /// Minimum number of ways at which solo IPC reaches `target_frac` of the
    /// full-cache IPC (Fig. 2's quantity). Always succeeds at the full way
    /// count by construction.
    pub fn min_ways_for(&self, target_frac: f64) -> u32 {
        assert!((0.0..=1.0).contains(&target_frac));
        let target = self.ipc_alone * target_frac;
        for (i, ipc) in self.ipc_by_ways.iter().enumerate() {
            if *ipc >= target - 1e-12 {
                return i as u32 + 1;
            }
        }
        self.ipc_by_ways.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::{Archetype, MissCurve, Phase};

    fn cfg() -> ServerConfig {
        ServerConfig::table1()
    }

    fn app(base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> AppProfile {
        AppProfile::new(
            "t",
            Archetype::CacheFriendly,
            vec![Phase { insns: 22_000_000_000, base_cpi, apki, mlp, curve }],
        )
    }

    #[test]
    fn compute_bound_needs_one_way() {
        let a = app(0.5, 0.5, 1.5, MissCurve::flat(0.05));
        let p = profile(&a, &cfg());
        assert_eq!(p.min_ways_for(0.99), 1);
        assert_eq!(p.min_ways_for(0.90), 1);
    }

    #[test]
    fn cache_sensitive_needs_many_ways() {
        let a = app(0.9, 20.0, 1.2, MissCurve::parametric(0.05, 0.75, 10.0, 2.0));
        let p = profile(&a, &cfg());
        assert!(p.min_ways_for(0.99) > 10, "got {}", p.min_ways_for(0.99));
        assert!(p.min_ways_for(0.90) > 4);
        assert!(p.min_ways_for(0.90) <= p.min_ways_for(0.99));
    }

    #[test]
    fn ipc_by_ways_is_monotone() {
        let a = app(0.7, 15.0, 2.0, MissCurve::parametric(0.05, 0.6, 4.0, 2.0));
        let p = profile(&a, &cfg());
        for w in p.ipc_by_ways.windows(2) {
            assert!(w[1] >= w[0] - 1e-12);
        }
    }

    #[test]
    fn time_is_insns_over_rate() {
        let a = app(1.0, 0.0, 1.0, MissCurve::flat(0.0));
        let p = profile(&a, &cfg());
        // CPI 1 at 2.2 GHz: 22e9 insns = 10 s.
        assert!((p.time_alone_s - 10.0).abs() < 1e-6);
        assert!((p.ipc_alone - 1.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_solo_ipc_accounts_for_own_bandwidth() {
        // A lone hog heavy enough to cross the link knee must see its solo
        // IPC reduced relative to the unloaded-latency closed form.
        let hog = app(0.5, 150.0, 12.0, MissCurve::flat(0.9));
        let closed_form = hog.phases[0].ipc(20.0, cfg().base_latency_cycles());
        let p = profile(&hog, &cfg());
        assert!(p.ipc_alone < closed_form, "{} !< {closed_form}", p.ipc_alone);
    }

    #[test]
    fn min_ways_boundaries() {
        let a = app(0.5, 0.5, 1.5, MissCurve::flat(0.05));
        let p = profile(&a, &cfg());
        assert_eq!(p.min_ways_for(0.0), 1);
        assert!(p.min_ways_for(1.0) <= 20);
    }
}
