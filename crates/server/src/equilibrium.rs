//! Fixed-point IPC ⇄ bandwidth equilibrium solver.
//!
//! IPC determines memory traffic; total traffic determines link latency;
//! latency determines IPC. The solver finds the latency multiplier at which
//! the loop closes — the mechanism by which cache-starved BEs slow down a
//! bandwidth-sensitive HP (the paper's Key Observation 2).
//!
//! # The solver engine
//!
//! [`EquilibriumSolver`] is a reusable engine designed for the simulator's
//! inner loop (hundreds of thousands of solves per figure sweep):
//!
//! * **Scalar staging** — each pushed app is reduced to three constants
//!   (`base_cpi`, `k_lat`, `k_bw`) so the inner iteration is pure
//!   arithmetic: every `powf` in the miss curves is hoisted out of the
//!   root-finding loop.
//! * **Hybrid root finder** — an Illinois-style regula falsi with a
//!   bisection fallback replaces pure bisection; typical interior solves
//!   take a handful of curve-evaluation rounds instead of ~40.
//! * **Warm starting** — consecutive solves of similar configurations
//!   bracket the new root in a small window around the previous one.
//! * **Per-run memoization** — solves are cached by the exact bit patterns
//!   of the staged constants, so periods that repeat a configuration
//!   (static plans, controller hold stretches) return the cached
//!   equilibrium without re-solving.
//!
//! **Determinism.** The root is *defined* as a canonical point on a fixed
//! grid: the smallest multiplier `k · 2⁻³²` (k integer) at which the
//! residual `g(mult) = L(U(mult)) − mult` is ≤ 0, clamped to the modelled
//! range. Because `g` is strictly decreasing, that grid point is unique,
//! and every search path — cold, warm-started, or any bracketing sequence —
//! terminates on it. Memoized, warm-started, and cold solves are therefore
//! bit-identical (only the diagnostic [`Equilibrium::iterations`] count is
//! path-dependent), preserving the repo's bit-for-bit figure
//! reproducibility.

use dicer_appmodel::Phase;
use dicer_membw::LinkModel;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Converged per-period operating point for a set of co-running phases.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Converged IPC per app (same order as the input).
    pub ipc: Vec<f64>,
    /// Offered traffic per app in Gbps.
    pub demand_gbps: Vec<f64>,
    /// Achieved traffic per app in Gbps (proportionally shared if the link
    /// is overcommitted).
    pub achieved_gbps: Vec<f64>,
    /// Total achieved traffic in Gbps.
    pub total_gbps: f64,
    /// Converged latency multiplier.
    pub latency_mult: f64,
    /// Curve-evaluation rounds used by the solve that produced this value.
    /// Diagnostic only: a memoized hit reports the original solve's count,
    /// and warm-started paths may use fewer rounds than cold ones.
    pub iterations: u32,
}

impl Equilibrium {
    /// Copies `src` into `self`, reusing the existing `Vec` buffers — the
    /// allocation-free analogue of `clone_from` for the control loop's
    /// steady state (the derived `Clone` would allocate fresh vectors).
    pub fn copy_from(&mut self, src: &Equilibrium) {
        self.ipc.clear();
        self.ipc.extend_from_slice(&src.ipc);
        self.demand_gbps.clear();
        self.demand_gbps.extend_from_slice(&src.demand_gbps);
        self.achieved_gbps.clear();
        self.achieved_gbps.extend_from_slice(&src.achieved_gbps);
        self.total_gbps = src.total_gbps;
        self.latency_mult = src.latency_mult;
        self.iterations = src.iterations;
    }

    pub(crate) fn empty() -> Self {
        Self {
            ipc: Vec::new(),
            demand_gbps: Vec::new(),
            achieved_gbps: Vec::new(),
            total_gbps: 0.0,
            latency_mult: 1.0,
            iterations: 0,
        }
    }
}

/// Hard cap on curve-evaluation rounds per solve. The hybrid finder's worst
/// case (Illinois budget exhausted, then pure integer bisection over the
/// full grid) stays well under this.
pub const MAX_EVALS: u32 = 200;

/// Canonical multiplier grid spacing: roots snap to multiples of 2⁻³².
/// Fine enough that the fixed-point residual at the snapped root is far
/// below every tolerance in the test suite, coarse enough that integer
/// indices over `[1, mult_max]` fit comfortably in `i64`/`f64`.
const GRID: f64 = 1.0 / 4_294_967_296.0;
/// Grid index of `mult = 1.0`.
const KMIN: i64 = 1 << 32;
/// Regula-falsi rounds before the finder falls back to pure bisection.
const ILLINOIS_BUDGET: u32 = 60;
/// Half-width (in grid points) of the initial warm-start bracket.
const WARM_WINDOW: i64 = 1 << 12;
/// Memoized solves kept before the cache is cleared wholesale.
const MEMO_CAP: usize = 8192;

/// Exact bit patterns of one staged app — the memoization key element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct AppKey {
    base_cpi: u64,
    k_lat: u64,
    k_bw: u64,
}

/// Scalar-reduced app: `ipc(mult) = 1 / (base_cpi + k_lat · mult)` and
/// `demand_gbps(mult) = ipc(mult) · k_bw`.
#[derive(Debug, Clone, Copy)]
struct AppInput {
    base_cpi: f64,
    k_lat: f64,
    k_bw: f64,
}

/// Counters exposing the engine's behaviour: how many solve requests were
/// served from the memo, how many were warm-started, and how many
/// curve-evaluation rounds they cost in total.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SolverStats {
    /// Total [`EquilibriumSolver::solve`] requests.
    pub solves: u64,
    /// Requests answered from the memoization cache.
    pub cache_hits: u64,
    /// Computed solves that used a warm-start bracket.
    pub warm_solves: u64,
    /// Computed solves bracketed from the full range.
    pub cold_solves: u64,
    /// Total curve-evaluation rounds across all computed solves.
    pub curve_evals: u64,
    /// Requests answered above the engine by the server's input
    /// fingerprint: the staged inputs provably repeated the previous
    /// sub-period's, so the prior equilibrium was reused without staging
    /// anything. Counted into `solves` as well.
    #[serde(default)]
    pub fingerprint_skips: u64,
    /// Memo entries discarded by bounded-cache wholesale clears (the
    /// engine's equilibrium memo plus any caller-side memo folded in, such
    /// as the server's effective-ways table).
    #[serde(default)]
    pub evictions: u64,
}

impl SolverStats {
    /// Fraction of solve requests served from the cache.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.solves as f64
        }
    }

    /// Fraction of solve requests that skipped the root finder entirely —
    /// answered either from the memo or by a fingerprint skip.
    pub fn fast_path_rate(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            (self.cache_hits + self.fingerprint_skips) as f64 / self.solves as f64
        }
    }

    /// Mean curve-evaluation rounds per solve *request* (memo hits cost 0).
    pub fn mean_evals_per_solve(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.curve_evals as f64 / self.solves as f64
        }
    }

    /// Mean curve-evaluation rounds per *computed* (non-memoized) solve.
    pub fn mean_evals_per_computed_solve(&self) -> f64 {
        let computed = self.warm_solves + self.cold_solves;
        if computed == 0 {
            0.0
        } else {
            self.curve_evals as f64 / computed as f64
        }
    }

    /// Accumulates another counter set into this one.
    pub fn merge(&mut self, other: &SolverStats) {
        self.solves += other.solves;
        self.cache_hits += other.cache_hits;
        self.warm_solves += other.warm_solves;
        self.cold_solves += other.cold_solves;
        self.curve_evals += other.curve_evals;
        self.fingerprint_skips += other.fingerprint_skips;
        self.evictions += other.evictions;
    }
}

/// Reusable equilibrium engine: stage apps with [`begin`]/[`push`], then
/// [`solve`]. See the module docs for the acceleration strategies and the
/// determinism guarantee.
///
/// [`begin`]: EquilibriumSolver::begin
/// [`push`]: EquilibriumSolver::push
/// [`solve`]: EquilibriumSolver::solve
#[derive(Debug, Clone)]
pub struct EquilibriumSolver {
    link: LinkModel,
    base_latency_cycles: f64,
    freq_hz: f64,
    /// `line_bytes · 8 / 1e9`: multiplies misses/sec into Gbps.
    bytes_factor: f64,
    /// Latency multiplier at the modelled utilisation cap.
    mult_max: f64,
    /// Sentinel grid index: evaluation at `k >= ksup` clamps to `mult_max`.
    ksup: i64,
    accelerated: bool,
    apps: Vec<AppInput>,
    key: Vec<AppKey>,
    ipc: Vec<f64>,
    demands: Vec<f64>,
    last_offered: f64,
    last_eval_mult: f64,
    evals_this_solve: u32,
    warm: Option<i64>,
    memo: HashMap<Vec<AppKey>, Equilibrium>,
    out: Equilibrium,
    stats: SolverStats,
}

impl EquilibriumSolver {
    /// Builds an engine for a given link and server geometry. Acceleration
    /// (memoization + warm starts) is on by default.
    pub fn new(link: LinkModel, base_latency_cycles: f64, freq_hz: f64, line_bytes: u32) -> Self {
        let mult_max = link.latency_multiplier(link.config().max_utilisation);
        let ksup = (mult_max / GRID).floor() as i64 + 1;
        Self {
            link,
            base_latency_cycles,
            freq_hz,
            bytes_factor: line_bytes as f64 * 8.0 / 1e9,
            mult_max,
            ksup,
            accelerated: true,
            apps: Vec::new(),
            key: Vec::new(),
            ipc: Vec::new(),
            demands: Vec::new(),
            last_offered: 0.0,
            last_eval_mult: f64::NAN,
            evals_this_solve: 0,
            warm: None,
            memo: HashMap::new(),
            out: Equilibrium::empty(),
            stats: SolverStats::default(),
        }
    }

    /// Enables or disables acceleration (memoization + warm starts). The
    /// cache and warm hint are cleared either way, so `set_accelerated
    /// (false)` yields a pristine cold reference path. Results are
    /// bit-identical in both modes; only [`Equilibrium::iterations`] and the
    /// [`SolverStats`] trajectory differ.
    pub fn set_accelerated(&mut self, on: bool) {
        self.accelerated = on;
        self.memo.clear();
        self.warm = None;
    }

    /// Whether memoization and warm starts are enabled.
    pub fn accelerated(&self) -> bool {
        self.accelerated
    }

    /// Counters accumulated since construction (or [`reset_stats`]).
    ///
    /// [`reset_stats`]: EquilibriumSolver::reset_stats
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Zeroes the counters (the memo cache is left intact).
    pub fn reset_stats(&mut self) {
        self.stats = SolverStats::default();
    }

    /// Records a solve request answered *above* the engine: the caller
    /// proved (by fingerprinting the inputs) that this request would stage
    /// exactly the previous solve's inputs and reused its equilibrium
    /// without staging anything. Keeps `solves` meaning "requests".
    pub fn note_fingerprint_skip(&mut self) {
        self.stats.solves += 1;
        self.stats.fingerprint_skips += 1;
    }

    /// Folds `n` evictions from a caller-side memo (the server's bounded
    /// effective-ways table) into [`SolverStats::evictions`].
    pub fn note_evictions(&mut self, n: u64) {
        self.stats.evictions += n;
    }

    /// Starts staging a new solve, discarding previously pushed apps.
    pub fn begin(&mut self) {
        self.apps.clear();
        self.key.clear();
    }

    /// Stages one app: `phase` running with the given `miss_ratio` (already
    /// evaluated at its effective way allocation) and an MBA-style latency
    /// scale `>= 1`.
    pub fn push(&mut self, phase: &Phase, miss_ratio: f64, latency_scale: f64) {
        debug_assert!(latency_scale >= 1.0, "latency scales must be >= 1");
        let traffic = phase.apki / 1000.0 * miss_ratio;
        let k_lat = traffic * self.base_latency_cycles * latency_scale / phase.mlp;
        let k_bw = traffic * self.freq_hz * self.bytes_factor;
        self.apps.push(AppInput { base_cpi: phase.base_cpi, k_lat, k_bw });
        self.key.push(AppKey {
            base_cpi: phase.base_cpi.to_bits(),
            k_lat: k_lat.to_bits(),
            k_bw: k_bw.to_bits(),
        });
    }

    /// Solves the equilibrium for the staged apps. The returned reference is
    /// valid until the next call that mutates the solver.
    pub fn solve(&mut self) -> &Equilibrium {
        self.stats.solves += 1;
        if self.accelerated {
            if self.memo.contains_key(self.key.as_slice()) {
                self.stats.cache_hits += 1;
            } else {
                self.run_solve();
                if self.memo.len() >= MEMO_CAP {
                    self.stats.evictions += self.memo.len() as u64;
                    self.memo.clear();
                }
                self.memo.insert(self.key.clone(), self.out.clone());
            }
            self.memo.get(self.key.as_slice()).expect("present or just inserted")
        } else {
            self.run_solve();
            &self.out
        }
    }

    /// Multiplier at grid index `k`, clamped to the modelled range.
    fn mult_at(&self, k: i64) -> f64 {
        if k >= self.ksup {
            self.mult_max
        } else {
            k as f64 * GRID
        }
    }

    /// One curve-evaluation round: fills the per-app IPC/demand scratch at
    /// `mult` and returns the residual `g(mult) = L(U(mult)) − mult`.
    fn eval(&mut self, mult: f64) -> f64 {
        self.evals_this_solve += 1;
        self.stats.curve_evals += 1;
        let mut offered = 0.0;
        for (j, a) in self.apps.iter().enumerate() {
            let ipc = 1.0 / (a.base_cpi + a.k_lat * mult);
            self.ipc[j] = ipc;
            let d = ipc * a.k_bw;
            self.demands[j] = d;
            offered += d;
        }
        self.last_offered = offered;
        self.last_eval_mult = mult;
        self.link.latency_multiplier(offered / self.link.config().capacity_gbps) - mult
    }

    fn run_solve(&mut self) {
        let n = self.apps.len();
        self.ipc.clear();
        self.ipc.resize(n, 0.0);
        self.demands.clear();
        self.demands.resize(n, 0.0);
        self.evals_this_solve = 0;
        self.last_eval_mult = f64::NAN;
        self.last_offered = 0.0;
        if n == 0 {
            self.out = Equilibrium::empty();
            return;
        }
        let (mult, interior_hi) = if let Some(hint) = self.warm.filter(|_| self.accelerated) {
            self.stats.warm_solves += 1;
            self.solve_from_hint(hint)
        } else {
            self.stats.cold_solves += 1;
            self.solve_cold()
        };
        if self.accelerated {
            self.warm = interior_hi;
        }
        debug_assert!(self.evals_this_solve <= MAX_EVALS, "solver exceeded its round budget");
        self.finalize(mult);
    }

    /// Residual `g` is strictly decreasing (offered demand falls as latency
    /// rises, the latency curve is non-decreasing in utilisation, and the
    /// `−mult` term is strict), so a unique root exists in `[1, mult_max]`
    /// whenever `g(1) > 0`. Endpoint rules match [`solve_from_hint`]'s
    /// exactly: `g(1) <= 0` is the trivial fixed point and `g(mult_max) >=
    /// 0` pins the multiplier at the cap.
    fn solve_cold(&mut self) -> (f64, Option<i64>) {
        let g1 = self.eval(1.0);
        if g1 <= 0.0 {
            return (1.0, None);
        }
        let gmax = self.eval(self.mult_max);
        if gmax >= 0.0 {
            return (self.mult_max, None);
        }
        let hi = self.bracket_search(KMIN, g1, self.ksup, gmax);
        (self.mult_at(hi), Some(hi))
    }

    /// Brackets the root in a geometrically expanding window around the
    /// previous solve's grid index. Expansion that reaches an endpoint
    /// evaluates the same point as the cold path and applies the same rule,
    /// so both paths land on the same canonical grid index.
    fn solve_from_hint(&mut self, hint: i64) -> (f64, Option<i64>) {
        let mut step = WARM_WINDOW;
        let mut lo = (hint - step).max(KMIN);
        let mut glo = self.eval(self.mult_at(lo));
        let mut hi;
        let mut ghi;
        if glo <= 0.0 {
            // Root is below the window: walk down.
            if lo == KMIN {
                return (1.0, None);
            }
            hi = lo;
            ghi = glo;
            loop {
                step *= 16;
                lo = (hi - step).max(KMIN);
                glo = self.eval(self.mult_at(lo));
                if glo > 0.0 {
                    break;
                }
                if lo == KMIN {
                    return (1.0, None);
                }
                hi = lo;
                ghi = glo;
            }
        } else {
            // Root is above `lo`: walk up.
            hi = (hint + step).min(self.ksup);
            ghi = self.eval(self.mult_at(hi));
            while ghi > 0.0 {
                if hi == self.ksup {
                    return (self.mult_max, None);
                }
                lo = hi;
                glo = ghi;
                step *= 16;
                hi = (hi + step).min(self.ksup);
                ghi = self.eval(self.mult_at(hi));
            }
        }
        let hi_idx = self.bracket_search(lo, glo, hi, ghi);
        (self.mult_at(hi_idx), Some(hi_idx))
    }

    /// Shrinks an integer bracket (`g(lo) > 0 >= g(hi)`) to adjacent grid
    /// indices and returns the upper one — the canonical root. Illinois
    /// regula falsi (the retained endpoint's residual is halved when the
    /// same side wins twice) accelerates the typical case; a pure-bisection
    /// fallback bounds the worst case. The result is the unique sign-flip
    /// index, independent of the probing order.
    fn bracket_search(&mut self, mut lo: i64, mut glo: f64, mut hi: i64, mut ghi: f64) -> i64 {
        debug_assert!(glo > 0.0 && ghi <= 0.0 && lo < hi);
        let mut side = 0i8;
        let mut rounds = 0u32;
        while hi - lo > 1 {
            rounds += 1;
            let k = if rounds <= ILLINOIS_BUDGET {
                let denom = glo - ghi;
                let frac = if denom > 0.0 { glo / denom } else { 0.5 };
                let cand = lo + ((hi - lo) as f64 * frac) as i64;
                cand.clamp(lo + 1, hi - 1)
            } else {
                lo + (hi - lo) / 2
            };
            let g = self.eval(self.mult_at(k));
            if g > 0.0 {
                lo = k;
                glo = g;
                if side == 1 {
                    ghi *= 0.5;
                }
                side = 1;
            } else {
                hi = k;
                ghi = g;
                if side == -1 {
                    glo *= 0.5;
                }
                side = -1;
            }
        }
        hi
    }

    /// Leaves the scratch consistent with `mult` and fills the output.
    fn finalize(&mut self, mult: f64) {
        if self.last_eval_mult.to_bits() != mult.to_bits() {
            self.eval(mult);
        }
        let cap = self.link.config().capacity_gbps;
        let offered = self.last_offered;
        let scale = if offered > cap { cap / offered } else { 1.0 };
        self.out.ipc.clear();
        self.out.ipc.extend_from_slice(&self.ipc);
        self.out.demand_gbps.clear();
        self.out.demand_gbps.extend_from_slice(&self.demands);
        self.out.achieved_gbps.clear();
        self.out.achieved_gbps.extend(self.demands.iter().map(|d| d * scale));
        self.out.total_gbps = offered.min(cap);
        self.out.latency_mult = mult;
        self.out.iterations = self.evals_this_solve;
    }
}

/// Solves the equilibrium for apps running concurrently, where app `i`
/// executes `phases[i].0` with an effective allocation of `phases[i].1`
/// ways. `base_latency_cycles` is the unloaded memory latency in core
/// cycles; `freq_hz` and `line_bytes` size the traffic.
///
/// One-shot convenience over [`EquilibriumSolver`]; results are
/// bit-identical to the engine's.
pub fn solve(
    phases: &[(&Phase, f64)],
    link: &LinkModel,
    base_latency_cycles: f64,
    freq_hz: f64,
    line_bytes: u32,
) -> Equilibrium {
    let mut solver = EquilibriumSolver::new(*link, base_latency_cycles, freq_hz, line_bytes);
    solver.set_accelerated(false);
    solver.begin();
    for (phase, ways) in phases {
        solver.push(phase, phase.curve.miss_ratio(*ways), 1.0);
    }
    solver.solve().clone()
}

/// Like [`solve`], but each app additionally carries a *latency scale*
/// (`>= 1`) modelling an MBA throttle: a class programmed to level `L`
/// percent experiences its memory latency inflated by `100 / L`, which both
/// slows it down and shrinks the traffic it can offer — the delay-on-request
/// semantics of the real mechanism.
pub fn solve_throttled(
    phases: &[(&Phase, f64, f64)],
    link: &LinkModel,
    base_latency_cycles: f64,
    freq_hz: f64,
    line_bytes: u32,
) -> Equilibrium {
    let mut solver = EquilibriumSolver::new(*link, base_latency_cycles, freq_hz, line_bytes);
    solver.set_accelerated(false);
    solver.begin();
    for (phase, ways, scale) in phases {
        solver.push(phase, phase.curve.miss_ratio(*ways), *scale);
    }
    solver.solve().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::MissCurve;
    use dicer_membw::LinkConfig;

    const FREQ: f64 = 2.2e9;
    const LAT: f64 = 198.0;

    fn phase(base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> Phase {
        Phase { insns: 1_000_000, base_cpi, apki, mlp, curve }
    }

    fn link() -> LinkModel {
        LinkModel::new(LinkConfig::default())
    }

    fn engine() -> EquilibriumSolver {
        EquilibriumSolver::new(link(), LAT, FREQ, 64)
    }

    /// Bitwise equality on everything except the path-dependent
    /// `iterations` diagnostic.
    fn assert_bit_identical(a: &Equilibrium, b: &Equilibrium) {
        assert_eq!(a.latency_mult.to_bits(), b.latency_mult.to_bits(), "latency_mult differs");
        assert_eq!(a.total_gbps.to_bits(), b.total_gbps.to_bits(), "total_gbps differs");
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a.ipc), bits(&b.ipc), "ipc differs");
        assert_eq!(bits(&a.demand_gbps), bits(&b.demand_gbps), "demand differs");
        assert_eq!(bits(&a.achieved_gbps), bits(&b.achieved_gbps), "achieved differs");
    }

    #[test]
    fn empty_input_is_trivial() {
        let e = solve(&[], &link(), LAT, FREQ, 64);
        assert_eq!(e.latency_mult, 1.0);
        assert_eq!(e.total_gbps, 0.0);
    }

    #[test]
    fn light_load_keeps_unit_latency() {
        let p = phase(0.5, 1.0, 1.5, MissCurve::flat(0.1));
        let e = solve(&[(&p, 10.0)], &link(), LAT, FREQ, 64);
        assert_eq!(e.latency_mult, 1.0);
        // IPC matches the closed form at base latency.
        assert!((e.ipc[0] - p.ipc(10.0, LAT)).abs() < 1e-9);
    }

    #[test]
    fn heavy_load_inflates_latency_and_reduces_ipc() {
        let hog = phase(0.6, 40.0, 4.2, MissCurve::flat(0.85));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 2.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.latency_mult > 1.2, "latency mult {}", e.latency_mult);
        assert!(e.ipc[0] < hog.ipc(2.0, LAT), "contended IPC must drop");
    }

    #[test]
    fn converges_to_self_consistent_point() {
        let hog = phase(0.6, 35.0, 4.0, MissCurve::flat(0.8));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 2.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        // Recompute by hand from the converged multiplier.
        let ipc = hog.ipc(2.0, LAT * e.latency_mult);
        assert!((ipc - e.ipc[0]).abs() < 1e-6);
        let offered: f64 = e.demand_gbps.iter().sum();
        let mult = link().latency_multiplier(offered / 68.3);
        assert!((mult - e.latency_mult).abs() < 1e-6, "fixed point violated");
    }

    #[test]
    fn achieved_never_exceeds_capacity() {
        let hog = phase(0.5, 45.0, 4.5, MissCurve::flat(0.9));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 1.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.total_gbps <= 68.3 + 1e-9);
    }

    #[test]
    fn victim_suffers_from_contention_it_did_not_create() {
        // A latency-sensitive app (low MLP) sharing the link with hogs.
        let victim = phase(0.7, 28.0, 4.0, MissCurve::parametric(0.45, 0.62, 1.3, 2.0));
        let hog = phase(0.65, 24.0, 2.4, MissCurve::parametric(0.07, 0.62, 1.2, 3.0));

        // Alone, with plenty of cache.
        let alone = solve(&[(&victim, 19.0)], &link(), LAT, FREQ, 64);
        // With nine cache-starved hogs.
        let mut apps: Vec<(&Phase, f64)> = vec![(&victim, 19.0)];
        for _ in 0..9 {
            apps.push((&hog, 0.11));
        }
        let contended = solve(&apps, &link(), LAT, FREQ, 64);
        let slowdown = alone.ipc[0] / contended.ipc[0];
        assert!(slowdown > 1.15, "bandwidth contention too weak: {slowdown}");
    }

    #[test]
    fn starved_bes_offer_less_when_granted_more_cache() {
        // Key Fig. 3 mechanism: granting the hogs cache REDUCES total traffic.
        let hog = phase(0.65, 24.0, 2.4, MissCurve::parametric(0.07, 0.62, 1.2, 3.0));
        let starved: Vec<(&Phase, f64)> = (0..9).map(|_| (&hog, 0.11)).collect();
        let granted: Vec<(&Phase, f64)> = (0..9).map(|_| (&hog, 2.0)).collect();
        let e_starved = solve(&starved, &link(), LAT, FREQ, 64);
        let e_granted = solve(&granted, &link(), LAT, FREQ, 64);
        let offered_starved: f64 = e_starved.demand_gbps.iter().sum();
        let offered_granted: f64 = e_granted.demand_gbps.iter().sum();
        assert!(
            offered_starved > offered_granted,
            "starving must raise traffic: {offered_starved} vs {offered_granted}"
        );
        // The DICER saturation threshold (50 Gbps) separates the two states.
        assert!(offered_starved > 50.0, "starved BEs must saturate: {offered_starved}");
        assert!(offered_granted < 50.0, "granted BEs must not saturate: {offered_granted}");
    }

    #[test]
    fn throttled_class_slows_down_and_offers_less() {
        let hog = phase(0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let free = solve_throttled(&[(&hog, 2.0, 1.0)], &link(), LAT, FREQ, 64);
        let throttled = solve_throttled(&[(&hog, 2.0, 2.0)], &link(), LAT, FREQ, 64);
        assert!(throttled.ipc[0] < free.ipc[0]);
        assert!(throttled.demand_gbps[0] < free.demand_gbps[0]);
    }

    #[test]
    fn throttling_bes_relieves_the_victim() {
        // MBA's raison d'être: delaying the hogs' requests lowers link
        // utilisation, so the unthrottled victim speeds up.
        let victim = phase(0.7, 28.0, 4.0, MissCurve::flat(0.5));
        let hog = phase(0.6, 35.0, 4.0, MissCurve::flat(0.8));
        let build = |scale: f64| {
            let mut apps: Vec<(&Phase, f64, f64)> = vec![(&victim, 10.0, 1.0)];
            for _ in 0..9 {
                apps.push((&hog, 1.0, scale));
            }
            solve_throttled(&apps, &link(), LAT, FREQ, 64)
        };
        let unthrottled = build(1.0);
        let throttled = build(4.0); // MBA 25%
        assert!(
            throttled.ipc[0] > unthrottled.ipc[0] * 1.05,
            "victim should gain: {} vs {}",
            throttled.ipc[0],
            unthrottled.ipc[0]
        );
        assert!(throttled.latency_mult < unthrottled.latency_mult);
    }

    #[test]
    fn iterations_bounded() {
        let hog = phase(0.6, 40.0, 4.0, MissCurve::flat(0.85));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 1.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.iterations <= MAX_EVALS);
        // The hybrid finder should do far better than bisection's ~40
        // rounds for a typical heavy interior root.
        assert!(e.iterations <= 30, "cold solve took {} rounds", e.iterations);
    }

    #[test]
    fn engine_matches_free_function_bitwise() {
        let hog = phase(0.6, 35.0, 4.0, MissCurve::flat(0.8));
        let quiet = phase(0.5, 1.0, 1.5, MissCurve::flat(0.1));
        let mut solver = engine();
        for ways in [0.5, 2.0, 10.0, 19.0] {
            solver.begin();
            solver.push(&hog, hog.curve.miss_ratio(ways), 1.0);
            for _ in 0..4 {
                solver.push(&hog, hog.curve.miss_ratio(1.0), 2.5);
            }
            solver.push(&quiet, quiet.curve.miss_ratio(ways), 1.0);
            let fast = solver.solve().clone();
            let mut inputs: Vec<(&Phase, f64, f64)> = vec![(&hog, ways, 1.0)];
            for _ in 0..4 {
                inputs.push((&hog, 1.0, 2.5));
            }
            inputs.push((&quiet, ways, 1.0));
            let reference = solve_throttled(&inputs, &link(), LAT, FREQ, 64);
            assert_bit_identical(&fast, &reference);
        }
    }

    #[test]
    fn memoized_solve_is_bit_identical_and_counted() {
        let hog = phase(0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let mut solver = engine();
        let run = |s: &mut EquilibriumSolver| {
            s.begin();
            for _ in 0..10 {
                s.push(&hog, hog.curve.miss_ratio(2.0), 1.5);
            }
            s.solve().clone()
        };
        let first = run(&mut solver);
        let evals_after_first = solver.stats().curve_evals;
        let second = run(&mut solver);
        assert_bit_identical(&first, &second);
        let stats = solver.stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.curve_evals, evals_after_first, "memo hit must not re-evaluate");
    }

    #[test]
    fn warm_start_is_bit_identical_to_cold() {
        // A drifting ways sequence keeps the root moving slightly, so the
        // warm path is exercised (the memo never hits).
        let hog = phase(0.6, 35.0, 4.0, MissCurve::parametric(0.2, 0.8, 3.0, 2.0));
        let mut warm = engine();
        for step in 0..40 {
            let ways = 0.5 + step as f64 * 0.11;
            warm.begin();
            for _ in 0..9 {
                warm.push(&hog, hog.curve.miss_ratio(ways), 1.0);
            }
            let fast = warm.solve().clone();
            let inputs: Vec<(&Phase, f64)> = (0..9).map(|_| (&hog, ways)).collect();
            let reference = solve(&inputs, &link(), LAT, FREQ, 64);
            assert_bit_identical(&fast, &reference);
        }
        let stats = warm.stats();
        assert!(stats.warm_solves >= 30, "warm path unused: {stats:?}");
        assert_eq!(stats.cache_hits, 0, "drifting ways must not hit the memo");
    }

    #[test]
    fn replayed_sequence_is_bit_identical_to_cold() {
        // A pseudo-random replay mixing repeats (memo hits), drifts (warm
        // solves) and endpoint cases, checked against fresh cold solves.
        let hog = phase(0.6, 35.0, 4.0, MissCurve::parametric(0.2, 0.8, 3.0, 2.0));
        let quiet = phase(0.5, 1.0, 1.5, MissCurve::flat(0.05));
        let mut fast = engine();
        let mut state = 0x5EED_D1CE_u64;
        let mut rand = move || {
            // xorshift64* — deterministic, no external crates.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let r = rand();
            let n = 1 + (r % 10) as usize;
            let ways = [0.11, 0.5, 2.0, 10.0, 19.0][(r >> 8) as usize % 5];
            let scale = [1.0, 1.5, 3.0][(r >> 16) as usize % 3];
            let heavy = (r >> 24) % 2 == 0;
            let p = if heavy { &hog } else { &quiet };
            fast.begin();
            for _ in 0..n {
                fast.push(p, p.curve.miss_ratio(ways), scale);
            }
            let got = fast.solve().clone();
            let inputs: Vec<(&Phase, f64, f64)> = (0..n).map(|_| (p, ways, scale)).collect();
            let reference = solve_throttled(&inputs, &link(), LAT, FREQ, 64);
            assert_bit_identical(&got, &reference);
        }
        let stats = fast.stats();
        assert!(stats.cache_hits > 0, "replay must hit the memo: {stats:?}");
    }

    #[test]
    fn repeated_configuration_has_high_hit_rate_and_few_rounds() {
        let hog = phase(0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let mut solver = engine();
        for _ in 0..100 {
            solver.begin();
            for _ in 0..10 {
                solver.push(&hog, hog.curve.miss_ratio(2.0), 1.0);
            }
            solver.solve();
        }
        let stats = solver.stats();
        assert!(stats.cache_hit_rate() > 0.5, "hit rate {}", stats.cache_hit_rate());
        assert!(
            stats.mean_evals_per_solve() <= 10.0,
            "mean rounds per solve {}",
            stats.mean_evals_per_solve()
        );
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SolverStats {
            solves: 2,
            cache_hits: 1,
            warm_solves: 0,
            cold_solves: 1,
            curve_evals: 9,
            fingerprint_skips: 0,
            evictions: 0,
        };
        let b = SolverStats {
            solves: 3,
            cache_hits: 0,
            warm_solves: 2,
            cold_solves: 1,
            curve_evals: 21,
            fingerprint_skips: 1,
            evictions: 4,
        };
        a.merge(&b);
        assert_eq!(a.solves, 5);
        assert_eq!(a.cache_hits, 1);
        assert_eq!(a.warm_solves, 2);
        assert_eq!(a.cold_solves, 2);
        assert_eq!(a.curve_evals, 30);
        assert_eq!(a.fingerprint_skips, 1);
        assert_eq!(a.evictions, 4);
        assert!((a.cache_hit_rate() - 0.2).abs() < 1e-12);
        assert!((a.fast_path_rate() - 0.4).abs() < 1e-12);
        assert!((a.mean_evals_per_solve() - 6.0).abs() < 1e-12);
        assert!((a.mean_evals_per_computed_solve() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn ratio_helpers_are_finite_on_empty_and_degenerate_runs() {
        // A run that never solved anything (a session aborted before its
        // first period, a bench with zero measured iterations) must report
        // 0.0 everywhere — never NaN from 0/0 — so JSON reports and the
        // perf gates' arithmetic stay well-defined.
        let empty = SolverStats::default();
        for rate in [
            empty.cache_hit_rate(),
            empty.fast_path_rate(),
            empty.mean_evals_per_solve(),
            empty.mean_evals_per_computed_solve(),
        ] {
            assert_eq!(rate, 0.0);
            assert!(rate.is_finite());
        }
        // Every request answered on the fast path: there are solves but no
        // computed ones, so the per-computed mean's denominator alone is 0.
        let all_fast = SolverStats {
            solves: 4,
            cache_hits: 3,
            fingerprint_skips: 1,
            ..SolverStats::default()
        };
        assert_eq!(all_fast.cache_hit_rate(), 0.75);
        assert_eq!(all_fast.fast_path_rate(), 1.0);
        assert_eq!(all_fast.mean_evals_per_solve(), 0.0);
        assert_eq!(all_fast.mean_evals_per_computed_solve(), 0.0);
        assert!(all_fast.mean_evals_per_computed_solve().is_finite());
    }

    #[test]
    fn note_hooks_feed_the_fast_path_accounting() {
        let mut s = engine();
        s.note_fingerprint_skip();
        s.note_fingerprint_skip();
        s.note_evictions(7);
        let stats = s.stats();
        assert_eq!(stats.solves, 2);
        assert_eq!(stats.fingerprint_skips, 2);
        assert_eq!(stats.evictions, 7);
        assert!((stats.fast_path_rate() - 1.0).abs() < 1e-12);
        assert_eq!(stats.curve_evals, 0, "skips never touch the curves");
    }
}
