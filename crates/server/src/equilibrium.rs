//! Fixed-point IPC ⇄ bandwidth equilibrium solver.
//!
//! IPC determines memory traffic; total traffic determines link latency;
//! latency determines IPC. The solver damps the latency multiplier until the
//! loop converges — the mechanism by which cache-starved BEs slow down a
//! bandwidth-sensitive HP (the paper's Key Observation 2).

use dicer_appmodel::Phase;
use dicer_membw::LinkModel;

/// Converged per-period operating point for a set of co-running phases.
#[derive(Debug, Clone, PartialEq)]
pub struct Equilibrium {
    /// Converged IPC per app (same order as the input).
    pub ipc: Vec<f64>,
    /// Offered traffic per app in Gbps.
    pub demand_gbps: Vec<f64>,
    /// Achieved traffic per app in Gbps (proportionally shared if the link
    /// is overcommitted).
    pub achieved_gbps: Vec<f64>,
    /// Total achieved traffic in Gbps.
    pub total_gbps: f64,
    /// Converged latency multiplier.
    pub latency_mult: f64,
    /// Iterations used.
    pub iterations: u32,
}

const MAX_ITER: u32 = 100;
const TOLERANCE: f64 = 1e-12;

/// Solves the equilibrium for apps running concurrently, where app `i`
/// executes `phases[i].0` with an effective allocation of `phases[i].1`
/// ways. `base_latency_cycles` is the unloaded memory latency in core
/// cycles; `freq_hz` and `line_bytes` size the traffic.
pub fn solve(
    phases: &[(&Phase, f64)],
    link: &LinkModel,
    base_latency_cycles: f64,
    freq_hz: f64,
    line_bytes: u32,
) -> Equilibrium {
    let with_scales: Vec<(&Phase, f64, f64)> =
        phases.iter().map(|(p, w)| (*p, *w, 1.0)).collect();
    solve_throttled(&with_scales, link, base_latency_cycles, freq_hz, line_bytes)
}

/// Like [`solve`], but each app additionally carries a *latency scale*
/// (`>= 1`) modelling an MBA throttle: a class programmed to level `L`
/// percent experiences its memory latency inflated by `100 / L`, which both
/// slows it down and shrinks the traffic it can offer — the delay-on-request
/// semantics of the real mechanism.
pub fn solve_throttled(
    phases: &[(&Phase, f64, f64)],
    link: &LinkModel,
    base_latency_cycles: f64,
    freq_hz: f64,
    line_bytes: u32,
) -> Equilibrium {
    debug_assert!(phases.iter().all(|(_, _, s)| *s >= 1.0), "latency scales must be >= 1");
    let n = phases.len();
    if n == 0 {
        return Equilibrium {
            ipc: vec![],
            demand_gbps: vec![],
            achieved_gbps: vec![],
            total_gbps: 0.0,
            latency_mult: 1.0,
            iterations: 0,
        };
    }

    let mut ipc = vec![0.0; n];
    let mut demands = vec![0.0; n];

    // Residual g(mult) = L(U(mult)) − mult. Offered demand falls as latency
    // rises and L is non-decreasing in utilisation, so g is strictly
    // decreasing: a unique root exists in [1, mult_max] whenever g(1) > 0.
    // Bisection is unconditionally stable where plain damped fixed-point
    // iteration can oscillate (the feedback slope is steep near the knee).
    let eval = |mult: f64, ipc: &mut [f64], demands: &mut [f64]| -> f64 {
        for (i, (phase, ways, scale)) in phases.iter().enumerate() {
            ipc[i] = phase.ipc(*ways, base_latency_cycles * mult * scale);
            demands[i] = phase.demand_gbps(ipc[i], *ways, freq_hz, line_bytes);
        }
        let offered: f64 = demands.iter().sum();
        link.latency_multiplier(offered / link.config().capacity_gbps) - mult
    };

    let cfg = link.config();
    let mult_max = link.latency_multiplier(cfg.max_utilisation);
    let mut lo = 1.0f64;
    let mut hi = mult_max;
    let mut mult = 1.0;
    let mut iterations = 1;
    if eval(1.0, &mut ipc, &mut demands) <= 0.0 {
        // Link unloaded at base latency: the trivial fixed point.
        mult = 1.0;
    } else if eval(mult_max, &mut ipc, &mut demands) >= 0.0 {
        // Demand exceeds the modelled range even at the latency cap.
        mult = mult_max;
        eval(mult, &mut ipc, &mut demands);
        iterations = 2;
    } else {
        for it in 1..=MAX_ITER {
            iterations = it;
            mult = 0.5 * (lo + hi);
            let g = eval(mult, &mut ipc, &mut demands);
            if g > 0.0 {
                lo = mult;
            } else {
                hi = mult;
            }
            if hi - lo < TOLERANCE {
                break;
            }
        }
        // Leave `ipc`/`demands` consistent with the returned multiplier.
        eval(mult, &mut ipc, &mut demands);
    }

    let outcome = link.share(&demands);
    Equilibrium {
        ipc,
        demand_gbps: demands,
        achieved_gbps: outcome.achieved_gbps,
        total_gbps: outcome.total_gbps,
        latency_mult: mult,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dicer_appmodel::MissCurve;
    use dicer_membw::LinkConfig;

    const FREQ: f64 = 2.2e9;
    const LAT: f64 = 198.0;

    fn phase(base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> Phase {
        Phase { insns: 1_000_000, base_cpi, apki, mlp, curve }
    }

    fn link() -> LinkModel {
        LinkModel::new(LinkConfig::default())
    }

    #[test]
    fn empty_input_is_trivial() {
        let e = solve(&[], &link(), LAT, FREQ, 64);
        assert_eq!(e.latency_mult, 1.0);
        assert_eq!(e.total_gbps, 0.0);
    }

    #[test]
    fn light_load_keeps_unit_latency() {
        let p = phase(0.5, 1.0, 1.5, MissCurve::flat(0.1));
        let e = solve(&[(&p, 10.0)], &link(), LAT, FREQ, 64);
        assert_eq!(e.latency_mult, 1.0);
        // IPC matches the closed form at base latency.
        assert!((e.ipc[0] - p.ipc(10.0, LAT)).abs() < 1e-9);
    }

    #[test]
    fn heavy_load_inflates_latency_and_reduces_ipc() {
        let hog = phase(0.6, 40.0, 4.2, MissCurve::flat(0.85));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 2.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.latency_mult > 1.2, "latency mult {}", e.latency_mult);
        assert!(e.ipc[0] < hog.ipc(2.0, LAT), "contended IPC must drop");
    }

    #[test]
    fn converges_to_self_consistent_point() {
        let hog = phase(0.6, 35.0, 4.0, MissCurve::flat(0.8));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 2.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        // Recompute by hand from the converged multiplier.
        let ipc = hog.ipc(2.0, LAT * e.latency_mult);
        assert!((ipc - e.ipc[0]).abs() < 1e-6);
        let offered: f64 = e.demand_gbps.iter().sum();
        let mult = link().latency_multiplier(offered / 68.3);
        assert!((mult - e.latency_mult).abs() < 1e-6, "fixed point violated");
    }

    #[test]
    fn achieved_never_exceeds_capacity() {
        let hog = phase(0.5, 45.0, 4.5, MissCurve::flat(0.9));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 1.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.total_gbps <= 68.3 + 1e-9);
    }

    #[test]
    fn victim_suffers_from_contention_it_did_not_create() {
        // A latency-sensitive app (low MLP) sharing the link with hogs.
        let victim = phase(0.7, 28.0, 4.0, MissCurve::parametric(0.45, 0.62, 1.3, 2.0));
        let hog = phase(0.65, 24.0, 2.4, MissCurve::parametric(0.07, 0.62, 1.2, 3.0));

        // Alone, with plenty of cache.
        let alone = solve(&[(&victim, 19.0)], &link(), LAT, FREQ, 64);
        // With nine cache-starved hogs.
        let mut apps: Vec<(&Phase, f64)> = vec![(&victim, 19.0)];
        for _ in 0..9 {
            apps.push((&hog, 0.11));
        }
        let contended = solve(&apps, &link(), LAT, FREQ, 64);
        let slowdown = alone.ipc[0] / contended.ipc[0];
        assert!(slowdown > 1.15, "bandwidth contention too weak: {slowdown}");
    }

    #[test]
    fn starved_bes_offer_less_when_granted_more_cache() {
        // Key Fig. 3 mechanism: granting the hogs cache REDUCES total traffic.
        let hog = phase(0.65, 24.0, 2.4, MissCurve::parametric(0.07, 0.62, 1.2, 3.0));
        let starved: Vec<(&Phase, f64)> = (0..9).map(|_| (&hog, 0.11)).collect();
        let granted: Vec<(&Phase, f64)> = (0..9).map(|_| (&hog, 2.0)).collect();
        let e_starved = solve(&starved, &link(), LAT, FREQ, 64);
        let e_granted = solve(&granted, &link(), LAT, FREQ, 64);
        let offered_starved: f64 = e_starved.demand_gbps.iter().sum();
        let offered_granted: f64 = e_granted.demand_gbps.iter().sum();
        assert!(
            offered_starved > offered_granted,
            "starving must raise traffic: {offered_starved} vs {offered_granted}"
        );
        // The DICER saturation threshold (50 Gbps) separates the two states.
        assert!(offered_starved > 50.0, "starved BEs must saturate: {offered_starved}");
        assert!(offered_granted < 50.0, "granted BEs must not saturate: {offered_granted}");
    }

    #[test]
    fn throttled_class_slows_down_and_offers_less() {
        let hog = phase(0.6, 30.0, 3.5, MissCurve::flat(0.8));
        let free = solve_throttled(&[(&hog, 2.0, 1.0)], &link(), LAT, FREQ, 64);
        let throttled = solve_throttled(&[(&hog, 2.0, 2.0)], &link(), LAT, FREQ, 64);
        assert!(throttled.ipc[0] < free.ipc[0]);
        assert!(throttled.demand_gbps[0] < free.demand_gbps[0]);
    }

    #[test]
    fn throttling_bes_relieves_the_victim() {
        // MBA's raison d'être: delaying the hogs' requests lowers link
        // utilisation, so the unthrottled victim speeds up.
        let victim = phase(0.7, 28.0, 4.0, MissCurve::flat(0.5));
        let hog = phase(0.6, 35.0, 4.0, MissCurve::flat(0.8));
        let build = |scale: f64| {
            let mut apps: Vec<(&Phase, f64, f64)> = vec![(&victim, 10.0, 1.0)];
            for _ in 0..9 {
                apps.push((&hog, 1.0, scale));
            }
            solve_throttled(&apps, &link(), LAT, FREQ, 64)
        };
        let unthrottled = build(1.0);
        let throttled = build(4.0); // MBA 25%
        assert!(
            throttled.ipc[0] > unthrottled.ipc[0] * 1.05,
            "victim should gain: {} vs {}",
            throttled.ipc[0],
            unthrottled.ipc[0]
        );
        assert!(throttled.latency_mult < unthrottled.latency_mult);
    }

    #[test]
    fn iterations_bounded() {
        let hog = phase(0.6, 40.0, 4.0, MissCurve::flat(0.85));
        let apps: Vec<(&Phase, f64)> = (0..10).map(|_| (&hog, 1.0)).collect();
        let e = solve(&apps, &link(), LAT, FREQ, 64);
        assert!(e.iterations <= MAX_ITER);
    }
}
