//! Discrete-time multicore server simulator.
//!
//! Stands in for the paper's Intel Xeon E5-2630 v4 testbed (Table 1):
//! 10 cores at 2.2 GHz sharing a 25 MB 20-way LLC and a 68.3 Gbps memory
//! link. The simulator advances in monitoring periods of `T` seconds and
//! exposes exactly the observables DICER uses on real hardware — per-app
//! IPC, per-app memory bandwidth (MBM), LLC occupancy (CMT) — plus the
//! CAT-shaped actuation surface ([`dicer_rdt::PartitionController`]).
//!
//! Per period, the simulator solves a **fixed-point equilibrium** between
//! three mutually dependent quantities:
//!
//! 1. each app's *effective cache share* — its CAT partition if isolated, or
//!    a miss-pressure-proportional share of its group's ways when the group
//!    is shared ([`contention`]);
//! 2. each app's IPC, via the linear CPI model
//!    `CPI = base + (APKI/1000) · miss_ratio(ways) · latency / MLP`;
//! 3. the memory-link latency, which inflates with total offered traffic
//!    ([`dicer_membw::LinkModel`]) — the feedback loop that makes
//!    Cache-Takeover *hurt* bandwidth-sensitive HPs (Key Observation 2).
//!
//! Phase boundaries and application completion/restart (the paper restarts
//! every application until all have finished at least once) are handled at
//! exact sub-period times.
//!
//! The equilibrium is found by a reusable [`EquilibriumSolver`] engine —
//! hybrid root finding, warm starts, and per-run memoization, all
//! bit-transparent with respect to a cold solve (see [`equilibrium`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod contention;
pub mod equilibrium;
pub mod sim;
pub mod solo;

pub use config::ServerConfig;
pub use equilibrium::{Equilibrium, EquilibriumSolver, SolverStats};
pub use sim::{AppInstance, RunProgress, Server};
pub use solo::SoloProfile;
