//! Server configuration (Table 1 of the paper).

use dicer_cachesim::CacheConfig;
use dicer_membw::LinkConfig;
use serde::{Deserialize, Serialize};

/// Full platform configuration. [`ServerConfig::table1`] reproduces the
/// paper's evaluation machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerConfig {
    /// Cores available for pinning applications.
    pub n_cores: u32,
    /// Core frequency in Hz.
    pub freq_hz: f64,
    /// LLC geometry.
    pub cache: CacheConfig,
    /// Memory-link model parameters.
    pub link: LinkConfig,
    /// Monitoring-period length `T` in seconds.
    pub period_s: f64,
}

impl ServerConfig {
    /// The Intel Xeon E5-2630 v4 configuration from Table 1: 10 cores at
    /// 2.2 GHz, 25 MB 20-way LLC, 68.3 Gbps memory link, `T = 1 s`.
    pub fn table1() -> Self {
        Self {
            n_cores: 10,
            freq_hz: 2.2e9,
            cache: CacheConfig::default(),
            link: LinkConfig::default(),
            period_s: 1.0,
        }
    }

    /// Unloaded memory latency expressed in core cycles.
    pub fn base_latency_cycles(&self) -> f64 {
        self.link.base_latency_ns * 1e-9 * self.freq_hz
    }

    /// Validates all nested configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_cores < 2 {
            return Err(format!("need >= 2 cores for consolidation, got {}", self.n_cores));
        }
        if !self.freq_hz.is_finite() || self.freq_hz <= 0.0 {
            return Err(format!("frequency must be positive: {}", self.freq_hz));
        }
        if !self.period_s.is_finite() || self.period_s <= 0.0 {
            return Err(format!("period must be positive: {}", self.period_s));
        }
        self.cache.validate()?;
        self.link.validate()
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_is_valid_and_matches_paper() {
        let c = ServerConfig::table1();
        c.validate().unwrap();
        assert_eq!(c.n_cores, 10);
        assert_eq!(c.cache.ways, 20);
        assert_eq!(c.cache.size_bytes, 25 * 1024 * 1024);
        assert!((c.link.capacity_gbps - 68.3).abs() < 1e-12);
        assert_eq!(c.period_s, 1.0);
    }

    #[test]
    fn base_latency_in_cycles() {
        let c = ServerConfig::table1();
        // 90 ns at 2.2 GHz = 198 cycles.
        assert!((c.base_latency_cycles() - 198.0).abs() < 1e-9);
    }

    #[test]
    fn single_core_rejected() {
        let c = ServerConfig { n_cores: 1, ..ServerConfig::table1() };
        assert!(c.validate().is_err());
    }
}
