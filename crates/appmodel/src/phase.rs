//! Phases and application profiles.

use crate::{archetype::Archetype, curve::MissCurve};
use serde::{Deserialize, Serialize};

/// One execution phase of an application (Sherwood-style program phases,
/// reference 40 of the paper). Within a phase the behaviour is stationary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Phase {
    /// Instructions retired in this phase.
    pub insns: u64,
    /// Cycles per instruction assuming every LLC access hits.
    pub base_cpi: f64,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Memory-level parallelism: average number of overlapping outstanding
    /// misses. Streaming codes sustain 3–4; dependent pointer chases ~1.
    /// Divides the *exposed* miss latency but not the traffic generated.
    pub mlp: f64,
    /// Miss ratio as a function of allocated ways.
    pub curve: MissCurve,
}

impl Phase {
    /// CPI under the given allocation and effective memory latency, per the
    /// standard linear decomposition
    /// `CPI = base + (APKI / 1000) · miss_ratio(ways) · latency_cycles / MLP`.
    pub fn cpi(&self, ways: f64, mem_latency_cycles: f64) -> f64 {
        self.base_cpi
            + self.apki / 1000.0 * self.curve.miss_ratio(ways) * mem_latency_cycles / self.mlp
    }

    /// IPC under the given allocation and memory latency.
    pub fn ipc(&self, ways: f64, mem_latency_cycles: f64) -> f64 {
        1.0 / self.cpi(ways, mem_latency_cycles)
    }

    /// LLC misses per second at a given IPC and core frequency.
    pub fn misses_per_second(&self, ipc: f64, ways: f64, freq_hz: f64) -> f64 {
        ipc * freq_hz * self.apki / 1000.0 * self.curve.miss_ratio(ways)
    }

    /// Memory traffic in Gbps at a given IPC, allocation, frequency and line
    /// size (each miss moves one line).
    pub fn demand_gbps(&self, ipc: f64, ways: f64, freq_hz: f64, line_bytes: u32) -> f64 {
        self.misses_per_second(ipc, ways, freq_hz) * line_bytes as f64 * 8.0 / 1e9
    }

    /// Validates phase parameters.
    pub fn validate(&self) -> Result<(), String> {
        if self.insns == 0 {
            return Err("phase must retire at least one instruction".into());
        }
        if !self.base_cpi.is_finite() || self.base_cpi <= 0.0 {
            return Err(format!("base_cpi must be positive: {}", self.base_cpi));
        }
        if !self.apki.is_finite() || self.apki < 0.0 {
            return Err(format!("apki must be non-negative: {}", self.apki));
        }
        if !self.mlp.is_finite() || self.mlp < 1.0 {
            return Err(format!("mlp must be >= 1: {}", self.mlp));
        }
        self.curve.validate()
    }
}

/// A complete synthetic application: named, typed, phased.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Workload name, e.g. `"milc1"` or `"gcc_base4"`.
    pub name: String,
    /// Behaviour archetype this profile was drawn from.
    pub archetype: Archetype,
    /// Phase sequence, executed in order and then restarted.
    pub phases: Vec<Phase>,
}

impl AppProfile {
    /// Builds and validates a profile.
    pub fn new(name: impl Into<String>, archetype: Archetype, phases: Vec<Phase>) -> Self {
        let p = Self { name: name.into(), archetype, phases };
        if let Err(e) = p.validate() {
            panic!("invalid AppProfile {}: {e}", p.name);
        }
        p
    }

    /// Validates all phases.
    pub fn validate(&self) -> Result<(), String> {
        if self.phases.is_empty() {
            return Err("profile needs at least one phase".into());
        }
        for (i, ph) in self.phases.iter().enumerate() {
            ph.validate().map_err(|e| format!("phase {i}: {e}"))?;
        }
        Ok(())
    }

    /// Total instructions in one complete execution.
    pub fn total_insns(&self) -> u64 {
        self.phases.iter().map(|p| p.insns).sum()
    }

    /// Instruction-weighted mean APKI — a scalar memory-intensity summary.
    pub fn mean_apki(&self) -> f64 {
        let total = self.total_insns() as f64;
        self.phases.iter().map(|p| p.apki * p.insns as f64).sum::<f64>() / total
    }

    /// Solo execution time in seconds on an otherwise idle machine with the
    /// full LLC (`total_ways`) and unloaded memory latency.
    pub fn solo_time_s(&self, total_ways: u32, mem_latency_cycles: f64, freq_hz: f64) -> f64 {
        self.phases
            .iter()
            .map(|p| p.insns as f64 * p.cpi(total_ways as f64, mem_latency_cycles) / freq_hz)
            .sum()
    }

    /// Instruction-weighted solo IPC with a fixed way allocation.
    pub fn solo_ipc(&self, ways: f64, mem_latency_cycles: f64) -> f64 {
        let total = self.total_insns() as f64;
        let cycles: f64 =
            self.phases.iter().map(|p| p.insns as f64 * p.cpi(ways, mem_latency_cycles)).sum();
        total / cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase(insns: u64, base_cpi: f64, apki: f64, curve: MissCurve) -> Phase {
        Phase { insns, base_cpi, apki, mlp: 1.0, curve }
    }

    #[test]
    fn cpi_decomposition() {
        let p = phase(1000, 0.5, 10.0, MissCurve::flat(0.5));
        // CPI = 0.5 + 0.01 * 0.5 * 200 = 1.5
        assert!((p.cpi(5.0, 200.0) - 1.5).abs() < 1e-12);
        assert!((p.ipc(5.0, 200.0) - 1.0 / 1.5).abs() < 1e-12);
    }

    #[test]
    fn more_ways_never_slower() {
        let p = phase(1, 0.6, 15.0, MissCurve::parametric(0.05, 0.7, 4.0, 2.0));
        let mut prev = f64::INFINITY;
        for w in 1..=20 {
            let c = p.cpi(w as f64, 200.0);
            assert!(c <= prev + 1e-12);
            prev = c;
        }
    }

    #[test]
    fn demand_scales_with_ipc_and_miss_ratio() {
        let p = phase(1, 0.5, 20.0, MissCurve::flat(0.5));
        let d = p.demand_gbps(1.0, 4.0, 2.2e9, 64);
        // 1.0 * 2.2e9 * 0.02 * 0.5 = 2.2e7 misses/s * 512 bits = 11.264 Gbps
        assert!((d - 11.264).abs() < 1e-6);
        assert!(p.demand_gbps(0.5, 4.0, 2.2e9, 64) < d);
    }

    #[test]
    fn profile_totals_and_means() {
        let a = AppProfile::new(
            "t",
            Archetype::CacheFriendly,
            vec![
                phase(1000, 0.5, 10.0, MissCurve::flat(0.2)),
                phase(3000, 0.5, 30.0, MissCurve::flat(0.2)),
            ],
        );
        assert_eq!(a.total_insns(), 4000);
        assert!((a.mean_apki() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn solo_time_adds_phase_times() {
        let a = AppProfile::new(
            "t",
            Archetype::ComputeBound,
            vec![phase(2_200_000_000, 1.0, 0.0, MissCurve::flat(0.0))],
        );
        // 2.2e9 insns at CPI 1 on 2.2 GHz = 1 second.
        assert!((a.solo_time_s(20, 200.0, 2.2e9) - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn empty_profile_rejected() {
        AppProfile::new("bad", Archetype::ComputeBound, vec![]);
    }

    #[test]
    #[should_panic]
    fn zero_insn_phase_rejected() {
        AppProfile::new(
            "bad",
            Archetype::ComputeBound,
            vec![phase(0, 1.0, 1.0, MissCurve::flat(0.1))],
        );
    }

    #[test]
    fn mlp_hides_latency_but_not_traffic() {
        let slow = phase(1, 0.5, 20.0, MissCurve::flat(0.5));
        let fast = Phase { mlp: 4.0, ..slow.clone() };
        assert!(fast.cpi(4.0, 200.0) < slow.cpi(4.0, 200.0));
        // At equal IPC the generated traffic is identical.
        let d_slow = slow.demand_gbps(1.0, 4.0, 2.2e9, 64);
        let d_fast = fast.demand_gbps(1.0, 4.0, 2.2e9, 64);
        assert_eq!(d_slow, d_fast);
        // But the higher IPC the MLP enables yields more traffic per second.
        let ipc_fast = fast.ipc(4.0, 200.0);
        let ipc_slow = slow.ipc(4.0, 200.0);
        assert!(fast.demand_gbps(ipc_fast, 4.0, 2.2e9, 64) > slow.demand_gbps(ipc_slow, 4.0, 2.2e9, 64));
    }

    #[test]
    #[should_panic]
    fn sub_unit_mlp_rejected() {
        AppProfile::new(
            "bad",
            Archetype::ComputeBound,
            vec![Phase { insns: 1, base_cpi: 1.0, apki: 1.0, mlp: 0.5, curve: MissCurve::flat(0.1) }],
        );
    }

    #[test]
    fn solo_ipc_weighted_by_instructions() {
        let a = AppProfile::new(
            "t",
            Archetype::CacheFriendly,
            vec![
                phase(1000, 1.0, 0.0, MissCurve::flat(0.0)), // CPI 1
                phase(1000, 3.0, 0.0, MissCurve::flat(0.0)), // CPI 3
            ],
        );
        // 2000 insns / 4000 cycles.
        assert!((a.solo_ipc(20.0, 200.0) - 0.5).abs() < 1e-12);
    }
}
