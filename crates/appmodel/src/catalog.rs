//! The 59-entry workload catalog mirroring the paper's evaluation set.
//!
//! The paper uses 25 SPEC CPU 2006 applications (8 of them with multiple
//! inputs) plus 9 serial PARSEC 3.0 applications, for 59 distinct workloads
//! in total. This module reconstructs that set as named synthetic profiles:
//!
//! * multi-input SPEC: `gcc_base1..9`, `bzip21..6`, `gobmk1..4`,
//!   `h264ref1..3`, `hmmer1..3`, `perlbench1..3`, `soplex1..3`, `astar1..2`
//!   (33 instances from 8 applications);
//! * single-input SPEC: 17 applications (`milc1`, `lbm1`, `mcf1`, …);
//! * PARSEC: 9 applications (`blackscholes1`, …, `vips1`).
//!
//! Parameters per family were tuned against the paper's motivating
//! observations (§2): compute-bound and streaming codes reach their peak
//! performance with very few ways (Fig. 2), `gcc`-style BEs squeezed into
//! one way generate enough miss traffic to saturate a 68.3 Gbps link when
//! nine of them run together (Fig. 3), and `milc` is bandwidth-sensitive but
//! cache-insensitive. Per-instance jitter is derived from a ChaCha8 stream
//! seeded by the instance name, so the catalog is identical on every run.

use crate::{archetype::Archetype, curve::MissCurve, phase::Phase, AppProfile};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeMap;

/// Nominal core frequency used to size instruction counts (Table 1).
pub const FREQ_HZ: f64 = 2.2e9;
/// Unloaded memory latency in core cycles used to size instruction counts.
pub const BASE_MEM_LATENCY_CYCLES: f64 = 198.0;
/// LLC associativity of the reference machine.
pub const TOTAL_WAYS: u32 = 20;

/// Named, deterministic collection of [`AppProfile`]s.
#[derive(Debug, Clone)]
pub struct Catalog {
    apps: BTreeMap<String, AppProfile>,
}

/// Family descriptor used to stamp out catalog instances.
struct Family {
    name: &'static str,
    /// Number of instances (inputs); names get a 1-based suffix.
    inputs: u32,
    archetype: Archetype,
    base_cpi: f64,
    apki: f64,
    floor: f64,
    ceil: f64,
    w_half: f64,
    steepness: f64,
    /// Memory-level parallelism (overlapping outstanding misses).
    mlp: f64,
    /// Target solo runtime in seconds (jittered per instance).
    solo_s: f64,
    /// Number of phases (>1 exercises DICER's phase-change detector).
    phases: u32,
}

const FAMILIES: &[Family] = &[
    // --- Streaming / bandwidth-bound (8 workloads) -----------------------
    // milc is the paper's Fig. 3 example: bandwidth-sensitive, nearly
    // cache-insensitive past ~2 ways.
    Family { name: "milc", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.70, apki: 28.0, floor: 0.45, ceil: 0.62, w_half: 1.3, steepness: 2.0, mlp: 4.0, solo_s: 175.0, phases: 1 },
    Family { name: "lbm", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.60, apki: 40.0, floor: 0.80, ceil: 0.86, w_half: 1.5, steepness: 2.0, mlp: 4.2, solo_s: 200.0, phases: 1 },
    Family { name: "libquantum", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.55, apki: 34.0, floor: 0.72, ceil: 0.80, w_half: 1.5, steepness: 2.0, mlp: 4.0, solo_s: 187.5, phases: 1 },
    Family { name: "bwaves", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.62, apki: 30.0, floor: 0.55, ceil: 0.70, w_half: 2.0, steepness: 2.0, mlp: 3.8, solo_s: 212.5, phases: 1 },
    Family { name: "GemsFDTD", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.65, apki: 32.0, floor: 0.50, ceil: 0.72, w_half: 2.2, steepness: 2.0, mlp: 3.6, solo_s: 200.0, phases: 2 },
    Family { name: "leslie3d", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.62, apki: 26.0, floor: 0.50, ceil: 0.64, w_half: 1.8, steepness: 2.0, mlp: 3.6, solo_s: 187.5, phases: 1 },
    Family { name: "zeusmp", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.70, apki: 22.0, floor: 0.45, ceil: 0.58, w_half: 1.8, steepness: 2.0, mlp: 3.2, solo_s: 175.0, phases: 2 },
    Family { name: "streamcluster", inputs: 1, archetype: Archetype::Streaming, base_cpi: 0.52, apki: 30.0, floor: 0.75, ceil: 0.82, w_half: 1.5, steepness: 2.0, mlp: 3.8, solo_s: 162.5, phases: 1 },
    // --- Cache-sensitive (10 workloads) -----------------------------------
    Family { name: "mcf", inputs: 1, archetype: Archetype::CacheSensitive, base_cpi: 0.95, apki: 22.0, floor: 0.08, ceil: 0.75, w_half: 10.0, steepness: 3.5, mlp: 1.1, solo_s: 225.0, phases: 1 },
    Family { name: "omnetpp", inputs: 1, archetype: Archetype::CacheSensitive, base_cpi: 0.80, apki: 16.0, floor: 0.06, ceil: 0.70, w_half: 8.0, steepness: 3.5, mlp: 1.2, solo_s: 200.0, phases: 1 },
    Family { name: "Xalan", inputs: 1, archetype: Archetype::CacheSensitive, base_cpi: 0.75, apki: 14.0, floor: 0.05, ceil: 0.65, w_half: 7.0, steepness: 3.5, mlp: 1.3, solo_s: 187.5, phases: 2 },
    Family { name: "soplex", inputs: 3, archetype: Archetype::CacheSensitive, base_cpi: 0.85, apki: 18.0, floor: 0.07, ceil: 0.60, w_half: 6.0, steepness: 3.5, mlp: 1.4, solo_s: 175.0, phases: 1 },
    Family { name: "astar", inputs: 2, archetype: Archetype::CacheSensitive, base_cpi: 0.90, apki: 13.0, floor: 0.06, ceil: 0.55, w_half: 6.5, steepness: 3.5, mlp: 1.2, solo_s: 162.5, phases: 1 },
    Family { name: "sphinx", inputs: 1, archetype: Archetype::CacheSensitive, base_cpi: 0.78, apki: 12.0, floor: 0.05, ceil: 0.55, w_half: 5.5, steepness: 3.5, mlp: 1.4, solo_s: 175.0, phases: 2 },
    Family { name: "canneal", inputs: 1, archetype: Archetype::CacheSensitive, base_cpi: 0.88, apki: 15.0, floor: 0.10, ceil: 0.60, w_half: 9.0, steepness: 3.5, mlp: 1.1, solo_s: 187.5, phases: 1 },
    // --- Cache-friendly / moderate (32 workloads) -------------------------
    // gcc is the paper's Fig. 3 BE: bad in one way, fine past two.
    Family { name: "gcc_base", inputs: 9, archetype: Archetype::CacheFriendly, base_cpi: 0.65, apki: 24.0, floor: 0.07, ceil: 0.62, w_half: 1.0, steepness: 3.5, mlp: 3.2, solo_s: 137.5, phases: 1 },
    Family { name: "bzip2", inputs: 6, archetype: Archetype::CacheFriendly, base_cpi: 0.70, apki: 14.0, floor: 0.06, ceil: 0.48, w_half: 1.0, steepness: 3.5, mlp: 3.0, solo_s: 150.0, phases: 1 },
    Family { name: "gobmk", inputs: 4, archetype: Archetype::CacheFriendly, base_cpi: 0.85, apki: 9.0, floor: 0.04, ceil: 0.40, w_half: 0.9, steepness: 3.5, mlp: 2.6, solo_s: 137.5, phases: 1 },
    Family { name: "h264ref", inputs: 3, archetype: Archetype::CacheFriendly, base_cpi: 0.65, apki: 11.0, floor: 0.05, ceil: 0.42, w_half: 1.0, steepness: 3.5, mlp: 3.0, solo_s: 150.0, phases: 1 },
    Family { name: "hmmer", inputs: 3, archetype: Archetype::CacheFriendly, base_cpi: 0.60, apki: 8.0, floor: 0.04, ceil: 0.35, w_half: 0.9, steepness: 3.5, mlp: 2.8, solo_s: 137.5, phases: 1 },
    Family { name: "perlbench", inputs: 3, archetype: Archetype::CacheFriendly, base_cpi: 0.72, apki: 12.0, floor: 0.05, ceil: 0.45, w_half: 1.1, steepness: 3.5, mlp: 2.6, solo_s: 150.0, phases: 2 },
    Family { name: "dedup", inputs: 1, archetype: Archetype::CacheFriendly, base_cpi: 0.68, apki: 13.0, floor: 0.06, ceil: 0.44, w_half: 1.1, steepness: 3.5, mlp: 3.0, solo_s: 125.0, phases: 1 },
    Family { name: "bodytrack", inputs: 1, archetype: Archetype::CacheFriendly, base_cpi: 0.66, apki: 10.0, floor: 0.05, ceil: 0.38, w_half: 1.0, steepness: 3.5, mlp: 2.8, solo_s: 137.5, phases: 1 },
    Family { name: "ferret", inputs: 1, archetype: Archetype::CacheFriendly, base_cpi: 0.74, apki: 12.0, floor: 0.06, ceil: 0.42, w_half: 1.1, steepness: 3.5, mlp: 2.8, solo_s: 137.5, phases: 1 },
    Family { name: "vips", inputs: 1, archetype: Archetype::CacheFriendly, base_cpi: 0.70, apki: 11.0, floor: 0.05, ceil: 0.40, w_half: 1.0, steepness: 3.5, mlp: 2.9, solo_s: 125.0, phases: 1 },
    // --- Compute-bound (9 workloads) ---------------------------------------
    Family { name: "namd", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.55, apki: 1.5, floor: 0.08, ceil: 0.18, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 175.0, phases: 1 },
    Family { name: "povray", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.60, apki: 1.0, floor: 0.06, ceil: 0.15, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 162.5, phases: 1 },
    Family { name: "gromacs", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.58, apki: 2.0, floor: 0.10, ceil: 0.20, w_half: 1.0, steepness: 2.0, mlp: 1.6, solo_s: 162.5, phases: 1 },
    Family { name: "calculix", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.52, apki: 1.8, floor: 0.08, ceil: 0.18, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 175.0, phases: 1 },
    Family { name: "sjeng", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.80, apki: 2.5, floor: 0.10, ceil: 0.25, w_half: 1.0, steepness: 2.0, mlp: 1.4, solo_s: 150.0, phases: 1 },
    Family { name: "tonto", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.62, apki: 2.2, floor: 0.09, ceil: 0.20, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 150.0, phases: 1 },
    Family { name: "blackscholes", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.50, apki: 0.8, floor: 0.05, ceil: 0.12, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 112.5, phases: 1 },
    Family { name: "swaptions", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.48, apki: 0.6, floor: 0.05, ceil: 0.10, w_half: 1.0, steepness: 2.0, mlp: 1.5, solo_s: 112.5, phases: 1 },
    Family { name: "fluidanimate", inputs: 1, archetype: Archetype::ComputeBound, base_cpi: 0.56, apki: 2.8, floor: 0.12, ceil: 0.24, w_half: 1.0, steepness: 2.0, mlp: 1.6, solo_s: 125.0, phases: 1 },
];

/// Stable 64-bit hash of a name (FNV-1a), used to seed per-instance jitter.
fn name_seed(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

fn jitter(rng: &mut ChaCha8Rng, base: f64, rel: f64) -> f64 {
    base * (1.0 + rng.gen_range(-rel..=rel))
}

fn build_instance(f: &Family, input: u32) -> AppProfile {
    let name = if f.inputs == 1 {
        format!("{}1", f.name)
    } else {
        format!("{}{}", f.name, input)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(name_seed(&name));

    let base_cpi = jitter(&mut rng, f.base_cpi, 0.08);
    let apki = jitter(&mut rng, f.apki, 0.10);
    let w_half = jitter(&mut rng, f.w_half, 0.12).max(0.3);
    let ceil = jitter(&mut rng, f.ceil, 0.06).clamp(0.0, 1.0);
    let floor = jitter(&mut rng, f.floor, 0.06).clamp(0.0, ceil);
    let solo_s = jitter(&mut rng, f.solo_s, 0.15);

    let mlp = jitter(&mut rng, f.mlp, 0.08).max(1.0);
    let curve = MissCurve::parametric(floor, ceil, w_half, f.steepness);
    // Size the instruction budget so the solo run takes ~solo_s seconds.
    let cpi_full = base_cpi
        + apki / 1000.0 * curve.miss_ratio(TOTAL_WAYS as f64) * BASE_MEM_LATENCY_CYCLES / mlp;
    let total_insns = (solo_s * FREQ_HZ / cpi_full) as u64;

    let phases = if f.phases <= 1 {
        vec![Phase { insns: total_insns, base_cpi, apki, mlp, curve }]
    } else {
        // Multi-phase: a second phase with noticeably higher memory traffic
        // (paper Eq. 2 detects bandwidth jumps > 30 %), split 60/40.
        let hot_apki = apki * 1.6;
        let hot_curve = MissCurve::parametric(
            (floor * 1.3).min(ceil),
            (ceil * 1.15).min(1.0),
            w_half * 1.5,
            f.steepness,
        );
        vec![
            Phase { insns: total_insns * 3 / 5, base_cpi, apki, mlp, curve },
            Phase {
                insns: total_insns * 2 / 5,
                base_cpi,
                apki: hot_apki,
                mlp: mlp * 1.5,
                curve: hot_curve,
            },
        ]
    };

    AppProfile::new(name, f.archetype, phases)
}

impl Catalog {
    /// Builds the full 59-workload catalog used throughout the evaluation.
    pub fn paper() -> Self {
        let mut apps = BTreeMap::new();
        for f in FAMILIES {
            for input in 1..=f.inputs {
                let p = build_instance(f, input);
                apps.insert(p.name.clone(), p);
            }
        }
        Self { apps }
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.apps.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    /// Looks up a workload by name (e.g. `"milc1"`, `"gcc_base4"`).
    pub fn get(&self, name: &str) -> Option<&AppProfile> {
        self.apps.get(name)
    }

    /// All workload names in deterministic (lexicographic) order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.apps.keys().map(|s| s.as_str())
    }

    /// All profiles in deterministic order.
    pub fn profiles(&self) -> impl Iterator<Item = &AppProfile> {
        self.apps.values()
    }

    /// Profiles of a given archetype.
    pub fn by_archetype(&self, a: Archetype) -> Vec<&AppProfile> {
        self.apps.values().filter(|p| p.archetype == a).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_exactly_59_workloads() {
        assert_eq!(Catalog::paper().len(), 59);
    }

    #[test]
    fn catalog_is_deterministic() {
        let a = Catalog::paper();
        let b = Catalog::paper();
        for (x, y) in a.profiles().zip(b.profiles()) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn multi_input_families_present() {
        let c = Catalog::paper();
        for n in ["gcc_base1", "gcc_base9", "bzip21", "bzip26", "gobmk4", "h264ref3", "hmmer3", "perlbench3", "soplex3", "astar2"] {
            assert!(c.get(n).is_some(), "missing {n}");
        }
        assert!(c.get("gcc_base10").is_none());
    }

    #[test]
    fn paper_named_singletons_present() {
        let c = Catalog::paper();
        for n in ["milc1", "lbm1", "mcf1", "omnetpp1", "Xalan1", "GemsFDTD1", "namd1", "blackscholes1", "streamcluster1", "vips1"] {
            assert!(c.get(n).is_some(), "missing {n}");
        }
    }

    #[test]
    fn archetype_counts_match_design() {
        let c = Catalog::paper();
        assert_eq!(c.by_archetype(Archetype::Streaming).len(), 8);
        assert_eq!(c.by_archetype(Archetype::CacheSensitive).len(), 10);
        assert_eq!(c.by_archetype(Archetype::CacheFriendly).len(), 32);
        assert_eq!(c.by_archetype(Archetype::ComputeBound).len(), 9);
    }

    #[test]
    fn solo_times_land_in_simulation_friendly_band() {
        let c = Catalog::paper();
        for p in c.profiles() {
            let t = p.solo_time_s(TOTAL_WAYS, BASE_MEM_LATENCY_CYCLES, FREQ_HZ);
            assert!((60.0..400.0).contains(&t), "{}: solo time {t}", p.name);
        }
    }

    #[test]
    fn instances_of_a_family_differ_but_resemble() {
        let c = Catalog::paper();
        let g1 = c.get("gcc_base1").unwrap();
        let g2 = c.get("gcc_base2").unwrap();
        assert_ne!(g1.phases, g2.phases, "jitter must distinguish inputs");
        let a1 = g1.mean_apki();
        let a2 = g2.mean_apki();
        assert!((a1 - a2).abs() / a1 < 0.35, "inputs should stay in-family");
    }

    #[test]
    fn milc_is_bandwidth_heavy_and_cache_insensitive() {
        let c = Catalog::paper();
        let milc = c.get("milc1").unwrap();
        let ph = &milc.phases[0];
        // Nearly flat curve past 2 ways…
        let m2 = ph.curve.miss_ratio(2.0);
        let m20 = ph.curve.miss_ratio(20.0);
        assert!(m2 - m20 < 0.12, "milc should be cache-insensitive: {m2} vs {m20}");
        // …and a heavy solo bandwidth footprint.
        let ipc = ph.ipc(20.0, BASE_MEM_LATENCY_CYCLES);
        let d = ph.demand_gbps(ipc, 20.0, FREQ_HZ, 64);
        assert!(d > 3.0, "milc solo demand too small: {d} Gbps");
    }

    #[test]
    fn nine_starved_gcc_saturate_the_link() {
        // The Fig. 3 mechanism: 9 gcc BEs in ~1/9 way each must offer more
        // than the 50 Gbps saturation threshold.
        let c = Catalog::paper();
        let mut total = 0.0;
        let gcc = c.get("gcc_base1").unwrap();
        let ph = &gcc.phases[0];
        for _ in 0..9 {
            let ways = 1.0 / 9.0;
            let ipc = ph.ipc(ways, BASE_MEM_LATENCY_CYCLES);
            total += ph.demand_gbps(ipc, ways, FREQ_HZ, 64);
        }
        assert!(total > 50.0, "9 starved gcc offer only {total} Gbps");
    }

    #[test]
    fn compute_bound_apps_insensitive_to_allocation() {
        let c = Catalog::paper();
        for p in c.by_archetype(Archetype::ComputeBound) {
            let ipc1 = p.solo_ipc(1.0, BASE_MEM_LATENCY_CYCLES);
            let ipc20 = p.solo_ipc(20.0, BASE_MEM_LATENCY_CYCLES);
            assert!(ipc1 / ipc20 > 0.90, "{} too sensitive: {} vs {}", p.name, ipc1, ipc20);
        }
    }

    #[test]
    fn cache_sensitive_apps_reward_more_ways() {
        let c = Catalog::paper();
        for p in c.by_archetype(Archetype::CacheSensitive) {
            let ipc2 = p.solo_ipc(2.0, BASE_MEM_LATENCY_CYCLES);
            let ipc20 = p.solo_ipc(20.0, BASE_MEM_LATENCY_CYCLES);
            assert!(ipc20 / ipc2 > 1.3, "{} not sensitive enough: {} vs {}", p.name, ipc2, ipc20);
        }
    }

    #[test]
    fn phased_apps_have_bandwidth_jump() {
        let c = Catalog::paper();
        let gems = c.get("GemsFDTD1").unwrap();
        assert_eq!(gems.phases.len(), 2);
        let p0 = &gems.phases[0];
        let p1 = &gems.phases[1];
        let ipc0 = p0.ipc(10.0, BASE_MEM_LATENCY_CYCLES);
        let ipc1 = p1.ipc(10.0, BASE_MEM_LATENCY_CYCLES);
        let d0 = p0.demand_gbps(ipc0, 10.0, FREQ_HZ, 64);
        let d1 = p1.demand_gbps(ipc1, 10.0, FREQ_HZ, 64);
        assert!(d1 > d0 * 1.3, "phase-2 bandwidth jump too small: {d0} -> {d1}");
    }

    #[test]
    fn name_seed_is_stable_and_distinguishing() {
        assert_eq!(name_seed("milc1"), name_seed("milc1"));
        assert_ne!(name_seed("milc1"), name_seed("milc2"));
    }
}
