//! Miss-ratio-vs-ways curves.

use dicer_cachesim::MissRatioCurve;
use serde::{Deserialize, Serialize};

/// Miss ratio as a function of allocated LLC ways.
///
/// Two forms:
///
/// * [`MissCurve::Parametric`] — a smooth saturating shape
///   `m(w) = floor + (ceil − floor) / (1 + (w / w_half)^steepness)`:
///   `ceil` is the thrashing miss ratio (tiny allocation), `floor` the
///   compulsory-miss residue (full cache), `w_half` the allocation at which
///   half of the reducible misses are gone, and `steepness` how sharp the
///   transition is. This is the standard concave working-set shape observed
///   in measured MRCs.
/// * [`MissCurve::Empirical`] — a per-way table, e.g. extracted from the
///   trace-driven simulator in `dicer-cachesim`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MissCurve {
    /// Smooth parametric curve (see type-level docs for the formula).
    Parametric {
        /// Asymptotic miss ratio with unbounded cache (compulsory misses).
        floor: f64,
        /// Miss ratio as the allocation approaches zero.
        ceil: f64,
        /// Ways at which half the reducible misses are eliminated.
        w_half: f64,
        /// Sharpness of the transition (≥ 1).
        steepness: f64,
    },
    /// Tabulated per-way miss ratios.
    Empirical(MissRatioCurve),
}

impl MissCurve {
    /// Convenience constructor for the parametric form with validation.
    pub fn parametric(floor: f64, ceil: f64, w_half: f64, steepness: f64) -> Self {
        let c = MissCurve::Parametric { floor, ceil, w_half, steepness };
        if let Err(e) = c.validate() {
            panic!("invalid MissCurve: {e}");
        }
        c
    }

    /// A curve that ignores the allocation entirely (pure streaming).
    pub fn flat(miss_ratio: f64) -> Self {
        Self::parametric(miss_ratio, miss_ratio, 1.0, 2.0)
    }

    /// Checks parameter sanity.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            MissCurve::Parametric { floor, ceil, w_half, steepness } => {
                if !(0.0..=1.0).contains(floor) || !(0.0..=1.0).contains(ceil) {
                    return Err(format!("floor/ceil must be in [0,1]: {floor}, {ceil}"));
                }
                if floor > ceil {
                    return Err(format!("floor {floor} exceeds ceil {ceil}"));
                }
                if !w_half.is_finite() || *w_half <= 0.0 {
                    return Err(format!("w_half must be positive: {w_half}"));
                }
                if !steepness.is_finite() || *steepness < 1.0 {
                    return Err(format!("steepness must be >= 1: {steepness}"));
                }
                Ok(())
            }
            MissCurve::Empirical(_) => Ok(()),
        }
    }

    /// Miss ratio at a (possibly fractional) way allocation. Allocations are
    /// clamped to a small positive minimum: even a process with no dedicated
    /// way steals transient space.
    pub fn miss_ratio(&self, ways: f64) -> f64 {
        let w = ways.max(0.1);
        match self {
            MissCurve::Parametric { floor, ceil, w_half, steepness } => {
                floor + (ceil - floor) / (1.0 + (w / w_half).powf(*steepness))
            }
            MissCurve::Empirical(t) => t.at_fractional(w),
        }
    }

    /// Miss ratio when granted the entire LLC of `total_ways` ways.
    pub fn best_case(&self, total_ways: u32) -> f64 {
        self.miss_ratio(total_ways as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parametric_shape_endpoints() {
        let c = MissCurve::parametric(0.05, 0.8, 4.0, 2.0);
        assert!(c.miss_ratio(0.2) > 0.7, "tiny allocation near ceil");
        assert!(c.miss_ratio(40.0) < 0.06, "huge allocation near floor");
        // Half the reducible misses gone at w_half.
        let mid = c.miss_ratio(4.0);
        assert!((mid - (0.05 + 0.75 / 2.0)).abs() < 1e-9);
    }

    #[test]
    fn parametric_monotone_decreasing() {
        let c = MissCurve::parametric(0.02, 0.9, 6.0, 2.5);
        let mut prev = 1.0;
        for i in 1..=200 {
            let m = c.miss_ratio(i as f64 * 0.1);
            assert!(m <= prev + 1e-12);
            prev = m;
        }
    }

    #[test]
    fn flat_curve_ignores_ways() {
        let c = MissCurve::flat(0.7);
        assert_eq!(c.miss_ratio(1.0), c.miss_ratio(20.0));
        assert!((c.miss_ratio(5.0) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empirical_curve_interpolates() {
        let t = MissRatioCurve::new(vec![0.8, 0.4, 0.2, 0.1]);
        let c = MissCurve::Empirical(t);
        assert_eq!(c.miss_ratio(1.0), 0.8);
        assert!((c.miss_ratio(1.5) - 0.6).abs() < 1e-12);
        assert_eq!(c.miss_ratio(10.0), 0.1);
    }

    #[test]
    #[should_panic]
    fn floor_above_ceil_rejected() {
        MissCurve::parametric(0.5, 0.2, 2.0, 2.0);
    }

    #[test]
    #[should_panic]
    fn nonpositive_whalf_rejected() {
        MissCurve::parametric(0.1, 0.5, 0.0, 2.0);
    }

    #[test]
    fn miss_ratio_always_in_unit_interval() {
        let c = MissCurve::parametric(0.0, 1.0, 3.0, 4.0);
        for i in 0..1000 {
            let m = c.miss_ratio(i as f64 * 0.05);
            assert!((0.0..=1.0).contains(&m));
        }
    }
}
