//! Synthetic application behaviour models standing in for SPEC CPU 2006 and
//! PARSEC 3.0.
//!
//! The paper evaluates DICER with 59 workloads (25 SPEC applications, 8 of
//! them with multiple inputs, plus 9 serial PARSEC applications). The
//! binaries and inputs are not redistributable, so this crate models each
//! workload as a sequence of [`Phase`]s, each characterised by:
//!
//! * a **miss-ratio curve** ([`MissCurve`]) — miss ratio as a function of
//!   allocated LLC ways, the quantity CAT actually changes;
//! * **memory intensity** (APKI — LLC accesses per kilo-instruction);
//! * a **base CPI** — cycles per instruction with a perfect LLC.
//!
//! Together with the memory-link model these determine IPC under any
//! partitioning, which is all DICER and the paper's metrics observe.
//!
//! The [`Catalog`] contains 59 named entries grouped into four archetypes
//! ([`Archetype`]) whose parameter ranges were tuned so the paper's
//! motivating facts hold (see `DESIGN.md` §2 and the integration tests):
//! streaming codes saturate the link when cache-starved, most applications
//! reach 99 % of peak performance with a small fraction of the 20 ways, and
//! `milc`-style HPs prefer small allocations when co-located with
//! cache-hungry BEs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archetype;
pub mod calibrate;
pub mod catalog;
pub mod curve;
pub mod phase;

pub use archetype::Archetype;
pub use catalog::Catalog;
pub use curve::MissCurve;
pub use phase::{AppProfile, Phase};
