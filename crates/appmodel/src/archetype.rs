//! Behaviour archetypes spanning the SPEC/PARSEC workload space.

use dicer_cachesim::TraceGen;
use serde::{Deserialize, Serialize};

/// The four memory-behaviour archetypes the catalog draws from.
///
/// The classes follow the standard characterisation literature the paper
/// builds on (contentiousness vs. sensitivity, Tang et al., reference 42): what
/// matters for cache partitioning is (a) how much a workload's miss ratio
/// reacts to cache space and (b) how much memory traffic it generates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Archetype {
    /// High-bandwidth streaming with essentially no cache reuse beyond a
    /// small stencil window (lbm, libquantum, bwaves, milc…). Insensitive to
    /// allocation, very contentious on the memory link.
    Streaming,
    /// Large irregular working sets whose miss ratio keeps improving far
    /// into the LLC (mcf, omnetpp, xalancbmk…). Sensitive to allocation.
    CacheSensitive,
    /// Moderate working sets that fit in a few ways (gcc, gobmk, bzip2,
    /// hmmer…). Sensitive only at very small allocations.
    CacheFriendly,
    /// Core-bound codes with tiny memory footprints (namd, povray,
    /// swaptions…). Neither sensitive nor contentious.
    ComputeBound,
}

impl Archetype {
    /// All archetypes, for iteration.
    pub const ALL: [Archetype; 4] = [
        Archetype::Streaming,
        Archetype::CacheSensitive,
        Archetype::CacheFriendly,
        Archetype::ComputeBound,
    ];

    /// A representative synthetic address trace for this archetype, used to
    /// cross-validate the parametric miss curves against the trace-driven
    /// simulator. `sets` is the cache's set count (one way = `sets` lines).
    pub fn representative_trace(&self, sets: u64, seed: u64) -> TraceGen {
        match self {
            Archetype::Streaming => TraceGen::Stream,
            Archetype::CacheSensitive => {
                TraceGen::Zipf { lines: sets * 30, s: 0.8, seed }
            }
            Archetype::CacheFriendly => {
                TraceGen::WorkingSet { lines: sets * 2, seed }
            }
            Archetype::ComputeBound => {
                TraceGen::WorkingSet { lines: sets / 4, seed }
            }
        }
    }
}

impl std::fmt::Display for Archetype {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Archetype::Streaming => "streaming",
            Archetype::CacheSensitive => "cache-sensitive",
            Archetype::CacheFriendly => "cache-friendly",
            Archetype::ComputeBound => "compute-bound",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_variant() {
        assert_eq!(Archetype::ALL.len(), 4);
    }

    #[test]
    fn display_is_kebab() {
        assert_eq!(Archetype::CacheSensitive.to_string(), "cache-sensitive");
    }

    #[test]
    fn representative_traces_differ_in_footprint() {
        use std::collections::HashSet;
        let sets = 512;
        let friendly = Archetype::CacheFriendly.representative_trace(sets, 1).generate(20_000);
        let compute = Archetype::ComputeBound.representative_trace(sets, 1).generate(20_000);
        let f: HashSet<_> = friendly.into_iter().collect();
        let c: HashSet<_> = compute.into_iter().collect();
        assert!(f.len() > c.len(), "friendly footprint should exceed compute-bound");
    }
}
