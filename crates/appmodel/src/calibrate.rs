//! Calibration bridge between the analytic miss curves and the
//! trace-driven cache simulator.
//!
//! The experiment sweeps use closed-form [`MissCurve::Parametric`] shapes
//! for speed; this module keeps them honest by (a) deriving *empirical*
//! curves from archetype traces replayed through the real way-masked
//! simulator and (b) quantifying the gap between a parametric curve and an
//! empirical one.

use crate::{archetype::Archetype, curve::MissCurve};
use dicer_cachesim::{mrc, CacheConfig, ReplacementKind};

/// Derives an empirical miss curve for an archetype by generating its
/// representative trace (`accesses` line addresses, deterministic in
/// `seed`) and replaying it through the trace-driven simulator at every way
/// count of `cfg`.
pub fn empirical_curve(
    archetype: Archetype,
    cfg: &CacheConfig,
    accesses: u64,
    seed: u64,
) -> MissCurve {
    let trace = archetype.representative_trace(cfg.sets(), seed).generate(accesses);
    MissCurve::Empirical(mrc::by_simulation(&trace, cfg, ReplacementKind::Lru))
}

/// Mean absolute difference between two curves over the way range of `cfg`
/// — the calibration error metric reported by `validate_model`.
pub fn curve_distance(a: &MissCurve, b: &MissCurve, ways: u32) -> f64 {
    assert!(ways >= 1);
    (1..=ways).map(|w| (a.miss_ratio(w as f64) - b.miss_ratio(w as f64)).abs()).sum::<f64>()
        / ways as f64
}

/// Fits the closest parametric curve to an empirical one by grid search
/// over the four parameters. Coarse by design: it exists to show the
/// parametric family is expressive enough, not to be a production fitter.
pub fn fit_parametric(empirical: &MissCurve, ways: u32) -> MissCurve {
    let ceil = empirical.miss_ratio(0.5);
    let floor = empirical.miss_ratio(ways as f64);
    let mut best = MissCurve::parametric(floor.min(ceil), ceil.max(floor), 1.0, 2.0);
    let mut best_d = f64::INFINITY;
    for wh_step in 1..=40 {
        let w_half = wh_step as f64 * 0.5;
        for steep in [1.5, 2.0, 2.5, 3.0, 3.5, 4.0] {
            let cand = MissCurve::parametric(floor.min(ceil), ceil.max(floor), w_half, steep);
            let d = curve_distance(&cand, empirical, ways);
            if d < best_d {
                best_d = d;
                best = cand;
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        CacheConfig { size_bytes: 512 * 8 * 64, ways: 8, line_bytes: 64 }
    }

    #[test]
    fn empirical_curves_are_deterministic() {
        let a = empirical_curve(Archetype::CacheFriendly, &cfg(), 100_000, 7);
        let b = empirical_curve(Archetype::CacheFriendly, &cfg(), 100_000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn streaming_empirical_curve_is_flat_high() {
        let c = empirical_curve(Archetype::Streaming, &cfg(), 100_000, 1);
        assert!(c.miss_ratio(1.0) > 0.95);
        assert!(c.miss_ratio(8.0) > 0.95);
    }

    #[test]
    fn curve_distance_zero_on_identical() {
        let c = MissCurve::parametric(0.1, 0.6, 2.0, 2.0);
        assert_eq!(curve_distance(&c, &c.clone(), 8), 0.0);
    }

    #[test]
    fn curve_distance_detects_difference() {
        let a = MissCurve::flat(0.2);
        let b = MissCurve::flat(0.7);
        assert!((curve_distance(&a, &b, 8) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fit_recovers_a_known_parametric_curve() {
        let truth = MissCurve::parametric(0.05, 0.75, 3.0, 2.5);
        let fitted = fit_parametric(&truth, 8);
        assert!(
            curve_distance(&truth, &fitted, 8) < 0.03,
            "fit too far from truth: {fitted:?}"
        );
    }

    #[test]
    fn fit_approximates_empirical_friendly_curve() {
        let emp = empirical_curve(Archetype::CacheFriendly, &cfg(), 200_000, 3);
        let fitted = fit_parametric(&emp, 8);
        let d = curve_distance(&emp, &fitted, 8);
        assert!(d < 0.08, "parametric family should capture the shape, err {d}");
    }
}
