//! Criterion benches for the equilibrium solve engine: accelerated
//! (memoized + warm-started) vs cold paths, at both the raw-solve level
//! and the server-step level. `steady_state_replay` measures the
//! steady-state colocation replay speedup (the ≥3x acceptance criterion):
//! identical servers stepped repeatedly with acceleration on vs off.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dicer_appmodel::{Catalog, MissCurve, Phase};
use dicer_membw::{LinkConfig, LinkModel};
use dicer_server::{EquilibriumSolver, Server, ServerConfig};

fn phase(base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> Phase {
    Phase { insns: 1_000_000, base_cpi, apki, mlp, curve }
}

fn bench_raw_solve(c: &mut Criterion) {
    let mut g = c.benchmark_group("equilibrium_engine_solve");
    let hog = phase(0.6, 30.0, 3.5, MissCurve::parametric(0.4, 0.7, 1.5, 2.0));
    for accelerated in [false, true] {
        let label = if accelerated { "memoized" } else { "cold" };
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let mut solver =
                EquilibriumSolver::new(LinkModel::new(LinkConfig::default()), 198.0, 2.2e9, 64);
            solver.set_accelerated(accelerated);
            let miss = hog.curve.miss_ratio(2.0);
            b.iter(|| {
                solver.begin();
                for _ in 0..10 {
                    solver.push(&hog, miss, 1.0);
                }
                solver.solve().latency_mult
            })
        });
    }
    g.finish();
}

fn bench_steady_state_replay(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let hp = catalog.get("milc1").unwrap().clone();
    let be = catalog.get("gcc_base1").unwrap().clone();
    let mut g = c.benchmark_group("steady_state_replay");
    for accelerated in [false, true] {
        let label = if accelerated { "accelerated" } else { "cold" };
        g.bench_with_input(BenchmarkId::from_parameter(label), &accelerated, |b, &on| {
            let mut server = Server::new(cfg, hp.clone(), vec![be.clone(); 9]);
            server.set_acceleration(on);
            // Reach the steady state (and, when on, populate the caches)
            // before measuring.
            for _ in 0..3 {
                server.step_period();
            }
            b.iter(|| server.step_period())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_raw_solve, bench_steady_state_replay);
criterion_main!(benches);
