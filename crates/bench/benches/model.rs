//! Criterion microbenchmarks for the analytic model: the equilibrium
//! solver and the shared-cache contention solver are the inner loops of
//! every experiment sweep (3481 workloads × policies × periods).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dicer_appmodel::{Catalog, MissCurve, Phase};
use dicer_membw::{LinkConfig, LinkModel};
use dicer_server::{contention, equilibrium, solo, ServerConfig};

fn phase(base_cpi: f64, apki: f64, mlp: f64, curve: MissCurve) -> Phase {
    Phase { insns: 1_000_000, base_cpi, apki, mlp, curve }
}

fn bench_equilibrium(c: &mut Criterion) {
    let mut g = c.benchmark_group("equilibrium_solve");
    let link = LinkModel::new(LinkConfig::default());
    for n in [2usize, 5, 10] {
        let hog = phase(0.6, 30.0, 3.5, MissCurve::parametric(0.4, 0.7, 1.5, 2.0));
        let apps: Vec<(&Phase, f64)> = (0..n).map(|_| (&hog, 2.0)).collect();
        g.bench_with_input(BenchmarkId::new("apps", n), &apps, |b, apps| {
            b.iter(|| equilibrium::solve(apps, &link, 198.0, 2.2e9, 64))
        });
    }
    g.finish();
}

fn bench_contention(c: &mut Criterion) {
    let mut g = c.benchmark_group("contention_shares");
    for n in [2usize, 5, 9] {
        let curves: Vec<MissCurve> = (0..n)
            .map(|i| MissCurve::parametric(0.05, 0.6, 1.0 + i as f64, 2.5))
            .collect();
        let apps: Vec<(f64, &MissCurve)> =
            curves.iter().enumerate().map(|(i, c)| (10.0 + i as f64, c)).collect();
        g.bench_with_input(BenchmarkId::new("apps", n), &apps, |b, apps| {
            b.iter(|| contention::shared_effective_ways(apps, 20.0))
        });
    }
    g.finish();
}

fn bench_solo_profile(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let milc = catalog.get("milc1").unwrap();
    c.bench_function("solo_profile_one_app", |b| b.iter(|| solo::profile(milc, &cfg)));
}

fn bench_catalog_build(c: &mut Criterion) {
    c.bench_function("catalog_paper_build", |b| b.iter(Catalog::paper));
}

criterion_group!(benches, bench_equilibrium, bench_contention, bench_solo_profile, bench_catalog_build);
criterion_main!(benches);
