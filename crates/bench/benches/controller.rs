//! Criterion benchmarks for the control plane: one simulated monitoring
//! period (server step) and one DICER decision, plus a whole co-location
//! run — the unit of cost behind every figure.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dicer_appmodel::Catalog;
use dicer_experiments::runner::run_colocation_with;
use dicer_experiments::SoloTable;
use dicer_policy::{Dicer, DicerConfig, Policy, PolicyKind};
use dicer_rdt::{PartitionController, PerAppSample, PeriodSample};
use dicer_server::{Server, ServerConfig};

fn bench_server_period(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let mut g = c.benchmark_group("server_step_period");
    for (label, hp, be) in
        [("quiet", "namd1", "povray1"), ("contended", "milc1", "gcc_base1")]
    {
        let hp = catalog.get(hp).unwrap().clone();
        let be = catalog.get(be).unwrap().clone();
        g.bench_with_input(BenchmarkId::from_parameter(label), &(hp, be), |b, (hp, be)| {
            let mut server = Server::new(cfg, hp.clone(), vec![be.clone(); 9]);
            b.iter(|| server.step_period())
        });
    }
    g.finish();
}

fn bench_dicer_decision(c: &mut Criterion) {
    let app = PerAppSample { ipc: 1.0, llc_occupancy_bytes: 0, mem_bw_gbps: 4.0, miss_ratio: 0.2 };
    let sample = PeriodSample { time_s: 1.0, hp: app, bes: vec![app; 9], total_bw_gbps: 40.0 };
    c.bench_function("dicer_on_period", |b| {
        let mut d = Dicer::new(DicerConfig::default());
        d.initial_plan(20);
        b.iter(|| d.on_period(&sample, 20))
    });
}

fn bench_full_colocation_run(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let solo = SoloTable::build(&catalog, ServerConfig::table1());
    let hp = catalog.get("gobmk1").unwrap();
    let be = catalog.get("hmmer1").unwrap();
    let mut g = c.benchmark_group("colocation_run");
    g.sample_size(10);
    for kind in [PolicyKind::Unmanaged, PolicyKind::CacheTakeover, PolicyKind::Dicer(DicerConfig::default())] {
        g.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, kind| b.iter(|| run_colocation_with(&solo, hp, be, 10, kind)),
        );
    }
    g.finish();
}

fn bench_plan_application(c: &mut Criterion) {
    let catalog = Catalog::paper();
    let cfg = ServerConfig::table1();
    let hp = catalog.get("omnetpp1").unwrap().clone();
    let be = catalog.get("gcc_base1").unwrap().clone();
    c.bench_function("apply_plan_toggle", |b| {
        let mut server = Server::new(cfg, hp.clone(), vec![be.clone(); 9]);
        let mut w = 1;
        b.iter(|| {
            w = w % 19 + 1;
            server.apply_plan(dicer_rdt::PartitionPlan::Split { hp_ways: w });
        })
    });
}

criterion_group!(
    benches,
    bench_server_period,
    bench_dicer_decision,
    bench_full_colocation_run,
    bench_plan_application
);
criterion_main!(benches);
